//! Criterion benchmarks of the IOS machinery itself: how long the dynamic
//! program, the stage cost model, and a simulated inference actually take in
//! wall-clock time. (IOS trades schedule-generation time for schedule
//! quality — §8.3 — so the DP's own cost is a first-class metric.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcd_gpusim::DeviceSpec;
use dcd_ios::{
    greedy_schedule, ios_schedule, lower_sppnet, measure_latency, sequential_schedule, IosOptions,
    StageCostModel,
};
use dcd_nn::SppNetConfig;

fn bench_schedulers(c: &mut Criterion) {
    let cfg = SppNetConfig::candidate2();
    let graph = lower_sppnet(&cfg, (100, 100));
    let device = DeviceSpec::rtx_a5500();

    let mut group = c.benchmark_group("scheduler");
    group.bench_function("sequential", |b| b.iter(|| sequential_schedule(&graph)));
    group.bench_function("greedy", |b| b.iter(|| greedy_schedule(&graph)));
    group.bench_function("ios_dp_cold", |b| {
        b.iter(|| {
            // Cold cost model each iteration: includes all stage profiling.
            let mut cost = StageCostModel::new(&graph, device.clone(), 1);
            ios_schedule(&graph, &mut cost, IosOptions::default())
        })
    });
    group.finish();
}

fn bench_dp_pruning(c: &mut Criterion) {
    let cfg = SppNetConfig::candidate2();
    let graph = lower_sppnet(&cfg, (100, 100));
    let device = DeviceSpec::rtx_a5500();
    let mut group = c.benchmark_group("ios_dp_pruning");
    for &(mg, mgl) in &[(1usize, 6usize), (2, 4), (4, 6), (4, 12)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("g{mg}_l{mgl}")),
            &(mg, mgl),
            |b, &(mg, mgl)| {
                b.iter(|| {
                    let mut cost = StageCostModel::new(&graph, device.clone(), 1);
                    ios_schedule(
                        &graph,
                        &mut cost,
                        IosOptions::new()
                            .with_max_groups(mg)
                            .with_max_group_len(mgl),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_simulated_inference(c: &mut Criterion) {
    let cfg = SppNetConfig::candidate2();
    let graph = lower_sppnet(&cfg, (100, 100));
    let device = DeviceSpec::rtx_a5500();
    let mut cost = StageCostModel::new(&graph, device.clone(), 1);
    let schedule = ios_schedule(&graph, &mut cost, IosOptions::default());
    let mut group = c.benchmark_group("simulated_inference");
    for &batch in &[1usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| measure_latency(&graph, &schedule, batch, &device, 0, 1))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_schedulers,
    bench_dp_pruning,
    bench_simulated_inference
);
criterion_main!(benches);
