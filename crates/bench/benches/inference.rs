//! Criterion benchmarks of real CPU inference and training steps of the
//! `dcd-nn` SPP-Net (the executable counterpart of the simulated numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcd_nn::{BBox, Sample, Sgd, SppNet, SppNetConfig, TrainConfig, Trainer};
use dcd_tensor::{SeededRng, Tensor};

/// A reduced-width model (Effort::Standard in the harness) so the benches
/// finish in seconds on CPU.
fn standard_model() -> SppNet {
    let mut cfg = SppNetConfig::candidate2();
    cfg.channels = [16, 32, 48];
    cfg.fc1 = 512;
    let mut rng = SeededRng::new(1);
    SppNet::new(cfg, &mut rng)
}

fn bench_forward(c: &mut Criterion) {
    let mut model = standard_model();
    let mut rng = SeededRng::new(2);
    let mut group = c.benchmark_group("cpu_forward");
    group.sample_size(20);
    for &batch in &[1usize, 4, 16] {
        let x = Tensor::randn([batch, 4, 64, 64], 0.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
            b.iter(|| model.forward(&x))
        });
    }
    group.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let mut model = standard_model();
    let mut rng = SeededRng::new(3);
    let samples: Vec<Sample> = (0..8)
        .map(|i| {
            let img = Tensor::randn([4, 64, 64], 0.0, 1.0, &mut rng);
            if i % 2 == 0 {
                Sample::positive(img, BBox::new(0.5, 0.5, 0.2, 0.2))
            } else {
                Sample::negative(img)
            }
        })
        .collect();
    let refs: Vec<&Sample> = samples.iter().collect();
    let trainer = Trainer::new(TrainConfig {
        epochs: 1,
        batch_size: 8,
        sgd: Sgd::paper(),
        ..Default::default()
    });
    let mut group = c.benchmark_group("cpu_train");
    group.sample_size(10);
    group.bench_function("sgd_step_batch8_64x64", |b| {
        b.iter(|| trainer.train_batch(&mut model, &refs))
    });
    group.finish();
}

criterion_group!(benches, bench_forward, bench_train_step);
criterion_main!(benches);
