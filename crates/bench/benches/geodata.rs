//! Criterion benchmarks of the geodata substrate: DEM synthesis and the
//! hydrology kernels (priority-flood fill, D8 routing, flow accumulation)
//! that gate whole-watershed analyses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcd_geodata::hydrology::{fill_depressions, flow_accumulation, flow_directions};
use dcd_geodata::{generate_dem, generate_scene, DemConfig, SceneConfig};
use dcd_tensor::SeededRng;

fn bench_dem(c: &mut Criterion) {
    let mut group = c.benchmark_group("dem_generate");
    for &size in &[128usize, 256, 512] {
        let cfg = DemConfig {
            width: size,
            height: size,
            ..Default::default()
        };
        group.throughput(Throughput::Elements((size * size) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &cfg, |b, cfg| {
            b.iter(|| generate_dem(cfg, &mut SeededRng::new(1)));
        });
    }
    group.finish();
}

fn bench_hydrology(c: &mut Criterion) {
    let cfg = DemConfig {
        width: 256,
        height: 256,
        ..Default::default()
    };
    let dem = generate_dem(&cfg, &mut SeededRng::new(2));
    let filled = fill_depressions(&dem);
    let dirs = flow_directions(&filled);

    let mut group = c.benchmark_group("hydrology_256");
    group.throughput(Throughput::Elements(256 * 256));
    group.bench_function("priority_flood_fill", |b| b.iter(|| fill_depressions(&dem)));
    group.bench_function("d8_flow_directions", |b| {
        b.iter(|| flow_directions(&filled))
    });
    group.bench_function("flow_accumulation", |b| {
        b.iter(|| flow_accumulation(&filled, &dirs))
    });
    group.finish();
}

fn bench_scene(c: &mut Criterion) {
    let mut group = c.benchmark_group("scene");
    group.sample_size(10);
    let cfg = SceneConfig {
        dem: DemConfig {
            width: 256,
            height: 256,
            ..Default::default()
        },
        road_spacing: 64,
        stream_threshold: 100.0,
        ..Default::default()
    };
    group.bench_function("generate_scene_256", |b| {
        b.iter(|| generate_scene(&cfg, &mut SeededRng::new(3)))
    });
    group.finish();
}

criterion_group!(benches, bench_dem, bench_hydrology, bench_scene);
criterion_main!(benches);
