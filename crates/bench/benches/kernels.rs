//! Criterion benchmarks of the CPU tensor kernels — the real wall-clock cost
//! of the from-scratch compute stack (GEMM, conv2d, pooling, SPP).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcd_tensor::{
    adaptive_max_pool2d, conv2d, gemm, gemm_legacy, gemm_packed, max_pool2d, Epilogue, PackedLhs,
    SeededRng, Tensor, Trans,
};

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &n in &[64usize, 128, 256] {
        let mut rng = SeededRng::new(1);
        let a: Vec<f32> = (0..n * n).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..n * n).map(|_| rng.normal()).collect();
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| gemm(&a, &b, n, n, n));
        });
    }
    group.finish();
}

/// The packed register-blocked kernel against the retained legacy axpy
/// kernel, single-threaded, at the acceptance shapes of `dcd-bench --bin
/// gemm` (which records the same comparison to `BENCH_gemm.json`).
fn bench_packed_vs_legacy(c: &mut Criterion) {
    let mut group = c.benchmark_group("packed_vs_legacy");
    let mut rng = SeededRng::new(7);
    for &(name, m, k, n) in &[
        ("gemm_256", 256usize, 256usize, 256usize),
        ("conv2_shape", 128, 576, 2_500),
    ] {
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        group.throughput(Throughput::Elements((2 * m * k * n) as u64));
        group.bench_function(BenchmarkId::new("packed", name), |bench| {
            let mut out = vec![0.0f32; m * n];
            bench.iter(|| {
                rayon::force_sequential(|| {
                    let pa = PackedLhs::pack(&a, Trans::No, m, k);
                    gemm_packed(&pa, &b, Trans::No, &mut out, n, Epilogue::Store);
                });
            });
        });
        group.bench_function(BenchmarkId::new("legacy", name), |bench| {
            bench.iter(|| rayon::force_sequential(|| gemm_legacy(&a, &b, m, k, n)));
        });
    }
    group.finish();
}

fn bench_conv2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d");
    let mut rng = SeededRng::new(2);
    // The paper's conv2: 64→128 channels, 3×3, on the post-pool1 50×50 map.
    let x = Tensor::randn([1, 64, 50, 50], 0.0, 1.0, &mut rng);
    let w = Tensor::randn([128, 64, 3, 3], 0.0, 0.1, &mut rng);
    let b = Tensor::zeros([128]);
    group.bench_function("conv2_64to128_50x50", |bench| {
        bench.iter(|| conv2d(&x, &w, &b, 1, 1));
    });
    // First conv on the raw 4-band 100×100 patch.
    let x1 = Tensor::randn([1, 4, 100, 100], 0.0, 1.0, &mut rng);
    let w1 = Tensor::randn([64, 4, 3, 3], 0.0, 0.1, &mut rng);
    let b1 = Tensor::zeros([64]);
    group.bench_function("conv1_4to64_100x100", |bench| {
        bench.iter(|| conv2d(&x1, &w1, &b1, 1, 1));
    });
    group.finish();
}

fn bench_pooling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pooling");
    let mut rng = SeededRng::new(3);
    let x = Tensor::randn([1, 256, 12, 12], 0.0, 1.0, &mut rng);
    group.bench_function("maxpool2x2_256x12x12", |bench| {
        let big = Tensor::randn([1, 64, 100, 100], 0.0, 1.0, &mut rng);
        bench.iter(|| max_pool2d(&big, 2, 2));
    });
    // The SPP pyramid of the paper's final model: 5×5, 2×2, 1×1.
    group.bench_function("spp_pyramid_5_2_1", |bench| {
        bench.iter(|| {
            let a = adaptive_max_pool2d(&x, 5);
            let b = adaptive_max_pool2d(&x, 2);
            let c = adaptive_max_pool2d(&x, 1);
            (a, b, c)
        });
    });
    group.finish();
}

/// The same hot kernels with the thread pool engaged vs forced inline —
/// the before/after of replacing the sequential rayon shim with a real
/// pool (`cargo run -p dcd-bench --bin parallel` records the same
/// comparison to `BENCH_parallel.json`).
fn bench_parallel_vs_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_vs_sequential");
    let mut rng = SeededRng::new(4);
    let n = 256;
    let a: Vec<f32> = (0..n * n).map(|_| rng.normal()).collect();
    let b: Vec<f32> = (0..n * n).map(|_| rng.normal()).collect();
    group.bench_function("gemm_256_parallel", |bench| {
        bench.iter(|| gemm(&a, &b, n, n, n));
    });
    group.bench_function("gemm_256_sequential", |bench| {
        bench.iter(|| rayon::force_sequential(|| gemm(&a, &b, n, n, n)));
    });
    let x = Tensor::randn([8, 64, 50, 50], 0.0, 1.0, &mut rng);
    let w = Tensor::randn([128, 64, 3, 3], 0.0, 0.1, &mut rng);
    let bias = Tensor::zeros([128]);
    group.bench_function("conv2_b8_parallel", |bench| {
        bench.iter(|| conv2d(&x, &w, &bias, 1, 1));
    });
    group.bench_function("conv2_b8_sequential", |bench| {
        bench.iter(|| rayon::force_sequential(|| conv2d(&x, &w, &bias, 1, 1)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_packed_vs_legacy,
    bench_conv2d,
    bench_pooling,
    bench_parallel_vs_sequential
);
criterion_main!(benches);
