//! Packed-vs-legacy GEMM microbenchmark at the SPP-Net layer shapes.
//!
//! Compares the packed register-blocked kernel against the retained legacy
//! axpy kernel (`gemm_legacy`) on the square 256³ problem and on the GEMMs
//! behind conv1, conv2 and fc1 of the paper's architecture at batch 1, 8
//! and 32. Convolution shapes run as repeated per-sample products sharing
//! one packed weight ([`PackedLhs`]), exactly as `conv2d` executes them.
//!
//! All timings are taken under `rayon::force_sequential`, so the recorded
//! speedups are single-thread kernel improvements, not parallelism; the
//! `threads` field records the actual pool size for cross-referencing with
//! `BENCH_parallel.json`.
//!
//! Usage: `cargo run --release -p dcd-bench --bin gemm`
//! (writes `BENCH_gemm.json`)

use dcd_tensor::{gemm_into, gemm_legacy, gemm_packed, Epilogue, PackedLhs, SeededRng, Trans};
use serde::Serialize;
use std::time::Instant;

/// One shape's timings, milliseconds (best of `REPS` runs).
#[derive(Debug, Serialize)]
struct KernelTiming {
    name: String,
    m: usize,
    k: usize,
    n: usize,
    batch: usize,
    legacy_ms: f64,
    packed_ms: f64,
    speedup: f64,
}

/// The recorded artifact.
#[derive(Debug, Serialize)]
struct Report {
    /// Actual worker count of the (warmed) pool. Timings below are still
    /// single-thread: every run executes under `force_sequential`.
    threads: usize,
    mode: &'static str,
    kernels: Vec<KernelTiming>,
}

const REPS: usize = 5;

/// Best-of-REPS single-thread wall-clock of `f`, milliseconds.
fn best_ms(mut f: impl FnMut()) -> f64 {
    rayon::force_sequential(|| {
        f(); // warm-up (also warms the scratch pool)
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed().as_secs_f64() * 1e3);
        }
        best
    })
}

/// Times `batch` back-to-back `m×k·k×n` products, packed vs legacy.
///
/// `shared_lhs` mirrors how the layer actually calls the kernel: conv
/// shapes pack the weight once per layer and reuse it across samples
/// ([`PackedLhs`]); fully-connected shapes go through the public entry
/// point, which routes skinny products to the thin axpy path.
fn time_shape(
    name: &str,
    m: usize,
    k: usize,
    n: usize,
    batch: usize,
    shared_lhs: bool,
) -> KernelTiming {
    let mut rng = SeededRng::new(0xD00D ^ (m * 31 + k * 7 + n) as u64);
    let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
    let bs: Vec<Vec<f32>> = (0..batch)
        .map(|_| (0..k * n).map(|_| rng.normal()).collect())
        .collect();
    let mut c = vec![0.0f32; m * n];

    let packed_ms = best_ms(|| {
        if shared_lhs {
            // Pack the shared left operand once per call, as conv2d does.
            let pa = PackedLhs::pack(&a, Trans::No, m, k);
            for b in &bs {
                gemm_packed(&pa, b, Trans::No, &mut c, n, Epilogue::Store);
                std::hint::black_box(&mut c);
            }
        } else {
            for b in &bs {
                gemm_into(&a, b, &mut c, m, k, n);
                std::hint::black_box(&mut c);
            }
        }
    });
    let legacy_ms = best_ms(|| {
        for b in &bs {
            std::hint::black_box(gemm_legacy(&a, b, m, k, n));
        }
    });
    let t = KernelTiming {
        name: name.to_string(),
        m,
        k,
        n,
        batch,
        legacy_ms,
        packed_ms,
        speedup: legacy_ms / packed_ms,
    };
    println!(
        "{:18} m={:5} k={:5} n={:6} b={:2}   legacy {:9.2} ms   packed {:9.2} ms   speedup {:.2}x",
        t.name, m, k, n, batch, t.legacy_ms, t.packed_ms, t.speedup
    );
    t
}

fn main() {
    // Spin the pool up with a real parallel call before reading its size.
    let warm: f32 = {
        use rayon::prelude::*;
        vec![1.0f32; 1 << 15].par_iter().map(|&v| v * 2.0).sum()
    };
    std::hint::black_box(warm);
    let threads = rayon::current_num_threads();
    println!("pool threads: {threads} (timings forced single-thread)");

    let mut kernels = Vec::new();
    // Square problem at the fc-layer scale (acceptance shape #1).
    kernels.push(time_shape("gemm_256", 256, 256, 256, 1, true));
    // conv1 of the paper's net on a 100×100 patch: 4 bands, 3×3 kernel,
    // 64 filters → [64, 36] · [36, 10000] per sample.
    for &b in &[1usize, 8, 32] {
        kernels.push(time_shape(&format!("conv1_b{b}"), 64, 36, 10_000, b, true));
    }
    // conv2 on the post-pool1 50×50 map: [128, 576] · [576, 2500]
    // (acceptance shape #2).
    for &b in &[1usize, 8, 32] {
        kernels.push(time_shape(&format!("conv2_b{b}"), 128, 576, 2_500, b, true));
    }
    // fc1 of the original config: SPP features 256·21 = 5376 → 1024,
    // exercised the way `Linear::forward` calls it.
    for &b in &[1usize, 8, 32] {
        kernels.push(time_shape(&format!("fc1_b{b}"), b, 5_376, 1_024, 1, false));
    }

    let report = Report {
        threads,
        mode: "single_thread_forced",
        kernels,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_gemm.json", json).expect("write BENCH_gemm.json");
    println!("wrote BENCH_gemm.json");
}
