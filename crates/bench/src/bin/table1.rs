//! Regenerates **Table 1**: average precision of the original SPP-Net and
//! the three NAS candidates, trained with the paper's §6.1 recipe on the
//! synthetic watershed dataset.
//!
//! Usage: `cargo run --release -p dcd-bench --bin table1 [--quick|--full]`
//!
//! Paper reference: 95.00 / 96.10 / 96.70 / 97.40 % AP. Absolute values here
//! differ (synthetic data, scaled widths below `--full`), but all four
//! configurations should land in the same high-AP regime, with the NAS
//! candidates competitive with or better than the original.

use dcd_bench::{build_dataset, paper_train_config, print_table, Effort};
use dcd_nn::trainer::evaluate;
use dcd_nn::{SppNet, SppNetConfig, Trainer};
use dcd_tensor::SeededRng;

fn main() {
    let effort = Effort::from_args();
    println!(
        "effort: {effort:?} (channels {:?}, patch {})",
        effort.channels(),
        effort.patch_size()
    );
    let dataset = build_dataset(effort, 2022);
    println!(
        "dataset: {} train / {} test patches, {} crossings in scene",
        dataset.train.len(),
        dataset.test.len(),
        dataset.scene.crossings.len()
    );

    let paper_ap = [95.00, 96.10, 96.70, 97.40];
    let seeds: &[u64] = if effort == Effort::Quick {
        &[7]
    } else {
        &[7, 8, 9]
    };
    let mut rows = Vec::new();
    for ((name, cfg), paper) in SppNetConfig::table1().into_iter().zip(paper_ap) {
        let scaled = effort.scale_config(&cfg);
        let mut aps = Vec::with_capacity(seeds.len());
        let mut last_loss = f32::NAN;
        for &seed in seeds {
            let mut rng = SeededRng::new(seed);
            let mut model = SppNet::new(scaled.clone(), &mut rng);
            let trainer = Trainer::new(paper_train_config(effort));
            // Full training set, paper §6.1 style (with step LR decay for a
            // stable final snapshot). A validation-selected variant
            // (`Trainer::train_with_validation`) exists but costs 20% of
            // the training data, which hurts more than selection helps at
            // this dataset size.
            let history = trainer.train(&mut model, &dataset.train);
            let (ap, _) = evaluate(&mut model, &dataset.test, 0.5);
            last_loss = history.last().map(|h| h.loss).unwrap_or(f32::NAN);
            eprintln!("  trained {name} (seed {seed}): AP {ap:.4}");
            aps.push(ap);
        }
        let mean = aps.iter().sum::<f32>() / aps.len() as f32;
        let std = (aps.iter().map(|a| (a - mean).powi(2)).sum::<f32>() / aps.len() as f32).sqrt();
        rows.push(vec![
            name.to_string(),
            cfg.summary(),
            format!("{:.2}% ± {:.1}", 100.0 * mean, 100.0 * std),
            format!("{paper:.2}%"),
            format!("{last_loss:.4}"),
        ]);
    }
    print_table(
        "Table 1: AP for different SPP-Net structures (mean ± std over seeds)",
        &[
            "Model",
            "Hyper-parameters",
            "AP (measured)",
            "AP (paper)",
            "final loss",
        ],
        &rows,
    );
}
