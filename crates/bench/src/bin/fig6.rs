//! Regenerates **Fig 6**: inference efficiency (latency / batch size) for the
//! sequential and IOS-optimized schedules of SPP-Net #2 across batch sizes
//! 1–64, plus the §6.4 optimal-batch selection.
//!
//! Usage: `cargo run --release -p dcd-bench --bin fig6`
//!
//! Expected shape: per-image latency falls with batch size for both
//! schedules; the optimized schedule stays below the sequential one; the
//! relative gain shrinks as the GPU saturates, with diminishing returns
//! selecting batch 32 (the paper's choice).

use dcd_bench::print_table;
use dcd_core::{Pipeline, PipelineConfig};
use dcd_nn::SppNetConfig;

fn main() {
    let pipeline = Pipeline::new(PipelineConfig::default());
    let model = SppNetConfig::candidate2();
    println!("model: SPP-Net #2  ({})", model.summary());
    let sweep = pipeline.batch_sweep(&model);
    let mut rows = Vec::new();
    for pt in &sweep {
        rows.push(vec![
            pt.batch.to_string(),
            format!("{:.1} µs", pt.sequential_ns_per_image / 1e3),
            format!("{:.1} µs", pt.optimized_ns_per_image / 1e3),
            format!(
                "{:.1}%",
                100.0 * (1.0 - pt.optimized_ns_per_image / pt.sequential_ns_per_image)
            ),
        ]);
    }
    print_table(
        "Fig 6: inference efficiency (latency per image) vs batch size",
        &["Batch", "Sequential", "IOS-optimized", "Gain"],
        &rows,
    );
    let optimal = Pipeline::pick_optimal_batch(&sweep);
    println!("\noptimal batch size (diminishing-gains rule): {optimal} (paper selects 32)");
}
