//! Regenerates **Fig 8**: CUDA API usage shares across batch sizes.
//!
//! Usage: `cargo run --release -p dcd-bench --bin fig8`
//!
//! Paper reference: at batch 1 `cuLibraryLoadData` consumes ≈80% of API
//! time and `cudaDeviceSynchronize` ≈0.4%; at batch 64 synchronization has
//! grown to 45.40% and overtakes library loading. Expected shape: the
//! one-time library load share falls monotonically while the synchronize
//! share rises, crossing over before batch 64.

use dcd_bench::print_table;
use dcd_core::profile_batch_sweep;
use dcd_gpusim::DeviceSpec;
use dcd_nn::SppNetConfig;

fn main() {
    let profiles = profile_batch_sweep(
        &SppNetConfig::candidate2(),
        (100, 100),
        &DeviceSpec::rtx_a5500(),
        &[1, 2, 4, 8, 16, 32, 64],
        20,
    );
    let mut rows = Vec::new();
    let mut crossover: Option<usize> = None;
    for p in &profiles {
        if p.sync_pct > p.lib_load_pct && crossover.is_none() {
            crossover = Some(p.batch);
        }
        rows.push(vec![
            p.batch.to_string(),
            format!("{:.1}%", p.lib_load_pct),
            format!("{:.1}%", p.sync_pct),
            format!("{:.1}%", 100.0 - p.lib_load_pct - p.sync_pct),
        ]);
    }
    print_table(
        "Fig 8: CUDA API usage shares vs batch size",
        &[
            "Batch",
            "cuLibraryLoadData",
            "cudaDeviceSynchronize",
            "other APIs",
        ],
        &rows,
    );
    match crossover {
        Some(b) => println!(
            "\nsynchronize overtakes library loading at batch {b} (paper: by batch 64, 45.4%)"
        ),
        None => println!("\nno crossover within the sweep (paper observes one by batch 64)"),
    }
}
