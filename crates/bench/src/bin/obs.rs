//! Observability-overhead microbenchmark for the `dcd-obs` crate.
//!
//! Runs the scene-scan hot path (the workload the paper optimizes for:
//! a large volume of patch inferences) three times — instrumentation
//! disabled, enabled, and disabled again — and records the relative
//! overhead in `BENCH_obs.json`. The second disabled run guards against
//! drift: both disabled runs must agree, and the enabled run must stay
//! within a few percent of them (spans are a clock read plus a bounds-
//! checked push into a pre-reserved buffer). A raw span microbench
//! (ns per enter/exit pair) is recorded alongside.
//!
//! Usage: `cargo run --release -p dcd-bench --bin obs`

use dcd_core::scan::{scan_scene, ScanConfig};
use dcd_core::DrainageCrossingDetector;
use dcd_geodata::dataset::small_config;
use dcd_geodata::render::render_bands;
use dcd_geodata::PatchDataset;
use dcd_nn::{SppNet, SppNetConfig};
use dcd_tensor::{SeededRng, Tensor};
use serde::Serialize;
use std::time::Instant;

/// The recorded artifact.
#[derive(Debug, Serialize)]
struct Report {
    /// Scan wall-clock with observability off, ms (best of REPS).
    disabled_ms: f64,
    /// Scan wall-clock with spans + counters recording, ms (best of REPS).
    enabled_ms: f64,
    /// Scan wall-clock after turning observability back off, ms.
    disabled_again_ms: f64,
    /// `enabled_ms / disabled_ms - 1`, as a percentage.
    overhead_pct: f64,
    /// Cost of one disabled span guard, ns.
    disabled_span_ns: f64,
    /// Cost of one enabled span enter/exit pair, ns.
    enabled_span_ns: f64,
    /// Spans recorded by one instrumented scan.
    spans_per_scan: usize,
    /// Buffer regrowths observed during the timed enabled runs (must be 0:
    /// steady-state recording never allocates).
    grow_events_during_timing: u64,
}

const REPS: usize = 5;

fn best_ms(mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// ns per call of `f`, amortized over `iters` calls.
fn ns_per_call(iters: u64, mut f: impl FnMut()) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    t.elapsed().as_nanos() as f64 / iters as f64
}

fn fixture() -> (DrainageCrossingDetector, Tensor, ScanConfig) {
    let mut arch = SppNetConfig::tiny();
    arch.in_channels = 4;
    let model = SppNet::new(arch, &mut SeededRng::new(5));
    let mut detector = DrainageCrossingDetector::from_model(model);
    detector.threshold = 0.0;
    let ds = PatchDataset::generate(&small_config(), 21);
    let bands = render_bands(&ds.scene, 0.03, &mut SeededRng::new(9));
    let scan = ScanConfig::for_patch(48).with_batch_size(8).with_stride(24);
    (detector, bands, scan)
}

fn main() {
    let (mut detector, bands, scan) = fixture();

    dcd_obs::set_enabled(false);
    let disabled_ms = best_ms(|| {
        std::hint::black_box(scan_scene(&mut detector, &bands, &scan));
    });

    dcd_obs::set_enabled(true);
    // Warm-up registers every pool thread's span buffer; draining between
    // runs keeps the buffers from filling (a full buffer drops, which would
    // make the enabled run artificially cheap).
    scan_scene(&mut detector, &bands, &scan);
    let spans_per_scan = dcd_obs::drain_spans().len();
    let grow_before = dcd_obs::grow_events();
    let mut enabled_ms = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        std::hint::black_box(scan_scene(&mut detector, &bands, &scan));
        enabled_ms = enabled_ms.min(t.elapsed().as_secs_f64() * 1e3);
        dcd_obs::drain_spans();
    }
    let grow_events_during_timing = dcd_obs::grow_events() - grow_before;

    dcd_obs::set_enabled(false);
    let disabled_again_ms = best_ms(|| {
        std::hint::black_box(scan_scene(&mut detector, &bands, &scan));
    });

    // Span guard microbench: disabled guards are a single atomic load;
    // enabled pairs add two clock reads and a buffer push.
    let disabled_span_ns = ns_per_call(4_000_000, || {
        let _s = dcd_obs::span("bench.probe", dcd_obs::Category::Other);
    });
    dcd_obs::set_enabled(true);
    dcd_obs::set_thread_capacity(1 << 20);
    let enabled_span_ns = ns_per_call(500_000, || {
        let _s = dcd_obs::span("bench.probe", dcd_obs::Category::Other);
    });
    dcd_obs::drain_spans();
    dcd_obs::set_enabled(false);

    let overhead_pct = (enabled_ms / disabled_ms - 1.0) * 100.0;
    let report = Report {
        disabled_ms,
        enabled_ms,
        disabled_again_ms,
        overhead_pct,
        disabled_span_ns,
        enabled_span_ns,
        spans_per_scan,
        grow_events_during_timing,
    };
    println!(
        "scan: disabled {disabled_ms:.2} ms | enabled {enabled_ms:.2} ms \
         ({overhead_pct:+.2}%) | disabled again {disabled_again_ms:.2} ms"
    );
    println!(
        "span guard: disabled {disabled_span_ns:.1} ns | enabled {enabled_span_ns:.1} ns \
         | {spans_per_scan} spans/scan | {grow_events_during_timing} regrowths while timing"
    );
    assert_eq!(
        grow_events_during_timing, 0,
        "steady-state span recording must not allocate"
    );
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_obs.json", json).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json");
}
