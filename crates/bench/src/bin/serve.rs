//! Serving-runtime SLO benchmark: documents what the fault-aware layer
//! buys over naive dispatch, in `BENCH_serve.json`.
//!
//! Three runs of the same seeded load:
//!
//! 1. `clean` — no faults; the throughput and p99 baseline.
//! 2. `fault-burst` through the full runtime (retries with jittered
//!    backoff, circuit breaker, brownout) — must keep ≥ 90% of offered
//!    requests inside their deadline and re-close the breaker.
//! 3. `fault-burst` through a *naive* configuration — no retries, a
//!    breaker that never trips, brownout thresholds pushed to the edge —
//!    the documented baseline the 90% figure is measured against.
//!
//! At this load the naive loop also rides out the bounded fault window by
//! blindly redispatching (failed attempts are cheap on the simulated
//! device), so its served fraction is comparable — which is exactly the
//! textbook breaker trade-off: a breaker does not raise the success rate
//! of a bounded outage, it stops the client hammering the failing
//! dependency. The artifact therefore documents both served fractions
//! *and* the futile work: the naive run burns an order of magnitude more
//! failed dispatches against a device that is down.
//!
//! All three are simulated-clock runs, so the numbers are bit-stable
//! across machines and thread counts.
//!
//! Usage: `cargo run --release -p dcd-bench --bin serve`

use dcd_core::RetryPolicy;
use dcd_serve::{run_scenario, scenario, BreakerConfig, BreakerState, BrownoutConfig, ServeReport};
use serde::Serialize;

const SEED: u64 = 42;

/// One run's numbers in the artifact.
#[derive(Debug, Serialize)]
struct RunStats {
    offered: u64,
    served_within_deadline: u64,
    served_fraction: f64,
    /// Offered load over the arrival window, requests/s.
    offered_per_sec: f64,
    /// On-time completions over the full run (arrivals + drain), req/s.
    served_per_sec: f64,
    p50_latency_ms: f64,
    p99_latency_ms: f64,
    /// Total simulated time the breaker spent Open, ms.
    breaker_open_ms: f64,
    final_breaker_state: &'static str,
    retries: u64,
    failed_batches: u64,
}

/// The recorded artifact.
#[derive(Debug, Serialize)]
struct Report {
    scenario_seed: u64,
    /// Fault-free reference run.
    clean: RunStats,
    /// Fault burst through the full fault-aware runtime.
    faulted_resilient: RunStats,
    /// Same fault burst with the protections stripped.
    faulted_naive: RunStats,
    /// `faulted_naive.failed_batches / faulted_resilient.failed_batches`:
    /// how many times more futile dispatches the naive loop hammers into
    /// the faulted device.
    futile_dispatch_ratio: f64,
    /// The acceptance bar the resilient run is held to.
    slo_served_fraction: f64,
}

fn stats(report: &ServeReport, arrival_window_ns: u64) -> RunStats {
    assert!(report.conserved(), "ledger must balance: {report:?}");
    RunStats {
        offered: report.offered,
        served_within_deadline: report.served,
        served_fraction: report.served_fraction(),
        offered_per_sec: report.offered as f64 / (arrival_window_ns as f64 / 1e9),
        served_per_sec: report.served as f64 / (report.end_ns as f64 / 1e9),
        p50_latency_ms: report.p50_latency_ns as f64 / 1e6,
        p99_latency_ms: report.p99_latency_ns as f64 / 1e6,
        breaker_open_ms: report.breaker_open_ns as f64 / 1e6,
        final_breaker_state: report.final_breaker_state().label(),
        retries: report.health.retries,
        failed_batches: report.failed_batches,
    }
}

fn main() {
    let clean_sc = scenario("clean", SEED).expect("catalog");
    let clean = run_scenario(&clean_sc).0;

    let faulted_sc = scenario("fault-burst", SEED).expect("catalog");
    let resilient = run_scenario(&faulted_sc).0;

    // The naive baseline: identical load and faults, but one attempt per
    // batch, a breaker that cannot trip, and brownout parked at the edge
    // of its range — the runtime keeps dispatching into the outage.
    let mut naive_sc = faulted_sc.clone();
    naive_sc.serve = naive_sc
        .serve
        .with_retry(RetryPolicy::new().with_max_attempts(1))
        .with_breaker(BreakerConfig::new().with_failure_threshold(u32::MAX))
        .with_brownout(BrownoutConfig::new().with_enter_pressure(1.0));
    let naive = run_scenario(&naive_sc).0;

    let window = clean_sc.arrivals.duration_ns;
    let report = Report {
        scenario_seed: SEED,
        clean: stats(&clean, window),
        faulted_resilient: stats(&resilient, window),
        faulted_naive: stats(&naive, window),
        futile_dispatch_ratio: naive.failed_batches as f64 / resilient.failed_batches.max(1) as f64,
        slo_served_fraction: 0.90,
    };

    println!(
        "clean:     {}/{} served ({:.1}%), p99 {:.3} ms",
        report.clean.served_within_deadline,
        report.clean.offered,
        report.clean.served_fraction * 100.0,
        report.clean.p99_latency_ms
    );
    println!(
        "resilient: {}/{} served ({:.1}%), p99 {:.3} ms, breaker open {:.1} ms -> {}",
        report.faulted_resilient.served_within_deadline,
        report.faulted_resilient.offered,
        report.faulted_resilient.served_fraction * 100.0,
        report.faulted_resilient.p99_latency_ms,
        report.faulted_resilient.breaker_open_ms,
        report.faulted_resilient.final_breaker_state
    );
    println!(
        "naive:     {}/{} served ({:.1}%), p99 {:.3} ms, {} failed dispatches",
        report.faulted_naive.served_within_deadline,
        report.faulted_naive.offered,
        report.faulted_naive.served_fraction * 100.0,
        report.faulted_naive.p99_latency_ms,
        report.faulted_naive.failed_batches
    );
    println!(
        "breaker cuts futile dispatches {:.1}x ({} -> {})",
        report.futile_dispatch_ratio,
        report.faulted_naive.failed_batches,
        report.faulted_resilient.failed_batches
    );

    assert!(
        report.clean.served_fraction > 0.99,
        "clean run must serve everything"
    );
    assert!(
        report.faulted_resilient.served_fraction >= report.slo_served_fraction,
        "fault-burst SLO violated: {:.3} < {:.2}",
        report.faulted_resilient.served_fraction,
        report.slo_served_fraction
    );
    assert_eq!(
        resilient.final_breaker_state(),
        BreakerState::Closed,
        "breaker must re-close after the fault window"
    );
    assert!(
        report.futile_dispatch_ratio > 2.0,
        "the breaker must substantially reduce futile dispatches \
         ({} naive vs {} resilient)",
        report.faulted_naive.failed_batches,
        report.faulted_resilient.failed_batches
    );

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_serve.json", json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
