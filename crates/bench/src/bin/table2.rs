//! Regenerates **Table 2**: sequential vs IOS-optimized inference latency at
//! batch size 1 for the four candidate models, on the simulated RTX A5500.
//!
//! Usage: `cargo run --release -p dcd-bench --bin table2`
//!
//! Paper reference (ms): 0.512→0.268, 0.419→0.379, 0.295→0.236, 0.562→0.427.
//! Expected shape: optimized < sequential for every model, magnitudes in the
//! tenths of a millisecond. (Known deviation: the paper reports SPP-Net #2,
//! the largest FC, as the *fastest* model; a roofline device model cannot
//! reproduce that inversion — see EXPERIMENTS.md.)

use dcd_bench::print_table;
use dcd_core::{Pipeline, PipelineConfig};
use dcd_nn::SppNetConfig;

fn main() {
    let pipeline = Pipeline::new(PipelineConfig::default());
    let paper = [
        (0.512, 0.268),
        (0.419, 0.379),
        (0.295, 0.236),
        (0.562, 0.427),
    ];
    let mut rows = Vec::new();
    for ((name, cfg), (p_seq, p_opt)) in SppNetConfig::table1().into_iter().zip(paper) {
        let (seq_ms, opt_ms, schedule) = pipeline.benchmark(&cfg);
        rows.push(vec![
            name.to_string(),
            format!("{seq_ms:.3} ms"),
            format!("{opt_ms:.3} ms"),
            format!("{:.2}x", seq_ms / opt_ms),
            format!("{p_seq:.3} ms"),
            format!("{p_opt:.3} ms"),
            format!("{}", schedule.num_stages()),
        ]);
    }
    print_table(
        "Table 2: inference latency for the candidate models (batch 1)",
        &[
            "Model",
            "Sequential",
            "Optimized",
            "Speedup",
            "Seq (paper)",
            "Opt (paper)",
            "IOS stages",
        ],
        &rows,
    );
}
