//! Ablation of the scheduling design choices called out in DESIGN.md:
//!
//! 1. scheduler family — sequential (one op per stage) vs greedy wavefronts
//!    (Nimble-like) vs the IOS dynamic program, across the Table 1 models;
//! 2. IOS pruning — sensitivity of schedule quality to `max_groups` and
//!    `max_group_len`.
//!
//! Usage: `cargo run --release -p dcd-bench --bin ablation`
//!
//! Expected shape: IOS ≤ greedy ≤ sequential everywhere; chain grouping
//! (group length > 1) is where most of the win over greedy comes from,
//! because it removes stage barriers on the conv backbone.

use dcd_bench::print_table;
use dcd_gpusim::DeviceSpec;
use dcd_ios::{
    branched_graph, greedy_schedule, ios_schedule, lower_sppnet, measure_latency,
    sequential_schedule, IosOptions, StageCostModel,
};
use dcd_nn::SppNetConfig;

fn main() {
    let device = DeviceSpec::rtx_a5500();

    // Part 1: scheduler families across the four models, batch 1.
    let mut rows = Vec::new();
    for (name, cfg) in SppNetConfig::table1() {
        let graph = lower_sppnet(&cfg, (100, 100));
        let seq = sequential_schedule(&graph);
        let greedy = greedy_schedule(&graph);
        let mut cost = StageCostModel::new(&graph, device.clone(), 1);
        let ios = ios_schedule(&graph, &mut cost, IosOptions::default());
        let t_seq = measure_latency(&graph, &seq, 1, &device, 2, 5);
        let t_greedy = measure_latency(&graph, &greedy, 1, &device, 2, 5);
        let t_ios = measure_latency(&graph, &ios, 1, &device, 2, 5);
        rows.push(vec![
            name.to_string(),
            format!("{:.3} ms ({} st)", t_seq.mean_ms(), seq.num_stages()),
            format!("{:.3} ms ({} st)", t_greedy.mean_ms(), greedy.num_stages()),
            format!("{:.3} ms ({} st)", t_ios.mean_ms(), ios.num_stages()),
            format!("{:.2}x", t_seq.mean_ns / t_ios.mean_ns),
        ]);
    }
    print_table(
        "Ablation 1: scheduler family (batch 1)",
        &[
            "Model",
            "Sequential",
            "Greedy (Nimble-like)",
            "IOS DP",
            "IOS speedup",
        ],
        &rows,
    );

    // Part 2: DP pruning sensitivity on SPP-Net #2.
    let cfg = SppNetConfig::candidate2();
    let graph = lower_sppnet(&cfg, (100, 100));
    let mut rows2 = Vec::new();
    for (mg, mgl) in [(1, 1), (1, 6), (2, 2), (4, 2), (4, 6), (4, 12)] {
        let mut cost = StageCostModel::new(&graph, device.clone(), 1);
        let opts = IosOptions::new()
            .with_max_groups(mg)
            .with_max_group_len(mgl);
        let s = ios_schedule(&graph, &mut cost, opts);
        let t = measure_latency(&graph, &s, 1, &device, 2, 5);
        rows2.push(vec![
            format!("groups≤{mg}, chain≤{mgl}"),
            format!("{:.3} ms", t.mean_ms()),
            s.num_stages().to_string(),
            cost.profiled_stages().to_string(),
        ]);
    }
    print_table(
        "Ablation 2: IOS pruning sensitivity (SPP-Net #2, batch 1)",
        &["Pruning", "Latency", "Stages", "Stages profiled by DP"],
        &rows2,
    );
    println!("\nnote: groups≤1/chain≤1 degenerates to the sequential baseline;");
    println!("      groups≤1/chain≤6 isolates the chain-grouping (barrier-removal) win;");
    println!("      wider settings add branch parallelism on the SPP pyramid and heads.");

    // Part 3: what the schedules do to the device timeline (occupancy and
    // kernel concurrency), via the profiler's timeline view.
    use dcd_ios::Executor;
    use dcd_profiler::ProfileReport;
    let mut rows3 = Vec::new();
    for (label, schedule) in [
        ("sequential", sequential_schedule(&graph)),
        ("greedy", greedy_schedule(&graph)),
        ("ios", {
            let mut cost = StageCostModel::new(&graph, device.clone(), 8);
            ios_schedule(&graph, &mut cost, IosOptions::default())
        }),
    ] {
        let mut exec = Executor::new(&graph, schedule, 8, device.clone());
        exec.run_inference();
        let trace = exec.into_trace();
        let report = ProfileReport::from_trace(&trace);
        let t = report.timeline().expect("kernels ran");
        rows3.push(vec![
            label.to_string(),
            format!("{:.1}%", 100.0 * t.occupancy),
            format!("{:.2}", t.parallelism),
            t.per_stream_ns.len().to_string(),
        ]);
    }
    print_table(
        "Ablation 3: device-timeline effect of the schedule (SPP-Net #2, batch 8)",
        &[
            "Schedule",
            "Kernel occupancy",
            "Mean concurrency",
            "Streams used",
        ],
        &rows3,
    );
    println!("\nnote: occupancy = fraction of the kernel span covered by ≥1 kernel (barrier");
    println!("      gaps lower it); concurrency = mean kernels in flight while busy.");

    // Part 4: stage synchronization mechanism — device-wide barriers (our
    // default executor) vs cudaEvent chaining (what the real IOS runtime
    // does): events avoid draining the device pipeline between stages.
    let mut rows4 = Vec::new();
    for batch in [1usize, 8, 32] {
        let mut cost = StageCostModel::new(&graph, device.clone(), batch);
        let s = ios_schedule(&graph, &mut cost, IosOptions::default());
        let mut b = Executor::new(&graph, s.clone(), batch, device.clone());
        let t_barrier = b.run_many(1, 3).mean_ns;
        let mut e = Executor::new(&graph, s, batch, device.clone());
        let t_events = e.run_many_events(1, 3).mean_ns;
        rows4.push(vec![
            batch.to_string(),
            format!("{:.3} ms", t_barrier / 1e6),
            format!("{:.3} ms", t_events / 1e6),
            format!("{:.1}%", 100.0 * (1.0 - t_events / t_barrier)),
        ]);
    }
    print_table(
        "Ablation 4: stage sync mechanism (IOS schedule, SPP-Net #2)",
        &["Batch", "Device barriers", "Event chaining", "Event gain"],
        &rows4,
    );

    // Part 5: the same three schedulers on an Inception-style wide graph —
    // the regime IOS was designed for, where branch parallelism (not chain
    // grouping) carries the win.
    let wide = branched_graph(6, (64, 32, 32), 64);
    let mut rows5 = Vec::new();
    for batch in [1usize, 8] {
        let seq = sequential_schedule(&wide);
        let greedy = greedy_schedule(&wide);
        let mut cost = StageCostModel::new(&wide, device.clone(), batch);
        let ios = ios_schedule(&wide, &mut cost, IosOptions::default());
        let t_seq = measure_latency(&wide, &seq, batch, &device, 1, 3);
        let t_greedy = measure_latency(&wide, &greedy, batch, &device, 1, 3);
        let t_ios = measure_latency(&wide, &ios, batch, &device, 1, 3);
        rows5.push(vec![
            batch.to_string(),
            format!("{:.3} ms", t_seq.mean_ms()),
            format!("{:.3} ms", t_greedy.mean_ms()),
            format!("{:.3} ms", t_ios.mean_ms()),
            format!("{:.2}x", t_seq.mean_ns / t_ios.mean_ns),
        ]);
    }
    print_table(
        "Ablation 5: 6-branch Inception-style block (branch-parallel regime)",
        &["Batch", "Sequential", "Greedy", "IOS DP", "IOS speedup"],
        &rows5,
    );
}
