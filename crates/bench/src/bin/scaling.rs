//! Extension experiment: multi-GPU data-parallel inference scaling
//! (the paper's stated future work, §4.1, toward HIOS §8.3).
//!
//! Usage: `cargo run --release -p dcd-bench --bin scaling`
//!
//! Expected shape: near-linear throughput scaling with independent host
//! threads; a single shared host thread loses efficiency to dispatch
//! serialization as GPU count grows — the motivation for hierarchical
//! (inter-GPU) scheduling.

use dcd_bench::print_table;
use dcd_gpusim::DeviceSpec;
use dcd_ios::{
    ios_schedule, lower_sppnet, measure_cluster, ClusterConfig, IosOptions, StageCostModel,
};
use dcd_nn::SppNetConfig;

fn main() {
    let cfg = SppNetConfig::candidate2();
    let graph = lower_sppnet(&cfg, (100, 100));
    let spec = DeviceSpec::rtx_a5500();
    let batch_total = 128;
    let mut cost = StageCostModel::new(&graph, spec.clone(), batch_total);
    let schedule = ios_schedule(&graph, &mut cost, IosOptions::default());
    println!(
        "model: SPP-Net #2, batch {batch_total} images split across the cluster, IOS schedule per GPU"
    );

    let mut rows = Vec::new();
    for n in [1usize, 2, 4, 8] {
        for shared in [false, true] {
            let stats = measure_cluster(
                &graph,
                &schedule,
                batch_total,
                &spec,
                ClusterConfig {
                    n_gpus: n,
                    shared_host: shared,
                },
                1,
                3,
            );
            rows.push(vec![
                n.to_string(),
                if shared { "shared" } else { "per-GPU" }.to_string(),
                format!("{:.3} ms", stats.latency_ns / 1e6),
                format!("{:.0} img/s", stats.throughput),
                format!("{:.1}%", 100.0 * stats.scaling_efficiency),
            ]);
        }
    }
    print_table(
        "Extension: data-parallel inference scaling (simulated A5500 cluster)",
        &[
            "GPUs",
            "Host model",
            "Round latency",
            "Throughput",
            "Scaling eff.",
        ],
        &rows,
    );
    println!("\nnote: 'scaling eff.' is against n × a single GPU at the same per-GPU slice;");
    println!("      the shared-host column shows the dispatch-serialization cost HIOS-style");
    println!("      hierarchical scheduling exists to hide.");

    // Part 2: HIOS-lite inter-GPU *operator* parallelism on SPP-Net.
    use dcd_ios::{HiosExecutor, Placement};
    let mut rows2 = Vec::new();
    for batch in [1usize, 16, 64] {
        let mut cost = StageCostModel::new(&graph, spec.clone(), batch);
        let s = ios_schedule(&graph, &mut cost, IosOptions::default());
        let one = HiosExecutor::new(
            &graph,
            s.clone(),
            batch,
            spec.clone(),
            2,
            Placement::SingleGpu,
        )
        .measure(1, 3);
        let spread = HiosExecutor::new(&graph, s, batch, spec.clone(), 2, Placement::RoundRobin)
            .measure(1, 3);
        rows2.push(vec![
            batch.to_string(),
            format!("{:.3} ms", one / 1e6),
            format!("{:.3} ms", spread / 1e6),
            if spread < one {
                "spread wins"
            } else {
                "single-GPU wins"
            }
            .to_string(),
        ]);
    }
    print_table(
        "Extension: HIOS-lite operator placement across 2 GPUs (SPP-Net #2)",
        &["Batch", "All on GPU0", "Round-robin spread", "Verdict"],
        &rows2,
    );
    println!("\nnote: SPP-Net's branches are small, so blind inter-GPU spreading pays PCIe");
    println!("      transfer costs it cannot amortize — the regime observation that makes");
    println!("      HIOS place chains locally and spread only heavy independent branches.");
}
