//! Parallel-vs-sequential kernel microbenchmark for the rayon shim's pool.
//!
//! Times the paper's hot kernels (GEMM and conv2d, the two dominating
//! inference cost in Table 3) with the thread pool engaged and with every
//! parallel call forced inline, and records the speedups in
//! `BENCH_parallel.json`. On a machine with ≥4 hardware threads the
//! parallel GEMM/conv runs are expected to be ≥2× faster; on a single-core
//! box the pool has no workers and the ratio is ~1.
//!
//! Usage: `cargo run --release -p dcd-bench --bin parallel`

use dcd_tensor::{conv2d, gemm, SeededRng, Tensor};
use rayon::prelude::*;
use serde::Serialize;
use std::time::Instant;

/// One kernel's timings, milliseconds (best of `REPS` runs).
#[derive(Debug, Serialize)]
struct KernelTiming {
    name: String,
    sequential_ms: f64,
    parallel_ms: f64,
    speedup: f64,
}

/// The recorded artifact.
#[derive(Debug, Serialize)]
struct Report {
    threads: usize,
    kernels: Vec<KernelTiming>,
}

const REPS: usize = 5;

/// Best-of-REPS wall-clock of `f`, milliseconds.
fn best_ms(mut f: impl FnMut()) -> f64 {
    f(); // warm-up (first parallel call also spawns the pool)
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn time_kernel(name: &str, mut f: impl FnMut()) -> KernelTiming {
    let parallel_ms = best_ms(&mut f);
    let sequential_ms = rayon::force_sequential(|| best_ms(&mut f));
    KernelTiming {
        name: name.to_string(),
        sequential_ms,
        parallel_ms,
        speedup: sequential_ms / parallel_ms,
    }
}

fn main() {
    // Warm the pool with a real parallel call before reading its size or
    // timing anything: the recorded `threads` must reflect the workers that
    // actually served the timed runs, and the first timed iteration must
    // not pay thread-spawn cost.
    let warm: f32 = vec![1.0f32; 1 << 15].par_iter().map(|&v| v * 2.0).sum();
    std::hint::black_box(warm);
    let threads = rayon::current_num_threads();
    let mut rng = SeededRng::new(1);

    // Square GEMM at the workspace's fc-layer scale.
    let n = 256;
    let a: Vec<f32> = (0..n * n).map(|_| rng.normal()).collect();
    let b: Vec<f32> = (0..n * n).map(|_| rng.normal()).collect();
    let g = time_kernel("gemm_256", || {
        std::hint::black_box(gemm(&a, &b, n, n, n));
    });

    // The paper's conv2 (64→128 channels on the post-pool1 map), batch 8 so
    // the per-sample split has work to spread.
    let x = Tensor::randn([8, 64, 50, 50], 0.0, 1.0, &mut rng);
    let w = Tensor::randn([128, 64, 3, 3], 0.0, 0.1, &mut rng);
    let bias = Tensor::zeros([128]);
    let c = time_kernel("conv2_64to128_50x50_b8", || {
        std::hint::black_box(conv2d(&x, &w, &bias, 1, 1));
    });

    let report = Report {
        threads,
        kernels: vec![g, c],
    };
    println!("pool threads: {threads}");
    for k in &report.kernels {
        println!(
            "{:26} seq {:8.2} ms   par {:8.2} ms   speedup {:.2}x",
            k.name, k.sequential_ms, k.parallel_ms, k.speedup
        );
    }
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_parallel.json", json).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");
}
