//! Regenerates **Table 3**: GPU kernel time shares by operator class
//! (Matrix Multiplication / Pooling / Conv) across batch sizes.
//!
//! Usage: `cargo run --release -p dcd-bench --bin table3`
//!
//! Paper reference (matmul/pool/conv %): batch 1 → 41.6/14.1/7.7; batch 64 →
//! 7.4/8.6/77.2. Expected shape: GEMM dominates at batch 1 (the FC layer is
//! memory-bound, streaming its whole weight matrix per inference) and fades
//! as batch grows; convolution scales with batch and dominates at 64;
//! pooling stays comparatively stable.

use dcd_bench::print_table;
use dcd_core::profile_batch_sweep;
use dcd_gpusim::DeviceSpec;
use dcd_nn::SppNetConfig;

fn main() {
    let profiles = profile_batch_sweep(
        &SppNetConfig::candidate2(),
        (100, 100),
        &DeviceSpec::rtx_a5500(),
        &[1, 2, 4, 8, 16, 32, 64],
        20,
    );
    let paper: [(f64, f64, f64); 7] = [
        (41.6, 14.1, 7.7),
        (34.8, 14.4, 9.7),
        (39.9, 13.5, 9.5),
        (34.8, 13.7, 10.0),
        (18.1, 17.1, 16.6),
        (15.7, 14.7, 13.4),
        (7.4, 8.6, 77.2),
    ];
    let mut rows = Vec::new();
    for (p, (pm, pp, pc)) in profiles.iter().zip(paper) {
        rows.push(vec![
            p.batch.to_string(),
            format!("{:.1}", p.gemm_pct),
            format!("{:.1}", p.pool_pct),
            format!("{:.1}", p.conv_pct),
            format!("{pm:.1}/{pp:.1}/{pc:.1}"),
        ]);
    }
    print_table(
        "Table 3: GPU kernel profiling for different batch sizes (% of kernel time)",
        &[
            "Batch",
            "MatMul %",
            "Pool %",
            "Conv %",
            "paper (mm/pool/conv)",
        ],
        &rows,
    );
    let first = &profiles[0];
    let last = profiles.last().unwrap();
    println!(
        "\nshape check: gemm {:.1}% → {:.1}% (falling), conv {:.1}% → {:.1}% (rising to dominance)",
        first.gemm_pct, last.gemm_pct, first.conv_pct, last.conv_pct
    );
}
