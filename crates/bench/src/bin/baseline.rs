//! Regenerates the **§8.1 baseline comparison**: the two-stage `rcnn-lite`
//! detector vs the single-shot SPP-Net on the same dataset.
//!
//! Usage: `cargo run --release -p dcd-bench --bin baseline [--quick|--full]`
//!
//! Paper reference (Li et al., §8.1): a Faster R-CNN with ResNet-50 reaches
//! accuracy 0.882 / IoU 0.668 on the same watershed — competitive accuracy
//! from a much heavier two-stage pipeline. Expected shape here: rcnn-lite is
//! in the same accuracy regime as SPP-Net while evaluating `grid²` CNN
//! forward passes per image instead of one.

use dcd_bench::{build_dataset, paper_train_config, print_table, Effort};
use dcd_core::{RcnnLite, RcnnLiteConfig};
use dcd_nn::metrics::iou;
use dcd_nn::trainer::evaluate;
use dcd_nn::{SppNet, SppNetConfig, Trainer};
use dcd_tensor::SeededRng;

fn main() {
    let effort = Effort::from_args();
    println!("effort: {effort:?}");
    let dataset = build_dataset(effort, 2022);
    println!(
        "dataset: {} train / {} test patches",
        dataset.train.len(),
        dataset.test.len()
    );

    // Single-shot SPP-Net.
    let cfg = effort.scale_config(&SppNetConfig::candidate2());
    let mut rng = SeededRng::new(7);
    let mut sppnet = SppNet::new(cfg, &mut rng);
    Trainer::new(paper_train_config(effort)).train(&mut sppnet, &dataset.train);
    let (spp_ap, _) = evaluate(&mut sppnet, &dataset.test, 0.5);

    // Two-stage rcnn-lite.
    let mut bl_cfg = RcnnLiteConfig::for_patch(effort.patch_size());
    bl_cfg.train = paper_train_config(effort);
    let mut baseline = RcnnLite::train(&dataset.train, bl_cfg, 7);
    let (bl_ap, _) = baseline.evaluate(&dataset.test, 0.3);

    // Mean IoU of baseline detections on positive patches (the §8.1 metric).
    let mut iou_sum = 0.0f32;
    let mut n_pos = 0usize;
    for s in &dataset.test {
        if let Some(gt) = s.label {
            let d = baseline.detect(&s.image);
            iou_sum += iou(&d.bbox, &gt);
            n_pos += 1;
        }
    }
    let mean_iou = if n_pos > 0 {
        iou_sum / n_pos as f32
    } else {
        0.0
    };

    print_table(
        "§8.1: single-shot SPP-Net vs two-stage rcnn-lite",
        &[
            "Detector",
            "AP",
            "CNN passes / image",
            "mean IoU (positives)",
        ],
        &[
            vec![
                "SPP-Net #2 (ours)".into(),
                format!("{:.3}", spp_ap),
                "1".into(),
                "-".into(),
            ],
            vec![
                "rcnn-lite (two-stage)".into(),
                format!("{:.3}", bl_ap),
                baseline.proposals_per_image().to_string(),
                format!("{mean_iou:.3}"),
            ],
        ],
    );
    println!("\npaper reference for the two-stage comparator: accuracy 0.882, IoU 0.668");
    println!(
        "shape check: two-stage costs {}x more CNN invocations per image",
        baseline.proposals_per_image()
    );
}
