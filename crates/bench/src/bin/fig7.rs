//! Regenerates **Fig 7**: GPU memops timing across batch sizes, plus the
//! §7.1 memory-capacity observation.
//!
//! Usage: `cargo run --release -p dcd-bench --bin fig7`
//!
//! Paper reference: the memops timing decreases with batch size and
//! stabilizes at 19168 ns from batch 16 on; GPU memory stays far below the
//! A5500's 24 GB even at batch 64.

use dcd_bench::print_table;
use dcd_core::profile_batch_sweep;
use dcd_gpusim::DeviceSpec;
use dcd_nn::SppNetConfig;

fn main() {
    let device = DeviceSpec::rtx_a5500();
    let profiles = profile_batch_sweep(
        &SppNetConfig::candidate2(),
        (100, 100),
        &device,
        &[1, 2, 4, 8, 16, 32, 64],
        20,
    );
    let mut rows = Vec::new();
    for p in &profiles {
        rows.push(vec![
            p.batch.to_string(),
            format!("{:.0} ns", p.memops_per_image_ns),
            format!("{:.1} MB", p.mem_used_bytes as f64 / 1e6),
            format!(
                "{:.2}%",
                100.0 * p.mem_used_bytes as f64 / device.mem_capacity as f64
            ),
        ]);
    }
    print_table(
        "Fig 7: GPU memops timing and memory usage vs batch size",
        &["Batch", "Memops / image", "GPU memory", "of 24 GB"],
        &rows,
    );
    let stable = &profiles[profiles.len() - 3..];
    let spread = stable
        .iter()
        .map(|p| p.memops_per_image_ns)
        .fold(f64::NEG_INFINITY, f64::max)
        / stable
            .iter()
            .map(|p| p.memops_per_image_ns)
            .fold(f64::INFINITY, f64::min);
    println!(
        "\nstabilized value (batch ≥ 16): ≈{:.0} ns (paper: 19168 ns); spread {:.1}%",
        stable.last().unwrap().memops_per_image_ns,
        100.0 * (spread - 1.0)
    );
}
