//! # dcd-bench
//!
//! Harnesses that regenerate every table and figure of the paper's
//! evaluation (§6–§7). Each `bin` target prints one artifact next to the
//! paper's reference values:
//!
//! | target    | artifact | content |
//! |-----------|----------|---------|
//! | `table1`  | Table 1  | AP of the four SPP-Net configurations |
//! | `table2`  | Table 2  | sequential vs IOS-optimized latency, batch 1 |
//! | `fig6`    | Fig 6    | inference efficiency vs batch size |
//! | `fig7`    | Fig 7    | GPU memops timing vs batch size |
//! | `fig8`    | Fig 8    | CUDA API usage shares vs batch size |
//! | `table3`  | Table 3  | kernel-class time shares vs batch size |
//! | `baseline`| §8.1     | rcnn-lite two-stage comparator |
//! | `ablation`| DESIGN.md| scheduler families, DP pruning, timeline, event-sync |
//! | `scaling` | extension| multi-GPU data parallelism + HIOS-lite placement |
//!
//! Criterion benches (`cargo bench`) measure the real wall-clock cost of the
//! Rust kernels, the IOS dynamic program and the simulator itself.

use dcd_geodata::{DatasetConfig, PatchDataset};
use dcd_nn::{Sgd, SppNetConfig, TrainConfig};

/// Effort level for accuracy experiments (training is CPU-bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Tiny models/dataset — smoke-test the harness in seconds.
    Quick,
    /// Reduced widths — minutes, demonstrates the Table 1 ordering.
    Standard,
    /// Paper-sized widths — tens of minutes on CPU.
    Full,
}

impl Effort {
    /// Parses `--quick` / `--full` from argv (default [`Effort::Standard`]).
    pub fn from_args() -> Effort {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            Effort::Quick
        } else if args.iter().any(|a| a == "--full") {
            Effort::Full
        } else {
            Effort::Standard
        }
    }

    /// Conv channel widths for this effort (paper: `[64, 128, 256]`).
    pub fn channels(&self) -> [usize; 3] {
        match self {
            Effort::Quick => [8, 16, 16],
            Effort::Standard => [16, 32, 48],
            Effort::Full => [64, 128, 256],
        }
    }

    /// Patch size for this effort (paper: 100).
    pub fn patch_size(&self) -> usize {
        match self {
            Effort::Quick => 48,
            Effort::Standard => 64,
            Effort::Full => 100,
        }
    }

    /// Training epochs.
    pub fn epochs(&self) -> usize {
        match self {
            Effort::Quick => 12,
            Effort::Standard => 25,
            Effort::Full => 40,
        }
    }

    /// Learning rate: the paper's 0.005 at full width; the narrow scaled
    /// models tolerate (and need) a larger step to converge in few epochs.
    pub fn learning_rate(&self) -> f32 {
        match self {
            Effort::Quick | Effort::Standard => 0.015,
            Effort::Full => 0.005,
        }
    }

    /// Scene edge length (larger scene → more crossings → more samples).
    pub fn scene_size(&self) -> usize {
        match self {
            Effort::Quick => 384,
            Effort::Standard => 640,
            Effort::Full => 1024,
        }
    }

    /// Adapts a paper configuration to this effort's widths/bands, keeping
    /// the searched axes (conv1 kernel, SPP level, FC width) untouched so
    /// candidate *ordering* is preserved.
    pub fn scale_config(&self, cfg: &SppNetConfig) -> SppNetConfig {
        let mut scaled = cfg.clone();
        scaled.channels = self.channels();
        if *self != Effort::Full {
            // FC widths shrink proportionally (1024 → 128 etc.) to keep
            // training tractable while preserving relative size.
            scaled.fc1 = (cfg.fc1 / 8).max(32);
            scaled.fc2 = cfg.fc2.map(|f| (f / 8).max(32));
        }
        scaled
    }
}

/// The dataset used by accuracy experiments at an effort level.
pub fn build_dataset(effort: Effort, seed: u64) -> PatchDataset {
    let size = effort.scene_size();
    let config = DatasetConfig {
        scene: dcd_geodata::SceneConfig {
            dem: dcd_geodata::DemConfig {
                width: size,
                height: size,
                ..Default::default()
            },
            road_spacing: size / 6,
            stream_threshold: (size * size) as f32 / 650.0,
            ..Default::default()
        },
        patch_size: effort.patch_size(),
        negatives_per_positive: 1.0,
        // §3.2: the paper clips each sample so the crossing sits exactly at
        // the patch centre; 2 px of jitter keeps the box head honest without
        // changing the task.
        center_jitter: 2,
        ..Default::default()
    };
    PatchDataset::generate(&config, seed)
}

/// Training configuration matching the paper's §6.1 (SGD lr 0.005,
/// momentum 0.9, weight decay 0.0005, batch 20).
pub fn paper_train_config(effort: Effort) -> TrainConfig {
    TrainConfig {
        epochs: effort.epochs(),
        batch_size: 20,
        sgd: Sgd::new(effort.learning_rate(), 0.9, 0.0005),
        box_loss_weight: 1.0,
        shuffle_seed: 0,
        // Halve the rate twice over the run so the final model is a stable
        // optimum rather than a mid-oscillation snapshot.
        lr_decay_every: Some((effort.epochs() / 3).max(1)),
    }
}

/// Prints a fixed-width table with a header rule.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title}");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:>w$}", h, w = widths[i]))
        .collect();
    println!("{}", line.join("  "));
    println!("{}", "-".repeat(line.join("  ").len()));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        println!("{}", line.join("  "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_scaling_preserves_search_axes() {
        let cfg = SppNetConfig::candidate2();
        let scaled = Effort::Standard.scale_config(&cfg);
        assert_eq!(scaled.conv1_kernel, cfg.conv1_kernel);
        assert_eq!(scaled.spp_top_level, cfg.spp_top_level);
        assert!(scaled.fc1 < cfg.fc1);
        assert_eq!(scaled.channels, [16, 32, 48]);
    }

    #[test]
    fn full_effort_keeps_paper_widths() {
        let cfg = SppNetConfig::candidate3();
        let scaled = Effort::Full.scale_config(&cfg);
        assert_eq!(scaled.fc1, 2048);
        assert_eq!(scaled.channels, [64, 128, 256]);
    }

    #[test]
    fn quick_dataset_has_both_classes() {
        let ds = build_dataset(Effort::Quick, 3);
        assert!(ds.train.iter().any(|s| s.is_positive()));
        assert!(ds.train.iter().any(|s| !s.is_positive()));
        assert!(!ds.test.is_empty());
    }

    #[test]
    fn scaled_fc_ratios_preserved() {
        // 4096/2048 = 2 must survive scaling (ordering preservation).
        let c2 = Effort::Standard.scale_config(&SppNetConfig::candidate2());
        let c3 = Effort::Standard.scale_config(&SppNetConfig::candidate3());
        assert_eq!(c2.fc1, 2 * c3.fc1);
    }
}
