//! Property-based tests of the neural-network layer invariants.

use dcd_nn::layers::{Conv2d, Layer, Linear, MaxPool2d, Relu, SppLayer};
use dcd_nn::loss::{bce_with_logits, smooth_l1, softmax_cross_entropy};
use dcd_nn::metrics::{average_precision, iou};
use dcd_nn::{BBox, SppNet, SppNetConfig};
use dcd_tensor::{SeededRng, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn relu_output_nonnegative_and_idempotent(seed in 0u64..10_000, n in 1usize..64) {
        let mut rng = SeededRng::new(seed);
        let x = Tensor::randn([n], 0.0, 2.0, &mut rng);
        let mut relu = Relu::new();
        let y = relu.forward(&x);
        for &v in y.data() {
            prop_assert!(v >= 0.0);
        }
        let mut relu2 = Relu::new();
        prop_assert_eq!(relu2.forward(&y), y);
    }

    #[test]
    fn spp_output_length_is_input_size_invariant(
        h in 4usize..20, w in 4usize..20, c in 1usize..4, seed in 0u64..1_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let x = Tensor::randn([1, c, h, w], 0.0, 1.0, &mut rng);
        let mut spp = SppLayer::new([4, 2, 1]);
        let y = spp.forward(&x);
        prop_assert_eq!(y.dims(), &[1, c * 21]);
    }

    #[test]
    fn linear_is_affine(seed in 0u64..10_000, n in 1usize..6, m in 1usize..6) {
        // f(a+b) − f(b) == f(a) − f(0) for an affine map.
        let mut rng = SeededRng::new(seed);
        let mut lin = Linear::new(n, m, &mut rng);
        let a = Tensor::randn([1, n], 0.0, 1.0, &mut rng);
        let b = Tensor::randn([1, n], 0.0, 1.0, &mut rng);
        let zero = Tensor::zeros([1, n]);
        let lhs = lin.forward(&a.add(&b)).sub(&lin.forward(&b));
        let rhs = lin.forward(&a).sub(&lin.forward(&zero));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn maxpool_is_monotone(seed in 0u64..10_000, h in 2usize..10) {
        // x ≤ y elementwise ⇒ pool(x) ≤ pool(y).
        let mut rng = SeededRng::new(seed);
        let x = Tensor::randn([1, 1, h, h], 0.0, 1.0, &mut rng);
        let bump = Tensor::uniform([1, 1, h, h], 0.0, 1.0, &mut rng);
        let y = x.add(&bump);
        let mut p1 = MaxPool2d::new(2, 1);
        let mut p2 = MaxPool2d::new(2, 1);
        let px = p1.forward(&x);
        let py = p2.forward(&y);
        for (a, b) in px.data().iter().zip(py.data().iter()) {
            prop_assert!(a <= b);
        }
    }

    #[test]
    fn conv_zero_input_gives_bias_map(seed in 0u64..10_000) {
        let mut rng = SeededRng::new(seed);
        let mut conv = Conv2d::same(2, 3, 3, &mut rng);
        conv.bias.value = Tensor::from_vec([3], vec![0.5, -1.0, 2.0]).unwrap();
        let y = conv.forward(&Tensor::zeros([1, 2, 5, 5]));
        for co in 0..3 {
            for s in 0..25 {
                prop_assert_eq!(y.data()[co * 25 + s], conv.bias.value.data()[co]);
            }
        }
    }

    #[test]
    fn bce_loss_nonnegative_and_grad_bounded(
        seed in 0u64..10_000, n in 1usize..32,
    ) {
        let mut rng = SeededRng::new(seed);
        let logits = Tensor::randn([n], 0.0, 3.0, &mut rng);
        let target_vec: Vec<f32> = (0..n).map(|_| if rng.chance(0.5) { 1.0 } else { 0.0 }).collect();
        let targets = Tensor::from_vec([n], target_vec).unwrap();
        let (loss, grad) = bce_with_logits(&logits, &targets);
        prop_assert!(loss >= 0.0);
        for &g in grad.data() {
            prop_assert!(g.abs() <= 1.0 / n as f32 + 1e-6);
        }
    }

    #[test]
    fn smooth_l1_zero_at_target(seed in 0u64..10_000, n in 1usize..8) {
        let mut rng = SeededRng::new(seed);
        let target = Tensor::randn([n, 4], 0.0, 1.0, &mut rng);
        let mask = vec![1.0f32; n];
        let (loss, grad) = smooth_l1(&target, &target, &mask);
        prop_assert_eq!(loss, 0.0);
        prop_assert_eq!(grad.sq_norm(), 0.0);
    }

    #[test]
    fn cross_entropy_decreases_with_correct_logit(
        seed in 0u64..10_000, boost in 1f32..5.0,
    ) {
        let mut rng = SeededRng::new(seed);
        let logits = Tensor::randn([1, 4], 0.0, 1.0, &mut rng);
        let (l1, _) = softmax_cross_entropy(&logits, &[2]);
        let mut boosted = logits.clone();
        boosted.data_mut()[2] += boost;
        let (l2, _) = softmax_cross_entropy(&boosted, &[2]);
        prop_assert!(l2 < l1);
    }

    #[test]
    fn iou_bounded_and_symmetric(
        ax in 0f32..1.0, ay in 0f32..1.0, aw in 0.01f32..0.5, ah in 0.01f32..0.5,
        bx in 0f32..1.0, by in 0f32..1.0, bw in 0.01f32..0.5, bh in 0.01f32..0.5,
    ) {
        let a = BBox::new(ax, ay, aw, ah);
        let b = BBox::new(bx, by, bw, bh);
        let v = iou(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&v));
        prop_assert!((v - iou(&b, &a)).abs() < 1e-6);
    }

    #[test]
    fn ap_is_bounded_and_monotone_in_matches(
        n in 1usize..20, seed in 0u64..10_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let dets: Vec<(f32, bool)> = (0..n).map(|_| (rng.uniform(), rng.chance(0.5))).collect();
        let (ap, _) = average_precision(&dets, n);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&ap));
        // Turning every detection into a match can only raise AP.
        let all_hits: Vec<(f32, bool)> = dets.iter().map(|&(s, _)| (s, true)).collect();
        let (ap_all, _) = average_precision(&all_hits, n);
        prop_assert!(ap_all + 1e-6 >= ap);
    }

    #[test]
    fn model_forward_is_deterministic(seed in 0u64..1_000) {
        let mut rng = SeededRng::new(seed);
        let mut model = SppNet::new(SppNetConfig::tiny(), &mut rng);
        let x = Tensor::randn([1, 1, 16, 16], 0.0, 1.0, &mut rng);
        let a = model.forward(&x);
        let b = model.forward(&x);
        prop_assert_eq!(a.obj_logits.data(), b.obj_logits.data());
        prop_assert_eq!(a.boxes.data(), b.boxes.data());
    }
}
