//! The SPP-Net drainage-crossing detector (paper §2.2, §4.2, Table 1).
//!
//! Architecture (paper notation):
//!
//! ```text
//! C_{64,k,1} − P_{2,2} − C_{128,3,1} − P_{2,2} − C_{256,3,1} − P_{2,2}
//!   − SPP_{l,2,1} − F_{fc1} [− F_{fc2}] − {objectness logit, bbox}
//! ```
//!
//! The NAS axes of §4.2 are `k ∈ {1,3,5,7,9}` (first conv filter size),
//! `l ∈ {1..5}` (first SPP pyramid level) and the fully-connected sizes
//! `∈ {128, 256, 512, 1024, 2048, 4096, 8192}`.

use crate::detect::Detection;
use crate::layers::{Conv2d, Layer, Linear, MaxPool2d, Relu, SppLayer};
use crate::loss::sigmoid;
use crate::param::Param;
use crate::BBox;
use dcd_tensor::{
    adaptive_max_pool2d_values, conv2d_relu, gemm_bias, gemm_bias_relu, max_pool2d_values,
    SeededRng, Tensor,
};
use serde::{Deserialize, Serialize};

/// Sizes explored for the fully-connected layers (§4.2).
pub const FC_CHOICES: [usize; 7] = [128, 256, 512, 1024, 2048, 4096, 8192];
/// Filter sizes explored for the first convolution (§4.2).
pub const CONV1_KERNEL_CHOICES: [usize; 5] = [1, 3, 5, 7, 9];
/// Pyramid top levels explored for the SPP layer (§4.2).
pub const SPP_TOP_CHOICES: [usize; 5] = [1, 2, 3, 4, 5];

/// Hyper-parameters of one SPP-Net candidate.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SppNetConfig {
    /// Filter size of the first convolution (`k` above).
    pub conv1_kernel: usize,
    /// Top pyramid level of the SPP layer; the pyramid is the deduplicated
    /// descending sequence of `{top, 2, 1}` (e.g. 4 → `[4,2,1]`, 2 → `[2,1]`).
    pub spp_top_level: usize,
    /// First fully-connected layer width.
    pub fc1: usize,
    /// Optional second fully-connected layer width.
    pub fc2: Option<usize>,
    /// Input bands (4 for NAIP R,G,B,NIR).
    pub in_channels: usize,
    /// Channel widths of the three conv blocks (paper: `[64, 128, 256]`).
    pub channels: [usize; 3],
}

impl SppNetConfig {
    /// The paper's "Original SPP-Net" row of Table 1.
    pub fn original() -> Self {
        SppNetConfig {
            conv1_kernel: 3,
            spp_top_level: 4,
            fc1: 1024,
            fc2: None,
            in_channels: 4,
            channels: [64, 128, 256],
        }
    }

    /// Table 1, SPP-Net #1: first conv filter widened to 5.
    pub fn candidate1() -> Self {
        SppNetConfig {
            conv1_kernel: 5,
            ..Self::original()
        }
    }

    /// Table 1, SPP-Net #2: SPP top level 5, FC 4096 (the paper's final pick).
    pub fn candidate2() -> Self {
        SppNetConfig {
            spp_top_level: 5,
            fc1: 4096,
            ..Self::original()
        }
    }

    /// Table 1, SPP-Net #3: SPP top level 5, FC 2048 (best AP).
    pub fn candidate3() -> Self {
        SppNetConfig {
            spp_top_level: 5,
            fc1: 2048,
            ..Self::original()
        }
    }

    /// All four Table 1 rows in paper order, with their printed names.
    pub fn table1() -> Vec<(&'static str, SppNetConfig)> {
        vec![
            ("Original SPP-Net", Self::original()),
            ("SPP-Net # 1", Self::candidate1()),
            ("SPP-Net # 2", Self::candidate2()),
            ("SPP-Net # 3", Self::candidate3()),
        ]
    }

    /// A deliberately tiny configuration for unit tests.
    pub fn tiny() -> Self {
        SppNetConfig {
            conv1_kernel: 3,
            spp_top_level: 2,
            fc1: 32,
            fc2: None,
            in_channels: 1,
            channels: [4, 8, 8],
        }
    }

    /// SPP pyramid levels: deduplicated descending `{top, 2, 1}`.
    pub fn spp_levels(&self) -> Vec<usize> {
        let mut levels = vec![self.spp_top_level, 2, 1];
        levels.sort_unstable_by(|a, b| b.cmp(a));
        levels.dedup();
        levels
    }

    /// SPP output feature count (input to the first FC layer).
    pub fn spp_features(&self) -> usize {
        let bins: usize = self.spp_levels().iter().map(|l| l * l).sum();
        self.channels[2] * bins
    }

    /// The paper's compact architecture string (Table 1 notation).
    pub fn summary(&self) -> String {
        let [c1, c2, c3] = self.channels;
        let spp = self
            .spp_levels()
            .iter()
            .map(|l| l.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let mut s = format!(
            "C_{{{c1},{k},1}}-P_{{2,2}}-C_{{{c2},3,1}}-P_{{2,2}}-C_{{{c3},3,1}}-P_{{2,2}}-SPP_{{{spp}}}-F_{{{f}}}",
            k = self.conv1_kernel,
            f = self.fc1
        );
        if let Some(f2) = self.fc2 {
            s.push_str(&format!("-F_{{{f2}}}"));
        }
        s
    }
}

/// Output of one detection forward pass.
#[derive(Debug, Clone)]
pub struct DetectionOutput {
    /// Objectness logits, `[N]`.
    pub obj_logits: Tensor,
    /// Box regressions `[N, 4]` as `(cx, cy, w, h)`.
    pub boxes: Tensor,
}

/// The SPP-Net model: three conv blocks, an SPP layer and an FC trunk with
/// objectness + box heads.
pub struct SppNet {
    /// The hyper-parameters this instance was built from.
    pub config: SppNetConfig,
    conv1: Conv2d,
    relu1: Relu,
    pool1: MaxPool2d,
    conv2: Conv2d,
    relu2: Relu,
    pool2: MaxPool2d,
    conv3: Conv2d,
    relu3: Relu,
    pool3: MaxPool2d,
    spp: SppLayer,
    fc1: Linear,
    fc1_relu: Relu,
    fc2: Option<(Linear, Relu)>,
    head_obj: Linear,
    head_box: Linear,
}

impl SppNet {
    /// Builds a freshly initialized model.
    pub fn new(config: SppNetConfig, rng: &mut SeededRng) -> Self {
        let [c1, c2, c3] = config.channels;
        let spp = SppLayer::new(config.spp_levels());
        let spp_features = config.spp_features();
        let fc1 = Linear::new(spp_features, config.fc1, rng);
        let fc2 = config
            .fc2
            .map(|f2| (Linear::new(config.fc1, f2, rng), Relu::new()));
        let trunk_out = config.fc2.unwrap_or(config.fc1);
        // Box-head prior: start from a centred, culvert-sized box with
        // near-zero weights (the detectron-style regression-head init), so
        // the prediction stays anchored while the trunk reorganizes for
        // objectness and regression learns only the residual.
        let mut head_box = Linear::new(trunk_out, 4, rng);
        head_box.weight.value = Tensor::randn([trunk_out, 4], 0.0, 1e-3, rng);
        head_box.bias.value = Tensor::from_vec([4], vec![0.5, 0.5, 0.2, 0.2]).expect("prior");
        SppNet {
            conv1: Conv2d::same(config.in_channels, c1, config.conv1_kernel, rng),
            relu1: Relu::new(),
            pool1: MaxPool2d::new(2, 2),
            conv2: Conv2d::same(c1, c2, 3, rng),
            relu2: Relu::new(),
            pool2: MaxPool2d::new(2, 2),
            conv3: Conv2d::same(c2, c3, 3, rng),
            relu3: Relu::new(),
            pool3: MaxPool2d::new(2, 2),
            spp,
            fc1,
            fc1_relu: Relu::new(),
            fc2,
            head_obj: Linear::new(trunk_out, 1, rng),
            head_box,
            config,
        }
    }

    /// Forward pass producing objectness logits and box regressions.
    pub fn forward(&mut self, x: &Tensor) -> DetectionOutput {
        let _span = dcd_obs::span("sppnet.forward", dcd_obs::Category::Nn);
        let n = x.dims()[0];
        let mut cur = self.conv1.forward(x);
        cur = self.relu1.forward(&cur);
        cur = self.pool1.forward(&cur);
        cur = self.conv2.forward(&cur);
        cur = self.relu2.forward(&cur);
        cur = self.pool2.forward(&cur);
        cur = self.conv3.forward(&cur);
        cur = self.relu3.forward(&cur);
        cur = self.pool3.forward(&cur);
        cur = self.spp.forward(&cur);
        cur = self.fc1.forward(&cur);
        cur = self.fc1_relu.forward(&cur);
        if let Some((fc2, relu)) = &mut self.fc2 {
            cur = fc2.forward(&cur);
            cur = relu.forward(&cur);
        }
        let obj = self.head_obj.forward(&cur).reshape([n]);
        let boxes = self.head_box.forward(&cur);
        DetectionOutput {
            obj_logits: obj,
            boxes,
        }
    }

    /// Backward pass from head gradients; returns `d loss / d input`.
    pub fn backward(&mut self, grad_obj: &Tensor, grad_box: &Tensor) -> Tensor {
        let n = grad_obj.dims()[0];
        let g_obj = self.head_obj.backward(&grad_obj.clone().reshape([n, 1]));
        let g_box = self.head_box.backward(grad_box);
        let mut cur = g_obj.add(&g_box);
        if let Some((fc2, relu)) = &mut self.fc2 {
            cur = relu.backward(&cur);
            cur = fc2.backward(&cur);
        }
        cur = self.fc1_relu.backward(&cur);
        cur = self.fc1.backward(&cur);
        cur = self.spp.backward(&cur);
        cur = self.pool3.backward(&cur);
        cur = self.relu3.backward(&cur);
        cur = self.conv3.backward(&cur);
        cur = self.pool2.backward(&cur);
        cur = self.relu2.backward(&cur);
        cur = self.conv2.backward(&cur);
        cur = self.pool1.backward(&cur);
        cur = self.relu1.backward(&cur);
        self.conv1.backward(&cur)
    }

    /// All trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = Vec::new();
        params.extend(self.conv1.params_mut());
        params.extend(self.conv2.params_mut());
        params.extend(self.conv3.params_mut());
        params.extend(self.fc1.params_mut());
        if let Some((fc2, _)) = &mut self.fc2 {
            params.extend(fc2.params_mut());
        }
        params.extend(self.head_obj.params_mut());
        params.extend(self.head_box.params_mut());
        params
    }

    /// Total scalar parameter count.
    pub fn num_params(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.numel()).sum()
    }

    /// Inference-only forward pass.
    ///
    /// Uses the fused kernels — `conv+bias+ReLU` in one GEMM epilogue,
    /// values-only pooling (no argmax bookkeeping), `Linear+ReLU` in one
    /// pass — and caches nothing, so it needs only `&self` and allocates no
    /// backward state. Numerically identical to [`SppNet::forward`]: the
    /// fused ReLU yields `+0.0` where the mask path yields `-0.0`, which no
    /// downstream comparison, sum or sigmoid can distinguish.
    pub fn forward_inference(&self, x: &Tensor) -> DetectionOutput {
        let _span = dcd_obs::span("sppnet.forward_inference", dcd_obs::Category::Nn);
        let n = x.dims()[0];
        let conv = |layer: &Conv2d, x: &Tensor| {
            conv2d_relu(
                x,
                &layer.weight.value,
                &layer.bias.value,
                layer.stride,
                layer.pad,
            )
        };
        let mut cur = conv(&self.conv1, x);
        cur = max_pool2d_values(&cur, self.pool1.kernel, self.pool1.stride);
        cur = conv(&self.conv2, &cur);
        cur = max_pool2d_values(&cur, self.pool2.kernel, self.pool2.stride);
        cur = conv(&self.conv3, &cur);
        cur = max_pool2d_values(&cur, self.pool3.kernel, self.pool3.stride);
        // SPP pyramid, values only.
        let mut parts = Vec::with_capacity(self.spp.levels.len());
        for &level in &self.spp.levels {
            let y = adaptive_max_pool2d_values(&cur, level);
            let f = y.numel() / n;
            parts.push(y.reshape([n, f]));
        }
        let refs: Vec<&Tensor> = parts.iter().collect();
        cur = Tensor::concat(&refs, 1);
        // FC trunk with the bias+ReLU epilogue fused into the GEMM.
        let fc_relu = |l: &Linear, x: &Tensor| {
            let (m, k) = x.shape().matrix();
            let nf = l.out_features();
            let y = gemm_bias_relu(
                x.data(),
                l.weight.value.data(),
                l.bias.value.data(),
                m,
                k,
                nf,
            );
            Tensor::from_vec([m, nf], y).expect("fc output")
        };
        cur = fc_relu(&self.fc1, &cur);
        if let Some((fc2, _)) = &self.fc2 {
            cur = fc_relu(fc2, &cur);
        }
        let head = |l: &Linear, x: &Tensor| {
            let (m, k) = x.shape().matrix();
            let nf = l.out_features();
            let y = gemm_bias(
                x.data(),
                l.weight.value.data(),
                l.bias.value.data(),
                m,
                k,
                nf,
            );
            Tensor::from_vec([m, nf], y).expect("head output")
        };
        let obj = head(&self.head_obj, &cur).reshape([n]);
        let boxes = head(&self.head_box, &cur);
        DetectionOutput {
            obj_logits: obj,
            boxes,
        }
    }

    /// Runs inference on a batch and decodes per-image detections.
    pub fn predict(&mut self, x: &Tensor) -> Vec<Detection> {
        let out = self.forward_inference(x);
        let n = out.obj_logits.numel();
        (0..n)
            .map(|i| Detection {
                score: sigmoid(out.obj_logits.data()[i]),
                bbox: BBox::from_slice(&out.boxes.data()[i * 4..(i + 1) * 4]),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SeededRng {
        SeededRng::new(99)
    }

    #[test]
    fn table1_configs_match_paper_notation() {
        let rows = SppNetConfig::table1();
        assert_eq!(rows.len(), 4);
        assert_eq!(
            rows[0].1.summary(),
            "C_{64,3,1}-P_{2,2}-C_{128,3,1}-P_{2,2}-C_{256,3,1}-P_{2,2}-SPP_{4,2,1}-F_{1024}"
        );
        assert_eq!(
            rows[1].1.summary(),
            "C_{64,5,1}-P_{2,2}-C_{128,3,1}-P_{2,2}-C_{256,3,1}-P_{2,2}-SPP_{4,2,1}-F_{1024}"
        );
        assert_eq!(
            rows[2].1.summary(),
            "C_{64,3,1}-P_{2,2}-C_{128,3,1}-P_{2,2}-C_{256,3,1}-P_{2,2}-SPP_{5,2,1}-F_{4096}"
        );
        assert_eq!(
            rows[3].1.summary(),
            "C_{64,3,1}-P_{2,2}-C_{128,3,1}-P_{2,2}-C_{256,3,1}-P_{2,2}-SPP_{5,2,1}-F_{2048}"
        );
    }

    #[test]
    fn spp_levels_deduplicate() {
        let mut c = SppNetConfig::original();
        c.spp_top_level = 1;
        assert_eq!(c.spp_levels(), vec![2, 1]);
        c.spp_top_level = 2;
        assert_eq!(c.spp_levels(), vec![2, 1]);
        c.spp_top_level = 5;
        assert_eq!(c.spp_levels(), vec![5, 2, 1]);
    }

    #[test]
    fn spp_features_match_pyramid() {
        let c = SppNetConfig::original(); // [4,2,1] → 21 bins × 256
        assert_eq!(c.spp_features(), 256 * 21);
        let c2 = SppNetConfig::candidate2(); // [5,2,1] → 30 bins × 256
        assert_eq!(c2.spp_features(), 256 * 30);
    }

    #[test]
    fn forward_shapes_are_input_size_independent() {
        let mut r = rng();
        let mut net = SppNet::new(SppNetConfig::tiny(), &mut r);
        for &size in &[16usize, 24, 33] {
            let x = Tensor::randn([2, 1, size, size], 0.0, 1.0, &mut r);
            let out = net.forward(&x);
            assert_eq!(out.obj_logits.dims(), &[2]);
            assert_eq!(out.boxes.dims(), &[2, 4]);
        }
    }

    #[test]
    fn backward_produces_input_gradient() {
        let mut r = rng();
        let mut net = SppNet::new(SppNetConfig::tiny(), &mut r);
        let x = Tensor::randn([2, 1, 16, 16], 0.0, 1.0, &mut r);
        net.forward(&x);
        let gx = net.backward(&Tensor::ones([2]), &Tensor::ones([2, 4]));
        assert_eq!(gx.dims(), x.dims());
        assert!(gx.sq_norm() > 0.0);
        // Parameter grads were accumulated.
        assert!(net.params_mut().iter().any(|p| p.grad.sq_norm() > 0.0));
    }

    #[test]
    fn fc2_adds_a_trunk_layer() {
        let mut r = rng();
        let mut cfg = SppNetConfig::tiny();
        cfg.fc2 = Some(16);
        let mut net = SppNet::new(cfg.clone(), &mut r);
        let x = Tensor::randn([1, 1, 16, 16], 0.0, 1.0, &mut r);
        let out = net.forward(&x);
        assert_eq!(out.boxes.dims(), &[1, 4]);
        // two more params (fc2 w+b) than the single-FC version
        let mut net1 = SppNet::new(SppNetConfig::tiny(), &mut r);
        assert_eq!(net.params_mut().len(), net1.params_mut().len() + 2);
        assert!(cfg.summary().ends_with("-F_{32}-F_{16}"));
    }

    #[test]
    fn predict_scores_are_probabilities() {
        let mut r = rng();
        let mut net = SppNet::new(SppNetConfig::tiny(), &mut r);
        let x = Tensor::randn([3, 1, 16, 16], 0.0, 1.0, &mut r);
        let dets = net.predict(&x);
        assert_eq!(dets.len(), 3);
        for d in dets {
            assert!((0.0..=1.0).contains(&d.score));
        }
    }

    #[test]
    fn forward_inference_matches_training_forward() {
        let mut r = rng();
        let mut cfg = SppNetConfig::tiny();
        cfg.fc2 = Some(16);
        let mut net = SppNet::new(cfg, &mut r);
        let x = Tensor::randn([3, 1, 20, 20], 0.0, 1.0, &mut r);
        let train = net.forward(&x);
        let infer = net.forward_inference(&x);
        // `==` tolerates the fused ReLU's +0.0 vs the mask path's -0.0.
        assert_eq!(train.obj_logits.data(), infer.obj_logits.data());
        assert_eq!(train.boxes.data(), infer.boxes.data());
    }

    #[test]
    fn num_params_counts_everything() {
        let mut r = rng();
        let cfg = SppNetConfig::tiny();
        let mut net = SppNet::new(cfg.clone(), &mut r);
        // conv1: 4·1·3·3+4; conv2: 8·4·3·3+8; conv3: 8·8·3·3+8;
        // fc1: (8·5)·32+32; heads: 32·1+1 + 32·4+4
        let spp_f = cfg.spp_features();
        let expect = (4 * 9 + 4)
            + (8 * 4 * 9 + 8)
            + (8 * 8 * 9 + 8)
            + (spp_f * 32 + 32)
            + (32 + 1)
            + (32 * 4 + 4);
        assert_eq!(net.num_params(), expect);
    }

    #[test]
    fn same_seed_same_model() {
        let mut r1 = SeededRng::new(5);
        let mut r2 = SeededRng::new(5);
        let mut a = SppNet::new(SppNetConfig::tiny(), &mut r1);
        let mut b = SppNet::new(SppNetConfig::tiny(), &mut r2);
        let x = Tensor::randn([1, 1, 16, 16], 0.0, 1.0, &mut SeededRng::new(0));
        let ya = a.forward(&x);
        let yb = b.forward(&x);
        assert_eq!(ya.obj_logits.data(), yb.obj_logits.data());
        assert_eq!(ya.boxes.data(), yb.boxes.data());
    }
}
