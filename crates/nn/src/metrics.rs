//! Detection metrics: IoU and Average Precision (Eq. 1 of the paper).

use crate::detect::BBox;

/// Intersection-over-Union of two boxes in the same coordinate frame.
pub fn iou(a: &BBox, b: &BBox) -> f32 {
    let (ax0, ay0, ax1, ay1) = a.corners();
    let (bx0, by0, bx1, by1) = b.corners();
    let ix = (ax1.min(bx1) - ax0.max(bx0)).max(0.0);
    let iy = (ay1.min(by1) - ay0.max(by0)).max(0.0);
    let inter = ix * iy;
    let union = a.area() + b.area() - inter;
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// One point on the precision-recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Recall after this detection.
    pub recall: f32,
    /// Precision after this detection.
    pub precision: f32,
    /// The score threshold that produced this point.
    pub score: f32,
}

/// Average precision over a set of per-image single detections.
///
/// Input: for each evaluated patch, the detection score and whether the
/// detection matches ground truth (IoU ≥ threshold against the patch's GT
/// box), plus the total number of ground-truth positives. Implements the
/// paper's Eq. 1: `AP = Σ_i (R_i − R_{i−1}) · P_i` over detections sorted by
/// descending score.
///
/// Returns `(ap, curve)`.
pub fn average_precision(detections: &[(f32, bool)], num_positives: usize) -> (f32, Vec<PrPoint>) {
    if num_positives == 0 || detections.is_empty() {
        return (0.0, Vec::new());
    }
    let mut dets: Vec<(f32, bool)> = detections.to_vec();
    // Descending score; ties broken toward false positives so the result is
    // conservative and deterministic.
    dets.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut prev_recall = 0.0f32;
    let mut ap = 0.0f32;
    let mut curve = Vec::with_capacity(dets.len());
    for (score, matched) in dets {
        if matched {
            tp += 1;
        } else {
            fp += 1;
        }
        let recall = tp as f32 / num_positives as f32;
        let precision = tp as f32 / (tp + fp) as f32;
        ap += (recall - prev_recall) * precision;
        prev_recall = recall;
        curve.push(PrPoint {
            recall,
            precision,
            score,
        });
    }
    (ap, curve)
}

/// Convenience: evaluate scored predictions against per-image optional GT.
///
/// `preds[i]` is `(score, predicted_box)` for image `i`, `truths[i]` the GT
/// box if the image is positive. A prediction counts as a match when the
/// image has a GT box and IoU ≥ `iou_threshold`.
pub fn evaluate_detections(
    preds: &[(f32, BBox)],
    truths: &[Option<BBox>],
    iou_threshold: f32,
) -> (f32, Vec<PrPoint>) {
    assert_eq!(preds.len(), truths.len(), "prediction/GT count mismatch");
    let detections: Vec<(f32, bool)> = preds
        .iter()
        .zip(truths.iter())
        .map(|(&(score, pbox), truth)| {
            let matched = truth
                .map(|t| iou(&pbox, &t) >= iou_threshold)
                .unwrap_or(false);
            (score, matched)
        })
        .collect();
    let num_pos = truths.iter().filter(|t| t.is_some()).count();
    average_precision(&detections, num_pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iou_identical_boxes_is_one() {
        let b = BBox::new(0.5, 0.5, 0.2, 0.2);
        assert!((iou(&b, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn iou_disjoint_boxes_is_zero() {
        let a = BBox::new(0.2, 0.2, 0.1, 0.1);
        let b = BBox::new(0.8, 0.8, 0.1, 0.1);
        assert_eq!(iou(&a, &b), 0.0);
    }

    #[test]
    fn iou_half_overlap() {
        // Unit squares offset by half a width: inter 0.5, union 1.5.
        let a = BBox::new(0.5, 0.5, 1.0, 1.0);
        let b = BBox::new(1.0, 0.5, 1.0, 1.0);
        assert!((iou(&a, &b) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn iou_is_symmetric() {
        let a = BBox::new(0.4, 0.4, 0.3, 0.2);
        let b = BBox::new(0.5, 0.45, 0.2, 0.25);
        assert!((iou(&a, &b) - iou(&b, &a)).abs() < 1e-7);
    }

    #[test]
    fn perfect_detector_has_ap_one() {
        // All positives scored above all negatives and all matched.
        let dets = vec![(0.9, true), (0.8, true), (0.3, false), (0.2, false)];
        let (ap, _) = average_precision(&dets, 2);
        assert!((ap - 1.0).abs() < 1e-6);
    }

    #[test]
    fn all_misses_ap_zero() {
        let dets = vec![(0.9, false), (0.8, false)];
        let (ap, _) = average_precision(&dets, 2);
        assert_eq!(ap, 0.0);
    }

    #[test]
    fn interleaved_detections_partial_ap() {
        // Order: TP, FP, TP with 2 positives.
        // P after det1 = 1, R = 0.5 → contributes 0.5·1
        // P after det2 = 0.5, R unchanged → contributes 0
        // P after det3 = 2/3, R = 1.0 → contributes 0.5·(2/3)
        let dets = vec![(0.9, true), (0.8, false), (0.7, true)];
        let (ap, curve) = average_precision(&dets, 2);
        assert!((ap - (0.5 + 0.5 * 2.0 / 3.0)).abs() < 1e-6);
        assert_eq!(curve.len(), 3);
        assert!((curve[2].recall - 1.0).abs() < 1e-6);
    }

    #[test]
    fn missed_positives_cap_recall() {
        // One matched detection but 4 positives exist: recall tops at 0.25.
        let dets = vec![(0.9, true)];
        let (ap, curve) = average_precision(&dets, 4);
        assert!((ap - 0.25).abs() < 1e-6);
        assert!((curve[0].recall - 0.25).abs() < 1e-6);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(average_precision(&[], 5).0, 0.0);
        assert_eq!(average_precision(&[(0.5, true)], 0).0, 0.0);
    }

    #[test]
    fn evaluate_detections_uses_iou_threshold() {
        let gt = BBox::new(0.5, 0.5, 0.2, 0.2);
        let close = BBox::new(0.51, 0.5, 0.2, 0.2); // high IoU
        let far = BBox::new(0.9, 0.9, 0.2, 0.2); // zero IoU
        let preds = vec![(0.9, close), (0.8, far)];
        let truths = vec![Some(gt), Some(gt)];
        let (ap_strict, _) = evaluate_detections(&preds, &truths, 0.5);
        // First matches, second does not: AP = 0.5·1 + 0 = 0.5.
        assert!((ap_strict - 0.5).abs() < 1e-6);
    }

    #[test]
    fn negatives_do_not_count_as_positives() {
        let pred_box = BBox::new(0.5, 0.5, 0.2, 0.2);
        let preds = vec![(0.9, pred_box), (0.1, pred_box)];
        let truths = vec![Some(pred_box), None];
        let (ap, _) = evaluate_detections(&preds, &truths, 0.5);
        assert!((ap - 1.0).abs() < 1e-6); // the high-scored TP comes first
    }
}
