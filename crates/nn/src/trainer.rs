//! Minibatch training loop for the SPP-Net detector.
//!
//! Mirrors the paper's §6.1 setup: SGD (lr 0.005, momentum 0.9, weight decay
//! 0.0005), batch size 20, objectness + box-regression loss.

use crate::detect::Sample;
use crate::loss::{bce_with_logits, smooth_l1};
use crate::metrics::{evaluate_detections, PrPoint};
use crate::sgd::Sgd;
use crate::sppnet::SppNet;
use crate::BBox;
use dcd_tensor::{SeededRng, Tensor};
use rayon::prelude::*;

/// Training-loop configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size (the paper uses 20).
    pub batch_size: usize,
    /// Optimizer settings.
    pub sgd: Sgd,
    /// Relative weight of the box-regression loss.
    pub box_loss_weight: f32,
    /// Seed for epoch shuffling.
    pub shuffle_seed: u64,
    /// Step learning-rate decay: halve the rate every `n` epochs
    /// (`None` = constant rate, the paper's setting).
    pub lr_decay_every: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 20,
            sgd: Sgd::paper(),
            box_loss_weight: 1.0,
            shuffle_seed: 0,
            lr_decay_every: None,
        }
    }
}

/// Per-epoch statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean total loss over batches.
    pub loss: f32,
    /// Mean objectness loss.
    pub obj_loss: f32,
    /// Mean box-regression loss.
    pub box_loss: f32,
}

/// Stacks equally-shaped sample images into one `[N, ...]` batch tensor,
/// copying each image directly into its slot in parallel (single output
/// buffer, no per-sample clones).
fn stack_images(images: &[&Tensor]) -> Tensor {
    let n = images.len();
    assert!(n > 0, "empty batch");
    let sample_len = images[0].numel();
    let mut data = vec![0.0f32; n * sample_len];
    data.par_chunks_mut(sample_len)
        .zip(images.par_iter())
        .for_each(|(dst, img)| dst.copy_from_slice(img.data()));
    let mut dims = vec![n];
    dims.extend_from_slice(images[0].dims());
    Tensor::from_vec(dims, data).expect("batch tensor")
}

/// Drives SGD training of an [`SppNet`].
pub struct Trainer {
    /// Loop configuration.
    pub config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        assert!(config.batch_size > 0, "batch size must be positive");
        assert!(config.epochs > 0, "epochs must be positive");
        Trainer { config }
    }

    /// Assembles one minibatch into `(images, obj_targets, box_targets, mask)`.
    fn batch_tensors(samples: &[&Sample]) -> (Tensor, Tensor, Tensor, Vec<f32>) {
        // Each sample copies straight into its batch slot in parallel — one
        // pass, no intermediate per-sample clones or stack.
        let x = stack_images(
            samples
                .iter()
                .map(|s| &s.image)
                .collect::<Vec<_>>()
                .as_slice(),
        );
        let n = samples.len();
        let mut obj = Tensor::zeros([n]);
        let mut boxes = Tensor::zeros([n, 4]);
        let mut mask = vec![0.0f32; n];
        for (i, s) in samples.iter().enumerate() {
            if let Some(b) = s.label {
                obj.data_mut()[i] = 1.0;
                boxes.data_mut()[i * 4..(i + 1) * 4].copy_from_slice(&b.to_vec());
                mask[i] = 1.0;
            }
        }
        (x, obj, boxes, mask)
    }

    /// The optimizer for a given epoch, with step decay applied.
    fn epoch_sgd(&self, epoch: usize) -> Sgd {
        let mut sgd = self.config.sgd;
        if let Some(every) = self.config.lr_decay_every {
            let halvings = (epoch / every.max(1)) as i32;
            sgd.lr *= 0.5f32.powi(halvings);
        }
        sgd
    }

    /// Runs one gradient step on a minibatch; returns `(total, obj, box)` loss.
    pub fn train_batch(&self, model: &mut SppNet, samples: &[&Sample]) -> (f32, f32, f32) {
        self.train_batch_with(model, samples, self.config.sgd)
    }

    /// [`Trainer::train_batch`] with an explicit optimizer (used by the
    /// epoch loop to apply learning-rate decay).
    fn train_batch_with(
        &self,
        model: &mut SppNet,
        samples: &[&Sample],
        sgd: Sgd,
    ) -> (f32, f32, f32) {
        let _span = dcd_obs::span("train.batch", dcd_obs::Category::Train);
        dcd_obs::counter!("train.batches").inc();
        let (x, obj_t, box_t, mask) = Self::batch_tensors(samples);
        let out = model.forward(&x);
        let (obj_loss, grad_obj) = bce_with_logits(&out.obj_logits, &obj_t);
        let (box_loss, grad_box) = smooth_l1(&out.boxes, &box_t, &mask);
        model.backward(&grad_obj, &grad_box.scale(self.config.box_loss_weight));
        sgd.step(&mut model.params_mut());
        let total = obj_loss + self.config.box_loss_weight * box_loss;
        (total, obj_loss, box_loss)
    }

    /// Training with validation-based model selection: after each epoch the
    /// model is scored on `validation` (AP at `iou_threshold`) and the best
    /// epoch's weights are restored at the end — the standard guard against
    /// reporting a mid-oscillation snapshot.
    ///
    /// Returns `(history, best_val_ap)`.
    pub fn train_with_validation(
        &self,
        model: &mut SppNet,
        train: &[Sample],
        validation: &[Sample],
        iou_threshold: f32,
    ) -> (Vec<EpochStats>, f32) {
        assert!(!train.is_empty(), "cannot train on an empty dataset");
        assert!(!validation.is_empty(), "need validation samples");
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut rng = SeededRng::new(self.config.shuffle_seed);
        let mut history = Vec::with_capacity(self.config.epochs);
        let mut best_ap = f32::NEG_INFINITY;
        let mut best_weights: Option<Vec<Tensor>> = None;
        for epoch in 0..self.config.epochs {
            let _epoch_span = dcd_obs::span("train.epoch", dcd_obs::Category::Train);
            rng.shuffle(&mut order);
            let sgd = self.epoch_sgd(epoch);
            let mut sums = (0.0f32, 0.0f32, 0.0f32);
            let mut batches = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let batch: Vec<&Sample> = chunk.iter().map(|&i| &train[i]).collect();
                let (t, o, b) = self.train_batch_with(model, &batch, sgd);
                sums.0 += t;
                sums.1 += o;
                sums.2 += b;
                batches += 1;
            }
            let inv = 1.0 / batches.max(1) as f32;
            history.push(EpochStats {
                epoch,
                loss: sums.0 * inv,
                obj_loss: sums.1 * inv,
                box_loss: sums.2 * inv,
            });
            let (ap, _) = evaluate(model, validation, iou_threshold);
            if ap > best_ap {
                best_ap = ap;
                best_weights = Some(model.params_mut().iter().map(|p| p.value.clone()).collect());
            }
        }
        if let Some(weights) = best_weights {
            for (p, w) in model.params_mut().iter_mut().zip(weights) {
                p.value = w;
            }
        }
        (history, best_ap)
    }

    /// Full training run; returns per-epoch statistics.
    pub fn train(&self, model: &mut SppNet, samples: &[Sample]) -> Vec<EpochStats> {
        assert!(!samples.is_empty(), "cannot train on an empty dataset");
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut rng = SeededRng::new(self.config.shuffle_seed);
        let mut history = Vec::with_capacity(self.config.epochs);
        for epoch in 0..self.config.epochs {
            let _epoch_span = dcd_obs::span("train.epoch", dcd_obs::Category::Train);
            rng.shuffle(&mut order);
            let sgd = self.epoch_sgd(epoch);
            let mut sums = (0.0f32, 0.0f32, 0.0f32);
            let mut batches = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let batch: Vec<&Sample> = chunk.iter().map(|&i| &samples[i]).collect();
                let (t, o, b) = self.train_batch_with(model, &batch, sgd);
                sums.0 += t;
                sums.1 += o;
                sums.2 += b;
                batches += 1;
            }
            let inv = 1.0 / batches.max(1) as f32;
            history.push(EpochStats {
                epoch,
                loss: sums.0 * inv,
                obj_loss: sums.1 * inv,
                box_loss: sums.2 * inv,
            });
        }
        history
    }
}

/// Evaluates a model on a labelled set, returning `(AP, PR curve)` at the
/// given IoU threshold (paper uses AP at IoU 0.5).
pub fn evaluate(model: &mut SppNet, samples: &[Sample], iou_threshold: f32) -> (f32, Vec<PrPoint>) {
    evaluate_batched(model, samples, iou_threshold, 20)
}

/// [`evaluate`] with an explicit inference batch size.
pub fn evaluate_batched(
    model: &mut SppNet,
    samples: &[Sample],
    iou_threshold: f32,
    batch_size: usize,
) -> (f32, Vec<PrPoint>) {
    let mut preds: Vec<(f32, BBox)> = Vec::with_capacity(samples.len());
    let mut truths: Vec<Option<BBox>> = Vec::with_capacity(samples.len());
    for chunk in samples.chunks(batch_size.max(1)) {
        let x = stack_images(
            chunk
                .iter()
                .map(|s| &s.image)
                .collect::<Vec<_>>()
                .as_slice(),
        );
        for (det, s) in model.predict(&x).into_iter().zip(chunk.iter()) {
            preds.push((det.score, det.bbox));
            truths.push(s.label);
        }
    }
    evaluate_detections(&preds, &truths, iou_threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sppnet::SppNetConfig;
    use dcd_tensor::SeededRng;

    /// A linearly-separable toy detection set: positives have a bright blob
    /// at a known location, negatives are dim noise.
    fn toy_dataset(n_pos: usize, n_neg: usize, seed: u64) -> Vec<Sample> {
        let mut rng = SeededRng::new(seed);
        let mut samples = Vec::new();
        for _ in 0..n_pos {
            let mut img = Tensor::randn([1, 16, 16], 0.0, 0.1, &mut rng);
            // Bright 4x4 blob centred at (8, 8).
            for y in 6..10 {
                for x in 6..10 {
                    img.set(&[0, y, x], 2.0);
                }
            }
            samples.push(Sample::positive(img, BBox::new(0.5, 0.5, 0.25, 0.25)));
        }
        for _ in 0..n_neg {
            samples.push(Sample::negative(Tensor::randn(
                [1, 16, 16],
                0.0,
                0.1,
                &mut rng,
            )));
        }
        samples
    }

    #[test]
    fn loss_decreases_on_toy_problem() {
        let mut rng = SeededRng::new(7);
        let mut model = SppNet::new(SppNetConfig::tiny(), &mut rng);
        let data = toy_dataset(10, 10, 1);
        let trainer = Trainer::new(TrainConfig {
            epochs: 8,
            batch_size: 5,
            sgd: Sgd::new(0.01, 0.9, 0.0005),
            ..Default::default()
        });
        let history = trainer.train(&mut model, &data);
        assert_eq!(history.len(), 8);
        let first = history.first().unwrap().loss;
        let last = history.last().unwrap().loss;
        assert!(
            last < first,
            "loss should decrease: first {first}, last {last}"
        );
        assert!(last.is_finite());
    }

    #[test]
    fn trained_model_beats_chance_ap() {
        let mut rng = SeededRng::new(21);
        let mut model = SppNet::new(SppNetConfig::tiny(), &mut rng);
        let train_set = toy_dataset(16, 16, 2);
        let test_set = toy_dataset(8, 8, 3);
        let trainer = Trainer::new(TrainConfig {
            epochs: 15,
            batch_size: 8,
            sgd: Sgd::new(0.02, 0.9, 0.0005),
            ..Default::default()
        });
        trainer.train(&mut model, &train_set);
        // Lenient IoU: we check the detector separates pos/neg scores.
        let (ap, _) = evaluate(&mut model, &test_set, 0.1);
        assert!(ap > 0.6, "AP {ap} should beat chance on separable data");
    }

    #[test]
    fn evaluate_batched_is_batch_size_invariant() {
        let mut rng = SeededRng::new(5);
        let mut model = SppNet::new(SppNetConfig::tiny(), &mut rng);
        let data = toy_dataset(4, 4, 9);
        let (ap1, _) = evaluate_batched(&mut model, &data, 0.5, 1);
        let (ap8, _) = evaluate_batched(&mut model, &data, 0.5, 8);
        assert!((ap1 - ap8).abs() < 1e-6);
    }

    #[test]
    fn batch_tensors_encode_labels() {
        let data = toy_dataset(1, 1, 0);
        let refs: Vec<&Sample> = data.iter().collect();
        let (x, obj, boxes, mask) = Trainer::batch_tensors(&refs);
        assert_eq!(x.dims(), &[2, 1, 16, 16]);
        assert_eq!(obj.data(), &[1.0, 0.0]);
        assert_eq!(mask, vec![1.0, 0.0]);
        assert_eq!(&boxes.data()[0..4], &[0.5, 0.5, 0.25, 0.25]);
        assert_eq!(&boxes.data()[4..8], &[0.0; 4]);
    }

    #[test]
    fn validation_selection_never_worse_than_final_epoch() {
        let mut rng = SeededRng::new(31);
        let data = toy_dataset(12, 12, 4);
        let val = toy_dataset(6, 6, 5);
        let tc = TrainConfig {
            epochs: 10,
            batch_size: 8,
            sgd: Sgd::new(0.03, 0.9, 0.0005), // deliberately jumpy
            ..Default::default()
        };
        // Plain training, score the final snapshot.
        let mut plain = SppNet::new(SppNetConfig::tiny(), &mut rng);
        Trainer::new(tc).train(&mut plain, &data);
        let (final_ap, _) = evaluate(&mut plain, &val, 0.1);
        // Validation-selected training on the identical setup.
        let mut selected = SppNet::new(SppNetConfig::tiny(), &mut SeededRng::new(31));
        let (_, best_ap) = Trainer::new(tc).train_with_validation(&mut selected, &data, &val, 0.1);
        assert!(
            best_ap + 1e-6 >= final_ap,
            "selected {best_ap} < final {final_ap}"
        );
        // The restored weights actually reproduce the best validation AP.
        let (restored_ap, _) = evaluate(&mut selected, &val, 0.1);
        assert!((restored_ap - best_ap).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn training_on_empty_set_panics() {
        let mut rng = SeededRng::new(0);
        let mut model = SppNet::new(SppNetConfig::tiny(), &mut rng);
        Trainer::new(TrainConfig::default()).train(&mut model, &[]);
    }
}
