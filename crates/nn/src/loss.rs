//! Loss functions with analytic gradients.
//!
//! All losses return `(mean_loss, grad)` where `grad` is `d mean_loss / d
//! input` — ready to feed straight into `Layer::backward`.

use dcd_tensor::Tensor;

/// Numerically-stable sigmoid.
#[inline]
pub fn sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Binary cross-entropy on logits.
///
/// `logits` and `targets` share shape; targets are in `{0, 1}` (soft targets
/// also work). Uses the standard stable form
/// `max(z,0) − z·t + ln(1 + e^(−|z|))`.
pub fn bce_with_logits(logits: &Tensor, targets: &Tensor) -> (f32, Tensor) {
    assert_eq!(logits.shape(), targets.shape(), "bce: shape mismatch");
    let n = logits.numel().max(1) as f32;
    let mut loss = 0.0f32;
    let mut grad = Tensor::zeros(logits.shape().clone());
    for i in 0..logits.numel() {
        let z = logits.data()[i];
        let t = targets.data()[i];
        loss += z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln();
        grad.data_mut()[i] = (sigmoid(z) - t) / n;
    }
    (loss / n, grad)
}

/// Smooth-L1 (Huber, δ=1) regression loss with an elementwise mask.
///
/// `mask` has one entry per row of `pred`; rows with mask 0 contribute
/// nothing (used to skip box regression on negative patches). The loss is
/// averaged over *masked* elements, matching Fast R-CNN practice.
#[allow(clippy::needless_range_loop)]
pub fn smooth_l1(pred: &Tensor, target: &Tensor, mask: &[f32]) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "smooth_l1: shape mismatch");
    let (rows, cols) = pred.shape().matrix();
    assert_eq!(mask.len(), rows, "smooth_l1: mask length mismatch");
    let active: f32 = mask.iter().map(|&m| m * cols as f32).sum();
    let denom = active.max(1.0);
    let mut loss = 0.0f32;
    let mut grad = Tensor::zeros(pred.shape().clone());
    for r in 0..rows {
        if mask[r] == 0.0 {
            continue;
        }
        for c in 0..cols {
            let i = r * cols + c;
            let d = pred.data()[i] - target.data()[i];
            if d.abs() < 1.0 {
                loss += 0.5 * d * d;
                grad.data_mut()[i] = d / denom;
            } else {
                loss += d.abs() - 0.5;
                grad.data_mut()[i] = d.signum() / denom;
            }
        }
    }
    (loss / denom, grad)
}

/// Softmax cross-entropy over rows of `logits` with integer class labels.
///
/// Returns the mean loss and its gradient (`softmax − onehot`, scaled by
/// `1/N`). Used by the rcnn-lite baseline's classifier head and in tests.
#[allow(clippy::needless_range_loop)]
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (n, c) = logits.shape().matrix();
    assert_eq!(labels.len(), n, "cross_entropy: label count mismatch");
    let mut loss = 0.0f32;
    let mut grad = Tensor::zeros(logits.shape().clone());
    for r in 0..n {
        let row = &logits.data()[r * c..(r + 1) * c];
        let label = labels[r];
        assert!(label < c, "label {label} out of range for {c} classes");
        let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&z| (z - m).exp()).collect();
        let sum: f32 = exps.iter().sum();
        loss += -(exps[label] / sum).ln();
        for j in 0..c {
            let p = exps[j] / sum;
            grad.data_mut()[r * c + j] = (p - if j == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    (loss / n as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcd_tensor::grad_check::numeric_grad;

    #[test]
    fn sigmoid_extremes_and_center() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(40.0) > 0.999999);
        assert!(sigmoid(-40.0) < 1e-6);
        // Symmetry: σ(−z) = 1 − σ(z).
        assert!((sigmoid(-1.7) + sigmoid(1.7) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bce_perfect_prediction_is_small() {
        let logits = Tensor::from_vec([2], vec![20.0, -20.0]).unwrap();
        let targets = Tensor::from_vec([2], vec![1.0, 0.0]).unwrap();
        let (loss, _) = bce_with_logits(&logits, &targets);
        assert!(loss < 1e-6);
    }

    #[test]
    fn bce_wrong_prediction_is_large() {
        let logits = Tensor::from_vec([1], vec![-10.0]).unwrap();
        let targets = Tensor::from_vec([1], vec![1.0]).unwrap();
        let (loss, _) = bce_with_logits(&logits, &targets);
        assert!(loss > 9.0);
    }

    #[test]
    fn bce_gradient_matches_numeric() {
        let logits = Tensor::from_vec([3], vec![0.3, -1.2, 2.0]).unwrap();
        let targets = Tensor::from_vec([3], vec![1.0, 0.0, 1.0]).unwrap();
        let (_, grad) = bce_with_logits(&logits, &targets);
        let num = numeric_grad(&logits, 1e-3, |l| bce_with_logits(l, &targets).0);
        assert!(grad.max_abs_diff(&num) < 1e-3);
    }

    #[test]
    fn bce_stable_at_huge_logits() {
        let logits = Tensor::from_vec([2], vec![500.0, -500.0]).unwrap();
        let targets = Tensor::from_vec([2], vec![0.0, 1.0]).unwrap();
        let (loss, grad) = bce_with_logits(&logits, &targets);
        assert!(loss.is_finite());
        assert!(!grad.has_non_finite());
    }

    #[test]
    fn smooth_l1_quadratic_then_linear() {
        let pred = Tensor::from_vec([1, 2], vec![0.5, 3.0]).unwrap();
        let target = Tensor::zeros([1, 2]);
        let (loss, _) = smooth_l1(&pred, &target, &[1.0]);
        // (0.5·0.25 + (3 − 0.5)) / 2
        assert!((loss - (0.125 + 2.5) / 2.0).abs() < 1e-5);
    }

    #[test]
    fn smooth_l1_mask_skips_rows() {
        let pred = Tensor::from_vec([2, 2], vec![10., 10., 0.1, 0.1]).unwrap();
        let target = Tensor::zeros([2, 2]);
        let (loss_masked, grad) = smooth_l1(&pred, &target, &[0.0, 1.0]);
        // Only the second row contributes.
        assert!((loss_masked - 0.5 * 0.01).abs() < 1e-5);
        assert_eq!(grad.data()[0], 0.0);
        assert_eq!(grad.data()[1], 0.0);
        assert!(grad.data()[2] > 0.0);
    }

    #[test]
    fn smooth_l1_gradient_matches_numeric() {
        let pred = Tensor::from_vec([2, 2], vec![0.3, -2.0, 1.5, 0.0]).unwrap();
        let target = Tensor::from_vec([2, 2], vec![0.0, 0.0, 1.0, 0.2]).unwrap();
        let mask = [1.0, 1.0];
        let (_, grad) = smooth_l1(&pred, &target, &mask);
        let num = numeric_grad(&pred, 1e-3, |p| smooth_l1(p, &target, &mask).0);
        assert!(grad.max_abs_diff(&num) < 1e-2);
    }

    #[test]
    fn all_masked_smooth_l1_is_zero() {
        let pred = Tensor::ones([2, 4]);
        let target = Tensor::zeros([2, 4]);
        let (loss, grad) = smooth_l1(&pred, &target, &[0.0, 0.0]);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.sq_norm(), 0.0);
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = Tensor::zeros([1, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_matches_numeric() {
        let logits = Tensor::from_vec([2, 3], vec![0.1, 1.0, -0.5, 2.0, 0.0, 0.3]).unwrap();
        let labels = [1usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let num = numeric_grad(&logits, 1e-3, |l| softmax_cross_entropy(l, &labels).0);
        assert!(grad.max_abs_diff(&num) < 1e-3);
    }

    #[test]
    fn cross_entropy_grad_rows_sum_to_zero() {
        let logits = Tensor::from_vec([1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(grad.sum().abs() < 1e-6);
    }
}
