//! # dcd-nn
//!
//! A from-scratch CNN stack (layers, backprop, SGD) sufficient to train and
//! run the SPP-Net drainage-crossing detector of the SC-W 2023 paper.
//!
//! The crate deliberately avoids a general autograd tape: every layer is a
//! concrete struct with explicit `forward`/`backward`, which keeps the
//! compute graph static — exactly the property the Inter-Operator Scheduler
//! (`dcd-ios`) relies on when it lowers an [`SppNet`] to its graph IR.
//!
//! Layout conventions follow `dcd-tensor` (NCHW activations).

pub mod augment;
pub mod detect;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod norm;
pub mod param;
pub mod serialize;
pub mod sgd;
pub mod sppnet;
pub mod trainer;

pub use augment::augment_dataset;
pub use detect::{BBox, Detection, Sample};
pub use layers::{Conv2d, Flatten, Layer, Linear, MaxPool2d, Relu, Sequential, SppLayer};
pub use loss::{bce_with_logits, smooth_l1, softmax_cross_entropy};
pub use metrics::{average_precision, iou, PrPoint};
pub use norm::{BatchNorm2d, Dropout};
pub use param::Param;
pub use serialize::{Checkpoint, CheckpointError};
pub use sgd::Sgd;
pub use sppnet::{SppNet, SppNetConfig};
pub use trainer::{EpochStats, TrainConfig, Trainer};
