//! Batch normalization and dropout (extension layers).
//!
//! The paper's SPP-Nets use plain conv/ReLU blocks; these layers are the
//! standard regularization additions a practitioner would reach for next,
//! and exercising them through the same `Layer` interface demonstrates the
//! framework generalizes beyond the paper's exact architecture.

use crate::layers::Layer;
use crate::param::Param;
use dcd_tensor::{SeededRng, Tensor};

/// Per-channel batch normalization over NCHW activations.
///
/// Training mode normalizes with batch statistics and updates running
/// estimates; evaluation mode uses the running estimates. Toggle with
/// [`BatchNorm2d::set_training`].
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    /// Scale (γ), one per channel.
    pub gamma: Param,
    /// Shift (β), one per channel.
    pub beta: Param,
    /// Running mean used at eval time.
    pub running_mean: Vec<f32>,
    /// Running variance used at eval time.
    pub running_var: Vec<f32>,
    /// Exponential-update rate for the running stats.
    pub momentum: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    training: bool,
    // Cached values for backward.
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    dims: (usize, usize, usize, usize),
}

impl BatchNorm2d {
    /// A batch-norm layer over `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::ones([channels]), false),
            beta: Param::new(Tensor::zeros([channels]), false),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            training: true,
            cache: None,
        }
    }

    /// Switches between training (batch stats) and eval (running stats).
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    fn channels(&self) -> usize {
        self.gamma.value.numel()
    }
}

impl Layer for BatchNorm2d {
    #[allow(clippy::needless_range_loop)]
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let (n, c, h, w) = x.shape().nchw();
        assert_eq!(c, self.channels(), "BatchNorm2d channel mismatch");
        let spatial = h * w;
        let count = (n * spatial) as f32;
        let mut out = Tensor::zeros([n, c, h, w]);
        let mut x_hat = Tensor::zeros([n, c, h, w]);
        let mut inv_stds = vec![0.0f32; c];
        for ci in 0..c {
            let (mean, var) = if self.training {
                let mut sum = 0.0f32;
                let mut sq = 0.0f32;
                for s in 0..n {
                    for i in 0..spatial {
                        let v = x.data()[(s * c + ci) * spatial + i];
                        sum += v;
                        sq += v * v;
                    }
                }
                let mean = sum / count;
                let var = (sq / count - mean * mean).max(0.0);
                self.running_mean[ci] =
                    (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean;
                self.running_var[ci] =
                    (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[ci], self.running_var[ci])
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds[ci] = inv_std;
            let g = self.gamma.value.data()[ci];
            let b = self.beta.value.data()[ci];
            for s in 0..n {
                for i in 0..spatial {
                    let idx = (s * c + ci) * spatial + i;
                    let xh = (x.data()[idx] - mean) * inv_std;
                    x_hat.data_mut()[idx] = xh;
                    out.data_mut()[idx] = g * xh + b;
                }
            }
        }
        self.cache = Some(BnCache {
            x_hat,
            inv_std: inv_stds,
            dims: (n, c, h, w),
        });
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("BatchNorm2d::backward before forward");
        let (n, c, h, w) = cache.dims;
        let spatial = h * w;
        let count = (n * spatial) as f32;
        let mut gx = Tensor::zeros([n, c, h, w]);
        for ci in 0..c {
            // Reductions over the batch/spatial axes.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for s in 0..n {
                for i in 0..spatial {
                    let idx = (s * c + ci) * spatial + i;
                    let dy = grad_out.data()[idx];
                    sum_dy += dy;
                    sum_dy_xhat += dy * cache.x_hat.data()[idx];
                }
            }
            self.gamma.grad.data_mut()[ci] += sum_dy_xhat;
            self.beta.grad.data_mut()[ci] += sum_dy;
            let g = self.gamma.value.data()[ci];
            let inv_std = cache.inv_std[ci];
            if self.training {
                // Full batch-norm gradient (through the batch statistics).
                for s in 0..n {
                    for i in 0..spatial {
                        let idx = (s * c + ci) * spatial + i;
                        let dy = grad_out.data()[idx];
                        let xh = cache.x_hat.data()[idx];
                        gx.data_mut()[idx] =
                            g * inv_std / count * (count * dy - sum_dy - xh * sum_dy_xhat);
                    }
                }
            } else {
                // Eval mode: statistics are constants.
                for s in 0..n {
                    for i in 0..spatial {
                        let idx = (s * c + ci) * spatial + i;
                        gx.data_mut()[idx] = g * inv_std * grad_out.data()[idx];
                    }
                }
            }
        }
        gx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn name(&self) -> String {
        format!("BatchNorm2d({})", self.channels())
    }
}

/// Inverted dropout.
///
/// Training mode zeroes each activation with probability `p` and rescales
/// the survivors by `1/(1−p)`; evaluation mode is the identity. The mask is
/// drawn from an internal seeded stream, so runs are reproducible.
#[derive(Debug)]
pub struct Dropout {
    /// Drop probability in `[0, 1)`.
    pub p: f32,
    rng: SeededRng,
    training: bool,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Dropout with probability `p`, seeded for reproducibility.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        Dropout {
            p,
            rng: SeededRng::new(seed),
            training: true,
            mask: None,
        }
    }

    /// Switches between training (random mask) and eval (identity).
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        if !self.training || self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let mut mask = Tensor::zeros(x.shape().clone());
        for m in mask.data_mut() {
            *m = if self.rng.chance(keep) {
                1.0 / keep
            } else {
                0.0
            };
        }
        let y = x.mul(&mask);
        self.mask = Some(mask);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.mask {
            Some(mask) => grad_out.mul(mask),
            None => grad_out.clone(),
        }
    }

    fn name(&self) -> String {
        format!("Dropout(p={})", self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcd_tensor::grad_check::numeric_grad;

    #[test]
    fn bn_training_normalizes_batch() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = SeededRng::new(1);
        let x = Tensor::randn([4, 2, 3, 3], 5.0, 3.0, &mut rng);
        let y = bn.forward(&x);
        // Per-channel mean ≈ 0, var ≈ 1 after normalization (γ=1, β=0).
        for ci in 0..2 {
            let mut vals = Vec::new();
            for s in 0..4 {
                for i in 0..9 {
                    vals.push(y.data()[(s * 2 + ci) * 9 + i]);
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ci} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ci} var {var}");
        }
    }

    #[test]
    fn bn_eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let mut rng = SeededRng::new(2);
        // Train on shifted data to move the running stats.
        for _ in 0..50 {
            let x = Tensor::randn([8, 1, 2, 2], 3.0, 2.0, &mut rng);
            bn.forward(&x);
        }
        bn.set_training(false);
        assert!((bn.running_mean[0] - 3.0).abs() < 0.5);
        // A constant input maps deterministically through running stats.
        let x = Tensor::full([1, 1, 2, 2], 3.0);
        let y = bn.forward(&x);
        assert!(y.data()[0].abs() < 0.5, "eval output near 0 for mean input");
    }

    #[test]
    fn bn_backward_matches_numeric_gradient() {
        let mut rng = SeededRng::new(3);
        let x = Tensor::randn([2, 2, 2, 2], 0.0, 1.0, &mut rng);
        let mut bn = BatchNorm2d::new(2);
        bn.momentum = 0.0; // keep running stats fixed so f is pure
        let y = bn.forward(&x);
        let gx = bn.backward(&Tensor::ones(y.shape().clone()));
        let num = numeric_grad(&x, 1e-2, |xp| {
            let mut bn2 = BatchNorm2d::new(2);
            bn2.momentum = 0.0;
            bn2.forward(xp).sum()
        });
        assert!(
            gx.max_abs_diff(&num) < 0.05,
            "bn grad diff {}",
            gx.max_abs_diff(&num)
        );
    }

    #[test]
    fn bn_gamma_beta_grads_accumulate() {
        let mut rng = SeededRng::new(4);
        let x = Tensor::randn([2, 3, 2, 2], 0.0, 1.0, &mut rng);
        let mut bn = BatchNorm2d::new(3);
        let y = bn.forward(&x);
        bn.backward(&Tensor::ones(y.shape().clone()));
        // dβ = Σ dy = n·spatial per channel.
        for ci in 0..3 {
            assert!((bn.beta.grad.data()[ci] - 8.0).abs() < 1e-4);
        }
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut d = Dropout::new(0.5, 0);
        d.set_training(false);
        let x = Tensor::from_vec([4], vec![1., 2., 3., 4.]).unwrap();
        assert_eq!(d.forward(&x), x);
        assert_eq!(d.backward(&x), x);
    }

    #[test]
    fn dropout_preserves_expectation() {
        let mut d = Dropout::new(0.3, 7);
        let x = Tensor::ones([10_000]);
        let y = d.forward(&x);
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "inverted dropout mean {mean}");
        // Zeros occur at roughly rate p.
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let rate = zeros as f32 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "drop rate {rate}");
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 9);
        let x = Tensor::ones([100]);
        let y = d.forward(&x);
        let g = d.backward(&Tensor::ones([100]));
        // Gradient flows exactly where activations survived.
        for (a, b) in y.data().iter().zip(g.data().iter()) {
            assert_eq!(a == &0.0, b == &0.0);
        }
    }

    #[test]
    #[should_panic(expected = "dropout p")]
    fn dropout_rejects_p_one() {
        Dropout::new(1.0, 0);
    }
}
