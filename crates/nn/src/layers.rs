//! Concrete CNN layers with explicit forward/backward passes.
//!
//! Each layer caches whatever its backward pass needs during `forward`;
//! calling `backward` before `forward` is a programming error and panics.

use crate::param::Param;
use dcd_tensor::{
    adaptive_max_pool2d, adaptive_max_pool2d_backward, conv2d, conv2d_backward, max_pool2d,
    max_pool2d_backward, AdaptiveMaxIndices, MaxIndices, SeededRng, Shape, Tensor,
};

/// Common interface over all layers.
pub trait Layer {
    /// Computes the layer output, caching state for `backward`.
    fn forward(&mut self, x: &Tensor) -> Tensor;
    /// Propagates `grad_out` to the input gradient, accumulating parameter
    /// gradients along the way.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;
    /// Trainable parameters (empty for stateless layers).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
    /// Human-readable layer name for summaries.
    fn name(&self) -> String;
}

// ------------------------------------------------------------------- Conv2d

/// 2-D convolution layer (NCHW).
#[derive(Debug, Clone)]
pub struct Conv2d {
    /// Filter bank `[C_out, C_in, K, K]`.
    pub weight: Param,
    /// Per-filter bias `[C_out]`.
    pub bias: Param,
    /// Spatial stride.
    pub stride: usize,
    /// Zero padding on each side.
    pub pad: usize,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Kaiming-initialized convolution. `kernel` is the (square) filter size.
    pub fn new(
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut SeededRng,
    ) -> Self {
        let fan_in = c_in * kernel * kernel;
        Conv2d {
            weight: Param::new(
                Tensor::kaiming([c_out, c_in, kernel, kernel], fan_in, rng),
                true,
            ),
            bias: Param::new(Tensor::zeros([c_out]), false),
            stride,
            pad,
            cached_input: None,
        }
    }

    /// Convolution with "same" padding for odd kernels (pad = k/2), stride 1.
    pub fn same(c_in: usize, c_out: usize, kernel: usize, rng: &mut SeededRng) -> Self {
        Self::new(c_in, c_out, kernel, 1, kernel / 2, rng)
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cached_input = Some(x.clone());
        conv2d(
            x,
            &self.weight.value,
            &self.bias.value,
            self.stride,
            self.pad,
        )
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("Conv2d::backward before forward");
        let grads = conv2d_backward(x, &self.weight.value, grad_out, self.stride, self.pad);
        self.weight.grad.axpy(1.0, &grads.weight);
        self.bias.grad.axpy(1.0, &grads.bias);
        grads.input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> String {
        let d = self.weight.value.dims();
        format!(
            "Conv2d({}->{}, k={}, s={}, p={})",
            d[1], d[0], d[2], self.stride, self.pad
        )
    }
}

// --------------------------------------------------------------------- ReLU

/// Rectified linear unit.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Tensor>,
}

impl Relu {
    /// A fresh ReLU.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mask = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        let y = x.mul(&mask);
        self.mask = Some(mask);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("Relu::backward before forward");
        grad_out.mul(mask)
    }

    fn name(&self) -> String {
        "ReLU".into()
    }
}

// ---------------------------------------------------------------- MaxPool2d

/// Fixed-window max pooling layer.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    /// Square window size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    saved: Option<MaxIndices>,
}

impl MaxPool2d {
    /// Pooling with the given window and stride (the paper uses 2/2).
    pub fn new(kernel: usize, stride: usize) -> Self {
        MaxPool2d {
            kernel,
            stride,
            saved: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let (y, ix) = max_pool2d(x, self.kernel, self.stride);
        self.saved = Some(ix);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let ix = self
            .saved
            .as_ref()
            .expect("MaxPool2d::backward before forward");
        max_pool2d_backward(grad_out, ix)
    }

    fn name(&self) -> String {
        format!("MaxPool2d(k={}, s={})", self.kernel, self.stride)
    }
}

// ----------------------------------------------------------------- SppLayer

/// Spatial pyramid pooling (He et al., TPAMI 2015).
///
/// Runs one adaptive max pool per pyramid level and concatenates the
/// flattened results into a fixed-length vector `[N, C·Σ level²]` regardless
/// of the input's spatial size. The parallel branches are exactly the
/// structure `dcd-ios` exploits for inter-operator parallelism.
#[derive(Debug, Clone)]
pub struct SppLayer {
    /// Pyramid bin counts, e.g. `[4, 2, 1]` for the paper's `SPP_{4,2,1}`.
    pub levels: Vec<usize>,
    saved: Vec<AdaptiveMaxIndices>,
    input_shape: Option<Shape>,
}

impl SppLayer {
    /// Builds a pyramid from its levels (must be non-empty, all positive).
    pub fn new(levels: impl Into<Vec<usize>>) -> Self {
        let levels = levels.into();
        assert!(!levels.is_empty(), "SPP needs at least one level");
        assert!(levels.iter().all(|&l| l > 0), "SPP levels must be positive");
        SppLayer {
            levels,
            saved: Vec::new(),
            input_shape: None,
        }
    }

    /// Output feature count per sample for `channels` input channels.
    pub fn out_features(&self, channels: usize) -> usize {
        channels * self.levels.iter().map(|l| l * l).sum::<usize>()
    }
}

impl Layer for SppLayer {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let (n, _, _, _) = x.shape().nchw();
        self.input_shape = Some(x.shape().clone());
        self.saved.clear();
        let mut parts = Vec::with_capacity(self.levels.len());
        for &level in &self.levels {
            let (y, ix) = adaptive_max_pool2d(x, level);
            self.saved.push(ix);
            let f = y.numel() / n;
            parts.push(y.reshape([n, f]));
        }
        let refs: Vec<&Tensor> = parts.iter().collect();
        Tensor::concat(&refs, 1)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .input_shape
            .as_ref()
            .expect("SppLayer::backward before forward");
        let (n, c, h, w) = shape.nchw();
        let mut gx = Tensor::zeros([n, c, h, w]);
        let mut col = 0usize;
        let total_cols = grad_out.dims()[1];
        for (li, &level) in self.levels.iter().enumerate() {
            let f = c * level * level;
            // Slice columns [col, col+f) of grad_out into [n, c, level, level].
            let mut g = Tensor::zeros([n, c, level, level]);
            for s in 0..n {
                let src = &grad_out.data()[s * total_cols + col..s * total_cols + col + f];
                g.data_mut()[s * f..(s + 1) * f].copy_from_slice(src);
            }
            let gpart = adaptive_max_pool2d_backward(&g, &self.saved[li]);
            gx.axpy(1.0, &gpart);
            col += f;
        }
        gx
    }

    fn name(&self) -> String {
        format!("SPP{:?}", self.levels)
    }
}

// ------------------------------------------------------------------ Flatten

/// Flattens `[N, ...]` to `[N, F]`, remembering the original shape.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_shape: Option<Shape>,
}

impl Flatten {
    /// A fresh flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.input_shape = Some(x.shape().clone());
        let n = x.dims()[0];
        let f = x.numel() / n;
        x.clone().reshape([n, f])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .input_shape
            .clone()
            .expect("Flatten::backward before forward");
        grad_out.clone().reshape(shape)
    }

    fn name(&self) -> String {
        "Flatten".into()
    }
}

// ------------------------------------------------------------------- Linear

/// Fully-connected layer `y = x·W + b` with `W: [in, out]`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix `[in_features, out_features]`.
    pub weight: Param,
    /// Bias `[out_features]`.
    pub bias: Param,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Kaiming-initialized fully-connected layer.
    pub fn new(in_features: usize, out_features: usize, rng: &mut SeededRng) -> Self {
        Linear {
            weight: Param::new(
                Tensor::kaiming([in_features, out_features], in_features, rng),
                true,
            ),
            bias: Param::new(Tensor::zeros([out_features]), false),
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.dims()[1]
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cached_input = Some(x.clone());
        let (m, k) = x.shape().matrix();
        assert_eq!(k, self.in_features(), "Linear: input features mismatch");
        let y = dcd_tensor::gemm_bias(
            x.data(),
            self.weight.value.data(),
            self.bias.value.data(),
            m,
            k,
            self.out_features(),
        );
        Tensor::from_vec([m, self.out_features()], y).expect("linear output")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("Linear::backward before forward");
        let (m, k) = x.shape().matrix();
        let n = self.out_features();
        // gw = xᵀ (k×m) · go (m×n), read straight from x's [m, k] storage.
        let gw = dcd_tensor::gemm_at(x.data(), grad_out.data(), k, m, n);
        self.weight
            .grad
            .axpy(1.0, &Tensor::from_vec([k, n], gw).expect("gw"));
        // gb = column sums of go
        let mut gb = vec![0.0f32; n];
        for row in grad_out.data().chunks(n) {
            for (g, &v) in gb.iter_mut().zip(row.iter()) {
                *g += v;
            }
        }
        self.bias
            .grad
            .axpy(1.0, &Tensor::from_vec([n], gb).expect("gb"));
        // gx = go (m×n) · Wᵀ, read straight from W's [k, n] storage.
        let gx = dcd_tensor::gemm_bt(grad_out.data(), self.weight.value.data(), m, n, k);
        Tensor::from_vec([m, k], gx).expect("gx")
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> String {
        format!("Linear({}->{})", self.in_features(), self.out_features())
    }
}

// --------------------------------------------------------------- Sequential

/// A chain of boxed layers, for tests and generic models.
///
/// [`crate::SppNet`] wires its layers explicitly instead (it needs
/// branch-level access for IOS lowering), but `Sequential` is convenient for
/// baselines and unit tests.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer + Send>>,
}

impl Sequential {
    /// An empty chain.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + Send + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True if the chain has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut cur = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur);
        }
        cur
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    fn name(&self) -> String {
        let names: Vec<String> = self.layers.iter().map(|l| l.name()).collect();
        format!("Sequential[{}]", names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcd_tensor::grad_check::numeric_grad;

    fn rng() -> SeededRng {
        SeededRng::new(1234)
    }

    #[test]
    fn conv2d_layer_forward_shape() {
        let mut r = rng();
        let mut conv = Conv2d::same(4, 64, 5, &mut r);
        let x = Tensor::randn([2, 4, 10, 10], 0.0, 1.0, &mut r);
        let y = conv.forward(&x);
        assert_eq!(y.dims(), &[2, 64, 10, 10]);
    }

    #[test]
    fn conv2d_layer_backward_accumulates_param_grads() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, &mut r);
        let x = Tensor::randn([1, 1, 5, 5], 0.0, 1.0, &mut r);
        let y = conv.forward(&x);
        conv.backward(&Tensor::ones(y.shape().clone()));
        assert!(conv.weight.grad.sq_norm() > 0.0);
        assert!(conv.bias.grad.sq_norm() > 0.0);
        // Second backward accumulates (does not overwrite).
        let g1 = conv.weight.grad.clone();
        conv.forward(&x);
        conv.backward(&Tensor::ones(y.shape().clone()));
        assert!(conv.weight.grad.max_abs_diff(&g1.scale(2.0)) < 1e-4);
    }

    #[test]
    fn relu_zeroes_negatives_and_masks_grads() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec([4], vec![-1., 2., -3., 4.]).unwrap();
        let y = relu.forward(&x);
        assert_eq!(y.data(), &[0., 2., 0., 4.]);
        let g = relu.backward(&Tensor::ones([4]));
        assert_eq!(g.data(), &[0., 1., 0., 1.]);
    }

    #[test]
    fn linear_layer_matches_manual_affine() {
        let mut r = rng();
        let mut lin = Linear::new(3, 2, &mut r);
        lin.weight.value = Tensor::from_vec([3, 2], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        lin.bias.value = Tensor::from_vec([2], vec![0.5, -0.5]).unwrap();
        let x = Tensor::from_vec([1, 3], vec![1., 1., 1.]).unwrap();
        let y = lin.forward(&x);
        assert_eq!(y.data(), &[9.5, 11.5]);
    }

    #[test]
    fn linear_backward_matches_numeric() {
        let mut r = rng();
        let mut lin = Linear::new(4, 3, &mut r);
        let x = Tensor::randn([2, 4], 0.0, 1.0, &mut r);
        let y = lin.forward(&x);
        let gx = lin.backward(&Tensor::ones(y.shape().clone()));

        let w = lin.weight.value.clone();
        let b = lin.bias.value.clone();
        let f = |xp: &Tensor| {
            let v = dcd_tensor::gemm_bias(xp.data(), w.data(), b.data(), 2, 4, 3);
            v.iter().sum::<f32>()
        };
        let num = numeric_grad(&x, 1e-2, f);
        assert!(
            gx.max_abs_diff(&num) < 0.02,
            "diff {}",
            gx.max_abs_diff(&num)
        );

        let x2 = x.clone();
        let b2 = lin.bias.value.clone();
        let fw = |wp: &Tensor| {
            let v = dcd_tensor::gemm_bias(x2.data(), wp.data(), b2.data(), 2, 4, 3);
            v.iter().sum::<f32>()
        };
        let num_w = numeric_grad(&lin.weight.value, 1e-2, fw);
        assert!(lin.weight.grad.max_abs_diff(&num_w) < 0.02);
    }

    #[test]
    fn spp_layer_fixed_output_for_any_input_size() {
        let mut r = rng();
        let mut spp = SppLayer::new([4, 2, 1]);
        assert_eq!(spp.out_features(256), 256 * 21);
        for &(h, w) in &[(12usize, 12usize), (25, 25), (7, 13)] {
            let x = Tensor::randn([2, 8, h, w], 0.0, 1.0, &mut r);
            let y = spp.forward(&x);
            assert_eq!(y.dims(), &[2, 8 * 21]);
        }
    }

    #[test]
    fn spp_backward_matches_numeric() {
        let mut r = rng();
        let x = Tensor::randn([1, 2, 6, 6], 0.0, 1.0, &mut r);
        let mut spp = SppLayer::new([3, 1]);
        let y = spp.forward(&x);
        let gx = spp.backward(&Tensor::ones(y.shape().clone()));
        let num = numeric_grad(&x, 1e-3, |xp| {
            let mut s = SppLayer::new([3, 1]);
            s.forward(xp).sum()
        });
        assert!(
            gx.max_abs_diff(&num) < 1e-2,
            "diff {}",
            gx.max_abs_diff(&num)
        );
    }

    #[test]
    fn spp_concat_order_is_level_major() {
        // One channel; levels [1, 2]: first column is the global max, the
        // remaining four are the 2x2 adaptive maxima.
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1., 2., 3., 4.]).unwrap();
        let mut spp = SppLayer::new([1, 2]);
        let y = spp.forward(&x);
        assert_eq!(y.data(), &[4., 1., 2., 3., 4.]);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut fl = Flatten::new();
        let x = Tensor::from_vec([2, 2, 2], (0..8).map(|v| v as f32).collect()).unwrap();
        let y = fl.forward(&x);
        assert_eq!(y.dims(), &[2, 4]);
        let gx = fl.backward(&y);
        assert_eq!(gx.dims(), x.dims());
        assert_eq!(gx.data(), x.data());
    }

    #[test]
    fn sequential_chains_and_exposes_params() {
        let mut r = rng();
        let mut net = Sequential::new()
            .push(Conv2d::same(1, 4, 3, &mut r))
            .push(Relu::new())
            .push(MaxPool2d::new(2, 2))
            .push(Flatten::new())
            .push(Linear::new(4 * 4 * 4, 2, &mut r));
        let x = Tensor::randn([3, 1, 8, 8], 0.0, 1.0, &mut r);
        let y = net.forward(&x);
        assert_eq!(y.dims(), &[3, 2]);
        assert_eq!(net.params_mut().len(), 4); // conv w+b, linear w+b
        let gx = net.backward(&Tensor::ones([3, 2]));
        assert_eq!(gx.dims(), x.dims());
    }

    #[test]
    fn sequential_end_to_end_gradient_check() {
        let mut r = rng();
        let conv = Conv2d::same(1, 2, 3, &mut r);
        let lin = Linear::new(2 * 4, 1, &mut r);
        let x = Tensor::randn([1, 1, 2, 2], 0.0, 1.0, &mut r);

        // Build twice with identical weights: once for analytic, once inside
        // the numeric closure.
        let mut net = Sequential::new()
            .push(conv.clone())
            .push(Relu::new())
            .push(Flatten::new())
            .push(lin.clone());
        let y = net.forward(&x);
        let gx = net.backward(&Tensor::ones(y.shape().clone()));

        let num = numeric_grad(&x, 1e-2, |xp| {
            let mut net2 = Sequential::new()
                .push(conv.clone())
                .push(Relu::new())
                .push(Flatten::new())
                .push(lin.clone());
            net2.forward(xp).sum()
        });
        assert!(
            gx.max_abs_diff(&num) < 0.05,
            "diff {}",
            gx.max_abs_diff(&num)
        );
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_before_forward_panics() {
        let mut relu = Relu::new();
        relu.backward(&Tensor::ones([1]));
    }
}
