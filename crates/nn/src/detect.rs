//! Detection-task types: bounding boxes, samples, detections.

use dcd_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box in normalized patch coordinates.
///
/// `(cx, cy)` is the box center and `(w, h)` the extent, all in `[0, 1]`
/// relative to the patch — the parametrization the detection head regresses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    /// Center x in `[0, 1]`.
    pub cx: f32,
    /// Center y in `[0, 1]`.
    pub cy: f32,
    /// Width in `[0, 1]`.
    pub w: f32,
    /// Height in `[0, 1]`.
    pub h: f32,
}

impl BBox {
    /// Builds a box from center/extent form.
    pub fn new(cx: f32, cy: f32, w: f32, h: f32) -> Self {
        BBox { cx, cy, w, h }
    }

    /// Corner form `(x0, y0, x1, y1)`.
    pub fn corners(&self) -> (f32, f32, f32, f32) {
        (
            self.cx - self.w / 2.0,
            self.cy - self.h / 2.0,
            self.cx + self.w / 2.0,
            self.cy + self.h / 2.0,
        )
    }

    /// Box area (clamped non-negative).
    pub fn area(&self) -> f32 {
        self.w.max(0.0) * self.h.max(0.0)
    }

    /// The regression target vector `[cx, cy, w, h]`.
    pub fn to_vec(&self) -> [f32; 4] {
        [self.cx, self.cy, self.w, self.h]
    }

    /// Reconstructs a box from a regression output.
    pub fn from_slice(v: &[f32]) -> Self {
        BBox::new(v[0], v[1], v[2], v[3])
    }
}

/// One training/eval sample: a 4-band patch and its (optional) crossing box.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Patch tensor `[C, H, W]` (4 bands for NAIP-like data).
    pub image: Tensor,
    /// Ground-truth crossing box, `None` for negative patches.
    pub label: Option<BBox>,
}

impl Sample {
    /// A positive sample.
    pub fn positive(image: Tensor, bbox: BBox) -> Self {
        Sample {
            image,
            label: Some(bbox),
        }
    }

    /// A negative (no-crossing) sample.
    pub fn negative(image: Tensor) -> Self {
        Sample { image, label: None }
    }

    /// Whether the sample contains a crossing.
    pub fn is_positive(&self) -> bool {
        self.label.is_some()
    }
}

/// A scored detection emitted by the model for one patch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Objectness score in `[0, 1]` (sigmoid of the logit).
    pub score: f32,
    /// Predicted box.
    pub bbox: BBox,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_roundtrip() {
        let b = BBox::new(0.5, 0.5, 0.2, 0.4);
        let (x0, y0, x1, y1) = b.corners();
        assert!((x0 - 0.4).abs() < 1e-6);
        assert!((y0 - 0.3).abs() < 1e-6);
        assert!((x1 - 0.6).abs() < 1e-6);
        assert!((y1 - 0.7).abs() < 1e-6);
    }

    #[test]
    fn area_of_degenerate_box_is_zero() {
        assert_eq!(BBox::new(0.5, 0.5, 0.0, 0.3).area(), 0.0);
        assert_eq!(BBox::new(0.5, 0.5, -0.1, 0.3).area(), 0.0);
    }

    #[test]
    fn vec_roundtrip() {
        let b = BBox::new(0.1, 0.2, 0.3, 0.4);
        assert_eq!(BBox::from_slice(&b.to_vec()), b);
    }

    #[test]
    fn sample_polarity() {
        let img = Tensor::zeros([4, 8, 8]);
        assert!(Sample::positive(img.clone(), BBox::new(0.5, 0.5, 0.1, 0.1)).is_positive());
        assert!(!Sample::negative(img).is_positive());
    }
}
