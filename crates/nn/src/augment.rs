//! Data augmentation for detection samples (extension).
//!
//! Drainage crossings have no canonical orientation — a culvert seen from
//! the air is the same feature under flips and right-angle rotations — so
//! the dihedral-4 augmentations are exactly the label-preserving transforms
//! for this task.

use crate::detect::{BBox, Sample};
use dcd_tensor::{SeededRng, Tensor};

/// Flips a `[C, H, W]` image left↔right.
pub fn flip_horizontal(image: &Tensor) -> Tensor {
    let dims = image.dims();
    assert_eq!(dims.len(), 3, "expected [C, H, W]");
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let mut out = Tensor::zeros([c, h, w]);
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                out.set(&[ci, y, w - 1 - x], image.at(&[ci, y, x]));
            }
        }
    }
    out
}

/// Flips a `[C, H, W]` image top↕bottom.
pub fn flip_vertical(image: &Tensor) -> Tensor {
    let dims = image.dims();
    assert_eq!(dims.len(), 3, "expected [C, H, W]");
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let mut out = Tensor::zeros([c, h, w]);
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                out.set(&[ci, h - 1 - y, x], image.at(&[ci, y, x]));
            }
        }
    }
    out
}

/// Rotates a `[C, H, W]` image 90° clockwise (output is `[C, W, H]`).
pub fn rotate90(image: &Tensor) -> Tensor {
    let dims = image.dims();
    assert_eq!(dims.len(), 3, "expected [C, H, W]");
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let mut out = Tensor::zeros([c, w, h]);
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                // (x, y) → (h−1−y, x) in the rotated frame.
                out.set(&[ci, x, h - 1 - y], image.at(&[ci, y, x]));
            }
        }
    }
    out
}

/// The box transform matching [`flip_horizontal`].
pub fn bbox_flip_horizontal(b: &BBox) -> BBox {
    BBox::new(1.0 - b.cx, b.cy, b.w, b.h)
}

/// The box transform matching [`flip_vertical`].
pub fn bbox_flip_vertical(b: &BBox) -> BBox {
    BBox::new(b.cx, 1.0 - b.cy, b.w, b.h)
}

/// The box transform matching [`rotate90`].
pub fn bbox_rotate90(b: &BBox) -> BBox {
    BBox::new(1.0 - b.cy, b.cx, b.h, b.w)
}

/// Applies a transform pair to a sample.
fn transform_sample(
    s: &Sample,
    img_f: impl Fn(&Tensor) -> Tensor,
    box_f: impl Fn(&BBox) -> BBox,
) -> Sample {
    Sample {
        image: img_f(&s.image),
        label: s.label.as_ref().map(box_f),
    }
}

/// Expands a dataset with dihedral augmentations.
///
/// Every sample is kept; each additionally contributes `per_sample` (≤ 3)
/// random distinct transforms drawn from {h-flip, v-flip, rot90}.
pub fn augment_dataset(samples: &[Sample], per_sample: usize, rng: &mut SeededRng) -> Vec<Sample> {
    let per_sample = per_sample.min(3);
    let mut out = Vec::with_capacity(samples.len() * (1 + per_sample));
    for s in samples {
        out.push(s.clone());
        let mut choices = [0usize, 1, 2];
        rng.shuffle(&mut choices);
        for &t in choices.iter().take(per_sample) {
            out.push(match t {
                0 => transform_sample(s, flip_horizontal, bbox_flip_horizontal),
                1 => transform_sample(s, flip_vertical, bbox_flip_vertical),
                _ => transform_sample(s, rotate90, bbox_rotate90),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_image() -> Tensor {
        Tensor::from_vec([1, 2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap()
    }

    #[test]
    fn hflip_reverses_rows() {
        let img = probe_image();
        let f = flip_horizontal(&img);
        assert_eq!(f.data(), &[3., 2., 1., 6., 5., 4.]);
    }

    #[test]
    fn vflip_reverses_columns() {
        let img = probe_image();
        let f = flip_vertical(&img);
        assert_eq!(f.data(), &[4., 5., 6., 1., 2., 3.]);
    }

    #[test]
    fn flips_are_involutions() {
        let img = probe_image();
        assert_eq!(flip_horizontal(&flip_horizontal(&img)), img);
        assert_eq!(flip_vertical(&flip_vertical(&img)), img);
    }

    #[test]
    fn rotate90_four_times_is_identity() {
        let img = probe_image();
        let r1 = rotate90(&img);
        assert_eq!(r1.dims(), &[1, 3, 2]);
        let r4 = rotate90(&rotate90(&rotate90(&r1)));
        assert_eq!(r4, img);
    }

    #[test]
    fn rotate90_moves_pixels_correctly() {
        // [1 2 3; 4 5 6] rotated cw → [4 1; 5 2; 6 3]
        let r = rotate90(&probe_image());
        assert_eq!(r.data(), &[4., 1., 5., 2., 6., 3.]);
    }

    #[test]
    fn bbox_transforms_track_pixels() {
        let b = BBox::new(0.25, 0.4, 0.1, 0.2);
        let h = bbox_flip_horizontal(&b);
        assert!((h.cx - 0.75).abs() < 1e-6);
        assert_eq!(h.cy, b.cy);
        let v = bbox_flip_vertical(&b);
        assert!((v.cy - 0.6).abs() < 1e-6);
        let r = bbox_rotate90(&b);
        assert!((r.cx - 0.6).abs() < 1e-6);
        assert!((r.cy - 0.25).abs() < 1e-6);
        assert_eq!(r.w, b.h);
        assert_eq!(r.h, b.w);
    }

    #[test]
    fn bbox_rotate90_four_times_identity() {
        let b = BBox::new(0.2, 0.7, 0.1, 0.3);
        let r4 = bbox_rotate90(&bbox_rotate90(&bbox_rotate90(&bbox_rotate90(&b))));
        assert!((r4.cx - b.cx).abs() < 1e-6);
        assert!((r4.cy - b.cy).abs() < 1e-6);
        assert_eq!(r4.w, b.w);
        assert_eq!(r4.h, b.h);
    }

    #[test]
    fn augment_dataset_grows_and_preserves_polarity() {
        let mut rng = SeededRng::new(4);
        let img = Tensor::zeros([1, 4, 4]);
        let samples = vec![
            Sample::positive(img.clone(), BBox::new(0.3, 0.3, 0.2, 0.2)),
            Sample::negative(img),
        ];
        let aug = augment_dataset(&samples, 2, &mut rng);
        assert_eq!(aug.len(), 6);
        assert_eq!(aug.iter().filter(|s| s.is_positive()).count(), 3);
    }

    #[test]
    fn augmented_boxes_stay_in_unit_square() {
        let mut rng = SeededRng::new(5);
        let img = Tensor::zeros([1, 4, 4]);
        let samples = vec![Sample::positive(img, BBox::new(0.1, 0.9, 0.1, 0.1))];
        for s in augment_dataset(&samples, 3, &mut rng) {
            let b = s.label.unwrap();
            assert!((0.0..=1.0).contains(&b.cx));
            assert!((0.0..=1.0).contains(&b.cy));
        }
    }
}
