//! Model checkpointing: save/load SPP-Net weights.
//!
//! A checkpoint is the architecture config plus the parameter tensors in
//! `params_mut()` order. Loading rebuilds the model from the config and
//! copies the tensors in, so a checkpoint is portable across processes and
//! (being JSON) across versions that keep the layer order stable.

use crate::sppnet::{SppNet, SppNetConfig};
use dcd_tensor::{SeededRng, Tensor};
use serde::{Deserialize, Serialize};

/// A serializable model snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Architecture the weights belong to.
    pub config: SppNetConfig,
    /// Parameter values in `SppNet::params_mut()` order.
    pub params: Vec<Tensor>,
}

/// Errors when restoring a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Parameter count differs from what the config's model expects.
    ParamCount {
        /// Parameters the model has.
        expected: usize,
        /// Parameters the checkpoint holds.
        actual: usize,
    },
    /// A parameter tensor has the wrong shape.
    ParamShape {
        /// Index in `params_mut()` order.
        index: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::ParamCount { expected, actual } => {
                write!(
                    f,
                    "checkpoint has {actual} parameters, model expects {expected}"
                )
            }
            CheckpointError::ParamShape { index } => {
                write!(f, "checkpoint parameter {index} has the wrong shape")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl Checkpoint {
    /// Snapshots a model's weights.
    pub fn save(model: &mut SppNet) -> Checkpoint {
        Checkpoint {
            config: model.config.clone(),
            params: model.params_mut().iter().map(|p| p.value.clone()).collect(),
        }
    }

    /// Restores a model from the snapshot.
    pub fn load(&self) -> Result<SppNet, CheckpointError> {
        // Seed irrelevant: every parameter is overwritten.
        let mut rng = SeededRng::new(0);
        let mut model = SppNet::new(self.config.clone(), &mut rng);
        let mut params = model.params_mut();
        if params.len() != self.params.len() {
            return Err(CheckpointError::ParamCount {
                expected: params.len(),
                actual: self.params.len(),
            });
        }
        for (index, (dst, src)) in params.iter_mut().zip(self.params.iter()).enumerate() {
            if dst.value.shape() != src.shape() {
                return Err(CheckpointError::ParamShape { index });
            }
            dst.value = src.clone();
        }
        drop(params);
        Ok(model)
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serializes")
    }

    /// Deserializes from JSON.
    pub fn from_json(s: &str) -> Result<Checkpoint, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained_ish_model() -> SppNet {
        let mut rng = SeededRng::new(33);
        let mut model = SppNet::new(SppNetConfig::tiny(), &mut rng);
        // Perturb weights so the snapshot is distinguishable from init.
        for p in model.params_mut() {
            p.value.map_inplace(|v| v + 0.123);
        }
        model
    }

    #[test]
    fn roundtrip_preserves_outputs() {
        let mut model = trained_ish_model();
        let x = Tensor::randn([2, 1, 16, 16], 0.0, 1.0, &mut SeededRng::new(1));
        let before = model.forward(&x);
        let ckpt = Checkpoint::save(&mut model);
        let mut restored = ckpt.load().expect("valid checkpoint");
        let after = restored.forward(&x);
        assert_eq!(before.obj_logits.data(), after.obj_logits.data());
        assert_eq!(before.boxes.data(), after.boxes.data());
    }

    #[test]
    fn json_roundtrip() {
        let mut model = trained_ish_model();
        let ckpt = Checkpoint::save(&mut model);
        let json = ckpt.to_json();
        let back = Checkpoint::from_json(&json).expect("valid json");
        let mut restored = back.load().expect("valid checkpoint");
        let x = Tensor::randn([1, 1, 16, 16], 0.0, 1.0, &mut SeededRng::new(2));
        let a = model.forward(&x);
        let b = restored.forward(&x);
        assert_eq!(a.obj_logits.data(), b.obj_logits.data());
    }

    #[test]
    fn param_count_mismatch_rejected() {
        let mut model = trained_ish_model();
        let mut ckpt = Checkpoint::save(&mut model);
        ckpt.params.pop();
        assert!(matches!(
            ckpt.load(),
            Err(CheckpointError::ParamCount { .. })
        ));
    }

    #[test]
    fn param_shape_mismatch_rejected() {
        let mut model = trained_ish_model();
        let mut ckpt = Checkpoint::save(&mut model);
        ckpt.params[0] = Tensor::zeros([1, 1]);
        assert!(matches!(
            ckpt.load(),
            Err(CheckpointError::ParamShape { index: 0 })
        ));
    }

    #[test]
    fn checkpoint_carries_architecture() {
        let mut rng = SeededRng::new(5);
        let mut cfg = SppNetConfig::tiny();
        cfg.fc2 = Some(16);
        let mut model = SppNet::new(cfg.clone(), &mut rng);
        let ckpt = Checkpoint::save(&mut model);
        assert_eq!(ckpt.config, cfg);
        let restored = ckpt.load().expect("valid");
        assert_eq!(restored.config, cfg);
    }
}
