//! Trainable parameters.

use dcd_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A trainable tensor with its gradient accumulator and momentum buffer.
///
/// Layers own their `Param`s; the optimizer walks them through
/// [`crate::layers::Layer::params_mut`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the most recent backward pass.
    pub grad: Tensor,
    /// SGD momentum buffer (velocity).
    pub velocity: Tensor,
    /// Whether weight decay applies (true for weights, false for biases,
    /// matching the usual convention).
    pub decay: bool,
}

impl Param {
    /// Wraps an initialized tensor as a trainable parameter.
    pub fn new(value: Tensor, decay: bool) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        let velocity = Tensor::zeros(value.shape().clone());
        Param {
            value,
            grad,
            velocity,
            decay,
        }
    }

    /// Resets the gradient to zero (start of a minibatch).
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().iter_mut().for_each(|x| *x = 0.0);
    }

    /// Number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad_and_velocity() {
        let p = Param::new(Tensor::ones([2, 3]), true);
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.velocity.sum(), 0.0);
        assert_eq!(p.numel(), 6);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones([4]), false);
        p.grad.data_mut().copy_from_slice(&[1., 2., 3., 4.]);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }
}
