//! Stochastic gradient descent with momentum and weight decay.
//!
//! Matches the paper's training setup (§6.1): lr 0.005, weight decay 0.0005,
//! momentum 0.9. Uses the classic (non-Nesterov) momentum update PyTorch's
//! `SGD` applies:
//!
//! ```text
//! g   = grad + wd·w          (decay only on parameters flagged for it)
//! v   = momentum·v + g
//! w  -= lr·v
//! ```

use crate::param::Param;

/// SGD optimizer configuration and update rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient in `[0, 1)`.
    pub momentum: f32,
    /// L2 weight-decay coefficient.
    pub weight_decay: f32,
}

impl Sgd {
    /// The paper's hyper-parameters: lr 0.005, momentum 0.9, decay 0.0005.
    pub fn paper() -> Self {
        Sgd {
            lr: 0.005,
            momentum: 0.9,
            weight_decay: 0.0005,
        }
    }

    /// Custom configuration.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        Sgd {
            lr,
            momentum,
            weight_decay,
        }
    }

    /// Applies one update to every parameter, then clears the gradients.
    pub fn step(&self, params: &mut [&mut Param]) {
        for p in params.iter_mut() {
            let wd = if p.decay { self.weight_decay } else { 0.0 };
            let n = p.value.numel();
            for i in 0..n {
                let g = p.grad.data()[i] + wd * p.value.data()[i];
                let v = self.momentum * p.velocity.data()[i] + g;
                p.velocity.data_mut()[i] = v;
                p.value.data_mut()[i] -= self.lr * v;
            }
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcd_tensor::Tensor;

    fn param_with_grad(value: f32, grad: f32, decay: bool) -> Param {
        let mut p = Param::new(Tensor::full([1], value), decay);
        p.grad.data_mut()[0] = grad;
        p
    }

    #[test]
    fn vanilla_step_descends_gradient() {
        let sgd = Sgd::new(0.1, 0.0, 0.0);
        let mut p = param_with_grad(1.0, 2.0, false);
        sgd.step(&mut [&mut p]);
        assert!((p.value.data()[0] - 0.8).abs() < 1e-6);
        assert_eq!(p.grad.data()[0], 0.0, "grad cleared after step");
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let sgd = Sgd::new(0.1, 0.9, 0.0);
        let mut p = param_with_grad(0.0, 1.0, false);
        sgd.step(&mut [&mut p]);
        assert!((p.value.data()[0] + 0.1).abs() < 1e-6); // v=1
        p.grad.data_mut()[0] = 1.0;
        sgd.step(&mut [&mut p]);
        // v = 0.9·1 + 1 = 1.9 → w = −0.1 − 0.19
        assert!((p.value.data()[0] + 0.29).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_applies_only_to_flagged_params() {
        let sgd = Sgd::new(1.0, 0.0, 0.1);
        let mut w = param_with_grad(1.0, 0.0, true);
        let mut b = param_with_grad(1.0, 0.0, false);
        sgd.step(&mut [&mut w, &mut b]);
        assert!((w.value.data()[0] - 0.9).abs() < 1e-6);
        assert!((b.value.data()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn paper_config_values() {
        let s = Sgd::paper();
        assert_eq!(s.lr, 0.005);
        assert_eq!(s.momentum, 0.9);
        assert_eq!(s.weight_decay, 0.0005);
    }

    #[test]
    fn converges_on_quadratic() {
        // Minimize f(w) = (w − 3)², grad = 2(w − 3).
        let sgd = Sgd::new(0.1, 0.9, 0.0);
        let mut p = Param::new(Tensor::zeros([1]), false);
        for _ in 0..100 {
            let w = p.value.data()[0];
            p.grad.data_mut()[0] = 2.0 * (w - 3.0);
            sgd.step(&mut [&mut p]);
        }
        assert!((p.value.data()[0] - 3.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_zero_lr() {
        Sgd::new(0.0, 0.9, 0.0);
    }
}
