//! Resilient inference on the fault-injected simulator.
//!
//! Production deployments scan whole watersheds ("a large volume of
//! inferences", §5.1), where transient GPU faults are a matter of time, not
//! chance. This module layers classic fault-tolerance policies over the
//! fallible executor surface of `dcd-ios`/`dcd-gpusim`:
//!
//! * [`RetryPolicy`] — bounded attempts with exponential backoff, the
//!   backoff *charged against the simulated host clock* so traces show the
//!   true latency cost of recovery;
//! * a watchdog on every `cudaDeviceSynchronize` (hangs surface as
//!   [`GpuError::DeviceHang`] instead of blocking forever, recovered by
//!   `cudaDeviceReset`);
//! * OOM-driven **batch-size degradation** — halve the batch and retry
//!   rather than abort;
//! * **schedule fallback** — after repeated failures on the IOS-optimized
//!   multi-stream schedule, drop to the sequential baseline (one stream,
//!   fewer concurrent launch sites) and keep going.
//!
//! [`RunHealth`] aggregates everything that happened so reports can state
//! not just *how fast* but *how bumpy* a run was.

use dcd_gpusim::{Gpu, GpuError};
use dcd_ios::{ExecError, Executor, Graph, Schedule};
use serde::{Deserialize, Serialize};

/// Bounded-retry policy with exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum attempts per inference (first try included). At least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry, simulated ns.
    pub base_backoff_ns: u64,
    /// Backoff ceiling, simulated ns.
    pub max_backoff_ns: u64,
    /// Watchdog deadline for each `cudaDeviceSynchronize`, simulated ns.
    pub watchdog_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ns: 100_000,   // 100 µs
            max_backoff_ns: 10_000_000, // 10 ms
            watchdog_ns: 100_000_000,   // 100 ms — far above any inference
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (0-based): `base · 2^retry`,
    /// capped at `max_backoff_ns`.
    pub fn backoff_ns(&self, retry: u32) -> u64 {
        let shifted = self.base_backoff_ns.saturating_mul(1u64 << retry.min(32));
        shifted.min(self.max_backoff_ns)
    }
}

/// What the resilience machinery saw and did during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunHealth {
    /// Injected kernel-launch failures observed.
    pub launch_failures: u64,
    /// Injected H2D/D2H transfer failures observed.
    pub memcpy_failures: u64,
    /// Allocation failures (including simulated VRAM pressure).
    pub oom_events: u64,
    /// Watchdog-detected device hangs (each followed by a device reset).
    pub device_hangs: u64,
    /// Retries issued (excludes first attempts).
    pub retries: u64,
    /// Batch halvings forced by OOM.
    pub degradations: u64,
    /// IOS→sequential schedule fallbacks taken.
    pub fallbacks: u64,
}

impl RunHealth {
    /// Total faults observed, across all categories.
    pub fn faults_seen(&self) -> u64 {
        self.launch_failures + self.memcpy_failures + self.oom_events + self.device_hangs
    }

    /// True when nothing went wrong and nothing had to be done about it.
    pub fn is_clean(&self) -> bool {
        *self == RunHealth::default()
    }

    /// Tallies a GPU error into the matching fault counter.
    pub fn record_error(&mut self, e: &GpuError) {
        dcd_obs::counter!("resilience.faults").inc();
        match e {
            GpuError::LaunchFailed { .. } => self.launch_failures += 1,
            GpuError::MemcpyFailed { .. } => self.memcpy_failures += 1,
            GpuError::OutOfMemory(_) => self.oom_events += 1,
            GpuError::DeviceHang { .. } => self.device_hangs += 1,
        }
    }

    /// Accumulates another health record into this one.
    pub fn merge(&mut self, other: &RunHealth) {
        self.launch_failures += other.launch_failures;
        self.memcpy_failures += other.memcpy_failures;
        self.oom_events += other.oom_events;
        self.device_hangs += other.device_hangs;
        self.retries += other.retries;
        self.degradations += other.degradations;
        self.fallbacks += other.fallbacks;
    }
}

/// Runs one inference under a retry policy, tallying into `health`.
///
/// Each failed attempt is recorded, then the host sleeps the backoff (on
/// the *simulated* clock — recovery time shows up in the trace) before
/// retrying. Returns the latency of the successful attempt, or the last
/// error once attempts are exhausted.
pub fn retry_inference(
    exec: &mut Executor<'_>,
    policy: &RetryPolicy,
    health: &mut RunHealth,
) -> Result<u64, GpuError> {
    let attempts = policy.max_attempts.max(1);
    let mut retry = 0u32;
    loop {
        match exec.try_run_inference(policy.watchdog_ns) {
            Ok(ns) => return Ok(ns),
            Err(e) => {
                health.record_error(&e);
                if retry + 1 >= attempts {
                    return Err(e);
                }
                health.retries += 1;
                dcd_obs::counter!("resilience.retries").inc();
                exec.gpu_mut().host_busy(policy.backoff_ns(retry));
                retry += 1;
            }
        }
    }
}

/// An executor wrapped with the full resilience stack: retry with backoff,
/// OOM-driven batch degradation, and fallback to a baseline schedule after
/// the primary schedule keeps failing.
pub struct ResilientRunner<'g> {
    exec: Executor<'g>,
    fallback: Schedule,
    policy: RetryPolicy,
    /// Everything observed and every recovery action taken so far.
    pub health: RunHealth,
    fell_back: bool,
}

impl<'g> ResilientRunner<'g> {
    /// Builds a runner on a (possibly fault-planned) GPU.
    ///
    /// The executor is constructed at batch 1 — the smallest footprint, so
    /// setup itself survives VRAM pressure — and then grown toward
    /// `target_batch`, halving on OOM ([`ResilientRunner::grow_batch`]).
    /// Fails only if the model does not fit at batch 1 or a schedule is
    /// invalid.
    pub fn new(
        graph: &'g Graph,
        primary: Schedule,
        fallback: Schedule,
        target_batch: usize,
        gpu: Gpu,
        policy: RetryPolicy,
    ) -> Result<Self, ExecError> {
        fallback.validate(graph)?;
        let exec = Executor::try_with_gpu(graph, primary, 1, gpu)?;
        let mut runner = ResilientRunner {
            exec,
            fallback,
            policy,
            health: RunHealth::default(),
            fell_back: false,
        };
        runner.grow_batch(target_batch)?;
        Ok(runner)
    }

    /// Grows the batch toward `target`, halving on OOM until an allocation
    /// fits. Returns the batch achieved. Degradations and OOM events are
    /// tallied in [`ResilientRunner::health`].
    pub fn grow_batch(&mut self, target: usize) -> Result<usize, ExecError> {
        let mut batch = target.max(1);
        loop {
            match self.exec.set_batch(batch) {
                Ok(()) => return Ok(batch),
                Err(e @ GpuError::OutOfMemory(_)) if batch > 1 => {
                    self.health.record_error(&e);
                    self.health.degradations += 1;
                    batch /= 2;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Current batch size (after any degradation).
    pub fn batch(&self) -> usize {
        self.exec.batch()
    }

    /// Whether the runner has fallen back to the baseline schedule.
    pub fn fell_back(&self) -> bool {
        self.fell_back
    }

    /// The wrapped executor.
    pub fn executor_mut(&mut self) -> &mut Executor<'g> {
        &mut self.exec
    }

    /// Consumes the runner, returning the executor (for trace extraction).
    pub fn into_executor(self) -> Executor<'g> {
        self.exec
    }

    /// Runs one inference with the full recovery ladder:
    ///
    /// 1. retry with backoff under the current schedule;
    /// 2. if attempts are exhausted and the primary schedule is still
    ///    active, fall back to the baseline schedule and retry once more;
    /// 3. only then propagate the error.
    pub fn run(&mut self) -> Result<u64, GpuError> {
        match retry_inference(&mut self.exec, &self.policy, &mut self.health) {
            Ok(ns) => Ok(ns),
            Err(first) => {
                if self.fell_back {
                    return Err(first);
                }
                self.fell_back = true;
                self.health.fallbacks += 1;
                dcd_obs::counter!("resilience.fallbacks").inc();
                self.exec
                    .set_schedule(self.fallback.clone())
                    .expect("fallback schedule validated at construction");
                retry_inference(&mut self.exec, &self.policy, &mut self.health)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcd_gpusim::{DeviceSpec, FaultPlan};
    use dcd_ios::{greedy_schedule, lower_sppnet, sequential_schedule};
    use dcd_nn::SppNetConfig;

    fn graph() -> Graph {
        lower_sppnet(&SppNetConfig::tiny(), (16, 16))
    }

    fn gpu_with(plan: FaultPlan) -> Gpu {
        let mut g = Gpu::new(DeviceSpec::test_gpu());
        g.set_fault_plan(plan);
        g
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            base_backoff_ns: 100,
            max_backoff_ns: 350,
            ..Default::default()
        };
        assert_eq!(p.backoff_ns(0), 100);
        assert_eq!(p.backoff_ns(1), 200);
        assert_eq!(p.backoff_ns(2), 350); // capped
        assert_eq!(p.backoff_ns(63), 350); // no overflow
    }

    #[test]
    fn health_tallies_and_merges() {
        let mut h = RunHealth::default();
        assert!(h.is_clean());
        h.record_error(&GpuError::LaunchFailed { stream: 1 });
        h.record_error(&GpuError::DeviceHang { watchdog_ns: 5 });
        h.retries += 1;
        assert_eq!(h.faults_seen(), 2);
        assert!(!h.is_clean());
        let mut total = RunHealth::default();
        total.merge(&h);
        total.merge(&h);
        assert_eq!(total.faults_seen(), 4);
        assert_eq!(total.retries, 2);
    }

    #[test]
    fn retry_recovers_from_transient_launch_failures() {
        let g = graph();
        let plan = FaultPlan {
            seed: 11,
            launch_failure_rate: 0.01,
            ..FaultPlan::none()
        };
        let mut exec =
            Executor::try_with_gpu(&g, sequential_schedule(&g), 1, gpu_with(plan)).expect("fits");
        let policy = RetryPolicy::default();
        let mut health = RunHealth::default();
        // Enough inferences that at least one launch draw fails.
        let mut failures_survived = 0;
        for _ in 0..20 {
            retry_inference(&mut exec, &policy, &mut health).expect("retries absorb transients");
            failures_survived = health.launch_failures;
        }
        assert!(failures_survived > 0, "fault plan injected nothing");
        assert_eq!(health.retries, health.launch_failures);
    }

    #[test]
    fn runner_degrades_batch_under_vram_pressure() {
        let g = graph();
        let spec = DeviceSpec::test_gpu();
        let pressure = spec.mem_capacity - g.weight_bytes() - g.activation_bytes(6);
        let plan = FaultPlan {
            vram_pressure_bytes: pressure,
            ..FaultPlan::none()
        };
        let mut runner = ResilientRunner::new(
            &g,
            greedy_schedule(&g),
            sequential_schedule(&g),
            16,
            gpu_with(plan),
            RetryPolicy::default(),
        )
        .expect("fits at batch 1");
        // 16 → 8 → 4: only 6 batches' worth of activations fit.
        assert_eq!(runner.batch(), 4);
        assert_eq!(runner.health.degradations, 2);
        assert_eq!(runner.health.oom_events, 2);
        assert!(runner.run().is_ok());
    }

    #[test]
    fn runner_falls_back_to_sequential_on_persistent_failure() {
        let g = graph();
        // Streams beyond 0 always fail to launch: the multi-stream greedy
        // schedule cannot complete, the single-stream sequential one can.
        let greedy = greedy_schedule(&g);
        assert!(greedy.max_width() > 1, "need a multi-stream schedule");
        let plan = FaultPlan {
            persistent_launch_failure_streams: vec![1, 2, 3],
            ..FaultPlan::none()
        };
        let mut runner = ResilientRunner::new(
            &g,
            greedy,
            sequential_schedule(&g),
            2,
            gpu_with(plan),
            RetryPolicy::default(),
        )
        .expect("fits");
        let ns = runner.run().expect("sequential fallback completes");
        assert!(ns > 0);
        assert!(runner.fell_back());
        assert_eq!(runner.health.fallbacks, 1);
        assert!(runner.health.launch_failures >= RetryPolicy::default().max_attempts as u64);
        // Subsequent inferences stay on the fallback and run clean.
        let faults_before = runner.health.faults_seen();
        assert!(runner.run().is_ok());
        assert_eq!(runner.health.faults_seen(), faults_before);
    }
}
