//! Resilient inference on the fault-injected simulator.
//!
//! Production deployments scan whole watersheds ("a large volume of
//! inferences", §5.1), where transient GPU faults are a matter of time, not
//! chance. This module layers classic fault-tolerance policies over the
//! fallible executor surface of `dcd-ios`/`dcd-gpusim`:
//!
//! * [`RetryPolicy`] — bounded attempts with exponential backoff, the
//!   backoff *charged against the simulated host clock* so traces show the
//!   true latency cost of recovery;
//! * a watchdog on every `cudaDeviceSynchronize` (hangs surface as
//!   [`GpuError::DeviceHang`] instead of blocking forever, recovered by
//!   `cudaDeviceReset`);
//! * OOM-driven **batch-size degradation** — halve the batch and retry
//!   rather than abort;
//! * **schedule fallback** — after repeated failures on the IOS-optimized
//!   multi-stream schedule, drop to the sequential baseline (one stream,
//!   fewer concurrent launch sites) and keep going.
//!
//! [`RunHealth`] aggregates everything that happened so reports can state
//! not just *how fast* but *how bumpy* a run was.

use dcd_gpusim::{splitmix64, unit_draw, Gpu, GpuError};
use dcd_ios::{ExecError, Executor, Graph, Schedule};
use serde::{Deserialize, Serialize};

/// Salt mixed into retry-jitter draws so they are independent of the fault
/// injector's launch/memcpy streams even under a shared seed.
const SALT_JITTER: u64 = 0x4A49_5454_4552_0003;

/// Bounded-retry policy with exponential backoff and optional seeded
/// jitter.
///
/// `#[non_exhaustive]`: construct with [`RetryPolicy::new`] /
/// [`RetryPolicy::default`] and the `with_*` builders so new knobs can be
/// added without breaking callers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct RetryPolicy {
    /// Maximum attempts per inference (first try included). At least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry, simulated ns.
    pub base_backoff_ns: u64,
    /// Backoff ceiling, simulated ns.
    pub max_backoff_ns: u64,
    /// Watchdog deadline for each `cudaDeviceSynchronize`, simulated ns.
    pub watchdog_ns: u64,
    /// Seed for decorrelated backoff jitter; `None` keeps the exact
    /// exponential schedule (the historical behaviour).
    pub jitter_seed: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ns: 100_000,   // 100 µs
            max_backoff_ns: 10_000_000, // 10 ms
            watchdog_ns: 100_000_000,   // 100 ms — far above any inference
            jitter_seed: None,
        }
    }
}

impl RetryPolicy {
    /// The default policy (alias for [`RetryPolicy::default`], matching the
    /// workspace config convention).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the attempt budget (first try included; clamped to ≥ 1).
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Sets the backoff before the first retry, simulated ns.
    pub fn with_base_backoff_ns(mut self, ns: u64) -> Self {
        self.base_backoff_ns = ns;
        self
    }

    /// Sets the backoff ceiling, simulated ns.
    pub fn with_max_backoff_ns(mut self, ns: u64) -> Self {
        self.max_backoff_ns = ns;
        self
    }

    /// Sets the per-synchronize watchdog deadline, simulated ns.
    pub fn with_watchdog_ns(mut self, ns: u64) -> Self {
        self.watchdog_ns = ns;
        self
    }

    /// Enables decorrelated backoff jitter with the given seed (see
    /// [`RetryPolicy::jittered_backoff_ns`] for the formula).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = Some(seed);
        self
    }

    /// Backoff before retry number `retry` (0-based): `base · 2^retry`,
    /// capped at `max_backoff_ns`. The deterministic, unjittered schedule.
    pub fn backoff_ns(&self, retry: u32) -> u64 {
        let shifted = self.base_backoff_ns.saturating_mul(1u64 << retry.min(32));
        shifted.min(self.max_backoff_ns)
    }

    /// Backoff before retry number `retry`, with decorrelated jitter when a
    /// seed is set (plain [`RetryPolicy::backoff_ns`] otherwise).
    ///
    /// The jittered value is the decorrelated-jitter variant of AWS's
    /// backoff taxonomy, made deterministic: with `prev = backoff_ns(retry)`
    /// and `u = unit_draw(splitmix64(seed ^ SALT_JITTER ^ counter)) ∈ [0,1)`,
    ///
    /// ```text
    /// backoff = min(max_backoff_ns, base + u · (3·prev − base))
    /// ```
    ///
    /// so the wait lands uniformly in `[base, 3·prev)` capped at the
    /// ceiling. `counter` must be unique per draw (callers thread a
    /// monotone retry counter, e.g. [`RunHealth::retries`]); two callers
    /// with different seeds desynchronize instead of retrying in lockstep.
    pub fn jittered_backoff_ns(&self, retry: u32, counter: u64) -> u64 {
        let Some(seed) = self.jitter_seed else {
            return self.backoff_ns(retry);
        };
        let prev = self.backoff_ns(retry);
        let span = prev.saturating_mul(3).saturating_sub(self.base_backoff_ns);
        let u = unit_draw(splitmix64(seed ^ SALT_JITTER ^ counter));
        self.base_backoff_ns
            .saturating_add((u * span as f64) as u64)
            .min(self.max_backoff_ns)
    }
}

/// What the resilience machinery saw and did during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunHealth {
    /// Injected kernel-launch failures observed.
    pub launch_failures: u64,
    /// Injected H2D/D2H transfer failures observed.
    pub memcpy_failures: u64,
    /// Allocation failures (including simulated VRAM pressure).
    pub oom_events: u64,
    /// Watchdog-detected device hangs (each followed by a device reset).
    pub device_hangs: u64,
    /// Retries issued (excludes first attempts).
    pub retries: u64,
    /// Batch halvings forced by OOM.
    pub degradations: u64,
    /// IOS→sequential schedule fallbacks taken.
    pub fallbacks: u64,
    /// Simulated host ns spent sleeping in retry backoff. Because
    /// [`RunHealth`] is `Copy`, per-request attribution is a snapshot
    /// diff: copy the health before a request, subtract after.
    pub backoff_wait_ns: u64,
}

impl RunHealth {
    /// Total faults observed, across all categories.
    pub fn faults_seen(&self) -> u64 {
        self.launch_failures + self.memcpy_failures + self.oom_events + self.device_hangs
    }

    /// True when nothing went wrong and nothing had to be done about it.
    pub fn is_clean(&self) -> bool {
        *self == RunHealth::default()
    }

    /// Tallies a GPU error into the matching fault counter.
    pub fn record_error(&mut self, e: &GpuError) {
        dcd_obs::counter!("resilience.faults").inc();
        match e {
            GpuError::LaunchFailed { .. } => self.launch_failures += 1,
            GpuError::MemcpyFailed { .. } => self.memcpy_failures += 1,
            GpuError::OutOfMemory(_) => self.oom_events += 1,
            GpuError::DeviceHang { .. } => self.device_hangs += 1,
        }
    }

    /// Accumulates another health record into this one.
    pub fn merge(&mut self, other: &RunHealth) {
        self.launch_failures += other.launch_failures;
        self.memcpy_failures += other.memcpy_failures;
        self.oom_events += other.oom_events;
        self.device_hangs += other.device_hangs;
        self.retries += other.retries;
        self.degradations += other.degradations;
        self.fallbacks += other.fallbacks;
        self.backoff_wait_ns += other.backoff_wait_ns;
    }

    /// Per-request attribution helper: the counters accumulated since
    /// `earlier` was snapshotted from this same (monotone) record.
    pub fn since(&self, earlier: &RunHealth) -> RunHealth {
        RunHealth {
            launch_failures: self.launch_failures - earlier.launch_failures,
            memcpy_failures: self.memcpy_failures - earlier.memcpy_failures,
            oom_events: self.oom_events - earlier.oom_events,
            device_hangs: self.device_hangs - earlier.device_hangs,
            retries: self.retries - earlier.retries,
            degradations: self.degradations - earlier.degradations,
            fallbacks: self.fallbacks - earlier.fallbacks,
            backoff_wait_ns: self.backoff_wait_ns - earlier.backoff_wait_ns,
        }
    }
}

/// Runs one inference under a retry policy, tallying into `health`.
///
/// Each failed attempt is recorded, then the host sleeps the backoff (on
/// the *simulated* clock — recovery time shows up in the trace) before
/// retrying. Returns the latency of the successful attempt, or the last
/// error once attempts are exhausted.
pub fn retry_inference(
    exec: &mut Executor<'_>,
    policy: &RetryPolicy,
    health: &mut RunHealth,
) -> Result<u64, GpuError> {
    let attempts = policy.max_attempts.max(1);
    let mut retry = 0u32;
    loop {
        match exec.try_run_inference(policy.watchdog_ns) {
            Ok(ns) => return Ok(ns),
            Err(e) => {
                health.record_error(&e);
                if retry + 1 >= attempts {
                    return Err(e);
                }
                health.retries += 1;
                dcd_obs::counter!("resilience.retries").inc();
                // health.retries is monotone across the record's lifetime,
                // making it the unique per-draw jitter counter.
                let backoff = policy.jittered_backoff_ns(retry, health.retries);
                health.backoff_wait_ns += backoff;
                exec.gpu_mut().host_busy(backoff);
                retry += 1;
            }
        }
    }
}

/// An executor wrapped with the full resilience stack: retry with backoff,
/// OOM-driven batch degradation, and fallback to a baseline schedule after
/// the primary schedule keeps failing.
pub struct ResilientRunner<'g> {
    exec: Executor<'g>,
    primary: Schedule,
    fallback: Schedule,
    policy: RetryPolicy,
    /// Everything observed and every recovery action taken so far.
    pub health: RunHealth,
    /// Latched after a failure-driven fallback: the primary schedule is
    /// considered broken and `use_primary_schedule` refuses to return.
    fell_back: bool,
    /// Which schedule is currently active (brownout may toggle this
    /// without latching `fell_back`).
    on_fallback: bool,
}

impl<'g> ResilientRunner<'g> {
    /// Builds a runner on a (possibly fault-planned) GPU.
    ///
    /// The executor is constructed at batch 1 — the smallest footprint, so
    /// setup itself survives VRAM pressure — and then grown toward
    /// `target_batch`, halving on OOM ([`ResilientRunner::grow_batch`]).
    /// Fails only if the model does not fit at batch 1 or a schedule is
    /// invalid.
    pub fn new(
        graph: &'g Graph,
        primary: Schedule,
        fallback: Schedule,
        target_batch: usize,
        gpu: Gpu,
        policy: RetryPolicy,
    ) -> Result<Self, ExecError> {
        fallback.validate(graph)?;
        let exec = Executor::try_with_gpu(graph, primary.clone(), 1, gpu)?;
        let mut runner = ResilientRunner {
            exec,
            primary,
            fallback,
            policy,
            health: RunHealth::default(),
            fell_back: false,
            on_fallback: false,
        };
        runner.grow_batch(target_batch)?;
        Ok(runner)
    }

    /// Grows the batch toward `target`, halving on OOM until an allocation
    /// fits. Returns the batch achieved. Degradations and OOM events are
    /// tallied in [`ResilientRunner::health`].
    pub fn grow_batch(&mut self, target: usize) -> Result<usize, ExecError> {
        let mut batch = target.max(1);
        loop {
            match self.exec.set_batch(batch) {
                Ok(()) => return Ok(batch),
                Err(e @ GpuError::OutOfMemory(_)) if batch > 1 => {
                    self.health.record_error(&e);
                    self.health.degradations += 1;
                    batch /= 2;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Current batch size (after any degradation).
    pub fn batch(&self) -> usize {
        self.exec.batch()
    }

    /// Whether a failure-driven fallback has latched (the primary schedule
    /// is considered broken for the rest of the run).
    pub fn fell_back(&self) -> bool {
        self.fell_back
    }

    /// Whether the fallback (sequential) schedule is currently active,
    /// for any reason — failure latch or brownout.
    pub fn on_fallback(&self) -> bool {
        self.on_fallback
    }

    /// Switches to the fallback schedule without latching `fell_back` —
    /// the brownout controller's "sequential mode" step. No-op when the
    /// fallback is already active.
    pub fn use_fallback_schedule(&mut self) -> Result<(), ExecError> {
        if !self.on_fallback {
            self.exec.set_schedule(self.fallback.clone())?;
            self.on_fallback = true;
        }
        Ok(())
    }

    /// Returns to the primary schedule unless a failure-driven fallback is
    /// latched (a broken schedule must not be revived by brownout
    /// recovery). Returns whether the primary is active afterwards.
    pub fn use_primary_schedule(&mut self) -> Result<bool, ExecError> {
        if self.fell_back {
            return Ok(false);
        }
        if self.on_fallback {
            self.exec.set_schedule(self.primary.clone())?;
            self.on_fallback = false;
        }
        Ok(true)
    }

    /// The wrapped executor.
    pub fn executor_mut(&mut self) -> &mut Executor<'g> {
        &mut self.exec
    }

    /// Consumes the runner, returning the executor (for trace extraction).
    pub fn into_executor(self) -> Executor<'g> {
        self.exec
    }

    /// Runs one inference with the full recovery ladder:
    ///
    /// 1. retry with backoff under the current schedule;
    /// 2. if attempts are exhausted and the primary schedule is still
    ///    active, fall back to the baseline schedule and retry once more;
    /// 3. only then propagate the error.
    pub fn run(&mut self) -> Result<u64, GpuError> {
        match retry_inference(&mut self.exec, &self.policy, &mut self.health) {
            Ok(ns) => Ok(ns),
            Err(first) => {
                if self.on_fallback {
                    // Already sequential (by latch or by brownout): there
                    // is no further schedule to retreat to.
                    return Err(first);
                }
                self.fell_back = true;
                self.on_fallback = true;
                self.health.fallbacks += 1;
                dcd_obs::counter!("resilience.fallbacks").inc();
                self.exec
                    .set_schedule(self.fallback.clone())
                    .expect("fallback schedule validated at construction");
                retry_inference(&mut self.exec, &self.policy, &mut self.health)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcd_gpusim::{DeviceSpec, FaultPlan};
    use dcd_ios::{greedy_schedule, lower_sppnet, sequential_schedule};
    use dcd_nn::SppNetConfig;

    fn graph() -> Graph {
        lower_sppnet(&SppNetConfig::tiny(), (16, 16))
    }

    fn gpu_with(plan: FaultPlan) -> Gpu {
        let mut g = Gpu::new(DeviceSpec::test_gpu());
        g.set_fault_plan(plan);
        g
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::new()
            .with_base_backoff_ns(100)
            .with_max_backoff_ns(350);
        assert_eq!(p.backoff_ns(0), 100);
        assert_eq!(p.backoff_ns(1), 200);
        assert_eq!(p.backoff_ns(2), 350); // capped
        assert_eq!(p.backoff_ns(63), 350); // no overflow
    }

    #[test]
    fn jittered_backoff_is_seeded_bounded_and_optional() {
        let plain = RetryPolicy::new()
            .with_base_backoff_ns(1_000)
            .with_max_backoff_ns(1_000_000);
        // No seed: jittered path is exactly the exponential schedule.
        for retry in 0..5 {
            assert_eq!(plain.jittered_backoff_ns(retry, 7), plain.backoff_ns(retry));
        }
        let seeded = plain.with_jitter_seed(99);
        for retry in 0..5u32 {
            for counter in 0..32u64 {
                let b = seeded.jittered_backoff_ns(retry, counter);
                assert!(b >= seeded.base_backoff_ns, "below base: {b}");
                assert!(b <= seeded.max_backoff_ns, "above cap: {b}");
                // Deterministic: same (retry, counter) → same draw.
                assert_eq!(b, seeded.jittered_backoff_ns(retry, counter));
            }
        }
        // Different counters must actually spread (decorrelation).
        let spread: std::collections::HashSet<u64> = (0..32u64)
            .map(|c| seeded.jittered_backoff_ns(2, c))
            .collect();
        assert!(spread.len() > 16, "jitter barely varies: {}", spread.len());
        // Different seeds desynchronize.
        let other = plain.with_jitter_seed(100);
        assert_ne!(
            (0..8u64)
                .map(|c| seeded.jittered_backoff_ns(1, c))
                .collect::<Vec<_>>(),
            (0..8u64)
                .map(|c| other.jittered_backoff_ns(1, c))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn policy_builders_and_serde_roundtrip() {
        let p = RetryPolicy::new()
            .with_max_attempts(0) // clamped to 1
            .with_base_backoff_ns(5)
            .with_max_backoff_ns(50)
            .with_watchdog_ns(500)
            .with_jitter_seed(3);
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.base_backoff_ns, 5);
        assert_eq!(p.max_backoff_ns, 50);
        assert_eq!(p.watchdog_ns, 500);
        assert_eq!(p.jitter_seed, Some(3));
        let back = RetryPolicy::deserialize(&serde::Serialize::serialize(&p)).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn health_roundtrips_through_value_tree() {
        let h = RunHealth {
            launch_failures: 1,
            memcpy_failures: 2,
            oom_events: 3,
            device_hangs: 4,
            retries: 5,
            degradations: 6,
            fallbacks: 7,
            backoff_wait_ns: 8,
        };
        let back = RunHealth::deserialize(&serde::Serialize::serialize(&h)).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn health_since_attributes_deltas() {
        let mut h = RunHealth {
            retries: 2,
            backoff_wait_ns: 300,
            ..Default::default()
        };
        let before = h;
        h.retries += 3;
        h.backoff_wait_ns += 700;
        h.launch_failures += 1;
        let delta = h.since(&before);
        assert_eq!(delta.retries, 3);
        assert_eq!(delta.backoff_wait_ns, 700);
        assert_eq!(delta.launch_failures, 1);
        assert_eq!(delta.memcpy_failures, 0);
    }

    #[test]
    fn health_tallies_and_merges() {
        let mut h = RunHealth::default();
        assert!(h.is_clean());
        h.record_error(&GpuError::LaunchFailed { stream: 1 });
        h.record_error(&GpuError::DeviceHang { watchdog_ns: 5 });
        h.retries += 1;
        assert_eq!(h.faults_seen(), 2);
        assert!(!h.is_clean());
        let mut total = RunHealth::default();
        total.merge(&h);
        total.merge(&h);
        assert_eq!(total.faults_seen(), 4);
        assert_eq!(total.retries, 2);
    }

    #[test]
    fn retry_recovers_from_transient_launch_failures() {
        let g = graph();
        let plan = FaultPlan {
            seed: 11,
            launch_failure_rate: 0.01,
            ..FaultPlan::none()
        };
        let mut exec =
            Executor::try_with_gpu(&g, sequential_schedule(&g), 1, gpu_with(plan)).expect("fits");
        let policy = RetryPolicy::default();
        let mut health = RunHealth::default();
        // Enough inferences that at least one launch draw fails.
        let mut failures_survived = 0;
        for _ in 0..20 {
            retry_inference(&mut exec, &policy, &mut health).expect("retries absorb transients");
            failures_survived = health.launch_failures;
        }
        assert!(failures_survived > 0, "fault plan injected nothing");
        assert_eq!(health.retries, health.launch_failures);
        assert!(
            health.backoff_wait_ns >= health.retries * policy.base_backoff_ns,
            "every retry must charge at least the base backoff"
        );
    }

    #[test]
    fn brownout_schedule_toggle_switches_without_latching() {
        let g = graph();
        let mut runner = ResilientRunner::new(
            &g,
            greedy_schedule(&g),
            sequential_schedule(&g),
            2,
            gpu_with(FaultPlan::none()),
            RetryPolicy::default(),
        )
        .expect("fits");
        assert!(!runner.on_fallback());
        runner.use_fallback_schedule().expect("switch to fallback");
        assert!(runner.on_fallback());
        assert!(!runner.fell_back(), "brownout must not latch fell_back");
        assert!(runner.run().is_ok());
        assert!(runner.use_primary_schedule().expect("switch back"));
        assert!(!runner.on_fallback());
        assert!(runner.run().is_ok());
        assert_eq!(runner.health.fallbacks, 0);
    }

    #[test]
    fn latched_fallback_refuses_primary_revival() {
        let g = graph();
        let greedy = greedy_schedule(&g);
        assert!(greedy.max_width() > 1);
        let plan = FaultPlan {
            persistent_launch_failure_streams: vec![1, 2, 3],
            ..FaultPlan::none()
        };
        let mut runner = ResilientRunner::new(
            &g,
            greedy,
            sequential_schedule(&g),
            2,
            gpu_with(plan),
            RetryPolicy::default(),
        )
        .expect("fits");
        runner.run().expect("fallback completes");
        assert!(runner.fell_back());
        assert!(runner.on_fallback());
        assert!(
            !runner.use_primary_schedule().expect("no-op"),
            "a latched fallback must not revive the broken primary"
        );
        assert!(runner.on_fallback());
    }

    #[test]
    fn runner_degrades_batch_under_vram_pressure() {
        let g = graph();
        let spec = DeviceSpec::test_gpu();
        let pressure = spec.mem_capacity - g.weight_bytes() - g.activation_bytes(6);
        let plan = FaultPlan {
            vram_pressure_bytes: pressure,
            ..FaultPlan::none()
        };
        let mut runner = ResilientRunner::new(
            &g,
            greedy_schedule(&g),
            sequential_schedule(&g),
            16,
            gpu_with(plan),
            RetryPolicy::default(),
        )
        .expect("fits at batch 1");
        // 16 → 8 → 4: only 6 batches' worth of activations fit.
        assert_eq!(runner.batch(), 4);
        assert_eq!(runner.health.degradations, 2);
        assert_eq!(runner.health.oom_events, 2);
        assert!(runner.run().is_ok());
    }

    #[test]
    fn runner_falls_back_to_sequential_on_persistent_failure() {
        let g = graph();
        // Streams beyond 0 always fail to launch: the multi-stream greedy
        // schedule cannot complete, the single-stream sequential one can.
        let greedy = greedy_schedule(&g);
        assert!(greedy.max_width() > 1, "need a multi-stream schedule");
        let plan = FaultPlan {
            persistent_launch_failure_streams: vec![1, 2, 3],
            ..FaultPlan::none()
        };
        let mut runner = ResilientRunner::new(
            &g,
            greedy,
            sequential_schedule(&g),
            2,
            gpu_with(plan),
            RetryPolicy::default(),
        )
        .expect("fits");
        let ns = runner.run().expect("sequential fallback completes");
        assert!(ns > 0);
        assert!(runner.fell_back());
        assert_eq!(runner.health.fallbacks, 1);
        assert!(runner.health.launch_failures >= RetryPolicy::default().max_attempts as u64);
        // Subsequent inferences stay on the fallback and run clean.
        let faults_before = runner.health.faults_seen();
        assert!(runner.run().is_ok());
        assert_eq!(runner.health.faults_seen(), faults_before);
    }
}
