//! nsys-style profiling harness (§7): runs the chosen model/schedule across
//! batch sizes and aggregates the three views of Figs 7–8 and Table 3.

use dcd_gpusim::{ApiKind, DeviceSpec, KernelClass, Trace};
use dcd_ios::{ios_schedule, lower_sppnet, Executor, IosOptions, StageCostModel};
use dcd_nn::SppNetConfig;
use dcd_profiler::ProfileReport;
use serde::{Deserialize, Serialize};

/// Profiling aggregates for one batch size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchProfile {
    /// Batch size profiled.
    pub batch: usize,
    /// Fig 7: GPU memops timing per image, ns.
    pub memops_per_image_ns: f64,
    /// Fig 7 context: device memory in use (weights + activations), bytes.
    pub mem_used_bytes: u64,
    /// Fig 8: `cuLibraryLoadData` share of API time, percent.
    pub lib_load_pct: f64,
    /// Fig 8: `cudaDeviceSynchronize` share of API time, percent.
    pub sync_pct: f64,
    /// Table 3: GEMM (matrix multiplication) share of kernel time, percent.
    pub gemm_pct: f64,
    /// Table 3: pooling share of kernel time, percent.
    pub pool_pct: f64,
    /// Table 3: convolution share of kernel time, percent.
    pub conv_pct: f64,
    /// Mean inference latency at this batch, ns.
    pub latency_ns: f64,
}

/// Profiles one batch size: builds the IOS schedule for that batch, runs
/// `iterations` inferences under the trace, and aggregates.
///
/// Returns the aggregates and the full raw trace (for
/// `ProfileReport::render` or a merged timeline export).
pub fn profile_run(
    config: &SppNetConfig,
    input_hw: (usize, usize),
    device: &DeviceSpec,
    batch: usize,
    iterations: usize,
) -> (BatchProfile, Trace) {
    let graph = lower_sppnet(config, input_hw);
    let mut cost = StageCostModel::new(&graph, device.clone(), batch);
    let schedule = ios_schedule(&graph, &mut cost, IosOptions::default());
    let mut exec = Executor::new(&graph, schedule, batch, device.clone());
    let mem_used_bytes = exec.mem_used();
    let mut total_latency = 0u64;
    for _ in 0..iterations {
        total_latency += exec.run_inference();
    }
    let trace = exec.into_trace();
    let report = ProfileReport::from_trace(&trace);
    let profile = BatchProfile {
        batch,
        memops_per_image_ns: report.memops().per_image_ns(batch, iterations),
        mem_used_bytes,
        // Typed lookups — no string-label matching against rendered rows.
        lib_load_pct: report.api_pct(ApiKind::LibraryLoadData),
        sync_pct: report.api_pct(ApiKind::DeviceSynchronize),
        gemm_pct: report.kernel_pct(KernelClass::Gemm),
        pool_pct: report.kernel_pct(KernelClass::Pool),
        conv_pct: report.kernel_pct(KernelClass::Conv),
        latency_ns: total_latency as f64 / iterations.max(1) as f64,
    };
    (profile, trace)
}

/// Profiles a whole batch-size sweep (the paper's 1, 2, 4, …, 64).
pub fn profile_batch_sweep(
    config: &SppNetConfig,
    input_hw: (usize, usize),
    device: &DeviceSpec,
    batches: &[usize],
    iterations: usize,
) -> Vec<BatchProfile> {
    batches
        .iter()
        .map(|&b| profile_run(config, input_hw, device, b, iterations).0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Vec<BatchProfile> {
        profile_batch_sweep(
            &SppNetConfig::candidate2(),
            (100, 100),
            &DeviceSpec::rtx_a5500(),
            &[1, 4, 16, 64],
            20,
        )
    }

    #[test]
    fn fig7_memops_per_image_falls_then_stabilizes() {
        let s = sweep();
        // Falls from batch 1 to 16…
        assert!(
            s[2].memops_per_image_ns < s[0].memops_per_image_ns,
            "batch16 {} vs batch1 {}",
            s[2].memops_per_image_ns,
            s[0].memops_per_image_ns
        );
        // …then stabilizes: 16 → 64 changes by <25%.
        let ratio = s[3].memops_per_image_ns / s[2].memops_per_image_ns;
        assert!((0.75..1.25).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fig7_memory_stays_far_below_capacity() {
        let s = sweep();
        for p in &s {
            assert!(p.mem_used_bytes < DeviceSpec::rtx_a5500().mem_capacity / 4);
        }
        assert!(s[3].mem_used_bytes > s[0].mem_used_bytes);
    }

    #[test]
    fn fig8_library_load_dominates_at_batch_1() {
        let s = sweep();
        assert!(
            s[0].lib_load_pct > 50.0,
            "lib load at batch 1 is {}%",
            s[0].lib_load_pct
        );
        assert!(s[0].sync_pct < s[0].lib_load_pct);
    }

    #[test]
    fn fig8_sync_share_rises_with_batch() {
        let s = sweep();
        assert!(
            s[3].sync_pct > s[0].sync_pct,
            "sync {}% at 64 vs {}% at 1",
            s[3].sync_pct,
            s[0].sync_pct
        );
        // At batch 64 synchronization rivals/overtakes library loading.
        assert!(
            s[3].sync_pct > 0.8 * s[3].lib_load_pct,
            "sync {}% vs lib {}% at batch 64",
            s[3].sync_pct,
            s[3].lib_load_pct
        );
    }

    #[test]
    fn table3_gemm_falls_conv_rises() {
        let s = sweep();
        assert!(
            s[0].gemm_pct > s[3].gemm_pct,
            "gemm {}% → {}%",
            s[0].gemm_pct,
            s[3].gemm_pct
        );
        assert!(
            s[3].conv_pct > s[0].conv_pct,
            "conv {}% → {}%",
            s[0].conv_pct,
            s[3].conv_pct
        );
        // At batch 64 convolution dominates the kernel timeline.
        assert!(s[3].conv_pct > 50.0, "conv at 64 is {}%", s[3].conv_pct);
        // At batch 1 GEMM leads conv (memory-bound FC vs small conv).
        assert!(s[0].gemm_pct > s[0].conv_pct);
    }

    #[test]
    fn trace_is_returned_for_rendering() {
        let (_, trace) = profile_run(
            &SppNetConfig::original(),
            (100, 100),
            &DeviceSpec::rtx_a5500(),
            2,
            3,
        );
        let text = ProfileReport::from_trace(&trace).render();
        assert!(text.contains("cudaLaunchKernel"));
    }
}
