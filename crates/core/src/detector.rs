//! Public detector API for downstream users.

use dcd_nn::trainer::{evaluate_batched, TrainConfig, Trainer};
use dcd_nn::{Detection, Sample, SppNet, SppNetConfig};
use dcd_tensor::{SeededRng, Tensor};

/// A trained drainage-crossing detector with a confidence threshold.
///
/// The paper's related work (§8.1) filters at confidence 0.7; we default to
/// 0.5, tunable per deployment.
pub struct DrainageCrossingDetector {
    model: SppNet,
    /// Minimum objectness score for a detection to be reported.
    pub threshold: f32,
}

impl DrainageCrossingDetector {
    /// Trains a detector from scratch on labelled patches.
    pub fn train(
        config: SppNetConfig,
        samples: &[Sample],
        train_config: TrainConfig,
        seed: u64,
    ) -> Self {
        let mut rng = SeededRng::new(seed);
        let mut model = SppNet::new(config, &mut rng);
        Trainer::new(train_config).train(&mut model, samples);
        DrainageCrossingDetector {
            model,
            threshold: 0.5,
        }
    }

    /// Wraps an already-trained model.
    pub fn from_model(model: SppNet) -> Self {
        DrainageCrossingDetector {
            model,
            threshold: 0.5,
        }
    }

    /// The architecture of the wrapped model.
    pub fn config(&self) -> &SppNetConfig {
        &self.model.config
    }

    /// Detects the crossing in one `[C, H, W]` patch; `None` below the
    /// confidence threshold.
    pub fn detect(&mut self, image: &Tensor) -> Option<Detection> {
        self.detect_batch(std::slice::from_ref(image))
            .pop()
            .flatten()
    }

    /// Batch detection over patches of identical shape.
    pub fn detect_batch(&mut self, images: &[Tensor]) -> Vec<Option<Detection>> {
        if images.is_empty() {
            return Vec::new();
        }
        let x = Tensor::stack(images);
        self.detect_tensor(&x)
    }

    /// [`DrainageCrossingDetector::detect_batch`] over an already-assembled
    /// `[N, C, H, W]` batch tensor — the scan hot path, which reuses one
    /// batch buffer across tiles instead of stacking per-patch tensors.
    pub fn detect_tensor(&mut self, x: &Tensor) -> Vec<Option<Detection>> {
        self.model
            .predict(x)
            .into_iter()
            .map(|d| {
                if d.score >= self.threshold {
                    Some(d)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Test-set AP at an IoU threshold (paper metric, Eq. 1).
    pub fn average_precision(&mut self, samples: &[Sample], iou_threshold: f32) -> f32 {
        evaluate_batched(&mut self.model, samples, iou_threshold, 20).0
    }

    /// Mutable access to the underlying model (fine-tuning, lowering).
    pub fn model_mut(&mut self) -> &mut SppNet {
        &mut self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcd_nn::{BBox, Sgd};

    fn toy_samples(n: usize, seed: u64) -> Vec<Sample> {
        let mut rng = SeededRng::new(seed);
        (0..n)
            .map(|i| {
                let mut img = Tensor::randn([1, 16, 16], 0.0, 0.1, &mut rng);
                if i % 2 == 0 {
                    for y in 6..10 {
                        for x in 6..10 {
                            img.set(&[0, y, x], 2.0);
                        }
                    }
                    Sample::positive(img, BBox::new(0.5, 0.5, 0.25, 0.25))
                } else {
                    Sample::negative(img)
                }
            })
            .collect()
    }

    fn quick_train() -> DrainageCrossingDetector {
        DrainageCrossingDetector::train(
            SppNetConfig::tiny(),
            &toy_samples(16, 1),
            TrainConfig {
                epochs: 10,
                batch_size: 8,
                sgd: Sgd::new(0.02, 0.9, 0.0005),
                ..Default::default()
            },
            7,
        )
    }

    #[test]
    fn trained_detector_separates_toy_classes() {
        let mut det = quick_train();
        det.threshold = 0.0; // look at raw scores
        let test = toy_samples(8, 2);
        let images: Vec<Tensor> = test.iter().map(|s| s.image.clone()).collect();
        let dets = det.detect_batch(&images);
        let pos_mean: f32 = dets
            .iter()
            .zip(test.iter())
            .filter(|(_, s)| s.is_positive())
            .map(|(d, _)| d.unwrap().score)
            .sum::<f32>()
            / 4.0;
        let neg_mean: f32 = dets
            .iter()
            .zip(test.iter())
            .filter(|(_, s)| !s.is_positive())
            .map(|(d, _)| d.unwrap().score)
            .sum::<f32>()
            / 4.0;
        assert!(
            pos_mean > neg_mean,
            "positive mean {pos_mean} vs negative {neg_mean}"
        );
    }

    #[test]
    fn threshold_filters_detections() {
        let mut det = quick_train();
        det.threshold = 1.1; // impossible
        let img = toy_samples(1, 3).remove(0).image;
        assert!(det.detect(&img).is_none());
    }

    #[test]
    fn average_precision_in_unit_range() {
        let mut det = quick_train();
        let ap = det.average_precision(&toy_samples(8, 4), 0.1);
        assert!((0.0..=1.0).contains(&ap));
    }

    #[test]
    fn empty_batch_is_empty() {
        let mut det = quick_train();
        assert!(det.detect_batch(&[]).is_empty());
    }
}
