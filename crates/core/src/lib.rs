//! # dcd-core
//!
//! The paper's primary contribution, end to end: **accuracy-constrained
//! efficiency optimization of SPP-Net inference for drainage-crossing
//! detection** (Fig 5), plus the public detector API and the §8.1 baseline.
//!
//! The pipeline (see [`pipeline`]):
//!
//! 1. NAS explores the §4.2 search space (`dcd-nas`), scoring candidates by
//!    test AP on the watershed patch dataset (`dcd-geodata` + `dcd-nn`);
//! 2. candidates with `a(n) > A` survive the accuracy constraint (§5.4);
//! 3. each survivor is lowered to the operator graph and scheduled by IOS
//!    (`dcd-ios`); the one with the lowest optimized latency wins;
//! 4. a batch-size sweep (§6.4) picks the optimal inference batch;
//! 5. the winner is profiled nsys-style across batch sizes
//!    (`dcd-profiler`, §7).
//!
//! [`detector::DrainageCrossingDetector`] packages the result for downstream
//! users; [`baseline`] provides the two-stage `rcnn-lite` comparator.

pub mod baseline;
pub mod detector;
pub mod pipeline;
pub mod profiling;
pub mod resilience;
pub mod scan;

pub use baseline::{RcnnLite, RcnnLiteConfig};
pub use detector::DrainageCrossingDetector;
pub use pipeline::{CandidateReport, Pipeline, PipelineConfig, PipelineResult};
pub use profiling::{profile_batch_sweep, profile_run, BatchProfile};
pub use resilience::{retry_inference, ResilientRunner, RetryPolicy, RunHealth};
pub use scan::{
    match_detections, nms, scan_scene, scan_scene_resilient, ResilientScanReport, ScanConfig,
    ScanError, SceneDetection, SimScanConfig,
};
