//! The accuracy-constrained efficiency optimization pipeline (Fig 5, §5.4).
//!
//! Formally: maximize `e(n)` over the architecture space `N`, subject to
//! `a(n) > A`. Accuracy comes from the NAS evaluator; efficiency is the
//! IOS-optimized inference latency on the simulated RTX A5500.

use crate::resilience::{retry_inference, RetryPolicy, RunHealth};
use dcd_gpusim::{DeviceSpec, FaultPlan, Gpu};
use dcd_ios::{
    ios_schedule, lower_sppnet, measure_latency, sequential_schedule, Executor, IosOptions,
    Schedule, StageCostModel,
};
use dcd_nas::{Evaluator, Experiment, ExplorationStrategy};
use dcd_nn::SppNetConfig;
use serde::{Deserialize, Serialize};

/// Pipeline parameters.
///
/// Non-exhaustive: construct with [`PipelineConfig::new`] (or `default()`)
/// and refine with the `with_*` methods, so new knobs (like the `obs`
/// toggle) stop being breaking changes.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Accuracy constraint `A`: candidates must score strictly above this.
    pub accuracy_threshold: f64,
    /// NAS trial budget.
    pub max_trials: usize,
    /// Patch size fed to inference (paper: 100×100).
    pub input_hw: (usize, usize),
    /// Target device.
    pub device: DeviceSpec,
    /// IOS pruning options.
    pub ios: IosOptions,
    /// Batch sizes swept in step 4 (paper: 1..64 in powers of two).
    pub batch_sizes: Vec<usize>,
    /// Warmup iterations per latency measurement.
    pub warmup: usize,
    /// Measured iterations per latency measurement.
    pub iterations: usize,
    /// Faults injected into every simulated measurement (`None`: healthy
    /// device; measurements use the infallible fast path).
    pub fault_plan: Option<FaultPlan>,
    /// Retry policy used when `fault_plan` is set.
    pub retry: RetryPolicy,
    /// Enable host observability (`dcd-obs` spans/metrics) for the run.
    /// One-way: running with `obs = true` turns recording on process-wide
    /// and leaves it on for the caller to drain.
    pub obs: bool,
}

impl PipelineConfig {
    /// The paper's defaults: `A = 0.95`, 16 trials, 100×100 input on a
    /// healthy RTX A5500, power-of-two batch sweep up to 64.
    pub fn new() -> Self {
        PipelineConfig {
            accuracy_threshold: 0.95,
            max_trials: 16,
            input_hw: (100, 100),
            device: DeviceSpec::rtx_a5500(),
            ios: IosOptions::default(),
            batch_sizes: vec![1, 2, 4, 8, 16, 32, 64],
            warmup: 2,
            iterations: 5,
            fault_plan: None,
            retry: RetryPolicy::default(),
            obs: false,
        }
    }

    /// Sets the accuracy constraint `A`.
    pub fn with_accuracy_threshold(mut self, accuracy_threshold: f64) -> Self {
        self.accuracy_threshold = accuracy_threshold;
        self
    }

    /// Sets the NAS trial budget.
    pub fn with_max_trials(mut self, max_trials: usize) -> Self {
        self.max_trials = max_trials;
        self
    }

    /// Sets the inference input size.
    pub fn with_input_hw(mut self, input_hw: (usize, usize)) -> Self {
        self.input_hw = input_hw;
        self
    }

    /// Sets the target device.
    pub fn with_device(mut self, device: DeviceSpec) -> Self {
        self.device = device;
        self
    }

    /// Sets the IOS pruning options.
    pub fn with_ios(mut self, ios: IosOptions) -> Self {
        self.ios = ios;
        self
    }

    /// Sets the batch sizes swept in step 4.
    pub fn with_batch_sizes(mut self, batch_sizes: Vec<usize>) -> Self {
        self.batch_sizes = batch_sizes;
        self
    }

    /// Sets warmup iterations per measurement.
    pub fn with_warmup(mut self, warmup: usize) -> Self {
        self.warmup = warmup;
        self
    }

    /// Sets measured iterations per measurement.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets the fault plan injected into simulated measurements.
    pub fn with_fault_plan(mut self, fault_plan: Option<FaultPlan>) -> Self {
        self.fault_plan = fault_plan;
        self
    }

    /// Sets the retry policy used when a fault plan is set.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables host observability for the run.
    pub fn with_obs(mut self, obs: bool) -> Self {
        self.obs = obs;
        self
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::new()
    }
}

/// Accuracy + efficiency report for one surviving candidate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidateReport {
    /// The candidate architecture.
    pub config: SppNetConfig,
    /// Paper-notation architecture string.
    pub summary: String,
    /// NAS score (`a(n)`).
    pub accuracy: f64,
    /// Latency of the sequential baseline schedule at batch 1, ms.
    pub sequential_ms: f64,
    /// Latency of the IOS-optimized schedule at batch 1, ms.
    pub optimized_ms: f64,
    /// The IOS schedule (stages of groups of op ids).
    pub schedule: Schedule,
    /// Faults seen and recovery actions taken while measuring this
    /// candidate (all-zero on a healthy device).
    pub health: RunHealth,
}

/// One point of the batch-size sweep (Fig 6).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BatchPoint {
    /// Batch size.
    pub batch: usize,
    /// Sequential-schedule efficiency, ns per image.
    pub sequential_ns_per_image: f64,
    /// Optimized-schedule efficiency, ns per image.
    pub optimized_ns_per_image: f64,
}

/// Full pipeline output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineResult {
    /// The NAS journal.
    pub experiment: Experiment,
    /// Candidates that passed the accuracy constraint, with their IOS
    /// latencies, sorted by ascending optimized latency.
    pub candidates: Vec<CandidateReport>,
    /// The most efficient accurate model (first of `candidates`).
    pub winner: SppNetConfig,
    /// Batch-size sweep of the winner.
    pub batch_sweep: Vec<BatchPoint>,
    /// Batch size chosen by the diminishing-gains rule (§6.4; paper: 32).
    pub optimal_batch: usize,
}

impl PipelineResult {
    /// Serializes the full run (NAS journal, candidate latencies, batch
    /// sweep, selections) as a pretty-JSON report.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("pipeline result serializes")
    }

    /// Restores a report from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// The pipeline driver.
pub struct Pipeline {
    /// Configuration.
    pub config: PipelineConfig,
}

impl Pipeline {
    /// A pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        assert!(
            !config.batch_sizes.is_empty(),
            "need at least one batch size"
        );
        Pipeline { config }
    }

    /// Benchmarks one configuration: sequential vs IOS-optimized latency at
    /// batch 1 (the Table 2 measurement).
    pub fn benchmark(&self, config: &SppNetConfig) -> (f64, f64, Schedule) {
        let (seq, opt, schedule, _) = self.benchmark_with_health(config);
        (seq, opt, schedule)
    }

    /// [`Pipeline::benchmark`] plus the [`RunHealth`] of the measurements —
    /// non-trivial only when the pipeline carries a fault plan.
    pub fn benchmark_with_health(&self, config: &SppNetConfig) -> (f64, f64, Schedule, RunHealth) {
        let _span = dcd_obs::span("pipeline.benchmark", dcd_obs::Category::Pipeline);
        let graph = lower_sppnet(config, self.config.input_hw);
        let seq = sequential_schedule(&graph);
        let mut cost = StageCostModel::new(&graph, self.config.device.clone(), 1);
        let opt = ios_schedule(&graph, &mut cost, self.config.ios);
        let mut health = RunHealth::default();
        let t_seq = self.measure(&graph, &seq, 1, &mut health);
        let t_opt = self.measure(&graph, &opt, 1, &mut health);
        (t_seq / 1e6, t_opt / 1e6, opt, health)
    }

    /// Mean latency of one schedule at one batch size, ns. On a healthy
    /// device this is plain [`measure_latency`]; with a fault plan, every
    /// inference runs under the retry policy and tallies into `health`.
    fn measure(
        &self,
        graph: &dcd_ios::Graph,
        schedule: &Schedule,
        batch: usize,
        health: &mut RunHealth,
    ) -> f64 {
        match &self.config.fault_plan {
            None => {
                measure_latency(
                    graph,
                    schedule,
                    batch,
                    &self.config.device,
                    self.config.warmup,
                    self.config.iterations,
                )
                .mean_ns
            }
            Some(plan) => {
                let mut gpu = Gpu::new(self.config.device.clone());
                gpu.set_fault_plan(plan.clone());
                let mut exec = Executor::try_with_gpu(graph, schedule.clone(), batch, gpu)
                    .unwrap_or_else(|e| panic!("measurement setup failed: {e}"));
                for _ in 0..self.config.warmup {
                    let _ = retry_inference(&mut exec, &self.config.retry, health);
                }
                let iters = self.config.iterations.max(1);
                let mut total = 0u64;
                for _ in 0..iters {
                    total += retry_inference(&mut exec, &self.config.retry, health)
                        .unwrap_or_else(|e| panic!("measurement exhausted retries: {e}"));
                }
                total as f64 / iters as f64
            }
        }
    }

    /// Sweeps batch sizes for one configuration, re-optimizing the schedule
    /// per batch size like the paper does (§6.4).
    pub fn batch_sweep(&self, config: &SppNetConfig) -> Vec<BatchPoint> {
        let _span = dcd_obs::span("pipeline.batch_sweep", dcd_obs::Category::Pipeline);
        let graph = lower_sppnet(config, self.config.input_hw);
        let seq = sequential_schedule(&graph);
        self.config
            .batch_sizes
            .iter()
            .map(|&batch| {
                let mut cost = StageCostModel::new(&graph, self.config.device.clone(), batch);
                let opt = ios_schedule(&graph, &mut cost, self.config.ios);
                let t_seq = measure_latency(
                    &graph,
                    &seq,
                    batch,
                    &self.config.device,
                    self.config.warmup,
                    self.config.iterations,
                );
                let t_opt = measure_latency(
                    &graph,
                    &opt,
                    batch,
                    &self.config.device,
                    self.config.warmup,
                    self.config.iterations,
                );
                BatchPoint {
                    batch,
                    sequential_ns_per_image: t_seq.efficiency_ns_per_image(),
                    optimized_ns_per_image: t_opt.efficiency_ns_per_image(),
                }
            })
            .collect()
    }

    /// §6.4's optimal batch: the last batch size that still improves
    /// per-image efficiency by more than 6% over the previous one — the
    /// point where gains become "diminishing" (the paper selects 32).
    pub fn pick_optimal_batch(sweep: &[BatchPoint]) -> usize {
        assert!(!sweep.is_empty(), "empty sweep");
        let mut best = sweep[0].batch;
        for w in sweep.windows(2) {
            let improvement =
                1.0 - w[1].optimized_ns_per_image / w[0].optimized_ns_per_image.max(1e-9);
            if improvement > 0.06 {
                best = w[1].batch;
            } else {
                break;
            }
        }
        best
    }

    /// Runs the full pipeline: NAS → accuracy filter → IOS ranking → batch
    /// sweep.
    ///
    /// Panics if no candidate clears the accuracy threshold (lower `A` or
    /// raise the trial budget).
    pub fn run(
        &self,
        strategy: &mut dyn ExplorationStrategy,
        evaluator: &dyn Evaluator,
    ) -> PipelineResult {
        if self.config.obs {
            dcd_obs::set_enabled(true);
        }
        let _span = dcd_obs::span("pipeline.run", dcd_obs::Category::Pipeline);
        let experiment = Experiment::run(strategy, evaluator, self.config.max_trials);
        let survivors = experiment.candidates_above(self.config.accuracy_threshold);
        assert!(
            !survivors.is_empty(),
            "no candidate exceeded the accuracy constraint A = {}",
            self.config.accuracy_threshold
        );
        let mut candidates: Vec<CandidateReport> = survivors
            .iter()
            .map(|t| {
                let (sequential_ms, optimized_ms, schedule, health) =
                    self.benchmark_with_health(&t.config);
                CandidateReport {
                    config: t.config.clone(),
                    summary: t.config.summary(),
                    accuracy: t.score,
                    sequential_ms,
                    optimized_ms,
                    schedule,
                    health,
                }
            })
            .collect();
        candidates.sort_by(|a, b| {
            a.optimized_ms
                .partial_cmp(&b.optimized_ms)
                .expect("finite latencies")
        });
        let winner = candidates[0].config.clone();
        let batch_sweep = self.batch_sweep(&winner);
        let optimal_batch = Self::pick_optimal_batch(&batch_sweep);
        PipelineResult {
            experiment,
            candidates,
            winner,
            batch_sweep,
            optimal_batch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcd_nas::{FunctionalEvaluator, RandomSearch, SppNetSearchSpace};

    fn quick_config() -> PipelineConfig {
        PipelineConfig::new()
            .with_max_trials(6)
            .with_batch_sizes(vec![1, 2, 4])
            .with_warmup(1)
            .with_iterations(2)
    }

    /// Accuracy proxy shaped like the paper's Table 1: bigger FC and SPP
    /// level help, with diminishing returns.
    fn proxy_accuracy(cfg: &SppNetConfig) -> f64 {
        let fc = (cfg.fc1 as f64).log2() / 13.0 * 0.02;
        let spp = cfg.spp_top_level as f64 * 0.004;
        0.93 + fc + spp
    }

    #[test]
    fn benchmark_shows_ios_win() {
        let p = Pipeline::new(quick_config());
        let (seq, opt, schedule) = p.benchmark(&SppNetConfig::original());
        assert!(opt < seq, "optimized {opt} ms vs sequential {seq} ms");
        assert!(schedule.num_stages() < 18);
        // The paper's magnitudes: a few tenths of a millisecond at batch 1.
        assert!(seq > 0.05 && seq < 5.0, "sequential {seq} ms out of range");
    }

    #[test]
    fn full_pipeline_selects_efficient_accurate_model() {
        let p = Pipeline::new(quick_config());
        let mut strat = RandomSearch::new(SppNetSearchSpace::paper(), 6, 7);
        let eval = FunctionalEvaluator::new(proxy_accuracy);
        let result = p.run(&mut strat, &eval);
        assert!(!result.candidates.is_empty());
        // Every surviving candidate clears the constraint.
        for c in &result.candidates {
            assert!(c.accuracy > 0.95);
            assert!(c.optimized_ms <= c.sequential_ms);
        }
        // Winner is the fastest survivor.
        for c in &result.candidates[1..] {
            assert!(result.candidates[0].optimized_ms <= c.optimized_ms);
        }
        assert_eq!(result.winner, result.candidates[0].config);
        assert_eq!(result.batch_sweep.len(), 3);
    }

    #[test]
    fn pipeline_result_roundtrips_json() {
        let p = Pipeline::new(quick_config());
        let mut strat = RandomSearch::new(SppNetSearchSpace::paper(), 4, 9);
        let eval = FunctionalEvaluator::new(proxy_accuracy);
        let result = p.run(&mut strat, &eval);
        let json = result.to_json();
        let back = PipelineResult::from_json(&json).expect("valid json");
        assert_eq!(back.winner, result.winner);
        assert_eq!(back.optimal_batch, result.optimal_batch);
        assert_eq!(back.candidates.len(), result.candidates.len());
    }

    #[test]
    #[should_panic(expected = "accuracy constraint")]
    fn impossible_constraint_panics() {
        let mut cfg = quick_config();
        cfg.accuracy_threshold = 2.0; // unreachable
        let p = Pipeline::new(cfg);
        let mut strat = RandomSearch::new(SppNetSearchSpace::paper(), 4, 1);
        let eval = FunctionalEvaluator::new(proxy_accuracy);
        p.run(&mut strat, &eval);
    }

    #[test]
    fn batch_sweep_efficiency_improves_then_plateaus() {
        let mut cfg = quick_config();
        cfg.batch_sizes = vec![1, 2, 4, 8, 16, 32, 64];
        let p = Pipeline::new(cfg);
        let sweep = p.batch_sweep(&SppNetConfig::candidate2());
        // Efficiency (ns/image) is non-increasing over the first steps.
        assert!(sweep[1].optimized_ns_per_image < sweep[0].optimized_ns_per_image);
        // Relative gain at the tail is smaller than at the head
        // (diminishing returns, Fig 6).
        let head_gain = sweep[0].optimized_ns_per_image / sweep[1].optimized_ns_per_image;
        let tail_gain = sweep[5].optimized_ns_per_image / sweep[6].optimized_ns_per_image;
        assert!(
            head_gain > tail_gain,
            "head {head_gain} vs tail {tail_gain}"
        );
    }

    #[test]
    fn faulted_benchmark_reports_health() {
        use dcd_gpusim::FaultPlan;
        let mut cfg = quick_config();
        cfg.fault_plan = Some(FaultPlan {
            seed: 3,
            launch_failure_rate: 0.02,
            ..FaultPlan::none()
        });
        let p = Pipeline::new(cfg);
        let (seq, opt, _, health) = p.benchmark_with_health(&SppNetConfig::original());
        assert!(seq > 0.0 && opt > 0.0);
        assert!(health.faults_seen() > 0, "fault plan injected nothing");
        // A healthy pipeline over the same candidate reports a clean bill.
        let clean = Pipeline::new(quick_config());
        let (_, _, _, h2) = clean.benchmark_with_health(&SppNetConfig::original());
        assert!(h2.is_clean());
    }

    #[test]
    fn optimal_batch_rule_detects_plateau() {
        let sweep = vec![
            BatchPoint {
                batch: 1,
                sequential_ns_per_image: 0.0,
                optimized_ns_per_image: 1000.0,
            },
            BatchPoint {
                batch: 2,
                sequential_ns_per_image: 0.0,
                optimized_ns_per_image: 600.0,
            },
            BatchPoint {
                batch: 4,
                sequential_ns_per_image: 0.0,
                optimized_ns_per_image: 400.0,
            },
            BatchPoint {
                batch: 8,
                sequential_ns_per_image: 0.0,
                optimized_ns_per_image: 390.0,
            },
            BatchPoint {
                batch: 16,
                sequential_ns_per_image: 0.0,
                optimized_ns_per_image: 385.0,
            },
        ];
        assert_eq!(Pipeline::pick_optimal_batch(&sweep), 4);
    }
}
