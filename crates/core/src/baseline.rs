//! `rcnn-lite`: a two-stage region-proposal baseline (§8.1 comparator).
//!
//! The paper's related work applies Faster R-CNN (ResNet-50 backbone) to the
//! same watershed and reports accuracy 0.882 / IoU 0.668. We build the
//! closest substitute our stack supports: dense window proposals over the
//! patch, each scored by a small CNN — the classic R-CNN recipe. It shares
//! the evaluation path with SPP-Net, and because it runs the CNN once *per
//! proposal* instead of once per patch, it demonstrates the same qualitative
//! trade-off: competitive accuracy at a much higher inference cost.

use dcd_geodata::render::clip_patch;
use dcd_nn::metrics::evaluate_detections;
use dcd_nn::trainer::{TrainConfig, Trainer};
use dcd_nn::{BBox, Detection, PrPoint, Sample, SppNet, SppNetConfig};
use dcd_tensor::{SeededRng, Tensor};

/// rcnn-lite parameters.
#[derive(Debug, Clone, Copy)]
pub struct RcnnLiteConfig {
    /// Proposal window side length, pixels.
    pub window: usize,
    /// Proposals per axis (total = grid²).
    pub grid: usize,
    /// Scorer training settings.
    pub train: TrainConfig,
}

impl RcnnLiteConfig {
    /// Defaults sized for `patch`-pixel inputs: windows of a third of the
    /// patch on a 5×5 proposal grid.
    pub fn for_patch(patch: usize) -> Self {
        RcnnLiteConfig {
            window: (patch / 3).max(8),
            grid: 5,
            train: TrainConfig::default(),
        }
    }
}

/// The two-stage baseline detector.
pub struct RcnnLite {
    scorer: SppNet,
    config: RcnnLiteConfig,
}

impl RcnnLite {
    /// Trains the proposal scorer.
    ///
    /// Positive crops are windows centred on the ground-truth box; negative
    /// crops come from negative patches and from off-crossing corners of
    /// positive patches (hard negatives).
    pub fn train(samples: &[Sample], config: RcnnLiteConfig, seed: u64) -> Self {
        let mut rng = SeededRng::new(seed);
        let bands = samples.first().map(|s| s.image.dims()[0]).unwrap_or(4);
        let mut scorer_cfg = SppNetConfig::tiny();
        scorer_cfg.in_channels = bands;
        scorer_cfg.channels = [8, 16, 16];
        scorer_cfg.fc1 = 64;
        let mut scorer = SppNet::new(scorer_cfg, &mut rng);

        let mut crops: Vec<Sample> = Vec::new();
        for s in samples {
            let dims = s.image.dims();
            let (h, w) = (dims[1], dims[2]);
            match s.label {
                Some(b) => {
                    let cx = (b.cx * w as f32) as usize;
                    let cy = (b.cy * h as f32) as usize;
                    let crop = clip_patch(&s.image, cx, cy, config.window);
                    // The crossing is centred in its proposal window; its
                    // extent converts from patch to window coordinates.
                    let ww = (b.w * w as f32 / config.window as f32).min(1.5);
                    let wh = (b.h * h as f32 / config.window as f32).min(1.5);
                    crops.push(Sample::positive(crop, BBox::new(0.5, 0.5, ww, wh)));
                    // Hard negatives: windows of the same patch away from
                    // the crossing — they contain the road or the stream
                    // alone, which is exactly what the scorer must reject.
                    for _ in 0..2 {
                        for _attempt in 0..20 {
                            let nx = config.window / 2
                                + rng.index(w.saturating_sub(config.window).max(1));
                            let ny = config.window / 2
                                + rng.index(h.saturating_sub(config.window).max(1));
                            let far = nx.abs_diff(cx).max(ny.abs_diff(cy)) > config.window / 2;
                            if far {
                                crops.push(Sample::negative(clip_patch(
                                    &s.image,
                                    nx,
                                    ny,
                                    config.window,
                                )));
                                break;
                            }
                        }
                    }
                }
                None => {
                    for _ in 0..2 {
                        let cx =
                            config.window / 2 + rng.index(w.saturating_sub(config.window).max(1));
                        let cy =
                            config.window / 2 + rng.index(h.saturating_sub(config.window).max(1));
                        crops.push(Sample::negative(clip_patch(
                            &s.image,
                            cx,
                            cy,
                            config.window,
                        )));
                    }
                }
            }
        }
        Trainer::new(config.train).train(&mut scorer, &crops);
        RcnnLite { scorer, config }
    }

    /// Number of proposals evaluated per patch (grid²) — the per-image CNN
    /// invocation count that makes two-stage detection slow.
    pub fn proposals_per_image(&self) -> usize {
        self.config.grid * self.config.grid
    }

    /// Detects the crossing in a `[C, H, W]` patch: scores every proposal
    /// window, returns the best as a detection in patch coordinates.
    pub fn detect(&mut self, image: &Tensor) -> Detection {
        let dims = image.dims();
        let (h, w) = (dims[1], dims[2]);
        let g = self.config.grid;
        let mut crops: Vec<Tensor> = Vec::with_capacity(g * g);
        let mut centers: Vec<(usize, usize)> = Vec::with_capacity(g * g);
        // Interior grid: every window lies fully inside the patch, matching
        // the (padding-free) crops the scorer was trained on.
        let win = self.config.window;
        let span_x = w.saturating_sub(win);
        let span_y = h.saturating_sub(win);
        for gy in 0..g {
            for gx in 0..g {
                let cx = win / 2
                    + if g > 1 {
                        gx * span_x / (g - 1)
                    } else {
                        span_x / 2
                    };
                let cy = win / 2
                    + if g > 1 {
                        gy * span_y / (g - 1)
                    } else {
                        span_y / 2
                    };
                crops.push(clip_patch(image, cx, cy, win));
                centers.push((cx, cy));
            }
        }
        let x = Tensor::stack(&crops);
        let dets = self.scorer.predict(&x);
        let (best_i, best) = dets
            .iter()
            .enumerate()
            .max_by(|a, b| {
                // NaN logits rank last instead of panicking the selection.
                let rank = |s: f32| if s.is_nan() { f32::NEG_INFINITY } else { s };
                rank(a.1.score).total_cmp(&rank(b.1.score))
            })
            .expect("at least one proposal");
        // Second-stage refinement: the scorer regresses a box in *window*
        // coordinates; map it back to patch coordinates (the R-CNN recipe).
        let (cx, cy) = centers[best_i];
        let win = self.config.window as f32;
        let x0 = cx as f32 - win / 2.0;
        let y0 = cy as f32 - win / 2.0;
        Detection {
            score: best.score,
            bbox: BBox::new(
                (x0 + best.bbox.cx * win) / w as f32,
                (y0 + best.bbox.cy * win) / h as f32,
                (best.bbox.w * win / w as f32).clamp(0.02, 1.0),
                (best.bbox.h * win / h as f32).clamp(0.02, 1.0),
            ),
        }
    }

    /// Evaluates AP over labelled patches at an IoU threshold.
    pub fn evaluate(&mut self, samples: &[Sample], iou_threshold: f32) -> (f32, Vec<PrPoint>) {
        let preds: Vec<(f32, BBox)> = samples
            .iter()
            .map(|s| {
                let d = self.detect(&s.image);
                (d.score, d.bbox)
            })
            .collect();
        let truths: Vec<Option<BBox>> = samples.iter().map(|s| s.label).collect();
        evaluate_detections(&preds, &truths, iou_threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcd_nn::Sgd;

    /// Toy patches: a bright blob marks the crossing.
    fn toy_samples(n: usize, seed: u64, size: usize) -> Vec<Sample> {
        let mut rng = SeededRng::new(seed);
        (0..n)
            .map(|i| {
                let mut img = Tensor::randn([1, size, size], 0.0, 0.1, &mut rng);
                if i % 2 == 0 {
                    // Blob at a random interior location.
                    let cx = size / 4 + rng.index(size / 2);
                    let cy = size / 4 + rng.index(size / 2);
                    for y in cy.saturating_sub(2)..(cy + 2).min(size) {
                        for x in cx.saturating_sub(2)..(cx + 2).min(size) {
                            img.set(&[0, y, x], 2.0);
                        }
                    }
                    Sample::positive(
                        img,
                        BBox::new(cx as f32 / size as f32, cy as f32 / size as f32, 0.2, 0.2),
                    )
                } else {
                    Sample::negative(img)
                }
            })
            .collect()
    }

    fn quick_config() -> RcnnLiteConfig {
        let mut c = RcnnLiteConfig::for_patch(32);
        c.train = TrainConfig {
            epochs: 8,
            batch_size: 8,
            sgd: Sgd::new(0.02, 0.9, 0.0005),
            ..Default::default()
        };
        c
    }

    #[test]
    fn proposal_count_is_grid_squared() {
        let baseline = RcnnLite::train(&toy_samples(4, 1, 32), quick_config(), 0);
        assert_eq!(baseline.proposals_per_image(), 25);
    }

    #[test]
    fn detect_returns_in_bounds_box() {
        let mut baseline = RcnnLite::train(&toy_samples(8, 2, 32), quick_config(), 0);
        let img = toy_samples(1, 3, 32).remove(0).image;
        let d = baseline.detect(&img);
        assert!((0.0..=1.0).contains(&d.bbox.cx));
        assert!((0.0..=1.0).contains(&d.bbox.cy));
        assert!((0.0..=1.0).contains(&d.score));
    }

    #[test]
    fn baseline_beats_chance_on_separable_toy_data() {
        let mut baseline = RcnnLite::train(&toy_samples(24, 4, 32), quick_config(), 0);
        // Lenient IoU — the proposal grid quantizes locations.
        let (ap, _) = baseline.evaluate(&toy_samples(12, 5, 32), 0.05);
        assert!(ap > 0.5, "baseline AP {ap}");
    }
}
