//! Whole-scene scanning: slide the detector across a full watershed raster
//! and return georeferenced crossing detections.
//!
//! This is the deployment mode the paper motivates ("a large volume of
//! inferences", §5.1): the detector was trained on 100×100 patches, and a
//! study area is scanned by tiling it with overlapping patches, batching
//! them through the CNN (at the batch size the pipeline selected), mapping
//! detections back to raster coordinates, and de-duplicating with
//! non-maximum suppression.

use crate::detector::DrainageCrossingDetector;
use crate::resilience::{ResilientRunner, RetryPolicy, RunHealth};
use dcd_geodata::render::clip_patch_into;
use dcd_gpusim::{DeviceSpec, FaultPlan, Gpu, GpuError};
use dcd_ios::{
    ios_schedule, lower_sppnet, sequential_schedule, ExecError, IosOptions, StageCostModel,
};
use dcd_nn::metrics::iou;
use dcd_nn::BBox;
use dcd_tensor::Tensor;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A detection in scene (raster) coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneDetection {
    /// Crossing x in raster cells.
    pub x: usize,
    /// Crossing y in raster cells.
    pub y: usize,
    /// Objectness score.
    pub score: f32,
    /// Box in raster cells `(w, h)`.
    pub w: f32,
    /// Box height in raster cells.
    pub h: f32,
}

impl SceneDetection {
    fn bbox(&self, scene_w: usize, scene_h: usize) -> BBox {
        BBox::new(
            self.x as f32 / scene_w as f32,
            self.y as f32 / scene_h as f32,
            self.w / scene_w as f32,
            self.h / scene_h as f32,
        )
    }
}

/// Scan parameters.
///
/// Non-exhaustive: construct with [`ScanConfig::for_patch`] and refine with
/// the `with_*` methods, so new fields (like the `obs` toggle) stop being
/// breaking changes.
#[non_exhaustive]
#[derive(Debug, Clone, Copy)]
pub struct ScanConfig {
    /// Patch side length fed to the detector (must match training).
    pub patch_size: usize,
    /// Tiling stride. The detector is trained on patches with the crossing
    /// *at the centre* (§3.2), so it only fires when a tile centre lands
    /// near a crossing — use a small stride (patch/8) for high recall and
    /// let NMS collapse the duplicates.
    pub stride: usize,
    /// Inference batch size (use the pipeline's optimal batch).
    pub batch_size: usize,
    /// NMS IoU threshold: detections overlapping more than this collapse
    /// onto the higher-scored one.
    pub nms_iou: f32,
    /// Point-suppression radius in cells: detections within this Chebyshev
    /// distance of a stronger one are dropped (crossings are point features;
    /// box IoU alone under-suppresses duplicate chains along roads).
    pub nms_radius: usize,
    /// Input normalization applied to each clipped patch (the dataset
    /// normalizes reflectance to `[-1, 1]`; scanning must match).
    pub normalize: bool,
    /// Enable host observability (`dcd-obs` spans/metrics) for the scan.
    /// One-way: scanning with `obs = true` turns recording on process-wide
    /// and leaves it on for the caller to drain.
    pub obs: bool,
}

impl ScanConfig {
    /// Defaults for a given patch size: eighth-patch stride, batch 32 (the
    /// paper's optimal), NMS at IoU 0.3, observability off.
    pub fn for_patch(patch_size: usize) -> Self {
        ScanConfig {
            patch_size,
            stride: (patch_size / 8).max(1),
            batch_size: 32,
            nms_iou: 0.3,
            nms_radius: (patch_size / 6).max(2),
            normalize: true,
            obs: false,
        }
    }

    /// Sets the tiling stride.
    pub fn with_stride(mut self, stride: usize) -> Self {
        self.stride = stride;
        self
    }

    /// Sets the inference batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Sets the NMS IoU threshold.
    pub fn with_nms_iou(mut self, nms_iou: f32) -> Self {
        self.nms_iou = nms_iou;
        self
    }

    /// Sets the point-suppression radius.
    pub fn with_nms_radius(mut self, nms_radius: usize) -> Self {
        self.nms_radius = nms_radius;
        self
    }

    /// Sets patch normalization.
    pub fn with_normalize(mut self, normalize: bool) -> Self {
        self.normalize = normalize;
        self
    }

    /// Enables host observability for the scan.
    pub fn with_obs(mut self, obs: bool) -> Self {
        self.obs = obs;
        self
    }
}

/// Greedy non-maximum suppression over scene detections.
///
/// Detections with a non-finite score (NaN/±∞ logits from a degenerate
/// model) are dropped up front with a warning instead of poisoning the sort:
/// one bad logit must not kill a whole-scene scan.
pub fn nms(
    dets: Vec<SceneDetection>,
    scene_w: usize,
    scene_h: usize,
    iou_threshold: f32,
) -> Vec<SceneDetection> {
    let total = dets.len();
    let mut dets: Vec<SceneDetection> = dets.into_iter().filter(|d| d.score.is_finite()).collect();
    let dropped = total - dets.len();
    if dropped > 0 {
        eprintln!("warning: nms dropped {dropped} detection(s) with non-finite scores");
    }
    dets.sort_by(|a, b| b.score.total_cmp(&a.score));
    let mut keep: Vec<SceneDetection> = Vec::new();
    // Each kept detection's bbox is reused by every later IoU test —
    // compute it once instead of once per O(n²) inner-loop probe.
    let mut keep_boxes: Vec<BBox> = Vec::new();
    for d in dets {
        let db = d.bbox(scene_w, scene_h);
        if keep_boxes.iter().all(|kb| iou(kb, &db) <= iou_threshold) {
            keep.push(d);
            keep_boxes.push(db);
        }
    }
    keep
}

/// Validates the scene shape and returns `(h, w)`.
fn scene_dims(bands: &Tensor, config: &ScanConfig) -> (usize, usize) {
    let dims = bands.dims();
    assert_eq!(dims.len(), 3, "expected [bands, H, W]");
    let (h, w) = (dims[1], dims[2]);
    assert!(
        w >= config.patch_size && h >= config.patch_size,
        "scene smaller than a patch"
    );
    (h, w)
}

/// Tile centres covering the raster interior at the configured stride.
fn tile_centers(w: usize, h: usize, config: &ScanConfig) -> Vec<(usize, usize)> {
    let half = config.patch_size / 2;
    let mut centers: Vec<(usize, usize)> = Vec::new();
    let mut cy = half;
    loop {
        let mut cx = half;
        loop {
            centers.push((cx, cy));
            if cx + config.stride > w - half - 1 {
                break;
            }
            cx += config.stride;
        }
        if cy + config.stride > h - half - 1 {
            break;
        }
        cy += config.stride;
    }
    centers
}

/// Runs one chunk of tile centres through the detector, appending raster-space
/// detections to `raw`.
///
/// `batch_buf` is the caller's reusable batch buffer: each patch clips and
/// normalizes directly into its slot (in parallel across tile centres), the
/// buffer is loaned to a batch tensor for inference, then reclaimed — so a
/// whole-scene scan allocates its batch storage once, not once per chunk.
fn detect_chunk(
    detector: &mut DrainageCrossingDetector,
    bands: &Tensor,
    chunk: &[(usize, usize)],
    config: &ScanConfig,
    (h, w): (usize, usize),
    batch_buf: &mut Vec<f32>,
    raw: &mut Vec<SceneDetection>,
) {
    if chunk.is_empty() {
        return;
    }
    let _span = dcd_obs::span("scan.chunk", dcd_obs::Category::Scan);
    dcd_obs::counter!("scan.patches").add(chunk.len() as u64);
    let nb = bands.dims()[0];
    let sample = nb * config.patch_size * config.patch_size;
    batch_buf.resize(chunk.len() * sample, 0.0);
    batch_buf
        .par_chunks_mut(sample)
        .zip(chunk.par_iter())
        .for_each(|(dst, &(cx, cy))| {
            // clip_patch_into writes every element, so stale data from the
            // previous chunk cannot leak through.
            clip_patch_into(bands, cx, cy, config.patch_size, dst);
            if config.normalize {
                for v in dst.iter_mut() {
                    *v = (*v - 0.5) * 2.0;
                }
            }
        });
    let x = Tensor::from_vec(
        [chunk.len(), nb, config.patch_size, config.patch_size],
        std::mem::take(batch_buf),
    )
    .expect("scan batch tensor");
    let dets = detector.detect_tensor(&x);
    *batch_buf = x.into_vec();
    for (det, &(cx, cy)) in dets.into_iter().zip(chunk) {
        if let Some(d) = det {
            // Patch-normalized box → raster coordinates.
            let ps = config.patch_size as f32;
            let x = (cx as f32 - ps / 2.0 + d.bbox.cx * ps).round();
            let y = (cy as f32 - ps / 2.0 + d.bbox.cy * ps).round();
            if x >= 0.0 && y >= 0.0 && (x as usize) < w && (y as usize) < h {
                raw.push(SceneDetection {
                    x: x as usize,
                    y: y as usize,
                    score: d.score,
                    w: (d.bbox.w * ps).max(1.0),
                    h: (d.bbox.h * ps).max(1.0),
                });
            }
        }
    }
}

/// Scans a rendered scene (`[bands, H, W]` tensor) with the detector.
///
/// Returns NMS-deduplicated detections in raster coordinates, sorted by
/// descending score.
pub fn scan_scene(
    detector: &mut DrainageCrossingDetector,
    bands: &Tensor,
    config: &ScanConfig,
) -> Vec<SceneDetection> {
    if config.obs {
        dcd_obs::set_enabled(true);
    }
    let _span = dcd_obs::span("scan.scene", dcd_obs::Category::Scan);
    let (h, w) = scene_dims(bands, config);
    let centers = tile_centers(w, h, config);
    let mut raw: Vec<SceneDetection> = Vec::new();
    let mut batch_buf: Vec<f32> = Vec::new();
    for chunk in centers.chunks(config.batch_size.max(1)) {
        detect_chunk(
            detector,
            bands,
            chunk,
            config,
            (h, w),
            &mut batch_buf,
            &mut raw,
        );
    }
    let kept = nms(raw, w, h, config.nms_iou);
    suppress_within_radius(kept, config.nms_radius)
}

/// Simulated-deployment parameters for [`scan_scene_resilient`].
///
/// Non-exhaustive: construct with [`SimScanConfig::new`] (or `default()`) and
/// refine with the `with_*` methods.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub struct SimScanConfig {
    /// The simulated device the scan deploys to.
    pub device: DeviceSpec,
    /// Faults injected into that device (use [`FaultPlan::none`] for a
    /// healthy deployment).
    pub fault_plan: FaultPlan,
    /// Retry/backoff/watchdog policy.
    pub retry: RetryPolicy,
    /// IOS pruning options for the optimized schedule.
    pub ios: IosOptions,
}

impl SimScanConfig {
    /// Healthy RTX A5500 deployment with default retry and IOS options.
    pub fn new() -> Self {
        SimScanConfig {
            device: DeviceSpec::rtx_a5500(),
            fault_plan: FaultPlan::none(),
            retry: RetryPolicy::default(),
            ios: IosOptions::default(),
        }
    }

    /// Sets the simulated device.
    pub fn with_device(mut self, device: DeviceSpec) -> Self {
        self.device = device;
        self
    }

    /// Sets the injected fault plan.
    pub fn with_fault_plan(mut self, fault_plan: FaultPlan) -> Self {
        self.fault_plan = fault_plan;
        self
    }

    /// Sets the retry/backoff/watchdog policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the IOS pruning options.
    pub fn with_ios(mut self, ios: IosOptions) -> Self {
        self.ios = ios;
        self
    }
}

impl Default for SimScanConfig {
    fn default() -> Self {
        SimScanConfig::new()
    }
}

/// A resilient scan's outcome: the detections plus how the deployment fared.
#[derive(Debug, Clone)]
pub struct ResilientScanReport {
    /// NMS-deduplicated detections (identical to [`scan_scene`]'s output
    /// whenever every tile eventually completed).
    pub detections: Vec<SceneDetection>,
    /// Faults seen and recovery actions taken.
    pub health: RunHealth,
    /// Inference batch size actually used (after any OOM degradation).
    pub batch: usize,
    /// Whether the scan fell back from the IOS schedule to the sequential
    /// baseline.
    pub fell_back: bool,
    /// Total simulated host time spent in (successful and failed) inference,
    /// ns.
    pub sim_ns: u64,
}

/// Why a resilient scan could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum ScanError {
    /// The simulated deployment could not even be set up (model does not fit
    /// at batch 1, or a schedule failed validation).
    Setup(ExecError),
    /// A tile kept failing after retries *and* the sequential fallback.
    Exhausted {
        /// The error that ended the run.
        last: GpuError,
        /// Health counters up to the failure.
        health: RunHealth,
    },
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanError::Setup(e) => write!(f, "scan setup failed: {e}"),
            ScanError::Exhausted { last, .. } => {
                write!(f, "scan exhausted recovery options: {last}")
            }
        }
    }
}

impl std::error::Error for ScanError {}

/// [`scan_scene`] deployed on the fault-injected simulator.
///
/// Each chunk of tiles is "shipped" through one simulated inference before
/// its patches are scored, so injected faults gate progress: transient
/// failures are retried (with simulated backoff), VRAM pressure halves the
/// batch until the allocation fits, hangs are reset via watchdog, and a
/// schedule that keeps failing is swapped for the sequential baseline.
/// Because every tile is re-enqueued until its inference succeeds, the
/// detections are identical to a fault-free [`scan_scene`] whenever the scan
/// completes.
pub fn scan_scene_resilient(
    detector: &mut DrainageCrossingDetector,
    bands: &Tensor,
    config: &ScanConfig,
    sim: &SimScanConfig,
) -> Result<ResilientScanReport, ScanError> {
    if config.obs {
        dcd_obs::set_enabled(true);
    }
    let _span = dcd_obs::span("scan.scene", dcd_obs::Category::Scan);
    let (h, w) = scene_dims(bands, config);
    let centers = tile_centers(w, h, config);

    // Lower the detector's architecture and schedule it both ways.
    let graph = lower_sppnet(detector.config(), (config.patch_size, config.patch_size));
    let target_batch = config.batch_size.max(1);
    let mut cost = StageCostModel::new(&graph, sim.device.clone(), target_batch);
    let optimized = ios_schedule(&graph, &mut cost, sim.ios);
    let fallback = sequential_schedule(&graph);
    let mut gpu = Gpu::new(sim.device.clone());
    gpu.set_fault_plan(sim.fault_plan.clone());
    let mut runner =
        ResilientRunner::new(&graph, optimized, fallback, target_batch, gpu, sim.retry)
            .map_err(ScanError::Setup)?;

    // Work queue of tile centres; each iteration takes at most the *current*
    // batch, so a degraded batch automatically re-chunks the remaining work.
    let mut queue: VecDeque<(usize, usize)> = centers.into();
    let mut raw: Vec<SceneDetection> = Vec::new();
    let mut batch_buf: Vec<f32> = Vec::new();
    let mut sim_ns = 0u64;
    let mut chunk: Vec<(usize, usize)> = Vec::new();
    while !queue.is_empty() {
        chunk.clear();
        while chunk.len() < runner.batch() {
            match queue.pop_front() {
                Some(c) => chunk.push(c),
                None => break,
            }
        }
        match runner.run() {
            Ok(ns) => sim_ns += ns,
            Err(last) => {
                return Err(ScanError::Exhausted {
                    last,
                    health: runner.health,
                })
            }
        }
        detect_chunk(
            detector,
            bands,
            &chunk,
            config,
            (h, w),
            &mut batch_buf,
            &mut raw,
        );
    }
    let kept = nms(raw, w, h, config.nms_iou);
    Ok(ResilientScanReport {
        detections: suppress_within_radius(kept, config.nms_radius),
        health: runner.health,
        batch: runner.batch(),
        fell_back: runner.fell_back(),
        sim_ns,
    })
}

/// Keeps only the highest-scored detection within each `radius`-cell
/// neighbourhood (input must be score-sorted, as [`nms`] returns).
fn suppress_within_radius(dets: Vec<SceneDetection>, radius: usize) -> Vec<SceneDetection> {
    let mut keep: Vec<SceneDetection> = Vec::new();
    for d in dets {
        if keep
            .iter()
            .all(|k| k.x.abs_diff(d.x).max(k.y.abs_diff(d.y)) > radius)
        {
            keep.push(d);
        }
    }
    keep
}

/// Precision/recall of scene detections against ground-truth crossing
/// points, with a match tolerance in cells (a detection matches at most one
/// truth point and vice versa; greedy by score).
///
/// Conventions for empty inputs: an empty detection set has no false
/// positives, so precision is 1.0 (recall is still 0.0 when truths exist);
/// an empty truth set has no missable targets, so recall is 1.0.
pub fn match_detections(
    detections: &[SceneDetection],
    truths: &[(usize, usize)],
    tolerance: usize,
) -> (f32, f32) {
    let mut matched_truth = vec![false; truths.len()];
    let mut tp = 0usize;
    for d in detections {
        let mut best: Option<usize> = None;
        let mut best_d = usize::MAX;
        for (i, &(tx, ty)) in truths.iter().enumerate() {
            if matched_truth[i] {
                continue;
            }
            let dist = d.x.abs_diff(tx).max(d.y.abs_diff(ty));
            if dist <= tolerance && dist < best_d {
                best = Some(i);
                best_d = dist;
            }
        }
        if let Some(i) = best {
            matched_truth[i] = true;
            tp += 1;
        }
    }
    let precision = if detections.is_empty() {
        1.0
    } else {
        tp as f32 / detections.len() as f32
    };
    let recall = if truths.is_empty() {
        1.0
    } else {
        tp as f32 / truths.len() as f32
    };
    (precision, recall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcd_geodata::dataset::small_config;
    use dcd_geodata::render::render_bands;
    use dcd_geodata::PatchDataset;
    use dcd_nn::{Sgd, SppNetConfig, TrainConfig};
    use dcd_tensor::SeededRng;

    fn det(x: usize, y: usize, score: f32, size: f32) -> SceneDetection {
        SceneDetection {
            x,
            y,
            score,
            w: size,
            h: size,
        }
    }

    #[test]
    fn nms_keeps_highest_of_overlapping_pair() {
        let dets = vec![det(50, 50, 0.9, 10.0), det(52, 51, 0.7, 10.0)];
        let kept = nms(dets, 200, 200, 0.3);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].score, 0.9);
    }

    #[test]
    fn nms_keeps_disjoint_detections() {
        let dets = vec![det(20, 20, 0.9, 10.0), det(150, 150, 0.8, 10.0)];
        let kept = nms(dets, 200, 200, 0.3);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn nms_orders_by_score() {
        let dets = vec![det(20, 20, 0.5, 8.0), det(150, 150, 0.95, 8.0)];
        let kept = nms(dets, 200, 200, 0.3);
        assert_eq!(kept[0].score, 0.95);
    }

    #[test]
    fn nms_drops_nan_scores_without_panicking() {
        // Regression: the old sort used partial_cmp().expect(), so one NaN
        // logit panicked the whole scan. NaN detections must be dropped and
        // the finite ones kept.
        let dets = vec![
            det(20, 20, f32::NAN, 8.0),
            det(150, 150, 0.8, 8.0),
            det(60, 60, f32::INFINITY, 8.0),
            det(100, 20, 0.4, 8.0),
        ];
        let kept = nms(dets, 200, 200, 0.3);
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().all(|d| d.score.is_finite()));
        assert_eq!(kept[0].score, 0.8);
        assert_eq!(kept[1].score, 0.4);
    }

    #[test]
    fn nms_all_nan_yields_empty() {
        let dets = vec![det(20, 20, f32::NAN, 8.0), det(30, 30, f32::NAN, 8.0)];
        assert!(nms(dets, 200, 200, 0.3).is_empty());
    }

    #[test]
    fn scan_survives_a_nan_producing_detector() {
        // A model whose weights are all NaN scores every patch as NaN. The
        // scan must complete (returning nothing), not panic in NMS.
        use dcd_nn::SppNet;
        let mut arch = SppNetConfig::tiny();
        arch.in_channels = 4;
        let mut model = SppNet::new(arch, &mut SeededRng::new(3));
        for p in model.params_mut() {
            p.value.map_inplace(|_| f32::NAN);
        }
        let mut detector = DrainageCrossingDetector::from_model(model);
        detector.threshold = f32::NEG_INFINITY;
        let cfg = small_config();
        let ds = PatchDataset::generate(&cfg, 11);
        let bands = render_bands(&ds.scene, 0.03, &mut SeededRng::new(9));
        let scan = ScanConfig::for_patch(48).with_batch_size(8).with_stride(24);
        let dets = scan_scene(&mut detector, &bands, &scan);
        assert!(dets.iter().all(|d| d.score.is_finite()));
    }

    #[test]
    fn match_detections_empty_detections_has_perfect_precision() {
        // No detections means no false positives: precision 1.0, recall 0.0.
        let truths = vec![(50usize, 50usize)];
        let (p, r) = match_detections(&[], &truths, 5);
        assert_eq!(p, 1.0);
        assert_eq!(r, 0.0);
        // And no truths means nothing to miss: recall 1.0.
        let dets = vec![det(10, 10, 0.9, 8.0)];
        let (p, r) = match_detections(&dets, &[], 5);
        assert_eq!(p, 0.0);
        assert_eq!(r, 1.0);
    }

    #[test]
    fn match_detections_precision_recall() {
        let truths = vec![(50usize, 50usize), (100, 100)];
        // One hit, one miss, one false positive.
        let dets = vec![det(52, 49, 0.9, 8.0), det(10, 10, 0.8, 8.0)];
        let (p, r) = match_detections(&dets, &truths, 5);
        assert!((p - 0.5).abs() < 1e-6);
        assert!((r - 0.5).abs() < 1e-6);
    }

    #[test]
    fn match_detections_one_truth_matches_once() {
        let truths = vec![(50usize, 50usize)];
        let dets = vec![det(50, 50, 0.9, 8.0), det(51, 51, 0.8, 8.0)];
        let (p, r) = match_detections(&dets, &truths, 5);
        assert!((p - 0.5).abs() < 1e-6, "second detection must not re-match");
        assert!((r - 1.0).abs() < 1e-6);
    }

    #[test]
    fn scan_scene_parallel_matches_sequential_bitwise() {
        use dcd_nn::SppNet;
        rayon::ensure_threads(4);
        let mut arch = SppNetConfig::tiny();
        arch.in_channels = 4;
        let model = SppNet::new(arch, &mut SeededRng::new(5));
        let mut detector = DrainageCrossingDetector::from_model(model);
        detector.threshold = 0.0; // fire everywhere: maximal NMS workload
        let cfg = small_config();
        let ds = PatchDataset::generate(&cfg, 21);
        let bands = render_bands(&ds.scene, 0.03, &mut SeededRng::new(9));
        let scan = ScanConfig::for_patch(48).with_batch_size(8).with_stride(24);
        let par = scan_scene(&mut detector, &bands, &scan);
        let seq = rayon::force_sequential(|| scan_scene(&mut detector, &bands, &scan));
        assert!(
            !par.is_empty(),
            "untrained scan at threshold 0 found nothing"
        );
        assert_eq!(par.len(), seq.len());
        for (p, s) in par.iter().zip(seq.iter()) {
            assert_eq!((p.x, p.y), (s.x, s.y));
            assert_eq!(p.score.to_bits(), s.score.to_bits(), "scores diverged");
            assert_eq!(p.w.to_bits(), s.w.to_bits());
            assert_eq!(p.h.to_bits(), s.h.to_bits());
        }
    }

    #[test]
    fn resilient_scan_matches_plain_scan_under_transient_faults() {
        use dcd_gpusim::FaultPlan;
        use dcd_nn::SppNet;
        // An untrained model suffices: detections just have to be
        // deterministic, not good.
        let mut arch = SppNetConfig::tiny();
        arch.in_channels = 4;
        let model = SppNet::new(arch, &mut SeededRng::new(5));
        let mut detector = crate::detector::DrainageCrossingDetector::from_model(model);
        detector.threshold = 0.0; // fire everywhere
        let cfg = small_config();
        let ds = PatchDataset::generate(&cfg, 21);
        let bands = render_bands(&ds.scene, 0.03, &mut SeededRng::new(9));
        let scan = ScanConfig::for_patch(48).with_batch_size(8).with_stride(24);
        let plain = scan_scene(&mut detector, &bands, &scan);
        let sim = SimScanConfig::new()
            .with_device(DeviceSpec::test_gpu())
            .with_fault_plan(FaultPlan {
                seed: 77,
                launch_failure_rate: 0.02,
                memcpy_failure_rate: 0.01,
                ..FaultPlan::none()
            });
        let report = scan_scene_resilient(&mut detector, &bands, &scan, &sim)
            .expect("transient faults are absorbed");
        assert_eq!(
            report.detections, plain,
            "faults must not change detections"
        );
        assert!(report.health.faults_seen() > 0, "plan injected nothing");
        assert!(report.health.retries > 0);
        assert!(!report.fell_back);
        assert_eq!(report.batch, 8);
        assert!(report.sim_ns > 0);
    }

    #[test]
    fn scan_finds_crossings_in_a_trained_scene() {
        // End-to-end: train on the dataset's patches, scan the same scene.
        let mut cfg = small_config();
        cfg.center_jitter = 2;
        let ds = PatchDataset::generate(&cfg, 42);
        let mut arch = SppNetConfig::original();
        arch.channels = [8, 16, 16];
        arch.fc1 = 64;
        let mut detector = DrainageCrossingDetector::train(
            arch,
            &ds.train,
            TrainConfig {
                epochs: 12,
                batch_size: 16,
                sgd: Sgd::new(0.015, 0.9, 0.0005),
                lr_decay_every: Some(5),
                ..Default::default()
            },
            7,
        );
        detector.threshold = 0.6;
        let bands = render_bands(&ds.scene, 0.03, &mut SeededRng::new(9));
        let scan = ScanConfig::for_patch(64).with_batch_size(16);
        let dets = scan_scene(&mut detector, &bands, &scan);
        assert!(!dets.is_empty(), "scan found nothing");
        // Only interior crossings can sit at a tile centre (edge crossings
        // were likewise excluded from training patches).
        let interior: Vec<(usize, usize)> = ds
            .scene
            .crossings
            .iter()
            .copied()
            .filter(|&(x, y)| {
                x >= 32 && y >= 32 && x < ds.scene.width() - 32 && y < ds.scene.height() - 32
            })
            .collect();
        let (precision, recall) = match_detections(&dets, &interior, 12);
        assert!(
            recall > 0.5,
            "recall {recall} too low ({} detections vs {} interior crossings)",
            dets.len(),
            interior.len()
        );
        assert!(precision > 0.3, "precision {precision} too low");
    }
}
