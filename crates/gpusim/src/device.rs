//! Simulated device specifications.

use serde::{Deserialize, Serialize};

/// Static description of a simulated GPU plus the host-side API overheads
/// the CUDA driver/runtime adds around it.
///
/// All rates are peak values; the kernel cost model applies per-class
/// efficiency factors on top (see [`crate::kernel`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, for reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// CUDA cores per SM.
    pub cores_per_sm: usize,
    /// Maximum resident threads per SM (occupancy ceiling).
    pub max_threads_per_sm: usize,
    /// Boost clock in GHz.
    pub clock_ghz: f64,
    /// Device memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Device memory capacity in bytes.
    pub mem_capacity: u64,
    /// Host↔device interconnect bandwidth in GB/s. PCIe 4.0 ×16 peaks near
    /// 26 GB/s with pinned buffers, but framework tensors are pageable and
    /// sustain ~8 GB/s — the figure that matters for inference feeding.
    pub pcie_bandwidth_gbps: f64,
    /// Fixed device-side cost of starting one kernel (scheduling ramp), ns.
    pub kernel_ramp_ns: u64,
    /// Fixed device-side cost of one DMA transfer, ns.
    pub memop_ramp_ns: u64,
    /// Host-side duration of one `cudaLaunchKernel` call, ns.
    pub api_launch_ns: u64,
    /// Host-side duration of one `cudaMemcpyAsync` call, ns.
    pub api_memcpy_ns: u64,
    /// Host-side duration of one `cudaMalloc` call, ns.
    pub api_malloc_ns: u64,
    /// Host-side fixed overhead of `cudaDeviceSynchronize` (on top of the
    /// wait for the device to drain), ns.
    pub api_sync_ns: u64,
    /// Host-side duration of one `cuLibraryLoadData` call (loading a
    /// compiled module: cuDNN/cuBLAS style fat binaries are tens of ms), ns.
    pub api_library_load_ns: u64,
}

impl DeviceSpec {
    /// The paper's test GPU: NVIDIA RTX A5500 in a Dell Precision 5820
    /// (10240 CUDA cores across 80 SMs, 24 GB GDDR6, PCIe 4.0 ×16).
    ///
    /// Overhead constants are calibrated to PyTorch-on-CUDA magnitudes: a few
    /// µs per asynchronous API call and tens of ms per module load.
    pub fn rtx_a5500() -> Self {
        DeviceSpec {
            name: "NVIDIA RTX A5500 (simulated)".to_string(),
            sm_count: 80,
            cores_per_sm: 128,
            max_threads_per_sm: 1536,
            clock_ghz: 1.665,
            mem_bandwidth_gbps: 768.0,
            mem_capacity: 24 * (1u64 << 30),
            pcie_bandwidth_gbps: 8.3,
            kernel_ramp_ns: 1_800,
            memop_ramp_ns: 1_200,
            api_launch_ns: 7_500,
            api_memcpy_ns: 4_000,
            api_malloc_ns: 9_000,
            api_sync_ns: 1_500,
            api_library_load_ns: 60_000_000,
        }
    }

    /// A small synthetic device for unit tests (fast, easy arithmetic).
    pub fn test_gpu() -> Self {
        DeviceSpec {
            name: "TestGPU".to_string(),
            sm_count: 4,
            cores_per_sm: 64,
            max_threads_per_sm: 1024,
            clock_ghz: 1.0,
            mem_bandwidth_gbps: 100.0,
            mem_capacity: 1 << 30,
            pcie_bandwidth_gbps: 10.0,
            kernel_ramp_ns: 1_000,
            memop_ramp_ns: 1_000,
            api_launch_ns: 5_000,
            api_memcpy_ns: 3_000,
            api_malloc_ns: 5_000,
            api_sync_ns: 1_000,
            api_library_load_ns: 1_000_000,
        }
    }

    /// Peak FP32 throughput in FLOP/s (2 FLOPs per core-cycle via FMA).
    pub fn peak_flops(&self) -> f64 {
        self.sm_count as f64 * self.cores_per_sm as f64 * 2.0 * self.clock_ghz * 1e9
    }

    /// Peak device-memory bandwidth in bytes/ns.
    pub fn mem_bytes_per_ns(&self) -> f64 {
        self.mem_bandwidth_gbps // GB/s == bytes/ns
    }

    /// PCIe bandwidth in bytes/ns.
    pub fn pcie_bytes_per_ns(&self) -> f64 {
        self.pcie_bandwidth_gbps
    }

    /// Device-wide thread capacity (occupancy ceiling).
    pub fn max_resident_threads(&self) -> usize {
        self.sm_count * self.max_threads_per_sm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a5500_matches_paper_hardware() {
        let d = DeviceSpec::rtx_a5500();
        assert_eq!(d.sm_count * d.cores_per_sm, 10_240, "10240 CUDA cores");
        assert_eq!(d.mem_capacity, 24 * (1 << 30), "24 GB");
    }

    #[test]
    fn peak_flops_is_cores_times_clock() {
        let d = DeviceSpec::test_gpu();
        // 4 SMs × 64 cores × 2 × 1 GHz = 512 GFLOP/s
        assert!((d.peak_flops() - 512e9).abs() < 1.0);
    }

    #[test]
    fn bandwidth_units_are_bytes_per_ns() {
        let d = DeviceSpec::test_gpu();
        // 100 GB/s = 100 bytes/ns
        assert!((d.mem_bytes_per_ns() - 100.0).abs() < 1e-9);
        assert!((d.pcie_bytes_per_ns() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn resident_thread_capacity() {
        let d = DeviceSpec::test_gpu();
        assert_eq!(d.max_resident_threads(), 4096);
    }
}
