//! nsys-like trace records collected during simulation.

use crate::fault::FaultKind;
use crate::kernel::KernelClass;
use serde::{Deserialize, Serialize};

/// Direction of a host↔device transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CopyDir {
    /// Host → device.
    H2D,
    /// Device → host.
    D2H,
}

impl CopyDir {
    /// Report label, matching nsys conventions.
    pub fn label(&self) -> &'static str {
        match self {
            CopyDir::H2D => "CUDA memcpy HtoD",
            CopyDir::D2H => "CUDA memcpy DtoH",
        }
    }
}

/// CUDA API call kinds tracked by the trace (host timeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ApiKind {
    /// `cuLibraryLoadData` — module loading at context setup.
    LibraryLoadData,
    /// `cudaMalloc`.
    Malloc,
    /// `cudaFree`.
    Free,
    /// `cudaMemcpyAsync`.
    MemcpyAsync,
    /// `cudaLaunchKernel`.
    LaunchKernel,
    /// `cudaDeviceSynchronize`.
    DeviceSynchronize,
    /// `cudaStreamCreate`.
    StreamCreate,
    /// `cudaEventRecord`.
    EventRecord,
    /// `cudaStreamWaitEvent`.
    StreamWaitEvent,
    /// `cudaDeviceReset` (fault recovery).
    DeviceReset,
}

impl ApiKind {
    /// The CUDA function name as nsys prints it.
    pub fn label(&self) -> &'static str {
        match self {
            ApiKind::LibraryLoadData => "cuLibraryLoadData",
            ApiKind::Malloc => "cudaMalloc",
            ApiKind::Free => "cudaFree",
            ApiKind::MemcpyAsync => "cudaMemcpyAsync",
            ApiKind::LaunchKernel => "cudaLaunchKernel",
            ApiKind::DeviceSynchronize => "cudaDeviceSynchronize",
            ApiKind::StreamCreate => "cudaStreamCreate",
            ApiKind::EventRecord => "cudaEventRecord",
            ApiKind::StreamWaitEvent => "cudaStreamWaitEvent",
            ApiKind::DeviceReset => "cudaDeviceReset",
        }
    }
}

/// One record in the simulation trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceRecord {
    /// A host-side CUDA API call interval.
    Api {
        /// Which API was called.
        kind: ApiKind,
        /// Host start time, ns.
        start_ns: u64,
        /// Call duration, ns (for synchronize this includes the wait).
        dur_ns: u64,
    },
    /// A device-side kernel execution interval.
    Kernel {
        /// Kernel name.
        name: String,
        /// Operator class for Table 3 bucketing.
        class: KernelClass,
        /// Stream the kernel ran on.
        stream: usize,
        /// Device start time, ns.
        start_ns: u64,
        /// Execution duration, ns.
        dur_ns: u64,
    },
    /// A device-side DMA transfer interval.
    Memop {
        /// Transfer direction.
        dir: CopyDir,
        /// Bytes moved.
        bytes: u64,
        /// Device start time, ns.
        start_ns: u64,
        /// Transfer duration, ns.
        dur_ns: u64,
    },
    /// An injected fault (see `dcd_gpusim::fault`).
    Fault {
        /// The fault category.
        kind: FaultKind,
        /// The stream the fault hit, when stream-scoped.
        stream: Option<usize>,
        /// Time of injection, ns (host time for API faults, device time for
        /// throttle edges).
        start_ns: u64,
    },
}

/// A full simulation trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Records in emission order (API records by host time; device records
    /// appended as they complete).
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends a record.
    pub fn push(&mut self, r: TraceRecord) {
        self.records.push(r);
    }

    /// Total host time spent in each API, ns.
    pub fn api_time(&self, kind: ApiKind) -> u64 {
        self.records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Api {
                    kind: k, dur_ns, ..
                } if *k == kind => Some(*dur_ns),
                _ => None,
            })
            .sum()
    }

    /// Total device time spent in kernels of a class, ns.
    pub fn kernel_time(&self, class: KernelClass) -> u64 {
        self.records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Kernel {
                    class: c, dur_ns, ..
                } if *c == class => Some(*dur_ns),
                _ => None,
            })
            .sum()
    }

    /// All memop records.
    pub fn memops(&self) -> impl Iterator<Item = (&CopyDir, u64, u64)> {
        self.records.iter().filter_map(|r| match r {
            TraceRecord::Memop {
                dir, bytes, dur_ns, ..
            } => Some((dir, *bytes, *dur_ns)),
            _ => None,
        })
    }

    /// All injected-fault records as `(kind, stream, time_ns)`.
    pub fn faults(&self) -> impl Iterator<Item = (FaultKind, Option<usize>, u64)> + '_ {
        self.records.iter().filter_map(|r| match r {
            TraceRecord::Fault {
                kind,
                stream,
                start_ns,
            } => Some((*kind, *stream, *start_ns)),
            _ => None,
        })
    }

    /// Number of injected faults of one kind.
    pub fn fault_count(&self, kind: FaultKind) -> usize {
        self.faults().filter(|(k, _, _)| *k == kind).count()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn api_time_sums_matching_kind() {
        let mut t = Trace::new();
        t.push(TraceRecord::Api {
            kind: ApiKind::LaunchKernel,
            start_ns: 0,
            dur_ns: 10,
        });
        t.push(TraceRecord::Api {
            kind: ApiKind::LaunchKernel,
            start_ns: 10,
            dur_ns: 5,
        });
        t.push(TraceRecord::Api {
            kind: ApiKind::DeviceSynchronize,
            start_ns: 15,
            dur_ns: 100,
        });
        assert_eq!(t.api_time(ApiKind::LaunchKernel), 15);
        assert_eq!(t.api_time(ApiKind::DeviceSynchronize), 100);
        assert_eq!(t.api_time(ApiKind::Malloc), 0);
    }

    #[test]
    fn kernel_time_buckets_by_class() {
        let mut t = Trace::new();
        t.push(TraceRecord::Kernel {
            name: "conv1".into(),
            class: KernelClass::Conv,
            stream: 0,
            start_ns: 0,
            dur_ns: 30,
        });
        t.push(TraceRecord::Kernel {
            name: "fc".into(),
            class: KernelClass::Gemm,
            stream: 0,
            start_ns: 30,
            dur_ns: 70,
        });
        assert_eq!(t.kernel_time(KernelClass::Conv), 30);
        assert_eq!(t.kernel_time(KernelClass::Gemm), 70);
        assert_eq!(t.kernel_time(KernelClass::Pool), 0);
    }

    #[test]
    fn memops_iterates_transfers() {
        let mut t = Trace::new();
        t.push(TraceRecord::Memop {
            dir: CopyDir::H2D,
            bytes: 1024,
            start_ns: 0,
            dur_ns: 8,
        });
        let v: Vec<_> = t.memops().collect();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 1024);
    }

    #[test]
    fn labels_match_cuda_names() {
        assert_eq!(ApiKind::LibraryLoadData.label(), "cuLibraryLoadData");
        assert_eq!(ApiKind::DeviceSynchronize.label(), "cudaDeviceSynchronize");
        assert_eq!(CopyDir::H2D.label(), "CUDA memcpy HtoD");
    }
}
