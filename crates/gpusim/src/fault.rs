//! Seeded, deterministic fault injection for the simulated GPU.
//!
//! A [`FaultPlan`] describes *what can go wrong* during a simulation run:
//! transient kernel-launch and memcpy failures, streams that fail
//! persistently, reduced usable VRAM (pressure from a co-tenant process),
//! a thermal-throttling window, and a device hang. A [`FaultInjector`]
//! turns the plan into concrete, reproducible decisions: every decision is
//! a pure function of the plan seed and a per-category draw counter, so a
//! run with the same plan replays the same faults — and a *retry* of a
//! failed call draws a fresh sample, which is what makes transient faults
//! transient.
//!
//! An empty plan (the [`Default`]) injects nothing; the engine behaves
//! bit-identically to a fault-free run (see the property tests).

use serde::{Deserialize, Serialize};

/// The category of an injected fault, as recorded in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// A `cudaLaunchKernel` that returned an error.
    LaunchFailure,
    /// A `cudaMemcpyAsync` that returned an error.
    MemcpyFailure,
    /// An allocation that failed only because of injected VRAM pressure.
    VramPressure,
    /// Thermal throttling began (kernel rates scaled down).
    ThrottleStart,
    /// Thermal throttling ended.
    ThrottleEnd,
    /// A kernel that will never complete was enqueued.
    DeviceHang,
}

impl FaultKind {
    /// Report label for the profiler.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::LaunchFailure => "launch failure",
            FaultKind::MemcpyFailure => "memcpy failure",
            FaultKind::VramPressure => "vram pressure",
            FaultKind::ThrottleStart => "throttle start",
            FaultKind::ThrottleEnd => "throttle end",
            FaultKind::DeviceHang => "device hang",
        }
    }
}

/// A thermal-throttling window in device time: kernels executing inside
/// `[start_ns, end_ns)` progress at `factor` times their normal rate.
/// Memcpys are unaffected (PCIe does not thermally throttle with the SMs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThrottleWindow {
    /// Window start, device-time ns.
    pub start_ns: u64,
    /// Window end, device-time ns.
    pub end_ns: u64,
    /// Rate multiplier in `(0, 1]` applied to kernels inside the window.
    pub factor: f64,
}

/// A declarative description of the faults to inject into one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for all probabilistic decisions.
    pub seed: u64,
    /// Probability in `[0, 1]` that any one kernel launch fails transiently.
    pub launch_failure_rate: f64,
    /// Probability in `[0, 1]` that any one memcpy fails transiently.
    pub memcpy_failure_rate: f64,
    /// Streams on which *every* kernel launch fails (a persistent fault:
    /// retries never help; callers must fall back to other streams).
    pub persistent_launch_failure_streams: Vec<usize>,
    /// Bytes of device memory unavailable to the simulation (co-tenant
    /// pressure). Allocations are checked against `capacity − pressure`.
    pub vram_pressure_bytes: u64,
    /// Optional thermal-throttling window.
    pub throttle: Option<ThrottleWindow>,
    /// After this many successful kernel enqueues, the next kernel never
    /// completes: synchronization can only end by watchdog.
    pub hang_after_kernels: Option<u64>,
    /// Optional host-time window `[start_ns, end_ns)` outside which the
    /// *transient* rates (`launch_failure_rate`, `memcpy_failure_rate`) are
    /// inert. Persistent-stream failures, VRAM pressure, throttling, and
    /// hangs are unaffected. Calls outside the window consume no draws, so
    /// the in-window fault sequence depends only on the seed and on how
    /// many faultable calls happen inside the window — not on traffic
    /// before it. This models a bounded fault burst (e.g. a flaky link or
    /// a co-tenant crash loop) that the serving layer must ride out.
    pub fault_window_ns: Option<(u64, u64)>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            launch_failure_rate: 0.0,
            memcpy_failure_rate: 0.0,
            persistent_launch_failure_streams: Vec::new(),
            vram_pressure_bytes: 0,
            throttle: None,
            hang_after_kernels: None,
            fault_window_ns: None,
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether this plan can ever inject a fault.
    pub fn is_empty(&self) -> bool {
        self.launch_failure_rate <= 0.0
            && self.memcpy_failure_rate <= 0.0
            && self.persistent_launch_failure_streams.is_empty()
            && self.vram_pressure_bytes == 0
            && self.throttle.is_none()
            && self.hang_after_kernels.is_none()
    }
}

/// SplitMix64: one step of the seed-expansion generator. Decisions hash
/// `seed ^ salt ^ counter` through this, so each category has an
/// independent, reproducible stream. Public because every deterministic
/// draw in the workspace (fault injection, retry jitter, request arrivals)
/// shares this one primitive.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a hash to a uniform draw in `[0, 1)`.
pub fn unit_draw(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

const SALT_LAUNCH: u64 = 0x4C41_554E_4348_0001;
const SALT_MEMCPY: u64 = 0x4D45_4D43_5059_0002;

/// Stateful decision-maker over a [`FaultPlan`]. Owned by the engine; one
/// injector per `Gpu`.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    launch_draws: u64,
    memcpy_draws: u64,
    kernels_enqueued: u64,
    throttle_start_recorded: bool,
    throttle_end_recorded: bool,
}

impl FaultInjector {
    /// An injector executing the given plan from its first decision.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            launch_draws: 0,
            memcpy_draws: 0,
            kernels_enqueued: 0,
            throttle_start_recorded: false,
            throttle_end_recorded: false,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether host time `now_ns` is inside the transient-fault window
    /// (always true when no window is configured).
    fn in_fault_window(&self, now_ns: u64) -> bool {
        match self.plan.fault_window_ns {
            Some((start, end)) => now_ns >= start && now_ns < end,
            None => true,
        }
    }

    /// Decides whether this kernel launch fails at host time `now_ns`.
    /// Persistent streams always fail; otherwise, inside the fault window,
    /// one transient draw is consumed, so a retry samples a fresh decision.
    /// Outside the window no draw is consumed and the launch succeeds.
    pub fn launch_fails(&mut self, stream: usize, now_ns: u64) -> bool {
        if self
            .plan
            .persistent_launch_failure_streams
            .contains(&stream)
        {
            return true;
        }
        if self.plan.launch_failure_rate <= 0.0 || !self.in_fault_window(now_ns) {
            return false;
        }
        let draw = splitmix64(self.plan.seed ^ SALT_LAUNCH ^ self.launch_draws);
        self.launch_draws += 1;
        unit_draw(draw) < self.plan.launch_failure_rate
    }

    /// Decides whether this memcpy fails at host time `now_ns` (one
    /// transient draw consumed inside the fault window, none outside).
    pub fn memcpy_fails(&mut self, _stream: usize, now_ns: u64) -> bool {
        if self.plan.memcpy_failure_rate <= 0.0 || !self.in_fault_window(now_ns) {
            return false;
        }
        let draw = splitmix64(self.plan.seed ^ SALT_MEMCPY ^ self.memcpy_draws);
        self.memcpy_draws += 1;
        unit_draw(draw) < self.plan.memcpy_failure_rate
    }

    /// Injected VRAM pressure in bytes.
    pub fn vram_pressure_bytes(&self) -> u64 {
        self.plan.vram_pressure_bytes
    }

    /// Counts a successful kernel enqueue; returns `true` exactly once,
    /// when the hang threshold is crossed — that kernel never completes.
    pub fn hang_on_this_kernel(&mut self) -> bool {
        let Some(after) = self.plan.hang_after_kernels else {
            return false;
        };
        let hit = self.kernels_enqueued == after;
        self.kernels_enqueued += 1;
        hit
    }

    /// Kernel rate multiplier at device time `now_ns` (1.0 outside any
    /// throttle window).
    pub fn throttle_factor(&self, now_ns: f64) -> f64 {
        match &self.plan.throttle {
            Some(w) if now_ns >= w.start_ns as f64 && now_ns < w.end_ns as f64 => w.factor,
            _ => 1.0,
        }
    }

    /// The next device time at which the throttle factor changes, or
    /// infinity if it never will.
    pub fn next_throttle_boundary(&self, now_ns: f64) -> f64 {
        match &self.plan.throttle {
            Some(w) if now_ns < w.start_ns as f64 => w.start_ns as f64,
            Some(w) if now_ns < w.end_ns as f64 => w.end_ns as f64,
            _ => f64::INFINITY,
        }
    }

    /// Throttle boundaries crossed by advancing device time to `now_ns`,
    /// each reported exactly once (for trace recording).
    pub fn take_throttle_crossings(&mut self, now_ns: f64) -> Vec<(FaultKind, u64)> {
        let mut out = Vec::new();
        if let Some(w) = &self.plan.throttle {
            if !self.throttle_start_recorded && now_ns >= w.start_ns as f64 {
                self.throttle_start_recorded = true;
                out.push((FaultKind::ThrottleStart, w.start_ns));
            }
            if !self.throttle_end_recorded && now_ns >= w.end_ns as f64 {
                self.throttle_end_recorded = true;
                out.push((FaultKind::ThrottleEnd, w.end_ns));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::none());
        assert!(FaultPlan::none().is_empty());
        for s in 0..4 {
            assert!(!inj.launch_fails(s, 0));
            assert!(!inj.memcpy_fails(s, 0));
            assert!(!inj.hang_on_this_kernel());
        }
        assert_eq!(inj.vram_pressure_bytes(), 0);
        assert_eq!(inj.throttle_factor(123.0), 1.0);
        assert!(inj.next_throttle_boundary(0.0).is_infinite());
    }

    #[test]
    fn decisions_replay_deterministically() {
        let plan = FaultPlan {
            seed: 42,
            launch_failure_rate: 0.3,
            memcpy_failure_rate: 0.2,
            ..FaultPlan::none()
        };
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        let da: Vec<bool> = (0..64).map(|_| a.launch_fails(0, 0)).collect();
        let db: Vec<bool> = (0..64).map(|_| b.launch_fails(0, 0)).collect();
        assert_eq!(da, db);
        let ma: Vec<bool> = (0..64).map(|_| a.memcpy_fails(0, 0)).collect();
        let mb: Vec<bool> = (0..64).map(|_| b.memcpy_fails(0, 0)).collect();
        assert_eq!(ma, mb);
    }

    #[test]
    fn failure_rate_is_roughly_honoured() {
        let mut inj = FaultInjector::new(FaultPlan {
            seed: 7,
            launch_failure_rate: 0.25,
            ..FaultPlan::none()
        });
        let fails = (0..4000).filter(|_| inj.launch_fails(0, 0)).count();
        let rate = fails as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "observed rate {rate}");
    }

    #[test]
    fn persistent_stream_always_fails_and_consumes_no_draws() {
        let mut inj = FaultInjector::new(FaultPlan {
            seed: 1,
            persistent_launch_failure_streams: vec![2],
            ..FaultPlan::none()
        });
        for _ in 0..10 {
            assert!(inj.launch_fails(2, 0));
            assert!(!inj.launch_fails(0, 0));
        }
    }

    #[test]
    fn fault_window_gates_transients_without_consuming_draws() {
        let plan = FaultPlan {
            seed: 42,
            launch_failure_rate: 0.5,
            memcpy_failure_rate: 0.5,
            fault_window_ns: Some((1_000, 2_000)),
            ..FaultPlan::none()
        };
        let mut windowed = FaultInjector::new(plan.clone());
        // Calls before and after the window never fail and consume nothing.
        for _ in 0..32 {
            assert!(!windowed.launch_fails(0, 0));
            assert!(!windowed.memcpy_fails(0, 999));
            assert!(!windowed.launch_fails(0, 2_000));
            assert!(!windowed.memcpy_fails(0, 5_000));
        }
        // Inside the window the sequence matches an unwindowed injector's
        // from-the-start sequence: draws are position-indexed, not timed.
        let mut unwindowed = FaultInjector::new(FaultPlan {
            fault_window_ns: None,
            ..plan
        });
        let wa: Vec<bool> = (0..64).map(|_| windowed.launch_fails(0, 1_500)).collect();
        let ua: Vec<bool> = (0..64).map(|_| unwindowed.launch_fails(0, 1_500)).collect();
        assert_eq!(wa, ua);
        assert!(wa.iter().any(|&f| f), "0.5 rate must fail sometimes");
    }

    #[test]
    fn persistent_streams_ignore_the_fault_window() {
        let mut inj = FaultInjector::new(FaultPlan {
            persistent_launch_failure_streams: vec![1],
            fault_window_ns: Some((100, 200)),
            ..FaultPlan::none()
        });
        assert!(inj.launch_fails(1, 0), "persistent fault outside window");
        assert!(inj.launch_fails(1, 150));
        assert!(inj.launch_fails(1, 999));
    }

    #[test]
    fn hang_triggers_exactly_once_at_threshold() {
        let mut inj = FaultInjector::new(FaultPlan {
            hang_after_kernels: Some(3),
            ..FaultPlan::none()
        });
        let hits: Vec<bool> = (0..6).map(|_| inj.hang_on_this_kernel()).collect();
        assert_eq!(hits, vec![false, false, false, true, false, false]);
    }

    #[test]
    fn throttle_window_scales_and_reports_boundaries() {
        let mut inj = FaultInjector::new(FaultPlan {
            throttle: Some(ThrottleWindow {
                start_ns: 100,
                end_ns: 200,
                factor: 0.5,
            }),
            ..FaultPlan::none()
        });
        assert_eq!(inj.throttle_factor(50.0), 1.0);
        assert_eq!(inj.throttle_factor(150.0), 0.5);
        assert_eq!(inj.throttle_factor(200.0), 1.0);
        assert_eq!(inj.next_throttle_boundary(0.0), 100.0);
        assert_eq!(inj.next_throttle_boundary(100.0), 200.0);
        assert!(inj.next_throttle_boundary(250.0).is_infinite());
        assert!(inj.take_throttle_crossings(50.0).is_empty());
        assert_eq!(
            inj.take_throttle_crossings(150.0),
            vec![(FaultKind::ThrottleStart, 100)]
        );
        assert_eq!(
            inj.take_throttle_crossings(300.0),
            vec![(FaultKind::ThrottleEnd, 200)]
        );
        assert!(inj.take_throttle_crossings(400.0).is_empty());
    }

    #[test]
    fn plan_roundtrips_through_value_tree() {
        let plan = FaultPlan {
            seed: 9,
            launch_failure_rate: 0.1,
            memcpy_failure_rate: 0.05,
            persistent_launch_failure_streams: vec![1, 3],
            vram_pressure_bytes: 1 << 20,
            throttle: Some(ThrottleWindow {
                start_ns: 10,
                end_ns: 20,
                factor: 0.25,
            }),
            hang_after_kernels: Some(5),
            fault_window_ns: Some((1_000, 2_000)),
        };
        let back = FaultPlan::deserialize(&serde::Serialize::serialize(&plan)).unwrap();
        assert_eq!(back, plan);
    }
}
