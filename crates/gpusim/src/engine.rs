//! The discrete-event co-simulation of a CUDA host thread and a GPU.
//!
//! Two clocks advance together:
//!
//! * the **host clock** moves forward on every API call by that call's
//!   dispatch overhead (launching is asynchronous: the host does not wait for
//!   the device);
//! * the **device clock** moves through kernel/memcpy executions. A device
//!   op cannot start before the host call that enqueued it returned, and ops
//!   on one stream execute in order while ops on different streams run
//!   concurrently under processor sharing (see [`KernelDesc::demand`]).
//!
//! `cudaDeviceSynchronize` joins the clocks: the host blocks until the device
//! drains. Its recorded duration is therefore the *actual wait*, which is how
//! the paper's Fig 8 observes synchronization cost growing with batch size.

use crate::device::DeviceSpec;
use crate::fault::{FaultInjector, FaultKind, FaultPlan};
use crate::kernel::KernelDesc;
use crate::trace::{ApiKind, CopyDir, Trace, TraceRecord};
use std::collections::VecDeque;

/// Identifier of a CUDA stream within one [`Gpu`].
pub type StreamId = usize;

/// Error returned when a simulated allocation exceeds device memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes already in use.
    pub in_use: u64,
    /// Usable capacity (device capacity minus any injected VRAM pressure).
    pub capacity: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulated OOM: requested {} bytes with {}/{} in use",
            self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Unified error type for every fallible engine operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// An allocation exceeded the usable device memory.
    OutOfMemory(OutOfMemory),
    /// A kernel launch returned an error (injected fault).
    LaunchFailed {
        /// Stream the launch targeted.
        stream: StreamId,
    },
    /// A memcpy enqueue returned an error (injected fault).
    MemcpyFailed {
        /// Stream the copy targeted.
        stream: StreamId,
        /// Transfer direction.
        dir: CopyDir,
        /// Bytes the copy would have moved.
        bytes: u64,
    },
    /// `cudaDeviceSynchronize` did not finish within the watchdog deadline.
    DeviceHang {
        /// The watchdog budget that was exceeded, ns.
        watchdog_ns: u64,
    },
}

impl std::fmt::Display for GpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuError::OutOfMemory(oom) => oom.fmt(f),
            GpuError::LaunchFailed { stream } => {
                write!(f, "kernel launch failed on stream {stream}")
            }
            GpuError::MemcpyFailed { stream, dir, bytes } => {
                write!(
                    f,
                    "{} of {bytes} bytes failed on stream {stream}",
                    dir.label()
                )
            }
            GpuError::DeviceHang { watchdog_ns } => {
                write!(
                    f,
                    "device synchronize exceeded the {watchdog_ns} ns watchdog"
                )
            }
        }
    }
}

impl std::error::Error for GpuError {}

impl From<OutOfMemory> for GpuError {
    fn from(oom: OutOfMemory) -> Self {
        GpuError::OutOfMemory(oom)
    }
}

/// Identifier of a recorded CUDA event.
pub type EventId = usize;

/// A device-side operation.
#[derive(Debug, Clone)]
enum DeviceOp {
    Kernel(KernelDesc),
    Memcpy { dir: CopyDir, bytes: u64 },
}

/// An op sitting in a stream queue, not yet started.
#[derive(Debug, Clone)]
struct QueuedOp {
    op: DeviceOp,
    /// Host time at which the enqueueing API call returned; the device
    /// cannot see the op before this.
    visible_at_ns: f64,
    /// Events that must have fired before this op may start
    /// (`cudaStreamWaitEvent` semantics).
    wait_events: Vec<EventId>,
    /// Injected hang: once started, this op never completes.
    hangs: bool,
}

/// An op currently executing on the device.
#[derive(Debug, Clone)]
struct InflightOp {
    op: DeviceOp,
    stream: StreamId,
    start_ns: f64,
    /// Remaining execution time at rate 1.0, ns.
    remaining_ns: f64,
    /// Processor-sharing demand in `(0, 1]` (kernels) — memcpys use the
    /// per-direction PCIe sharing rule instead.
    demand: f64,
}

/// The simulated GPU plus its host thread.
#[derive(Debug)]
pub struct Gpu {
    spec: DeviceSpec,
    host_ns: f64,
    device_ns: f64,
    streams: Vec<VecDeque<QueuedOp>>,
    /// `streams[i]` head is executing iff `stream_busy[i]`.
    stream_busy: Vec<bool>,
    inflight: Vec<InflightOp>,
    mem_used: u64,
    trace: Trace,
    /// Completion time of each recorded event (None = not yet fired).
    /// An event fires when every op enqueued on its stream *before* the
    /// record call has completed.
    events: Vec<Option<f64>>,
    /// Events waiting on per-stream outstanding-op counts: the event fires
    /// when `remaining` ops of that stream (queued at record time) finish.
    event_trackers: Vec<EventTracker>,
    /// Waits registered for the next op enqueued on a stream.
    pending_waits: Vec<Vec<EventId>>,
    /// Fault injector, when a plan is installed. `None` and an empty plan
    /// behave identically (bit-identical traces).
    fault: Option<FaultInjector>,
    /// True once a never-completing kernel has been enqueued; only
    /// [`Gpu::device_reset`] clears it.
    hung: bool,
}

#[derive(Debug, Clone)]
struct EventTracker {
    event: EventId,
    stream: StreamId,
    /// Ops of `stream` still outstanding at record time.
    remaining: usize,
}

impl Gpu {
    /// Creates a context on the given device.
    ///
    /// Context creation loads the compiled kernel modules, emitting one
    /// `cuLibraryLoadData` record — the one-time cost that dominates the API
    /// profile at small batch sizes (Fig 8).
    pub fn new(spec: DeviceSpec) -> Self {
        let mut gpu = Gpu {
            spec,
            host_ns: 0.0,
            device_ns: 0.0,
            streams: Vec::new(),
            stream_busy: Vec::new(),
            inflight: Vec::new(),
            mem_used: 0,
            trace: Trace::new(),
            events: Vec::new(),
            event_trackers: Vec::new(),
            pending_waits: Vec::new(),
            fault: None,
            hung: false,
        };
        let dur = gpu.spec.api_library_load_ns as f64;
        gpu.record_api(ApiKind::LibraryLoadData, gpu.host_ns, dur);
        gpu.host_ns += dur;
        // Default stream 0 always exists.
        gpu.streams.push(VecDeque::new());
        gpu.stream_busy.push(false);
        gpu.pending_waits.push(Vec::new());
        gpu
    }

    /// Creates a context with a fault plan installed from the start.
    pub fn with_faults(spec: DeviceSpec, plan: FaultPlan) -> Self {
        let mut gpu = Gpu::new(spec);
        gpu.set_fault_plan(plan);
        gpu
    }

    /// Installs (or replaces) the fault plan, resetting injector state.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(FaultInjector::new(plan));
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(|f| f.plan())
    }

    /// Whether a never-completing kernel is on the device (cleared only by
    /// [`Gpu::device_reset`]).
    pub fn is_hung(&self) -> bool {
        self.hung
    }

    /// The device specification.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Current host time, ns.
    pub fn host_ns(&self) -> u64 {
        self.host_ns as u64
    }

    /// Bytes currently allocated on the device.
    pub fn mem_used(&self) -> u64 {
        self.mem_used
    }

    /// Immutable view of the trace collected so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Takes the trace, leaving an empty one (used to scope profiling to a
    /// measurement region).
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    fn record_api(&mut self, kind: ApiKind, start: f64, dur: f64) {
        self.trace.push(TraceRecord::Api {
            kind,
            start_ns: start as u64,
            dur_ns: dur as u64,
        });
    }

    /// Creates a new stream.
    pub fn create_stream(&mut self) -> StreamId {
        let dur = 1_000.0;
        self.record_api(ApiKind::StreamCreate, self.host_ns, dur);
        self.host_ns += dur;
        self.streams.push(VecDeque::new());
        self.stream_busy.push(false);
        self.pending_waits.push(Vec::new());
        self.streams.len() - 1
    }

    /// Allocates device memory, checked against the usable capacity
    /// (device capacity minus any injected VRAM pressure).
    pub fn malloc(&mut self, bytes: u64) -> Result<(), GpuError> {
        let pressure = self.fault.as_ref().map_or(0, |f| f.vram_pressure_bytes());
        let usable = self.spec.mem_capacity.saturating_sub(pressure);
        if self.mem_used + bytes > usable {
            if pressure > 0 && self.mem_used + bytes <= self.spec.mem_capacity {
                // The allocation only failed because of the injected
                // pressure — record the fault.
                self.trace.push(TraceRecord::Fault {
                    kind: FaultKind::VramPressure,
                    stream: None,
                    start_ns: self.host_ns as u64,
                });
            }
            return Err(GpuError::OutOfMemory(OutOfMemory {
                requested: bytes,
                in_use: self.mem_used,
                capacity: usable,
            }));
        }
        let dur = self.spec.api_malloc_ns as f64;
        self.record_api(ApiKind::Malloc, self.host_ns, dur);
        self.host_ns += dur;
        self.mem_used += bytes;
        Ok(())
    }

    /// Frees device memory.
    pub fn free(&mut self, bytes: u64) {
        let dur = self.spec.api_malloc_ns as f64 / 2.0;
        self.record_api(ApiKind::Free, self.host_ns, dur);
        self.host_ns += dur;
        self.mem_used = self.mem_used.saturating_sub(bytes);
    }

    /// Enqueues an asynchronous host↔device copy on a stream, reporting an
    /// injected transfer fault if the plan fires one. The API overhead is
    /// charged either way (the call happened).
    pub fn try_memcpy_async(
        &mut self,
        stream: StreamId,
        dir: CopyDir,
        bytes: u64,
    ) -> Result<(), GpuError> {
        assert!(stream < self.streams.len(), "unknown stream {stream}");
        let dur = self.spec.api_memcpy_ns as f64;
        self.record_api(ApiKind::MemcpyAsync, self.host_ns, dur);
        self.host_ns += dur;
        if let Some(f) = self.fault.as_mut() {
            if f.memcpy_fails(stream, self.host_ns as u64) {
                self.trace.push(TraceRecord::Fault {
                    kind: FaultKind::MemcpyFailure,
                    stream: Some(stream),
                    start_ns: self.host_ns as u64,
                });
                return Err(GpuError::MemcpyFailed { stream, dir, bytes });
            }
        }
        let wait_events = std::mem::take(&mut self.pending_waits[stream]);
        self.streams[stream].push_back(QueuedOp {
            op: DeviceOp::Memcpy { dir, bytes },
            visible_at_ns: self.host_ns,
            wait_events,
            hangs: false,
        });
        Ok(())
    }

    /// Enqueues an asynchronous host↔device copy on a stream (infallible
    /// convenience; panics if a fault plan injects a failure).
    pub fn memcpy_async(&mut self, stream: StreamId, dir: CopyDir, bytes: u64) {
        self.try_memcpy_async(stream, dir, bytes)
            .expect("memcpy failed under fault injection; use try_memcpy_async");
    }

    /// Enqueues a kernel launch on a stream, reporting an injected launch
    /// fault if the plan fires one. The API overhead is charged either way.
    pub fn try_launch_kernel(
        &mut self,
        stream: StreamId,
        desc: KernelDesc,
    ) -> Result<(), GpuError> {
        assert!(stream < self.streams.len(), "unknown stream {stream}");
        let dur = self.spec.api_launch_ns as f64;
        self.record_api(ApiKind::LaunchKernel, self.host_ns, dur);
        self.host_ns += dur;
        let mut hangs = false;
        if let Some(f) = self.fault.as_mut() {
            if f.launch_fails(stream, self.host_ns as u64) {
                self.trace.push(TraceRecord::Fault {
                    kind: FaultKind::LaunchFailure,
                    stream: Some(stream),
                    start_ns: self.host_ns as u64,
                });
                return Err(GpuError::LaunchFailed { stream });
            }
            hangs = f.hang_on_this_kernel();
        }
        if hangs {
            self.hung = true;
            self.trace.push(TraceRecord::Fault {
                kind: FaultKind::DeviceHang,
                stream: Some(stream),
                start_ns: self.host_ns as u64,
            });
        }
        let wait_events = std::mem::take(&mut self.pending_waits[stream]);
        self.streams[stream].push_back(QueuedOp {
            op: DeviceOp::Kernel(desc),
            visible_at_ns: self.host_ns,
            wait_events,
            hangs,
        });
        Ok(())
    }

    /// Enqueues a kernel launch on a stream (infallible convenience; panics
    /// if a fault plan injects a failure).
    pub fn launch_kernel(&mut self, stream: StreamId, desc: KernelDesc) {
        self.try_launch_kernel(stream, desc)
            .expect("kernel launch failed under fault injection; use try_launch_kernel");
    }

    /// Records an event on a stream (`cudaEventRecord`): the event fires
    /// when every op enqueued on that stream so far has completed.
    pub fn record_event(&mut self, stream: StreamId) -> EventId {
        assert!(stream < self.streams.len(), "unknown stream {stream}");
        let dur = 1_200.0;
        self.record_api(ApiKind::EventRecord, self.host_ns, dur);
        self.host_ns += dur;
        let outstanding = self.streams[stream].len() + usize::from(self.stream_busy[stream]);
        let id = self.events.len();
        if outstanding == 0 {
            self.events.push(Some(self.host_ns));
        } else {
            self.events.push(None);
            self.event_trackers.push(EventTracker {
                event: id,
                stream,
                remaining: outstanding,
            });
        }
        id
    }

    /// Makes the *next* op enqueued on `stream` wait for `event`
    /// (`cudaStreamWaitEvent`): the op cannot start before the event fires.
    pub fn stream_wait_event(&mut self, stream: StreamId, event: EventId) {
        assert!(stream < self.streams.len(), "unknown stream {stream}");
        assert!(event < self.events.len(), "unknown event {event}");
        let dur = 800.0;
        self.record_api(ApiKind::StreamWaitEvent, self.host_ns, dur);
        self.host_ns += dur;
        self.pending_waits[stream].push(event);
    }

    /// Whether an event has fired (device progress is simulated lazily, so
    /// this is meaningful after a synchronize).
    pub fn event_fired(&self, event: EventId) -> bool {
        self.events.get(event).map(|e| e.is_some()).unwrap_or(false)
    }

    /// Blocks the host until one stream drains (`cudaStreamSynchronize`);
    /// returns the wait in ns. Other streams keep executing on the device.
    pub fn stream_synchronize(&mut self, stream: StreamId) -> u64 {
        assert!(stream < self.streams.len(), "unknown stream {stream}");
        let call_start = self.host_ns;
        // Record an implicit event at the stream tail and run the device
        // until it fires; nothing can be enqueued behind our back, so
        // running to drain is safe and the event time gives the wait.
        let outstanding = self.streams[stream].len() + usize::from(self.stream_busy[stream]);
        let ev = self.events.len();
        if outstanding == 0 {
            self.events.push(Some(self.host_ns));
        } else {
            self.events.push(None);
            self.event_trackers.push(EventTracker {
                event: ev,
                stream,
                remaining: outstanding,
            });
        }
        self.run_device(f64::INFINITY);
        let fired_at = self.events[ev].expect("stream drained");
        let resume = fired_at.max(self.host_ns) + self.spec.api_sync_ns as f64;
        let dur = resume - call_start;
        self.record_api(ApiKind::DeviceSynchronize, call_start, dur);
        self.host_ns = resume;
        dur as u64
    }

    /// Blocks the host until every stream drains; returns the wait in ns.
    ///
    /// Panics if a never-completing kernel is on the device — fault-planned
    /// callers must use [`Gpu::try_device_synchronize`] with a watchdog.
    pub fn device_synchronize(&mut self) -> u64 {
        let call_start = self.host_ns;
        let drained_at = self.run_device(f64::INFINITY);
        let resume = drained_at.max(self.host_ns) + self.spec.api_sync_ns as f64;
        let dur = resume - call_start;
        self.record_api(ApiKind::DeviceSynchronize, call_start, dur);
        self.host_ns = resume;
        dur as u64
    }

    /// `cudaDeviceSynchronize` under a watchdog: blocks the host until every
    /// stream drains, but gives up once `watchdog_ns` of host time has
    /// passed. On expiry the call returns [`GpuError::DeviceHang`] with the
    /// watchdog charged to the host clock; partial device progress up to the
    /// deadline is kept. Recovery from a true hang requires
    /// [`Gpu::device_reset`].
    pub fn try_device_synchronize(&mut self, watchdog_ns: u64) -> Result<u64, GpuError> {
        let call_start = self.host_ns;
        let deadline = call_start + watchdog_ns as f64;
        let reached = self.run_device(deadline);
        if self.device_has_work() {
            let dur = watchdog_ns as f64;
            self.record_api(ApiKind::DeviceSynchronize, call_start, dur);
            self.host_ns = call_start + dur;
            return Err(GpuError::DeviceHang { watchdog_ns });
        }
        let resume = reached.max(self.host_ns) + self.spec.api_sync_ns as f64;
        let dur = resume - call_start;
        self.record_api(ApiKind::DeviceSynchronize, call_start, dur);
        self.host_ns = resume;
        Ok(dur as u64)
    }

    /// Resets the device after a fault: discards every queued and running
    /// op (including a hung kernel), fires orphaned events so later waits
    /// cannot deadlock, and clears the hang flag. Allocations survive (this
    /// models a stream/context teardown, not a full `cudaDeviceReset`), so
    /// callers re-enqueue work without re-uploading weights.
    pub fn device_reset(&mut self) {
        let dur = 100_000.0; // 100 µs: context teardown + re-arm
        self.record_api(ApiKind::DeviceReset, self.host_ns, dur);
        self.host_ns += dur;
        for q in &mut self.streams {
            q.clear();
        }
        for b in &mut self.stream_busy {
            *b = false;
        }
        self.inflight.clear();
        for w in &mut self.pending_waits {
            w.clear();
        }
        self.event_trackers.clear();
        let now = self.host_ns;
        for e in &mut self.events {
            if e.is_none() {
                *e = Some(now);
            }
        }
        self.hung = false;
    }

    /// Advances the host clock without touching the device (models CPU work
    /// between CUDA calls, e.g. Python/framework overhead).
    pub fn host_busy(&mut self, ns: u64) {
        self.host_ns += ns as f64;
    }

    // ----------------------------------------------------- device simulation

    /// True if any stream has queued or running work.
    fn device_has_work(&self) -> bool {
        !self.inflight.is_empty() || self.streams.iter().any(|q| !q.is_empty())
    }

    /// True if every wait-event of `q` has fired by `now`.
    fn waits_satisfied(&self, q: &QueuedOp, now: f64) -> bool {
        q.wait_events
            .iter()
            .all(|&e| matches!(self.events[e], Some(t) if t <= now))
    }

    /// Moves queue heads into execution where possible at device time `now`.
    fn start_ready_ops(&mut self, now: f64) {
        for s in 0..self.streams.len() {
            if self.stream_busy[s] {
                continue;
            }
            let ready = matches!(
                self.streams[s].front(),
                Some(q) if q.visible_at_ns <= now && self.waits_satisfied(q, now)
            );
            if ready {
                let q = self.streams[s].pop_front().expect("checked non-empty");
                let (remaining, demand) = match &q.op {
                    DeviceOp::Kernel(k) => (k.isolated_ns(&self.spec), k.demand(&self.spec)),
                    DeviceOp::Memcpy { bytes, .. } => {
                        let t = self.spec.memop_ramp_ns as f64
                            + *bytes as f64 / self.spec.pcie_bytes_per_ns();
                        (t, 1.0)
                    }
                };
                // A hung op occupies its stream (and its demand) forever.
                let remaining = if q.hangs { f64::INFINITY } else { remaining };
                self.inflight.push(InflightOp {
                    op: q.op,
                    stream: s,
                    start_ns: now,
                    remaining_ns: remaining,
                    demand,
                });
                self.stream_busy[s] = true;
            }
        }
    }

    /// Execution rate of each inflight op under processor sharing at device
    /// time `now` (the time matters only for thermal throttling, which
    /// scales kernel rates inside its window).
    fn rates(&self, now: f64) -> Vec<f64> {
        let throttle = self.fault.as_ref().map_or(1.0, |f| f.throttle_factor(now));
        // Kernels share the SM/bandwidth pool by demand; memcpys share PCIe
        // per direction equally.
        let kernel_demand: f64 = self
            .inflight
            .iter()
            .filter(|op| matches!(op.op, DeviceOp::Kernel(_)))
            .map(|op| op.demand)
            .sum();
        let h2d = self
            .inflight
            .iter()
            .filter(|op| {
                matches!(
                    op.op,
                    DeviceOp::Memcpy {
                        dir: CopyDir::H2D,
                        ..
                    }
                )
            })
            .count()
            .max(1) as f64;
        let d2h = self
            .inflight
            .iter()
            .filter(|op| {
                matches!(
                    op.op,
                    DeviceOp::Memcpy {
                        dir: CopyDir::D2H,
                        ..
                    }
                )
            })
            .count()
            .max(1) as f64;
        self.inflight
            .iter()
            .map(|op| match &op.op {
                DeviceOp::Kernel(_) => {
                    throttle
                        * if kernel_demand <= 1.0 {
                            1.0
                        } else {
                            1.0 / kernel_demand
                        }
                }
                DeviceOp::Memcpy { dir, .. } => match dir {
                    CopyDir::H2D => 1.0 / h2d,
                    CopyDir::D2H => 1.0 / d2h,
                },
            })
            .collect()
    }

    /// Runs the device until it drains or until `deadline` (device time).
    /// Returns the device time reached.
    fn run_device(&mut self, deadline: f64) -> f64 {
        let mut now = self.device_ns;
        loop {
            self.start_ready_ops(now);
            if self.inflight.is_empty() {
                // Nothing running; maybe something becomes visible later.
                // Heads blocked on unfired events can never start while the
                // device is idle (events only fire on completions), so they
                // don't contribute a wake-up time.
                let mut blocked_only = false;
                let next_visible = self
                    .streams
                    .iter()
                    .enumerate()
                    .filter(|(s, q)| !self.stream_busy[*s] && !q.is_empty())
                    .filter_map(|(_, q)| {
                        let head = q.front().expect("non-empty");
                        if self.waits_satisfied(head, f64::INFINITY) {
                            Some(head.visible_at_ns)
                        } else {
                            blocked_only = true;
                            None
                        }
                    })
                    .fold(f64::INFINITY, f64::min);
                if next_visible.is_infinite() {
                    assert!(
                        !blocked_only || !self.device_has_work(),
                        "event deadlock: queued work waits on an event that can never fire"
                    );
                    break;
                }
                if next_visible > deadline {
                    break;
                }
                now = now.max(next_visible);
                continue;
            }
            let rates = self.rates(now);
            // Earliest completion among inflight ops (a hung op has infinite
            // remaining time and never wins this min on its own).
            let (idx, completion) = self
                .inflight
                .iter()
                .zip(rates.iter())
                .enumerate()
                .map(|(i, (op, r))| (i, now + op.remaining_ns / r))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("comparable times"))
                .expect("non-empty inflight");
            // Earliest op becoming visible on an idle stream (could add
            // parallelism before the completion). Event-blocked heads wake
            // on completions, which are already simulation events.
            let next_visible = self
                .streams
                .iter()
                .enumerate()
                .filter(|(s, q)| !self.stream_busy[*s] && !q.is_empty())
                .filter(|(_, q)| {
                    let head = q.front().expect("non-empty");
                    self.waits_satisfied(head, f64::INFINITY)
                })
                .map(|(_, q)| q.front().expect("non-empty").visible_at_ns)
                .filter(|&t| t > now)
                .fold(f64::INFINITY, f64::min);

            // A throttle-window edge changes kernel rates, so it is a
            // simulation event like any completion or arrival.
            let boundary = self
                .fault
                .as_ref()
                .map_or(f64::INFINITY, |f| f.next_throttle_boundary(now));

            let event = completion.min(next_visible).min(boundary);
            if event.is_infinite() && deadline.is_infinite() {
                panic!(
                    "device hung: an inflight op will never complete \
                     (synchronize with try_device_synchronize and a watchdog)"
                );
            }
            if event > deadline {
                // Advance partially to the deadline and stop.
                let dt = deadline - now;
                if dt > 0.0 {
                    for (op, r) in self.inflight.iter_mut().zip(rates.iter()) {
                        op.remaining_ns -= dt * r;
                    }
                    now = deadline;
                }
                break;
            }
            let dt = event - now;
            for (op, r) in self.inflight.iter_mut().zip(rates.iter()) {
                op.remaining_ns -= dt * r;
            }
            now = event;
            if let Some(f) = self.fault.as_mut() {
                for (kind, at_ns) in f.take_throttle_crossings(now) {
                    self.trace.push(TraceRecord::Fault {
                        kind,
                        stream: None,
                        start_ns: at_ns,
                    });
                }
            }
            if completion <= next_visible && completion <= boundary {
                let done = self.inflight.remove(idx);
                self.stream_busy[done.stream] = false;
                // Event bookkeeping: completions on this stream count down
                // the outstanding-op trackers.
                for tr in &mut self.event_trackers {
                    if tr.stream == done.stream && tr.remaining > 0 {
                        tr.remaining -= 1;
                        if tr.remaining == 0 {
                            self.events[tr.event] = Some(now);
                        }
                    }
                }
                self.event_trackers.retain(|tr| tr.remaining > 0);
                let dur = now - done.start_ns;
                match done.op {
                    DeviceOp::Kernel(k) => self.trace.push(TraceRecord::Kernel {
                        name: k.name,
                        class: k.class,
                        stream: done.stream,
                        start_ns: done.start_ns as u64,
                        dur_ns: dur as u64,
                    }),
                    DeviceOp::Memcpy { dir, bytes } => self.trace.push(TraceRecord::Memop {
                        dir,
                        bytes,
                        start_ns: done.start_ns as u64,
                        dur_ns: dur as u64,
                    }),
                }
            }
            if !self.device_has_work() {
                break;
            }
        }
        self.device_ns = now;
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelClass;

    fn gpu() -> Gpu {
        Gpu::new(DeviceSpec::test_gpu())
    }

    /// A kernel with an exactly known isolated time on the test GPU.
    /// flops so that compute time is `us` microseconds at Conv efficiency.
    fn conv_kernel(us: f64, threads: f64) -> KernelDesc {
        let dev = DeviceSpec::test_gpu();
        let flops = us * 1e3 * dev.peak_flops() * 0.45 / 1e9;
        KernelDesc::new("k", KernelClass::Conv, flops, 0.0, threads)
    }

    #[test]
    fn context_creation_loads_library() {
        let g = gpu();
        assert_eq!(g.trace().api_time(ApiKind::LibraryLoadData), 1_000_000);
    }

    #[test]
    fn launch_is_asynchronous_for_host() {
        let mut g = gpu();
        let before = g.host_ns();
        g.launch_kernel(0, conv_kernel(10_000.0, 100.0)); // 10 ms kernel
        let after = g.host_ns();
        // Host paid only the API overhead, not the kernel time.
        assert_eq!(after - before, 5_000);
    }

    #[test]
    fn synchronize_waits_for_long_kernel() {
        let mut g = gpu();
        g.launch_kernel(0, conv_kernel(1_000.0, 100.0)); // ~1 ms of GPU work
        let wait = g.device_synchronize();
        // Wait ≈ kernel duration (1 ms + ramp) minus nothing (host is ahead
        // by only the launch overhead), plus sync overhead.
        assert!(wait > 900_000, "wait was {wait}");
        assert!(wait < 1_200_000, "wait was {wait}");
    }

    #[test]
    fn synchronize_on_idle_device_is_cheap() {
        let mut g = gpu();
        let wait = g.device_synchronize();
        assert_eq!(wait, 1_000); // just the sync API overhead
    }

    #[test]
    fn host_bound_when_kernels_are_tiny() {
        // Many tiny kernels: device finishes each before the next launch
        // call returns, so the final sync finds an idle device.
        let mut g = gpu();
        for _ in 0..20 {
            g.launch_kernel(0, conv_kernel(1.0, 32.0)); // ~1 µs kernels
        }
        let wait = g.device_synchronize();
        assert!(wait < 10_000, "expected near-zero sync wait, got {wait}");
    }

    #[test]
    fn same_stream_serializes() {
        let mut g = gpu();
        g.launch_kernel(0, conv_kernel(100.0, 100.0));
        g.launch_kernel(0, conv_kernel(100.0, 100.0));
        g.device_synchronize();
        // Extract the two kernel records; the second starts after the first
        // ends.
        let kernels: Vec<(u64, u64)> = g
            .trace()
            .records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Kernel {
                    start_ns, dur_ns, ..
                } => Some((*start_ns, *dur_ns)),
                _ => None,
            })
            .collect();
        assert_eq!(kernels.len(), 2);
        assert!(kernels[1].0 >= kernels[0].0 + kernels[0].1);
    }

    #[test]
    fn small_kernels_on_two_streams_overlap() {
        // Two low-demand kernels on different streams should run at full
        // speed concurrently: total device span ≈ one kernel, not two.
        let mut g = gpu();
        let s1 = g.create_stream();
        // Low thread count → demand ≈ 32/4096 each; sum ≪ 1.
        g.launch_kernel(0, conv_kernel(500.0, 32.0));
        g.launch_kernel(s1, conv_kernel(500.0, 32.0));
        g.device_synchronize();
        let kernels: Vec<(u64, u64)> = g
            .trace()
            .records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Kernel {
                    start_ns, dur_ns, ..
                } => Some((*start_ns, *dur_ns)),
                _ => None,
            })
            .collect();
        let span = kernels.iter().map(|(s, d)| s + d).max().unwrap()
            - kernels.iter().map(|(s, _)| *s).min().unwrap();
        let sum: u64 = kernels.iter().map(|(_, d)| d).sum();
        assert!(
            span < sum * 7 / 10,
            "expected overlap: span {span} vs serial {sum}"
        );
    }

    #[test]
    fn saturating_kernels_gain_nothing_from_streams() {
        // Two demand-1 kernels on different streams take as long as serial.
        let mut g = gpu();
        let s1 = g.create_stream();
        let big = conv_kernel(500.0, 1e6); // threads ≫ resident capacity
        g.launch_kernel(0, big.clone());
        g.launch_kernel(s1, big);
        g.device_synchronize();
        let kernels: Vec<(u64, u64)> = g
            .trace()
            .records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Kernel {
                    start_ns, dur_ns, ..
                } => Some((*start_ns, *dur_ns)),
                _ => None,
            })
            .collect();
        let span = kernels.iter().map(|(s, d)| s + d).max().unwrap()
            - kernels.iter().map(|(s, _)| *s).min().unwrap();
        // Serial time would be ~1 ms + ramps; processor sharing cannot beat it.
        assert!(span >= 990_000, "span {span} should be ≈ serial");
    }

    #[test]
    fn memcpy_duration_is_bandwidth_plus_ramp() {
        let mut g = gpu();
        g.memcpy_async(0, CopyDir::H2D, 10_000_000); // 10 MB at 10 GB/s = 1 ms
        g.device_synchronize();
        let (_, bytes, dur) = g.trace().memops().next().expect("one memop");
        assert_eq!(bytes, 10_000_000);
        assert!((dur as i64 - 1_001_000).abs() < 2_000, "dur {dur}");
    }

    #[test]
    fn malloc_tracks_capacity_and_oom() {
        let mut g = gpu();
        assert!(g.malloc(1 << 29).is_ok());
        assert_eq!(g.mem_used(), 1 << 29);
        assert!(g.malloc(1 << 29).is_ok());
        match g.malloc(1).unwrap_err() {
            GpuError::OutOfMemory(oom) => assert_eq!(oom.capacity, 1 << 30),
            other => panic!("expected OOM, got {other:?}"),
        }
        g.free(1 << 29);
        assert!(g.malloc(1).is_ok());
    }

    #[test]
    fn sync_duration_grows_with_device_work() {
        let mut short = gpu();
        short.launch_kernel(0, conv_kernel(100.0, 1e6));
        let w1 = short.device_synchronize();

        let mut long = gpu();
        long.launch_kernel(0, conv_kernel(10_000.0, 1e6));
        let w2 = long.device_synchronize();
        assert!(w2 > w1 * 10, "w1={w1} w2={w2}");
    }

    #[test]
    fn take_trace_resets() {
        let mut g = gpu();
        g.launch_kernel(0, conv_kernel(1.0, 32.0));
        g.device_synchronize();
        let t = g.take_trace();
        assert!(!t.is_empty());
        assert!(g.trace().is_empty());
    }

    #[test]
    fn stream_synchronize_waits_only_its_stream() {
        let mut g = gpu();
        let s1 = g.create_stream();
        g.launch_kernel(0, conv_kernel(1_000.0, 32.0)); // ~1 ms on stream 0
        g.launch_kernel(s1, conv_kernel(1.0, 32.0)); // ~1 µs on stream 1
        let wait = g.stream_synchronize(s1);
        // Waiting on the short stream returns quickly even though stream 0
        // still holds ~1 ms of work.
        assert!(wait < 100_000, "stream sync waited {wait} ns");
        let full = g.device_synchronize();
        assert!(
            full > 500_000,
            "device sync should still wait for stream 0, got {full}"
        );
    }

    #[test]
    fn stream_synchronize_idle_stream_is_cheap() {
        let mut g = gpu();
        let wait = g.stream_synchronize(0);
        assert_eq!(wait, 1_000);
    }

    #[test]
    fn event_fires_after_stream_work_completes() {
        let mut g = gpu();
        g.launch_kernel(0, conv_kernel(100.0, 100.0));
        let ev = g.record_event(0);
        assert!(!g.event_fired(ev), "device has not run yet");
        g.device_synchronize();
        assert!(g.event_fired(ev));
    }

    #[test]
    fn event_on_idle_stream_fires_immediately() {
        let mut g = gpu();
        let ev = g.record_event(0);
        assert!(g.event_fired(ev));
    }

    #[test]
    fn stream_wait_event_orders_cross_stream_work() {
        // Producer on stream 0, consumer on stream 1 gated by an event:
        // the consumer must start only after the producer finished, even
        // though the streams are otherwise concurrent.
        let mut g = gpu();
        let s1 = g.create_stream();
        g.launch_kernel(0, conv_kernel(500.0, 32.0)); // producer
        let ev = g.record_event(0);
        g.stream_wait_event(s1, ev);
        g.launch_kernel(s1, conv_kernel(10.0, 32.0)); // consumer
        g.device_synchronize();
        let kernels: Vec<(usize, u64, u64)> = g
            .trace()
            .records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Kernel {
                    stream,
                    start_ns,
                    dur_ns,
                    ..
                } => Some((*stream, *start_ns, *dur_ns)),
                _ => None,
            })
            .collect();
        assert_eq!(kernels.len(), 2);
        let producer = kernels.iter().find(|k| k.0 == 0).unwrap();
        let consumer = kernels.iter().find(|k| k.0 == s1).unwrap();
        assert!(
            consumer.1 >= producer.1 + producer.2,
            "consumer at {} started before producer ended at {}",
            consumer.1,
            producer.1 + producer.2
        );
    }

    #[test]
    fn ungated_work_overlaps_the_producer() {
        // Without the event wait, the same consumer overlaps the producer.
        let mut g = gpu();
        let s1 = g.create_stream();
        g.launch_kernel(0, conv_kernel(500.0, 32.0));
        g.launch_kernel(s1, conv_kernel(500.0, 32.0));
        g.device_synchronize();
        let kernels: Vec<(u64, u64)> = g
            .trace()
            .records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Kernel {
                    start_ns, dur_ns, ..
                } => Some((*start_ns, *dur_ns)),
                _ => None,
            })
            .collect();
        let span = kernels.iter().map(|(s, d)| s + d).max().unwrap()
            - kernels.iter().map(|(s, _)| *s).min().unwrap();
        let sum: u64 = kernels.iter().map(|(_, d)| d).sum();
        assert!(span < sum, "streams should overlap without an event gate");
    }

    #[test]
    fn event_chain_across_three_streams() {
        let mut g = gpu();
        let s1 = g.create_stream();
        let s2 = g.create_stream();
        g.launch_kernel(0, conv_kernel(100.0, 32.0));
        let e0 = g.record_event(0);
        g.stream_wait_event(s1, e0);
        g.launch_kernel(s1, conv_kernel(100.0, 32.0));
        let e1 = g.record_event(s1);
        g.stream_wait_event(s2, e1);
        g.launch_kernel(s2, conv_kernel(100.0, 32.0));
        g.device_synchronize();
        let mut starts: Vec<(usize, u64)> = g
            .trace()
            .records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Kernel {
                    stream, start_ns, ..
                } => Some((*stream, *start_ns)),
                _ => None,
            })
            .collect();
        starts.sort_by_key(|&(_, t)| t);
        assert_eq!(
            starts.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
            vec![0, s1, s2],
            "chain must execute in dependency order"
        );
    }

    #[test]
    fn vram_pressure_shrinks_usable_capacity_and_records_fault() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan {
            vram_pressure_bytes: 1 << 29, // half the 1 GiB test GPU
            ..FaultPlan::none()
        };
        let mut g = Gpu::with_faults(DeviceSpec::test_gpu(), plan);
        assert!(g.malloc(1 << 28).is_ok());
        let err = g.malloc(1 << 29).unwrap_err(); // fits real capacity, not usable
        match err {
            GpuError::OutOfMemory(oom) => assert_eq!(oom.capacity, 1 << 29),
            other => panic!("expected OOM, got {other:?}"),
        }
        assert_eq!(g.trace().fault_count(FaultKind::VramPressure), 1);
    }

    #[test]
    fn persistent_stream_launch_fails_while_stream0_succeeds() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan {
            persistent_launch_failure_streams: vec![1],
            ..FaultPlan::none()
        };
        let mut g = Gpu::with_faults(DeviceSpec::test_gpu(), plan);
        let s1 = g.create_stream();
        assert!(g.try_launch_kernel(0, conv_kernel(1.0, 32.0)).is_ok());
        let err = g.try_launch_kernel(s1, conv_kernel(1.0, 32.0)).unwrap_err();
        assert_eq!(err, GpuError::LaunchFailed { stream: s1 });
        assert_eq!(g.trace().fault_count(FaultKind::LaunchFailure), 1);
        g.device_synchronize();
    }

    #[test]
    fn hang_trips_watchdog_and_reset_recovers() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan {
            hang_after_kernels: Some(1),
            ..FaultPlan::none()
        };
        let mut g = Gpu::with_faults(DeviceSpec::test_gpu(), plan);
        g.try_launch_kernel(0, conv_kernel(10.0, 32.0)).unwrap(); // completes
        g.try_launch_kernel(0, conv_kernel(10.0, 32.0)).unwrap(); // hangs
        assert!(g.is_hung());
        let before = g.host_ns();
        let err = g.try_device_synchronize(5_000_000).unwrap_err();
        assert_eq!(
            err,
            GpuError::DeviceHang {
                watchdog_ns: 5_000_000
            }
        );
        // The watchdog wait was charged to the host clock.
        assert_eq!(g.host_ns() - before, 5_000_000);
        assert_eq!(g.trace().fault_count(FaultKind::DeviceHang), 1);
        g.device_reset();
        assert!(!g.is_hung());
        // The device accepts and completes fresh work.
        g.try_launch_kernel(0, conv_kernel(10.0, 32.0)).unwrap();
        assert!(g.try_device_synchronize(5_000_000).is_ok());
    }

    #[test]
    fn throttle_window_slows_kernels_inside_it() {
        use crate::fault::{FaultPlan, ThrottleWindow};
        // Free-running kernel: ~1 ms isolated. Throttle 0.5× over a window
        // covering the whole run → roughly doubles the duration.
        let mut free = gpu();
        free.launch_kernel(0, conv_kernel(1_000.0, 100.0));
        free.device_synchronize();
        let free_dur = free
            .trace()
            .records
            .iter()
            .find_map(|r| match r {
                TraceRecord::Kernel { dur_ns, .. } => Some(*dur_ns),
                _ => None,
            })
            .expect("kernel record");

        let plan = FaultPlan {
            throttle: Some(ThrottleWindow {
                start_ns: 0,
                end_ns: u64::MAX,
                factor: 0.5,
            }),
            ..FaultPlan::none()
        };
        let mut hot = Gpu::with_faults(DeviceSpec::test_gpu(), plan);
        hot.launch_kernel(0, conv_kernel(1_000.0, 100.0));
        hot.device_synchronize();
        let hot_dur = hot
            .trace()
            .records
            .iter()
            .find_map(|r| match r {
                TraceRecord::Kernel { dur_ns, .. } => Some(*dur_ns),
                _ => None,
            })
            .expect("kernel record");
        let ratio = hot_dur as f64 / free_dur as f64;
        assert!((ratio - 2.0).abs() < 0.05, "throttle ratio {ratio}");
    }

    #[test]
    fn throttle_boundary_splits_execution_and_is_traced() {
        use crate::fault::{FaultPlan, ThrottleWindow};
        // The kernel starts after library load (~1 ms) + launch overhead.
        // Throttle kicks in mid-kernel; the total must be longer than free
        // running but shorter than fully-throttled.
        let mut free = gpu();
        free.launch_kernel(0, conv_kernel(1_000.0, 100.0));
        free.device_synchronize();
        let free_dur = free
            .trace()
            .records
            .iter()
            .find_map(|r| match r {
                TraceRecord::Kernel {
                    start_ns, dur_ns, ..
                } => Some((*start_ns, *dur_ns)),
                _ => None,
            })
            .expect("kernel record");

        let mid = free_dur.0 + free_dur.1 / 2;
        let plan = FaultPlan {
            throttle: Some(ThrottleWindow {
                start_ns: mid,
                end_ns: u64::MAX,
                factor: 0.5,
            }),
            ..FaultPlan::none()
        };
        let mut hot = Gpu::with_faults(DeviceSpec::test_gpu(), plan);
        hot.launch_kernel(0, conv_kernel(1_000.0, 100.0));
        hot.device_synchronize();
        let hot_dur = hot
            .trace()
            .records
            .iter()
            .find_map(|r| match r {
                TraceRecord::Kernel { dur_ns, .. } => Some(*dur_ns),
                _ => None,
            })
            .expect("kernel record");
        assert!(
            hot_dur > free_dur.1 * 11 / 10,
            "hot {hot_dur} vs free {}",
            free_dur.1
        );
        assert!(
            hot_dur < free_dur.1 * 2,
            "hot {hot_dur} vs free {}",
            free_dur.1
        );
        assert_eq!(hot.trace().fault_count(FaultKind::ThrottleStart), 1);
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_no_plan() {
        use crate::fault::FaultPlan;
        let drive = |g: &mut Gpu| {
            let s1 = g.create_stream();
            g.malloc(1 << 20).unwrap();
            g.memcpy_async(0, CopyDir::H2D, 1 << 20);
            g.launch_kernel(0, conv_kernel(50.0, 100.0));
            g.launch_kernel(s1, conv_kernel(20.0, 32.0));
            let ev = g.record_event(0);
            g.stream_wait_event(s1, ev);
            g.launch_kernel(s1, conv_kernel(10.0, 32.0));
            g.memcpy_async(0, CopyDir::D2H, 1 << 10);
            g.device_synchronize();
        };
        let mut plain = gpu();
        drive(&mut plain);
        let mut planned = Gpu::with_faults(DeviceSpec::test_gpu(), FaultPlan::none());
        drive(&mut planned);
        assert_eq!(plain.trace().records, planned.trace().records);
        assert_eq!(plain.host_ns(), planned.host_ns());
    }

    #[test]
    fn ops_do_not_start_before_host_enqueue() {
        let mut g = gpu();
        g.host_busy(50_000);
        g.launch_kernel(0, conv_kernel(10.0, 32.0));
        g.device_synchronize();
        let start = g
            .trace()
            .records
            .iter()
            .find_map(|r| match r {
                TraceRecord::Kernel { start_ns, .. } => Some(*start_ns),
                _ => None,
            })
            .expect("kernel record");
        // Library load (1 ms) + busy 50 µs + launch call 5 µs.
        assert!(start >= 1_055_000, "kernel started at {start}");
    }
}
