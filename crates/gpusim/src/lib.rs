//! # dcd-gpusim
//!
//! A deterministic discrete-event GPU simulator standing in for the paper's
//! NVIDIA RTX A5500 (80 SMs / 10240 CUDA cores, 24 GB, PCIe 4.0 ×16).
//!
//! The simulator co-simulates a *host* timeline (CUDA API calls with real
//! dispatch overheads) and a *device* timeline (kernels and memcpys executing
//! asynchronously on streams). Three modelling choices carry all of the
//! paper's observed phenomena:
//!
//! 1. **Roofline kernel costs** — a kernel's isolated duration is
//!    `max(flops / (efficiency·peak_flops), bytes / mem_bandwidth)` plus a
//!    fixed device-side ramp. Batch-1 fully-connected layers are memory-bound
//!    (the whole weight matrix streams from DRAM per inference), so GEMM
//!    dominates the kernel profile at small batch; convolution FLOPs scale
//!    with batch and dominate at large batch (Table 3).
//! 2. **Processor-sharing concurrency** — each kernel declares a *demand*
//!    (the fraction of the device it can actually use). Concurrent kernels
//!    whose demands sum below 1 run at full speed (inter-operator parallelism
//!    is free for small branch kernels); oversubscribed kernels slow down
//!    proportionally. This yields IOS' gains and their diminishing returns
//!    with batch size (Fig 6).
//! 3. **Asynchronous host/device clocks** — API calls cost host time; kernels
//!    run behind. `cudaDeviceSynchronize` blocks the host until the device
//!    drains, so its recorded duration grows with batch size while the
//!    one-time `cuLibraryLoadData` stays constant (Fig 8).
//!
//! Nothing here binds to real CUDA; all times are simulated nanoseconds.

pub mod device;
pub mod engine;
pub mod fault;
pub mod kernel;
pub mod trace;

pub use device::DeviceSpec;
pub use engine::{Gpu, GpuError, OutOfMemory, StreamId};
pub use fault::{splitmix64, unit_draw, FaultInjector, FaultKind, FaultPlan, ThrottleWindow};
pub use kernel::{KernelClass, KernelDesc};
pub use trace::{ApiKind, CopyDir, Trace, TraceRecord};
