//! Kernel descriptors and the roofline cost model.

use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Operator class a kernel belongs to.
///
/// The profiler buckets kernel time by this class to regenerate Table 3
/// (Matrix Multiplication / Pooling / Conv), with everything else counted in
/// the "other" remainder like nsys does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelClass {
    /// Dense matrix multiplication (fully-connected layers).
    Gemm,
    /// Max/adaptive pooling.
    Pool,
    /// Convolution.
    Conv,
    /// Elementwise ops (ReLU, bias add, …).
    Elementwise,
    /// Data movement on device (concat, reshape copies).
    Copy,
    /// Anything else.
    Other,
}

impl KernelClass {
    /// Sustained fraction of peak FP32 the class achieves on real hardware
    /// (cuBLAS GEMM ≫ im2col conv ≫ bandwidth-bound pooling).
    pub fn compute_efficiency(&self) -> f64 {
        match self {
            KernelClass::Gemm => 0.70,
            KernelClass::Conv => 0.45,
            KernelClass::Pool => 0.10,
            KernelClass::Elementwise => 0.08,
            KernelClass::Copy => 0.05,
            KernelClass::Other => 0.10,
        }
    }

    /// Sustained fraction of peak DRAM bandwidth the class achieves.
    pub fn memory_efficiency(&self) -> f64 {
        match self {
            KernelClass::Gemm => 0.85,
            KernelClass::Conv => 0.75,
            KernelClass::Pool => 0.80,
            KernelClass::Elementwise => 0.85,
            KernelClass::Copy => 0.90,
            KernelClass::Other => 0.60,
        }
    }

    /// Stable label used in profiling reports.
    pub fn label(&self) -> &'static str {
        match self {
            KernelClass::Gemm => "gemm",
            KernelClass::Pool => "pool",
            KernelClass::Conv => "conv",
            KernelClass::Elementwise => "elementwise",
            KernelClass::Copy => "copy",
            KernelClass::Other => "other",
        }
    }
}

/// Work description of one kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Kernel name as it would appear in an nsys report.
    pub name: String,
    /// Operator class.
    pub class: KernelClass,
    /// Floating-point operations performed.
    pub flops: f64,
    /// Bytes moved through DRAM (reads + writes; weights + activations).
    pub bytes: f64,
    /// Total CUDA threads launched (parallelism available for occupancy).
    pub threads: f64,
}

impl KernelDesc {
    /// Constructs a descriptor; negative work is a programming error.
    pub fn new(
        name: impl Into<String>,
        class: KernelClass,
        flops: f64,
        bytes: f64,
        threads: f64,
    ) -> Self {
        assert!(flops >= 0.0 && bytes >= 0.0 && threads >= 0.0);
        KernelDesc {
            name: name.into(),
            class,
            flops,
            bytes,
            threads,
        }
    }

    /// Isolated execution time on `dev` in ns (roofline + launch ramp).
    pub fn isolated_ns(&self, dev: &DeviceSpec) -> f64 {
        let compute_ns = self.flops / (dev.peak_flops() * self.class.compute_efficiency()) * 1e9;
        let memory_ns = self.bytes / (dev.mem_bytes_per_ns() * self.class.memory_efficiency());
        dev.kernel_ramp_ns as f64 + compute_ns.max(memory_ns)
    }

    /// Fraction of the device this kernel can use while executing — its
    /// *demand* in the processor-sharing model.
    ///
    /// Compute demand is thread occupancy against the device's resident
    /// ceiling; memory demand is the fraction of DRAM bandwidth the kernel
    /// needs to hit its isolated time. A kernel saturating either resource
    /// has demand 1 and gains nothing from running next to peers.
    pub fn demand(&self, dev: &DeviceSpec) -> f64 {
        // Average bandwidth over the whole launch (ramp included): a tiny
        // ramp-dominated kernel holds almost no bandwidth.
        let total_ns = self.isolated_ns(dev).max(1.0);
        let compute_demand = (self.threads / dev.max_resident_threads() as f64).min(1.0);
        let bw_need = self.bytes / total_ns; // bytes per ns
        let mem_demand = (bw_need / dev.mem_bytes_per_ns()).min(1.0);
        compute_demand.max(mem_demand).clamp(0.02, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::test_gpu() // 512 GFLOP/s peak, 100 GB/s, 4096 threads
    }

    #[test]
    fn compute_bound_kernel_time() {
        // 512 GFLOPs of GEMM at 70% efficiency ≈ 1.428 s; memory negligible.
        let k = KernelDesc::new("gemm", KernelClass::Gemm, 512e9, 1.0, 1e9);
        let t = k.isolated_ns(&dev());
        let expect = 1e9 / 0.70 + 1000.0;
        assert!((t - expect).abs() / expect < 1e-6, "t={t}, expect={expect}");
    }

    #[test]
    fn memory_bound_kernel_time() {
        // 100 GB at 80% of 100 GB/s = 1.25 s; compute negligible.
        let k = KernelDesc::new("pool", KernelClass::Pool, 1.0, 100e9, 1e9);
        let t = k.isolated_ns(&dev());
        let expect = 100e9 / (100.0 * 0.80) + 1000.0;
        assert!((t - expect).abs() / expect < 1e-6);
    }

    #[test]
    fn roofline_takes_the_max() {
        let compute_heavy = KernelDesc::new("a", KernelClass::Gemm, 1e12, 1e3, 1e9);
        let mem_heavy = KernelDesc::new("b", KernelClass::Gemm, 1e3, 1e12, 1e9);
        let d = dev();
        assert!(compute_heavy.isolated_ns(&d) > 1e6);
        assert!(mem_heavy.isolated_ns(&d) > 1e6);
    }

    #[test]
    fn ramp_dominates_tiny_kernels() {
        let k = KernelDesc::new("tiny", KernelClass::Elementwise, 10.0, 10.0, 32.0);
        let t = k.isolated_ns(&dev());
        assert!((1000.0..1100.0).contains(&t), "tiny kernel ≈ ramp, got {t}");
    }

    #[test]
    fn demand_of_tiny_kernel_is_small() {
        let k = KernelDesc::new("tiny", KernelClass::Elementwise, 10.0, 10.0, 32.0);
        let d = k.demand(&dev());
        assert!(d < 0.05, "tiny kernel demand {d}");
    }

    #[test]
    fn demand_of_saturating_kernel_is_one() {
        // Memory-bound GEMV: needs ~full bandwidth.
        let k = KernelDesc::new("gemv", KernelClass::Gemm, 1e6, 10e9, 4096.0);
        let d = k.demand(&dev());
        assert!(d > 0.8, "bandwidth-saturating kernel demand {d}");
    }

    #[test]
    fn demand_scales_with_threads() {
        let small = KernelDesc::new("s", KernelClass::Conv, 1e6, 1e3, 512.0);
        let large = KernelDesc::new("l", KernelClass::Conv, 1e6, 1e3, 8192.0);
        let d = dev();
        assert!(small.demand(&d) < large.demand(&d));
        assert_eq!(large.demand(&d), 1.0); // 8192 > 4096 resident threads
    }

    #[test]
    fn efficiency_ordering_gemm_conv_pool() {
        assert!(KernelClass::Gemm.compute_efficiency() > KernelClass::Conv.compute_efficiency());
        assert!(KernelClass::Conv.compute_efficiency() > KernelClass::Pool.compute_efficiency());
    }
}
