//! Property-based tests of the GPU simulator's invariants.

use dcd_gpusim::{CopyDir, DeviceSpec, Gpu, KernelClass, KernelDesc, TraceRecord};
use proptest::prelude::*;

fn kernel(flops: f64, bytes: f64, threads: f64) -> KernelDesc {
    KernelDesc::new("k", KernelClass::Conv, flops, bytes, threads)
}

/// Extracts `(stream, start, dur)` of every kernel record.
fn kernel_intervals(gpu: &Gpu) -> Vec<(usize, u64, u64)> {
    gpu.trace()
        .records
        .iter()
        .filter_map(|r| match r {
            TraceRecord::Kernel {
                stream,
                start_ns,
                dur_ns,
                ..
            } => Some((*stream, *start_ns, *dur_ns)),
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn same_stream_kernels_never_overlap(
        n in 1usize..8, flops in 1e6f64..1e9, threads in 32f64..1e5,
    ) {
        let mut gpu = Gpu::new(DeviceSpec::test_gpu());
        for _ in 0..n {
            gpu.launch_kernel(0, kernel(flops, 0.0, threads));
        }
        gpu.device_synchronize();
        let mut iv = kernel_intervals(&gpu);
        iv.sort_by_key(|&(_, s, _)| s);
        for w in iv.windows(2) {
            prop_assert!(
                w[1].1 >= w[0].1 + w[0].2,
                "kernels overlap on one stream: {:?} then {:?}", w[0], w[1]
            );
        }
    }

    #[test]
    fn all_launched_kernels_complete(
        streams in 1usize..4, per_stream in 1usize..5, flops in 1e5f64..1e8,
    ) {
        let mut gpu = Gpu::new(DeviceSpec::test_gpu());
        let mut ids = vec![0usize];
        for _ in 1..streams {
            ids.push(gpu.create_stream());
        }
        for &s in &ids {
            for _ in 0..per_stream {
                gpu.launch_kernel(s, kernel(flops, 0.0, 256.0));
            }
        }
        gpu.device_synchronize();
        prop_assert_eq!(kernel_intervals(&gpu).len(), streams * per_stream);
    }

    #[test]
    fn host_clock_is_monotonic_across_api_calls(
        ops in prop::collection::vec(0u8..4, 1..20),
    ) {
        let mut gpu = Gpu::new(DeviceSpec::test_gpu());
        let mut last = gpu.host_ns();
        let s1 = gpu.create_stream();
        for op in ops {
            match op {
                0 => gpu.launch_kernel(0, kernel(1e6, 0.0, 64.0)),
                1 => gpu.launch_kernel(s1, kernel(1e6, 1e4, 64.0)),
                2 => gpu.memcpy_async(0, CopyDir::H2D, 4096),
                _ => {
                    gpu.device_synchronize();
                }
            }
            let now = gpu.host_ns();
            prop_assert!(now >= last, "host clock went backwards");
            last = now;
        }
    }

    #[test]
    fn concurrency_never_beats_serial_total_work(
        flops in 1e8f64..1e10,
    ) {
        // Two saturating kernels: concurrent span >= the longer of them and
        // >= half the serial sum (processor sharing conserves work).
        let big = kernel(flops, 0.0, 1e7); // demand 1 on the test GPU
        let mut serial = Gpu::new(DeviceSpec::test_gpu());
        serial.launch_kernel(0, big.clone());
        serial.launch_kernel(0, big.clone());
        serial.device_synchronize();
        let serial_span = {
            let iv = kernel_intervals(&serial);
            iv.iter().map(|&(_, s, d)| s + d).max().unwrap() - iv.iter().map(|&(_, s, _)| s).min().unwrap()
        };

        let mut conc = Gpu::new(DeviceSpec::test_gpu());
        let s1 = conc.create_stream();
        conc.launch_kernel(0, big.clone());
        conc.launch_kernel(s1, big);
        conc.device_synchronize();
        let conc_span = {
            let iv = kernel_intervals(&conc);
            iv.iter().map(|&(_, s, d)| s + d).max().unwrap() - iv.iter().map(|&(_, s, _)| s).min().unwrap()
        };
        // Within scheduling epsilon, concurrency cannot create throughput.
        prop_assert!(conc_span as f64 >= 0.95 * serial_span as f64,
            "conc {} vs serial {}", conc_span, serial_span);
    }

    #[test]
    fn memcpy_time_scales_with_bytes(bytes in 1u64..50_000_000) {
        let mut gpu = Gpu::new(DeviceSpec::test_gpu());
        gpu.memcpy_async(0, CopyDir::H2D, bytes);
        gpu.device_synchronize();
        let (_, b, dur) = gpu.trace().memops().next().unwrap();
        prop_assert_eq!(b, bytes);
        // 10 GB/s + 1 µs ramp on the test GPU.
        let expect = 1_000.0 + bytes as f64 / 10.0;
        prop_assert!((dur as f64 - expect).abs() < expect * 0.05 + 10.0,
            "dur {} expect {}", dur, expect);
    }

    #[test]
    fn sync_after_sync_is_cheap(flops in 1e6f64..1e9) {
        let mut gpu = Gpu::new(DeviceSpec::test_gpu());
        gpu.launch_kernel(0, kernel(flops, 0.0, 1e4));
        gpu.device_synchronize();
        // Device is idle now: a second sync costs only the API overhead.
        let wait = gpu.device_synchronize();
        prop_assert_eq!(wait, 1_000);
    }

    #[test]
    fn empty_fault_plan_is_invisible(
        ops in prop::collection::vec(0u8..5, 1..30), seed in 0u64..1_000,
    ) {
        // A present-but-empty fault plan must be bit-identical to running
        // with no plan at all: same trace records, same clocks.
        use dcd_gpusim::FaultPlan;
        let drive = |gpu: &mut Gpu| {
            let s1 = gpu.create_stream();
            for &op in &ops {
                match op {
                    0 => gpu.launch_kernel(0, kernel(1e6, 0.0, 64.0)),
                    1 => gpu.launch_kernel(s1, kernel(1e6, 1e4, 64.0)),
                    2 => gpu.memcpy_async(0, CopyDir::H2D, 4096),
                    3 => gpu.malloc(1024).unwrap(),
                    _ => {
                        gpu.device_synchronize();
                    }
                }
            }
            gpu.device_synchronize();
        };
        let mut plain = Gpu::new(DeviceSpec::test_gpu());
        drive(&mut plain);
        let mut planned = Gpu::new(DeviceSpec::test_gpu());
        planned.set_fault_plan(FaultPlan { seed, ..FaultPlan::none() });
        drive(&mut planned);
        prop_assert_eq!(plain.host_ns(), planned.host_ns());
        prop_assert_eq!(&plain.trace().records, &planned.trace().records);
    }

    #[test]
    fn memory_accounting_is_exact(
        allocs in prop::collection::vec(1u64..1_000_000, 1..10),
    ) {
        let mut gpu = Gpu::new(DeviceSpec::test_gpu());
        let mut total = 0u64;
        for &a in &allocs {
            gpu.malloc(a).unwrap();
            total += a;
            prop_assert_eq!(gpu.mem_used(), total);
        }
        for &a in &allocs {
            gpu.free(a);
            total -= a;
            prop_assert_eq!(gpu.mem_used(), total);
        }
    }
}
