//! Property-based tests of the serving runtime's invariants.
//!
//! Full serving runs are moderately expensive (each is a whole simulated
//! minute of traffic), so the end-to-end properties run fewer cases than
//! the pure state-machine ones.

use dcd_gpusim::{DeviceSpec, FaultPlan, Gpu};
use dcd_ios::{greedy_schedule, lower_sppnet, sequential_schedule, Graph};
use dcd_serve::{
    AdmissionQueue, ArrivalConfig, ArrivalProfile, BrownoutConfig, BrownoutController,
    BrownoutLevel, Priority, Request, ServeConfig, ServeRuntime,
};
use proptest::prelude::*;

fn graph() -> Graph {
    lower_sppnet(&dcd_serve::chaos::scenario_model(), (16, 16))
}

fn run_load(seed: u64, rate: f64, fault_rate: f64, queue_cap: usize) -> dcd_serve::ServeReport {
    let g = graph();
    let mut gpu = Gpu::new(DeviceSpec::test_gpu());
    gpu.set_fault_plan(FaultPlan {
        seed,
        launch_failure_rate: fault_rate,
        ..FaultPlan::none()
    });
    let offered = ArrivalConfig::new(seed)
        .with_profile(ArrivalProfile::Poisson { rate_per_sec: rate })
        .with_duration_ns(20_000_000)
        .with_deadline_ns(10_000_000)
        .generate();
    let mut rt = ServeRuntime::new(
        &g,
        greedy_schedule(&g),
        sequential_schedule(&g),
        gpu,
        ServeConfig::new().with_queue_capacity(queue_cap),
    )
    .expect("fits");
    rt.run(&offered)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The queue never exceeds its capacity no matter the admit /
    /// take_batch / requeue interleaving.
    #[test]
    fn queue_never_exceeds_capacity(
        cap in 1usize..16,
        ops in prop::collection::vec((0u8..3, 1usize..8), 1..64),
    ) {
        let mut q = AdmissionQueue::new(cap);
        let mut next_id = 0u64;
        let mut dropped = Vec::new();
        for (op, arg) in ops {
            match op {
                0 => {
                    for _ in 0..arg {
                        let _ = q.admit(Request {
                            id: next_id,
                            arrival_ns: next_id,
                            // Odd ids are already expired at now=1000.
                            deadline_ns: if next_id.is_multiple_of(2) { 1_000_000 } else { 10 },
                            priority: Priority::High,
                        });
                        next_id += 1;
                    }
                }
                1 => {
                    let batch = q.take_batch(arg, 1_000, &mut dropped);
                    prop_assert!(batch.len() <= arg);
                    // Requeue half of what we took, like a failed batch.
                    let keep: Vec<_> = batch.into_iter().take(arg / 2).collect();
                    q.requeue_front(keep);
                }
                _ => {
                    let _ = q.drain_remaining();
                }
            }
            prop_assert!(q.len() <= q.capacity(), "len {} > cap {}", q.len(), q.capacity());
        }
    }

    /// Brownout level is monotone non-decreasing while pressure stays at
    /// or above the enter threshold, and recovery needs the dwell.
    #[test]
    fn brownout_monotone_up_and_hysteretic_down(
        enter in 0.5f64..0.9,
        exit in 0.05f64..0.4,
        dwell in 10u64..10_000,
        highs in prop::collection::vec(0.9f64..1.0, 1..12),
    ) {
        let cfg = BrownoutConfig::new()
            .with_enter_pressure(enter)
            .with_exit_pressure(exit)
            .with_dwell_ns(dwell);
        let mut c = BrownoutController::new(cfg);
        let mut t = 0u64;
        let mut prev = c.level();
        for p in &highs {
            let lvl = c.evaluate(t, *p, true);
            prop_assert!(lvl >= prev, "level fell under rising pressure");
            prev = lvl;
            t += 1;
        }
        // Low pressure immediately: dwell has not elapsed → no step down.
        let before = c.level();
        let lvl = c.evaluate(t, 0.0, true);
        prop_assert!(lvl == before || t >= dwell, "stepped down before dwell");
        // After the dwell, recovery walks down one level per evaluation.
        let mut t = t + dwell;
        let mut prev = c.level();
        for _ in 0..8 {
            let lvl = c.evaluate(t, 0.0, true);
            prop_assert!(lvl <= prev);
            prev = lvl;
            t += dwell + 1;
        }
        prop_assert_eq!(prev, BrownoutLevel::Normal, "full recovery expected");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Conservation: served + late + shed + dropped + unserved == offered
    /// for arbitrary seeds, loads, fault rates, and queue sizes.
    #[test]
    fn conservation_holds_for_arbitrary_seeds(
        seed in 0u64..1_000_000,
        rate in 200f64..20_000.0,
        fault_rate in 0f64..0.4,
        queue_cap in 4usize..64,
    ) {
        let report = run_load(seed, rate, fault_rate, queue_cap);
        prop_assert!(report.conserved(), "not conserved: {report:?}");
        prop_assert!(report.p50_latency_ns <= report.p99_latency_ns);
    }
}
