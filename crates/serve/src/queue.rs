//! Bounded admission queue with load shedding and deadline drops.

use crate::request::Request;
use std::collections::VecDeque;

/// FIFO queue with a hard capacity. Admission control happens at
/// [`AdmissionQueue::admit`] (reject-on-full = load shedding); expiry is
/// enforced lazily at dequeue time by [`AdmissionQueue::take_batch`]
/// (drop-on-dequeue), so the queue itself never spends time scanning.
#[derive(Debug)]
pub struct AdmissionQueue {
    capacity: usize,
    items: VecDeque<Request>,
}

impl AdmissionQueue {
    /// An empty queue holding at most `capacity` requests (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        AdmissionQueue {
            capacity,
            items: VecDeque::with_capacity(capacity),
        }
    }

    /// Hard capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Queue pressure in `[0, 1]`: occupancy over capacity. The brownout
    /// controller's input signal.
    pub fn pressure(&self) -> f64 {
        self.items.len() as f64 / self.capacity as f64
    }

    /// Host time at which the oldest queued request arrived, if any — the
    /// batcher's timeout anchor.
    pub fn oldest_arrival_ns(&self) -> Option<u64> {
        self.items.front().map(|r| r.arrival_ns)
    }

    /// Admits a request, or returns it when the queue is full (the caller
    /// counts it as shed).
    pub fn admit(&mut self, req: Request) -> Result<(), Request> {
        if self.items.len() >= self.capacity {
            return Err(req);
        }
        self.items.push_back(req);
        Ok(())
    }

    /// Returns admitted-but-unfinished requests to the queue front in
    /// their original order (a failed batch being requeued). Capacity is
    /// deliberately not re-checked: these requests were already admitted,
    /// and the queue cannot have grown past `capacity - batch.len()`
    /// admissions while the batch was out being executed.
    pub fn requeue_front(&mut self, batch: Vec<Request>) {
        for req in batch.into_iter().rev() {
            self.items.push_front(req);
        }
        debug_assert!(self.items.len() <= self.capacity);
    }

    /// Dequeues up to `max` unexpired requests for one batch, discarding
    /// expired requests encountered at the front into `dropped`.
    pub fn take_batch(
        &mut self,
        max: usize,
        now_ns: u64,
        dropped: &mut Vec<Request>,
    ) -> Vec<Request> {
        let mut batch = Vec::new();
        while batch.len() < max {
            let Some(req) = self.items.pop_front() else {
                break;
            };
            if req.expired(now_ns) {
                dropped.push(req);
            } else {
                batch.push(req);
            }
        }
        batch
    }

    /// Empties the queue, returning everything still inside (drain-time
    /// unserved accounting).
    pub fn drain_remaining(&mut self) -> Vec<Request> {
        self.items.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Priority;

    fn req(id: u64, deadline_ns: u64) -> Request {
        Request {
            id,
            arrival_ns: id,
            deadline_ns,
            priority: Priority::High,
        }
    }

    #[test]
    fn admission_rejects_on_full() {
        let mut q = AdmissionQueue::new(2);
        assert!(q.admit(req(0, 100)).is_ok());
        assert!(q.admit(req(1, 100)).is_ok());
        let rejected = q.admit(req(2, 100)).unwrap_err();
        assert_eq!(rejected.id, 2);
        assert_eq!(q.len(), 2);
        assert!((q.pressure() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn take_batch_drops_expired_and_respects_max() {
        let mut q = AdmissionQueue::new(8);
        q.admit(req(0, 10)).unwrap(); // expired at now=50
        q.admit(req(1, 100)).unwrap();
        q.admit(req(2, 20)).unwrap(); // expired
        q.admit(req(3, 100)).unwrap();
        q.admit(req(4, 100)).unwrap();
        let mut dropped = Vec::new();
        let batch = q.take_batch(2, 50, &mut dropped);
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(dropped.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(q.len(), 1, "id 4 stays queued");
    }

    #[test]
    fn requeue_front_preserves_order() {
        let mut q = AdmissionQueue::new(8);
        q.admit(req(2, 100)).unwrap();
        let mut dropped = Vec::new();
        q.requeue_front(vec![req(0, 100), req(1, 100)]);
        let batch = q.take_batch(3, 0, &mut dropped);
        assert_eq!(
            batch.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(dropped.is_empty());
    }

    #[test]
    fn drain_remaining_empties_the_queue() {
        let mut q = AdmissionQueue::new(4);
        q.admit(req(0, 1)).unwrap();
        q.admit(req(1, 1)).unwrap();
        let rest = q.drain_remaining();
        assert_eq!(rest.len(), 2);
        assert!(q.is_empty());
    }
}
