//! Seeded open-loop request generation.
//!
//! The generator is *open-loop*: arrival times are fixed up front by the
//! profile and seed, independent of how the server is doing — the load does
//! not politely back off when the GPU struggles, which is exactly the
//! regime the brownout controller exists for. Every draw hashes
//! `seed ^ salt ^ index` through [`splitmix64`], so a profile replays
//! bit-identically for a given seed.

use crate::request::{Priority, Request};
use dcd_gpusim::{splitmix64, unit_draw};
use serde::{Deserialize, Serialize};

const SALT_ARRIVAL: u64 = 0x4152_5249_5645_0004;
const SALT_PRIORITY: u64 = 0x5052_494F_5249_0005;

/// Shape of the offered load over the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProfile {
    /// Memoryless arrivals at a constant rate (exponential interarrivals).
    Poisson {
        /// Mean arrival rate, requests per simulated second.
        rate_per_sec: f64,
    },
    /// Poisson base load with a window of elevated rate — the "everyone
    /// queries after the storm" shape that saturates the queue.
    Burst {
        /// Rate outside the burst window, requests per simulated second.
        base_rate_per_sec: f64,
        /// Rate inside the burst window, requests per simulated second.
        burst_rate_per_sec: f64,
        /// Burst window start, host ns.
        burst_start_ns: u64,
        /// Burst window end, host ns.
        burst_end_ns: u64,
    },
}

impl ArrivalProfile {
    fn rate_at(&self, now_ns: u64) -> f64 {
        match *self {
            ArrivalProfile::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalProfile::Burst {
                base_rate_per_sec,
                burst_rate_per_sec,
                burst_start_ns,
                burst_end_ns,
            } => {
                if now_ns >= burst_start_ns && now_ns < burst_end_ns {
                    burst_rate_per_sec
                } else {
                    base_rate_per_sec
                }
            }
        }
    }
}

/// Everything needed to materialize one offered load.
///
/// `#[non_exhaustive]`: construct with [`ArrivalConfig::new`] and the
/// `with_*` builders.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct ArrivalConfig {
    /// Arrival shape.
    pub profile: ArrivalProfile,
    /// Generation horizon: arrivals land in `[0, duration_ns)`.
    pub duration_ns: u64,
    /// Per-request deadline relative to arrival, ns.
    pub deadline_ns: u64,
    /// Seed for interarrival and priority draws.
    pub seed: u64,
    /// Fraction of requests marked [`Priority::Low`], in `[0, 1]`.
    pub low_priority_fraction: f64,
}

impl ArrivalConfig {
    /// A moderate Poisson load: 1000 req/s for 50 ms, 20 ms deadlines,
    /// 25% low-priority.
    pub fn new(seed: u64) -> Self {
        ArrivalConfig {
            profile: ArrivalProfile::Poisson {
                rate_per_sec: 1000.0,
            },
            duration_ns: 50_000_000,
            deadline_ns: 20_000_000,
            seed,
            low_priority_fraction: 0.25,
        }
    }

    /// Sets the arrival shape.
    pub fn with_profile(mut self, profile: ArrivalProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the generation horizon, ns.
    pub fn with_duration_ns(mut self, ns: u64) -> Self {
        self.duration_ns = ns;
        self
    }

    /// Sets the per-request relative deadline, ns.
    pub fn with_deadline_ns(mut self, ns: u64) -> Self {
        self.deadline_ns = ns;
        self
    }

    /// Sets the fraction of low-priority requests.
    pub fn with_low_priority_fraction(mut self, f: f64) -> Self {
        self.low_priority_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Materializes the offered load: requests sorted by arrival time with
    /// ids in arrival order. Deterministic in the config (including seed).
    pub fn generate(&self) -> Vec<Request> {
        let mut out = Vec::new();
        let mut t_ns = 0.0f64;
        let mut draw_idx = 0u64;
        loop {
            let rate = self.profile.rate_at(t_ns as u64).max(1e-9);
            // Exponential interarrival via inverse CDF. The thinning error
            // from sampling the rate at the interval start is irrelevant
            // here: the profile is part of the scenario definition, not a
            // statistical claim.
            let u = unit_draw(splitmix64(self.seed ^ SALT_ARRIVAL ^ draw_idx));
            let dt_ns = -(1.0 - u).ln() / rate * 1e9;
            t_ns += dt_ns.max(1.0);
            if t_ns >= self.duration_ns as f64 {
                return out;
            }
            let id = out.len() as u64;
            let prio_u = unit_draw(splitmix64(self.seed ^ SALT_PRIORITY ^ id));
            out.push(Request {
                id,
                arrival_ns: t_ns as u64,
                deadline_ns: t_ns as u64 + self.deadline_ns,
                priority: if prio_u < self.low_priority_fraction {
                    Priority::Low
                } else {
                    Priority::High
                },
            });
            draw_idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_sorted() {
        let cfg = ArrivalConfig::new(42);
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        assert!(a.windows(2).all(|w| w[0].id + 1 == w[1].id));
        assert!(a
            .iter()
            .all(|r| r.deadline_ns == r.arrival_ns + cfg.deadline_ns));
    }

    #[test]
    fn seeds_change_the_load() {
        let a = ArrivalConfig::new(1).generate();
        let b = ArrivalConfig::new(2).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn poisson_rate_is_roughly_honoured() {
        let cfg = ArrivalConfig::new(7)
            .with_profile(ArrivalProfile::Poisson {
                rate_per_sec: 2000.0,
            })
            .with_duration_ns(500_000_000); // 0.5 s → ~1000 arrivals
        let n = cfg.generate().len() as f64;
        assert!((n - 1000.0).abs() < 150.0, "got {n} arrivals");
    }

    #[test]
    fn burst_window_is_denser_than_base_load() {
        let cfg = ArrivalConfig::new(3)
            .with_profile(ArrivalProfile::Burst {
                base_rate_per_sec: 500.0,
                burst_rate_per_sec: 5000.0,
                burst_start_ns: 20_000_000,
                burst_end_ns: 40_000_000,
            })
            .with_duration_ns(60_000_000);
        let reqs = cfg.generate();
        let in_burst = reqs
            .iter()
            .filter(|r| (20_000_000..40_000_000).contains(&r.arrival_ns))
            .count();
        let before = reqs.iter().filter(|r| r.arrival_ns < 20_000_000).count();
        assert!(
            in_burst > 3 * before,
            "burst {in_burst} vs base {before} arrivals"
        );
    }

    #[test]
    fn low_priority_fraction_is_roughly_honoured() {
        let cfg = ArrivalConfig::new(9)
            .with_duration_ns(400_000_000)
            .with_low_priority_fraction(0.25);
        let reqs = cfg.generate();
        let low = reqs.iter().filter(|r| r.priority == Priority::Low).count() as f64;
        let frac = low / reqs.len() as f64;
        assert!((frac - 0.25).abs() < 0.08, "low fraction {frac}");
    }
}
