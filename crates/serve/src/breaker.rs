//! Circuit breaker over the fallible executor.
//!
//! Standard three-state machine, every transition on the simulated clock:
//!
//! ```text
//!            consecutive failures ≥ threshold
//!   Closed ────────────────────────────────────▶ Open
//!     ▲                                           │ open_ns elapse
//!     │ probe batch succeeds                      ▼
//!     └──────────────────────────────────────  HalfOpen
//!                 probe batch fails: back to Open
//! ```
//!
//! While `Open`, the serving loop does not dispatch at all — the device
//! gets `open_ns` of quiet to ride out a fault window instead of burning
//! every request's retry budget against a GPU that is down. `HalfOpen`
//! admits exactly one probe batch to test recovery.

use serde::{Deserialize, Serialize};

/// Breaker state. `label()` is the stable form used in reports/metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Traffic flows; failures are being counted.
    Closed,
    /// All dispatch suppressed until the open interval elapses.
    Open,
    /// One probe batch is allowed through.
    HalfOpen,
}

impl BreakerState {
    /// Stable label for reports and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Breaker tuning.
///
/// `#[non_exhaustive]`: construct with [`BreakerConfig::new`] and the
/// `with_*` builders.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct BreakerConfig {
    /// Consecutive batch failures that trip Closed → Open (min 1).
    pub failure_threshold: u32,
    /// How long the breaker stays Open before probing, host ns.
    pub open_ns: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            open_ns: 2_000_000, // 2 ms
        }
    }
}

impl BreakerConfig {
    /// The default tuning.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the consecutive-failure trip threshold (clamped to ≥ 1).
    pub fn with_failure_threshold(mut self, n: u32) -> Self {
        self.failure_threshold = n.max(1);
        self
    }

    /// Sets the Open interval, host ns.
    pub fn with_open_ns(mut self, ns: u64) -> Self {
        self.open_ns = ns;
        self
    }
}

/// The state machine. Drive it with [`CircuitBreaker::poll`] (time),
/// [`CircuitBreaker::on_success`] / [`CircuitBreaker::on_failure`]
/// (batch outcomes).
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    open_until_ns: u64,
    transitions: Vec<(u64, BreakerState)>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until_ns: 0,
            transitions: Vec::new(),
        }
    }

    fn transition(&mut self, now_ns: u64, to: BreakerState) {
        self.state = to;
        self.transitions.push((now_ns, to));
        dcd_obs::counter!("serve.breaker_transitions").inc();
    }

    /// Advances time: an elapsed Open interval becomes HalfOpen. Returns
    /// the state at `now_ns`.
    pub fn poll(&mut self, now_ns: u64) -> BreakerState {
        if self.state == BreakerState::Open && now_ns >= self.open_until_ns {
            self.transition(now_ns, BreakerState::HalfOpen);
        }
        self.state
    }

    /// Whether a batch may be dispatched at `now_ns`.
    pub fn call_permitted(&mut self, now_ns: u64) -> bool {
        self.poll(now_ns) != BreakerState::Open
    }

    /// When the current Open interval ends (None unless Open). The serving
    /// loop sleeps the simulated clock to this point instead of spinning.
    pub fn open_until_ns(&self) -> Option<u64> {
        (self.state == BreakerState::Open).then_some(self.open_until_ns)
    }

    /// Records a successful batch: a HalfOpen probe success re-closes the
    /// breaker; any success resets the failure streak.
    pub fn on_success(&mut self, now_ns: u64) {
        if self.state == BreakerState::HalfOpen {
            self.transition(now_ns, BreakerState::Closed);
        }
        self.consecutive_failures = 0;
    }

    /// Records a failed batch: trips Closed → Open at the threshold, and
    /// any HalfOpen probe failure re-opens immediately.
    pub fn on_failure(&mut self, now_ns: u64) {
        self.consecutive_failures += 1;
        let trip = match self.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive_failures >= self.cfg.failure_threshold,
            BreakerState::Open => false,
        };
        if trip {
            self.open_until_ns = now_ns + self.cfg.open_ns;
            self.transition(now_ns, BreakerState::Open);
        }
    }

    /// Current state without advancing time.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Every transition so far as `(host_ns, new_state)`, in order. The
    /// bit-reproducibility fixture: two runs of the same scenario + seed
    /// must produce identical vectors.
    pub fn transitions(&self) -> &[(u64, BreakerState)] {
        &self.transitions
    }

    /// Total host ns spent in Open across the run, counting a still-open
    /// interval up to `end_ns`.
    pub fn total_open_ns(&self, end_ns: u64) -> u64 {
        let mut total = 0u64;
        let mut opened_at: Option<u64> = None;
        for &(t, s) in &self.transitions {
            match (opened_at, s) {
                (None, BreakerState::Open) => opened_at = Some(t),
                (Some(t0), BreakerState::HalfOpen | BreakerState::Closed) => {
                    total += t.saturating_sub(t0);
                    opened_at = None;
                }
                _ => {}
            }
        }
        if let Some(t0) = opened_at {
            total += end_ns.saturating_sub(t0);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(
            BreakerConfig::new()
                .with_failure_threshold(2)
                .with_open_ns(100),
        )
    }

    #[test]
    fn trips_at_threshold_and_probes_after_open_interval() {
        let mut b = breaker();
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure(10);
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        b.on_failure(20);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.open_until_ns(), Some(120));
        assert!(!b.call_permitted(119));
        assert!(b.call_permitted(120), "open interval elapsed");
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn halfopen_probe_success_closes_failure_reopens() {
        let mut b = breaker();
        b.on_failure(0);
        b.on_failure(1);
        assert!(b.call_permitted(101));
        b.on_success(105);
        assert_eq!(b.state(), BreakerState::Closed);

        b.on_failure(200);
        b.on_failure(201);
        assert!(b.call_permitted(301));
        b.on_failure(305);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.open_until_ns(), Some(405));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = breaker();
        b.on_failure(0);
        b.on_success(1);
        b.on_failure(2);
        assert_eq!(b.state(), BreakerState::Closed, "streak was broken");
    }

    #[test]
    fn transition_log_and_open_time_accounting() {
        let mut b = breaker();
        b.on_failure(0);
        b.on_failure(10); // Open @10 until 110
        b.poll(110); // HalfOpen @110
        b.on_failure(115); // Open @115 until 215
        b.poll(215); // HalfOpen @215
        b.on_success(220); // Closed @220
        let states: Vec<_> = b.transitions().iter().map(|(_, s)| *s).collect();
        assert_eq!(
            states,
            vec![
                BreakerState::Open,
                BreakerState::HalfOpen,
                BreakerState::Open,
                BreakerState::HalfOpen,
                BreakerState::Closed,
            ]
        );
        assert_eq!(b.total_open_ns(1000), (110 - 10) + (215 - 115));
    }

    #[test]
    fn still_open_interval_counts_to_end() {
        let mut b = breaker();
        b.on_failure(0);
        b.on_failure(50); // Open @50
        assert_eq!(b.total_open_ns(80), 30);
    }
}
