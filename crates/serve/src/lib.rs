//! # dcd-serve
//!
//! A deterministic, fault-aware inference-serving runtime over the
//! simulated GPU — the load-facing robustness layer the paper's
//! "large volume of inferences" regime (§5.1) actually runs in.
//!
//! PR 1 made a *single* inference resilient (retry/backoff, OOM batch
//! degradation, schedule fallback). This crate protects the *system* when
//! many requests meet a faulty or saturated device:
//!
//! * [`ArrivalConfig`] — seeded open-loop request generation (Poisson and
//!   burst profiles) with per-request deadlines and priorities;
//! * [`AdmissionQueue`] — bounded queue, reject-on-full load shedding,
//!   deadline drop-on-dequeue;
//! * dynamic batching in [`ServeRuntime`] — coalesce up to a batch cap or
//!   a batching timeout, execute under `dcd_core::ResilientRunner`;
//! * [`CircuitBreaker`] — Closed → Open on consecutive batch failures,
//!   timed Half-Open probe, every transition on the simulated clock;
//! * [`BrownoutController`] — hysteretic degradation ladder (shrink batch
//!   → sequential schedule → shed low-priority) driven by queue pressure
//!   and breaker health;
//! * graceful drain — after the last arrival the queue is drained within a
//!   grace period and the remainder reported unserved, so every offered
//!   request is accounted for exactly once ([`ServeReport::conserved`]);
//! * [`chaos`] — named, seeded scenarios composing a fault plan with an
//!   arrival profile, bit-reproducible by construction.
//!
//! Everything runs on the one simulated host clock; no wall-clock reads,
//! no OS threads — which is why `RAYON_NUM_THREADS` cannot change a single
//! counter in a [`ServeReport`].

pub mod arrival;
pub mod breaker;
pub mod brownout;
pub mod chaos;
pub mod queue;
pub mod request;
pub mod runtime;

pub use arrival::{ArrivalConfig, ArrivalProfile};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use brownout::{BrownoutConfig, BrownoutController, BrownoutLevel};
pub use chaos::{run_scenario, scenario, scenario_names, Scenario};
pub use queue::AdmissionQueue;
pub use request::{Outcome, Priority, Request};
pub use runtime::{ServeConfig, ServeReport, ServeRuntime};
