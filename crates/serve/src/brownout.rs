//! Brownout controller: graceful degradation under queue pressure.
//!
//! Rather than a binary up/down, the server steps through degraded modes,
//! each shedding a little more quality of service to protect throughput:
//!
//! ```text
//! level 0  Normal          full batch cap, primary (IOS) schedule
//! level 1  ReducedBatch    batch cap halved (smaller VRAM + blast radius)
//! level 2  Sequential      + fallback to the sequential schedule
//! level 3  ShedLowPriority + Low-priority requests rejected at admission
//! ```
//!
//! The controller steps **up** one level per evaluation whenever queue
//! pressure reaches `enter_pressure` *or* the circuit breaker is not
//! closed. It steps **down** only when pressure has fallen to
//! `exit_pressure`, the breaker is closed, *and* the level has dwelt at
//! least `dwell_ns` — the hysteresis that stops the server oscillating at
//! a threshold (`enter_pressure > exit_pressure` always holds; the
//! builders enforce it).

use serde::{Deserialize, Serialize};

/// Degradation level, ordered: higher = more degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BrownoutLevel {
    /// Full service.
    Normal,
    /// Batch cap halved.
    ReducedBatch,
    /// Reduced batch + sequential schedule.
    Sequential,
    /// Sequential + low-priority admission shedding.
    ShedLowPriority,
}

impl BrownoutLevel {
    fn step_up(self) -> Self {
        match self {
            BrownoutLevel::Normal => BrownoutLevel::ReducedBatch,
            BrownoutLevel::ReducedBatch => BrownoutLevel::Sequential,
            _ => BrownoutLevel::ShedLowPriority,
        }
    }

    fn step_down(self) -> Self {
        match self {
            BrownoutLevel::ShedLowPriority => BrownoutLevel::Sequential,
            BrownoutLevel::Sequential => BrownoutLevel::ReducedBatch,
            _ => BrownoutLevel::Normal,
        }
    }

    /// Stable label for reports and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            BrownoutLevel::Normal => "normal",
            BrownoutLevel::ReducedBatch => "reduced-batch",
            BrownoutLevel::Sequential => "sequential",
            BrownoutLevel::ShedLowPriority => "shed-low-priority",
        }
    }
}

/// Controller tuning.
///
/// `#[non_exhaustive]`: construct with [`BrownoutConfig::new`] and the
/// `with_*` builders (which keep `enter_pressure > exit_pressure`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct BrownoutConfig {
    /// Queue pressure at or above which the level steps up, in `(0, 1]`.
    pub enter_pressure: f64,
    /// Queue pressure at or below which recovery is allowed, in `[0, 1)`.
    pub exit_pressure: f64,
    /// Minimum time at a level before stepping down, host ns.
    pub dwell_ns: u64,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            enter_pressure: 0.75,
            exit_pressure: 0.25,
            dwell_ns: 5_000_000, // 5 ms
        }
    }
}

impl BrownoutConfig {
    /// The default tuning.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the step-up pressure threshold; `exit_pressure` is pulled
    /// below it if necessary.
    pub fn with_enter_pressure(mut self, p: f64) -> Self {
        self.enter_pressure = p.clamp(1e-6, 1.0);
        self.exit_pressure = self.exit_pressure.min(self.enter_pressure - 1e-6);
        self
    }

    /// Sets the recovery pressure threshold, clamped below
    /// `enter_pressure`.
    pub fn with_exit_pressure(mut self, p: f64) -> Self {
        self.exit_pressure = p.clamp(0.0, self.enter_pressure - 1e-6);
        self
    }

    /// Sets the minimum dwell before a step down, host ns.
    pub fn with_dwell_ns(mut self, ns: u64) -> Self {
        self.dwell_ns = ns;
        self
    }
}

/// The hysteretic state machine. Call [`BrownoutController::evaluate`]
/// once per serving-loop iteration.
#[derive(Debug)]
pub struct BrownoutController {
    cfg: BrownoutConfig,
    level: BrownoutLevel,
    level_since_ns: u64,
    transitions: Vec<(u64, BrownoutLevel)>,
}

impl BrownoutController {
    /// A controller at `Normal` with the given tuning.
    pub fn new(cfg: BrownoutConfig) -> Self {
        BrownoutController {
            cfg,
            level: BrownoutLevel::Normal,
            level_since_ns: 0,
            transitions: Vec::new(),
        }
    }

    /// Current level.
    pub fn level(&self) -> BrownoutLevel {
        self.level
    }

    /// Whether `Low`-priority requests are currently shed at admission.
    pub fn sheds_low_priority(&self) -> bool {
        self.level >= BrownoutLevel::ShedLowPriority
    }

    /// Whether the sequential fallback schedule should be active.
    pub fn wants_sequential(&self) -> bool {
        self.level >= BrownoutLevel::Sequential
    }

    /// Effective batch cap at the current level (`cap` halved from level
    /// 1 up, never below 1).
    pub fn effective_batch_cap(&self, cap: usize) -> usize {
        if self.level >= BrownoutLevel::ReducedBatch {
            (cap / 2).max(1)
        } else {
            cap
        }
    }

    /// One control step at `now_ns`: steps up (at most one level) under
    /// pressure or an unhealthy breaker, steps down (at most one level)
    /// only under the hysteresis conditions. Returns the level afterwards.
    pub fn evaluate(&mut self, now_ns: u64, pressure: f64, breaker_closed: bool) -> BrownoutLevel {
        if pressure >= self.cfg.enter_pressure || !breaker_closed {
            let next = self.level.step_up();
            if next != self.level {
                self.level = next;
                self.level_since_ns = now_ns;
                self.transitions.push((now_ns, next));
                dcd_obs::counter!("serve.brownout_steps").inc();
            }
        } else if pressure <= self.cfg.exit_pressure
            && now_ns.saturating_sub(self.level_since_ns) >= self.cfg.dwell_ns
        {
            let next = self.level.step_down();
            if next != self.level {
                self.level = next;
                self.level_since_ns = now_ns;
                self.transitions.push((now_ns, next));
            }
        }
        self.level
    }

    /// Every level change so far as `(host_ns, new_level)`, in order.
    pub fn transitions(&self) -> &[(u64, BrownoutLevel)] {
        &self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> BrownoutController {
        BrownoutController::new(
            BrownoutConfig::new()
                .with_enter_pressure(0.8)
                .with_exit_pressure(0.2)
                .with_dwell_ns(100),
        )
    }

    #[test]
    fn steps_up_one_level_per_evaluation_and_saturates() {
        let mut c = ctl();
        assert_eq!(c.evaluate(0, 0.9, true), BrownoutLevel::ReducedBatch);
        assert_eq!(c.evaluate(1, 0.9, true), BrownoutLevel::Sequential);
        assert_eq!(c.evaluate(2, 0.9, true), BrownoutLevel::ShedLowPriority);
        assert_eq!(c.evaluate(3, 0.9, true), BrownoutLevel::ShedLowPriority);
        assert!(c.sheds_low_priority());
        assert!(c.wants_sequential());
        assert_eq!(c.effective_batch_cap(8), 4);
    }

    #[test]
    fn open_breaker_forces_degradation_even_without_pressure() {
        let mut c = ctl();
        assert_eq!(c.evaluate(0, 0.0, false), BrownoutLevel::ReducedBatch);
    }

    #[test]
    fn recovery_requires_low_pressure_closed_breaker_and_dwell() {
        let mut c = ctl();
        c.evaluate(0, 0.9, true); // → ReducedBatch at t=0
                                  // Mid-band pressure: hysteresis holds the level.
        assert_eq!(c.evaluate(50, 0.5, true), BrownoutLevel::ReducedBatch);
        // Low pressure but dwell not yet served.
        assert_eq!(c.evaluate(60, 0.1, true), BrownoutLevel::ReducedBatch);
        // Low pressure but breaker open: no recovery (steps up instead).
        assert_eq!(c.evaluate(200, 0.1, false), BrownoutLevel::Sequential);
        // All three conditions met → one step down per evaluation.
        assert_eq!(c.evaluate(400, 0.1, true), BrownoutLevel::ReducedBatch);
        assert_eq!(c.evaluate(399 + 200, 0.1, true), BrownoutLevel::Normal);
        assert_eq!(c.effective_batch_cap(8), 8);
    }

    #[test]
    fn transitions_are_recorded_in_order() {
        let mut c = ctl();
        c.evaluate(5, 1.0, true);
        c.evaluate(10, 1.0, true);
        c.evaluate(500, 0.0, true);
        let t = c.transitions();
        assert_eq!(
            t,
            &[
                (5, BrownoutLevel::ReducedBatch),
                (10, BrownoutLevel::Sequential),
                (500, BrownoutLevel::ReducedBatch),
            ]
        );
    }

    #[test]
    fn builders_keep_enter_above_exit() {
        let cfg = BrownoutConfig::new()
            .with_exit_pressure(0.9)
            .with_enter_pressure(0.5);
        assert!(cfg.enter_pressure > cfg.exit_pressure);
    }
}
