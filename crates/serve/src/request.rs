//! Requests flowing through the serving runtime.

use serde::{Deserialize, Serialize};

/// Scheduling class of a request. Brownout level 3 sheds `Low` requests at
/// admission to protect `High` traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// Shed first under brownout.
    Low,
    /// Served as long as anything is served.
    High,
}

/// One inference request in simulated time. Times are absolute host ns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Monotone id in arrival order (also the jitter/priority draw index).
    pub id: u64,
    /// When the request enters the system, host ns.
    pub arrival_ns: u64,
    /// Absolute completion deadline, host ns. A request finishing after
    /// this still completes ("late") but misses its SLO; a request still
    /// queued past it is dropped on dequeue.
    pub deadline_ns: u64,
    /// Scheduling class.
    pub priority: Priority,
}

impl Request {
    /// Whether the deadline has passed at host time `now_ns`.
    pub fn expired(&self, now_ns: u64) -> bool {
        now_ns > self.deadline_ns
    }
}

/// Terminal state of a request, for the conservation ledger: every offered
/// request ends in exactly one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// Completed within its deadline.
    Served,
    /// Completed after its deadline (still answered, SLO missed).
    Late,
    /// Rejected at admission: queue full.
    ShedCapacity,
    /// Rejected at admission: brownout shed a `Low`-priority request.
    ShedBrownout,
    /// Expired while queued; discarded at dequeue.
    Dropped,
    /// Still queued when the drain deadline ended the run.
    Unserved,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expiry_is_strictly_after_deadline() {
        let r = Request {
            id: 0,
            arrival_ns: 10,
            deadline_ns: 100,
            priority: Priority::High,
        };
        assert!(!r.expired(99));
        assert!(!r.expired(100), "deadline instant still counts as on time");
        assert!(r.expired(101));
    }

    #[test]
    fn request_roundtrips_through_value_tree() {
        let r = Request {
            id: 7,
            arrival_ns: 1,
            deadline_ns: 2,
            priority: Priority::Low,
        };
        let back = Request::deserialize(&serde::Serialize::serialize(&r)).unwrap();
        assert_eq!(back, r);
    }
}
