//! Named, seeded chaos scenarios: a [`FaultPlan`] composed with an arrival
//! profile and a serving configuration, plus the machinery to run one and
//! check its SLO invariants.
//!
//! ## Scenario format
//!
//! A [`Scenario`] is fully declarative — `(name, seed)` pins every random
//! draw in the run (arrival times, priorities, fault decisions, retry
//! jitter), so the same pair replays bit-identically: same served / shed /
//! dropped counts, same breaker transition sequence, on any machine and
//! any thread count. The catalog:
//!
//! | name             | faults                                | load    |
//! |------------------|---------------------------------------|---------|
//! | `clean`          | none                                  | Poisson |
//! | `fault-burst`    | transient launch+memcpy failures in a | Poisson |
//! |                  | host-time window mid-run              |         |
//! | `vram-squeeze`   | VRAM pressure (forces batch shrink)   | burst   |
//! | `overload`       | none (queue pressure does the damage) | burst   |
//! | `broken-streams` | persistent failures on streams ≥ 1    | Poisson |
//! | `hang`           | device hang once, watchdog + reset    | Poisson |

use crate::arrival::{ArrivalConfig, ArrivalProfile};
use crate::breaker::BreakerConfig;
use crate::brownout::BrownoutConfig;
use crate::runtime::{ServeConfig, ServeReport, ServeRuntime};
use dcd_core::RetryPolicy;
use dcd_gpusim::{DeviceSpec, FaultPlan, Gpu, Trace};
use dcd_ios::{greedy_schedule, lower_sppnet, sequential_schedule};
use dcd_nn::SppNetConfig;
use serde::{Deserialize, Serialize};

/// One named chaos scenario, fully determined by `(name, seed)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Catalog name.
    pub name: String,
    /// Scenario seed: arrival draws, fault draws, and retry jitter all
    /// derive from it (with distinct salts).
    pub seed: u64,
    /// Faults injected into the simulated GPU.
    pub fault_plan: FaultPlan,
    /// Offered load.
    pub arrivals: ArrivalConfig,
    /// Serving-runtime tuning.
    pub serve: ServeConfig,
}

/// All catalog scenario names, in a stable order.
pub fn scenario_names() -> &'static [&'static str] {
    &[
        "clean",
        "fault-burst",
        "vram-squeeze",
        "overload",
        "broken-streams",
        "hang",
    ]
}

/// The model every scenario serves: the tiny SPP-Net at 16×16 input —
/// small enough that a whole chaos suite runs in seconds of real time,
/// structured enough (parallel branches) that IOS vs. sequential schedules
/// differ.
pub fn scenario_model() -> SppNetConfig {
    SppNetConfig::tiny()
}

/// Looks up a scenario by catalog name. Returns `None` for unknown names
/// (the CLI turns that into a usage error listing the catalog).
pub fn scenario(name: &str, seed: u64) -> Option<Scenario> {
    // Base tuning shared by the catalog: ~1.3k req/s against a device
    // that sustains several thousand batched inferences per second, 20 ms
    // deadlines, a breaker that trips after 3 failed batches and probes
    // after 2 ms, brownout between 25% and 75% queue pressure.
    let arrivals = ArrivalConfig::new(seed)
        .with_profile(ArrivalProfile::Poisson {
            rate_per_sec: 1300.0,
        })
        .with_duration_ns(60_000_000)
        .with_deadline_ns(20_000_000);
    let serve = ServeConfig::new()
        .with_queue_capacity(64)
        .with_batch_cap(8)
        .with_batch_timeout_ns(1_000_000)
        .with_breaker(
            BreakerConfig::new()
                .with_failure_threshold(3)
                .with_open_ns(2_000_000),
        )
        .with_brownout(
            BrownoutConfig::new()
                .with_enter_pressure(0.75)
                .with_exit_pressure(0.25)
                .with_dwell_ns(5_000_000),
        )
        .with_drain_grace_ns(50_000_000)
        .with_retry(RetryPolicy::new().with_jitter_seed(seed));

    let s = match name {
        "clean" => Scenario {
            name: name.to_string(),
            seed,
            fault_plan: FaultPlan::none(),
            arrivals,
            serve,
        },
        // A bounded outage: one third of launches and memcpys fail inside
        // [15 ms, 35 ms). The breaker must open during the window and
        // re-close after it; brownout + breaker keep ≥ 90% of requests
        // inside their deadline.
        "fault-burst" => Scenario {
            name: name.to_string(),
            seed,
            fault_plan: FaultPlan {
                seed,
                launch_failure_rate: 0.35,
                memcpy_failure_rate: 0.2,
                fault_window_ns: Some((15_000_000, 35_000_000)),
                ..FaultPlan::none()
            },
            arrivals,
            serve,
        },
        // A co-tenant eats VRAM down to where batch 8 no longer fits but
        // batch 4 does: the runner degrades the batch and the server
        // lives with the reduced throughput. Pressure is computed from
        // the model's real footprint so the scenario tracks the model.
        "vram-squeeze" => Scenario {
            name: name.to_string(),
            seed,
            fault_plan: FaultPlan {
                seed,
                vram_pressure_bytes: {
                    let g = lower_sppnet(&scenario_model(), (16, 16));
                    let fits_batch_5 = g.weight_bytes() + g.activation_bytes(5);
                    DeviceSpec::test_gpu().mem_capacity - fits_batch_5
                },
                ..FaultPlan::none()
            },
            arrivals: arrivals.with_profile(ArrivalProfile::Burst {
                base_rate_per_sec: 800.0,
                burst_rate_per_sec: 3000.0,
                burst_start_ns: 20_000_000,
                burst_end_ns: 40_000_000,
            }),
            serve,
        },
        // No faults at all — the load itself is the adversary. The burst
        // rate is ~2.5× the device's batched throughput (~60k inf/s for
        // the tiny model), so the queue must overrun; shedding and
        // brownout keep latency bounded instead of letting the backlog
        // smear into every later request.
        "overload" => Scenario {
            name: name.to_string(),
            seed,
            fault_plan: FaultPlan::none(),
            arrivals: arrivals.with_profile(ArrivalProfile::Burst {
                base_rate_per_sec: 1000.0,
                burst_rate_per_sec: 150_000.0,
                burst_start_ns: 15_000_000,
                burst_end_ns: 35_000_000,
            }),
            serve,
        },
        // Streams 1+ are persistently broken: the first multi-stream batch
        // burns its retry budget, latches the sequential fallback, and the
        // rest of the run proceeds single-stream.
        "broken-streams" => Scenario {
            name: name.to_string(),
            seed,
            fault_plan: FaultPlan {
                seed,
                persistent_launch_failure_streams: vec![1, 2, 3],
                ..FaultPlan::none()
            },
            arrivals,
            serve,
        },
        // The device wedges once mid-run; the watchdog fires, the executor
        // resets the device, and serving resumes.
        "hang" => Scenario {
            name: name.to_string(),
            seed,
            fault_plan: FaultPlan {
                seed,
                hang_after_kernels: Some(400),
                ..FaultPlan::none()
            },
            arrivals,
            serve: serve.with_retry(
                RetryPolicy::new()
                    .with_jitter_seed(seed)
                    .with_watchdog_ns(3_000_000),
            ),
        },
        _ => return None,
    };
    Some(s)
}

/// Runs a scenario to completion, returning the report and the simulated
/// device trace (for the merged timeline).
pub fn run_scenario(sc: &Scenario) -> (ServeReport, Trace) {
    let _span = dcd_obs::span("serve.scenario", dcd_obs::Category::Serve);
    let graph = lower_sppnet(&scenario_model(), (16, 16));
    let mut gpu = Gpu::new(DeviceSpec::test_gpu());
    gpu.set_fault_plan(sc.fault_plan.clone());
    let offered = sc.arrivals.generate();
    let mut rt = ServeRuntime::new(
        &graph,
        greedy_schedule(&graph),
        sequential_schedule(&graph),
        gpu,
        sc.serve,
    )
    .expect("tiny model fits the test GPU at batch 1");
    let report = rt.run(&offered);
    (report, rt.into_trace())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_all_resolve_and_unknown_does_not() {
        for name in scenario_names() {
            let sc = scenario(name, 1).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(sc.name, *name);
        }
        assert!(scenario("no-such-scenario", 1).is_none());
    }

    #[test]
    fn scenario_roundtrips_through_value_tree() {
        let sc = scenario("fault-burst", 9).unwrap();
        let back = Scenario::deserialize(&serde::Serialize::serialize(&sc)).unwrap();
        assert_eq!(back, sc);
    }

    #[test]
    fn clean_scenario_serves_everything_cleanly() {
        let (report, trace) = run_scenario(&scenario("clean", 3).unwrap());
        assert!(report.conserved(), "{report:?}");
        assert!(report.served_fraction() > 0.99, "{report:?}");
        assert!(report.health.is_clean());
        assert!(report.breaker_transitions.is_empty());
        assert!(!trace.records.is_empty());
    }
}
