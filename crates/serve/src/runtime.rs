//! The serving runtime: a deterministic event loop over the simulated
//! clock, tying together admission, batching, the circuit breaker, the
//! brownout controller, and the resilient executor.
//!
//! ## Clock model
//!
//! There is exactly one clock: the simulated host clock of the underlying
//! [`dcd_gpusim::Gpu`]. Executing a batch advances it (API overheads,
//! synchronization, retry backoff); when the loop has nothing to do it
//! *sleeps* by [`dcd_gpusim::Gpu::host_busy`] to the earliest event that
//! could change its mind — the next arrival, the batching timeout of the
//! oldest queued request, the end of a breaker-open interval, or the drain
//! deadline. No wall-clock time is ever read, which is what makes chaos
//! scenarios bit-reproducible across runs and thread counts.
//!
//! ## One loop iteration
//!
//! 1. admit every arrival with `arrival_ns ≤ now` (brownout level 3 sheds
//!    `Low` priority; a full queue sheds the rest);
//! 2. stop at the drain deadline, or finish when the queue is empty and no
//!    arrivals remain;
//! 3. if the breaker is open, sleep toward its probe time;
//! 4. dispatch when the (brownout-effective) batch cap is reached, the
//!    oldest request has waited out the batching timeout, or no more
//!    arrivals can top the batch up — otherwise sleep;
//! 5. expired requests are dropped at dequeue; the survivors execute under
//!    [`ResilientRunner`] (retry/backoff, OOM degradation, hang reset);
//! 6. outcome feeds the breaker; a failed batch is requeued at the front
//!    (its requests expire naturally if the outage persists);
//! 7. the brownout controller re-evaluates queue pressure and breaker
//!    health.

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::brownout::{BrownoutConfig, BrownoutController, BrownoutLevel};
use crate::queue::AdmissionQueue;
use crate::request::{Priority, Request};
use dcd_core::{ResilientRunner, RetryPolicy, RunHealth};
use dcd_gpusim::{Gpu, Trace};
use dcd_ios::{ExecError, Graph, Schedule};
use serde::{Deserialize, Serialize};

/// Serving-runtime tuning.
///
/// `#[non_exhaustive]`: construct with [`ServeConfig::new`] and the
/// `with_*` builders.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Admission queue capacity (requests).
    pub queue_capacity: usize,
    /// Batch cap at brownout level 0 (halved from level 1 up).
    pub batch_cap: usize,
    /// Max time the oldest queued request waits before a partial batch
    /// dispatches anyway, host ns.
    pub batch_timeout_ns: u64,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Brownout-controller tuning.
    pub brownout: BrownoutConfig,
    /// How long after the last arrival the loop keeps draining the queue
    /// before declaring the remainder unserved, host ns.
    pub drain_grace_ns: u64,
    /// Retry policy for the wrapped [`ResilientRunner`].
    pub retry: RetryPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            batch_cap: 8,
            batch_timeout_ns: 1_000_000, // 1 ms
            breaker: BreakerConfig::default(),
            brownout: BrownoutConfig::default(),
            drain_grace_ns: 50_000_000, // 50 ms
            retry: RetryPolicy::default(),
        }
    }
}

impl ServeConfig {
    /// The default tuning.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the admission queue capacity (clamped to ≥ 1).
    pub fn with_queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n.max(1);
        self
    }

    /// Sets the level-0 batch cap (clamped to ≥ 1).
    pub fn with_batch_cap(mut self, n: usize) -> Self {
        self.batch_cap = n.max(1);
        self
    }

    /// Sets the batching timeout, host ns.
    pub fn with_batch_timeout_ns(mut self, ns: u64) -> Self {
        self.batch_timeout_ns = ns;
        self
    }

    /// Sets the circuit-breaker tuning.
    pub fn with_breaker(mut self, b: BreakerConfig) -> Self {
        self.breaker = b;
        self
    }

    /// Sets the brownout tuning.
    pub fn with_brownout(mut self, b: BrownoutConfig) -> Self {
        self.brownout = b;
        self
    }

    /// Sets the drain grace period, host ns.
    pub fn with_drain_grace_ns(mut self, ns: u64) -> Self {
        self.drain_grace_ns = ns;
        self
    }

    /// Sets the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// Everything a serving run produced, with a conservation ledger: each
/// offered request lands in exactly one terminal counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Requests in the offered load.
    pub offered: u64,
    /// Completed within their deadline.
    pub served: u64,
    /// Completed after their deadline.
    pub late: u64,
    /// Rejected at admission because the queue was full.
    pub shed_capacity: u64,
    /// Rejected at admission by brownout low-priority shedding.
    pub shed_brownout: u64,
    /// Expired in the queue, discarded at dequeue.
    pub dropped: u64,
    /// Still queued when the drain deadline ended the run.
    pub unserved: u64,
    /// Batches that completed.
    pub batches: u64,
    /// Batches whose whole recovery ladder failed (requeued).
    pub failed_batches: u64,
    /// Exact p50 of completion latency (arrival → completion), ns; 0 when
    /// nothing completed.
    pub p50_latency_ns: u64,
    /// Exact p99 of completion latency, ns; 0 when nothing completed.
    pub p99_latency_ns: u64,
    /// Breaker transition log `(host_ns, state)` — the bit-reproducibility
    /// fixture.
    pub breaker_transitions: Vec<(u64, BreakerState)>,
    /// Brownout transition log `(host_ns, level)`.
    pub brownout_transitions: Vec<(u64, BrownoutLevel)>,
    /// Total host ns the breaker spent open.
    pub breaker_open_ns: u64,
    /// Aggregated resilience counters from the executor.
    pub health: RunHealth,
    /// Whether a failure-driven schedule fallback latched.
    pub fell_back: bool,
    /// Host clock when the run ended, ns.
    pub end_ns: u64,
}

impl ServeReport {
    /// The conservation invariant: every offered request is accounted for
    /// exactly once.
    pub fn conserved(&self) -> bool {
        self.served
            + self.late
            + self.shed_capacity
            + self.shed_brownout
            + self.dropped
            + self.unserved
            == self.offered
    }

    /// Fraction of offered requests served within deadline (the SLO
    /// metric); 1.0 for an empty load.
    pub fn served_fraction(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.served as f64 / self.offered as f64
        }
    }

    /// Final breaker state (`Closed` when the breaker never transitioned).
    pub fn final_breaker_state(&self) -> BreakerState {
        self.breaker_transitions
            .last()
            .map(|&(_, s)| s)
            .unwrap_or(BreakerState::Closed)
    }
}

/// Nearest-rank percentile of an unsorted latency sample.
fn percentile_ns(latencies: &mut [u64], q: f64) -> u64 {
    if latencies.is_empty() {
        return 0;
    }
    latencies.sort_unstable();
    let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
    latencies[rank - 1]
}

/// The serving runtime. Borrows the lowered graph for the lifetime of the
/// run; consume with [`ServeRuntime::into_trace`] for the device timeline.
pub struct ServeRuntime<'g> {
    runner: ResilientRunner<'g>,
    cfg: ServeConfig,
    queue: AdmissionQueue,
    breaker: CircuitBreaker,
    brownout: BrownoutController,
}

impl<'g> ServeRuntime<'g> {
    /// Builds the runtime on a (possibly fault-planned) GPU. The executor
    /// is sized toward `cfg.batch_cap` (degrading under VRAM pressure like
    /// any [`ResilientRunner`]).
    pub fn new(
        graph: &'g Graph,
        primary: Schedule,
        fallback: Schedule,
        gpu: Gpu,
        cfg: ServeConfig,
    ) -> Result<Self, ExecError> {
        let runner = ResilientRunner::new(graph, primary, fallback, cfg.batch_cap, gpu, cfg.retry)?;
        Ok(ServeRuntime {
            runner,
            queue: AdmissionQueue::new(cfg.queue_capacity),
            breaker: CircuitBreaker::new(cfg.breaker),
            brownout: BrownoutController::new(cfg.brownout),
            cfg,
        })
    }

    fn now(&mut self) -> u64 {
        self.runner.executor_mut().gpu_mut().host_ns()
    }

    /// Sleeps the simulated clock forward to `target_ns` (no-op if in the
    /// past).
    fn advance_to(&mut self, target_ns: u64) {
        let now = self.now();
        if target_ns > now {
            self.runner
                .executor_mut()
                .gpu_mut()
                .host_busy(target_ns - now);
        }
    }

    /// Serves an offered load (must be sorted by `arrival_ns`; generators
    /// guarantee this) to completion or drain deadline, returning the
    /// report. Deterministic in (load, config, GPU fault plan).
    pub fn run(&mut self, offered: &[Request]) -> ServeReport {
        let _span = dcd_obs::span("serve.run", dcd_obs::Category::Serve);
        debug_assert!(offered
            .windows(2)
            .all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        let mut arrivals = offered.iter().copied().peekable();
        let last_arrival_ns = offered.last().map(|r| r.arrival_ns).unwrap_or(0);
        let drain_deadline_ns = last_arrival_ns.saturating_add(self.cfg.drain_grace_ns);

        let mut served = 0u64;
        let mut late = 0u64;
        let mut shed_capacity = 0u64;
        let mut shed_brownout = 0u64;
        let mut dropped = 0u64;
        let mut unserved = 0u64;
        let mut batches = 0u64;
        let mut failed_batches = 0u64;
        let mut latencies: Vec<u64> = Vec::with_capacity(offered.len());
        let mut expired: Vec<Request> = Vec::new();

        loop {
            let now = self.now();

            // 1. Admission.
            while let Some(req) = arrivals.peek().copied() {
                if req.arrival_ns > now {
                    break;
                }
                arrivals.next();
                if self.brownout.sheds_low_priority() && req.priority == Priority::Low {
                    shed_brownout += 1;
                    dcd_obs::counter!("serve.shed_brownout").inc();
                } else if self.queue.admit(req).is_err() {
                    shed_capacity += 1;
                    dcd_obs::counter!("serve.shed_capacity").inc();
                }
            }

            // 2. Drain deadline / normal termination.
            if now >= drain_deadline_ns {
                let rest = self.queue.drain_remaining();
                unserved = rest.len() as u64;
                dcd_obs::counter!("serve.unserved").add(unserved);
                break;
            }
            if self.queue.is_empty() {
                match arrivals.peek() {
                    None => break,
                    Some(req) => {
                        let t = req.arrival_ns;
                        self.advance_to(t);
                        continue;
                    }
                }
            }

            // 3. Breaker gate: while open, sleep toward whichever comes
            // first — probe time, the next arrival, or the drain deadline.
            if !self.breaker.call_permitted(now) {
                let until = self
                    .breaker
                    .open_until_ns()
                    .expect("breaker open ⇒ open_until");
                let mut target = until.min(drain_deadline_ns);
                if let Some(req) = arrivals.peek() {
                    target = target.min(req.arrival_ns);
                }
                self.advance_to(target.max(now + 1));
                continue;
            }

            // 4. Dispatch decision under the brownout-effective cap.
            let cap = self.brownout.effective_batch_cap(self.cfg.batch_cap);
            let oldest = self
                .queue
                .oldest_arrival_ns()
                .expect("queue checked non-empty");
            let timeout_at = oldest.saturating_add(self.cfg.batch_timeout_ns);
            let more_arrivals = arrivals.peek().is_some();
            let dispatch = self.queue.len() >= cap || now >= timeout_at || !more_arrivals;
            if !dispatch {
                let next_arrival = arrivals.peek().expect("more_arrivals").arrival_ns;
                let target = next_arrival.min(timeout_at).min(drain_deadline_ns);
                self.advance_to(target.max(now + 1));
                continue;
            }

            // 5. Execute one batch.
            if self.brownout.wants_sequential() {
                // Validated at construction; switching cannot fail.
                let _ = self.runner.use_fallback_schedule();
            } else {
                let _ = self.runner.use_primary_schedule();
            }
            expired.clear();
            let mut batch = self.queue.take_batch(cap, now, &mut expired);
            dropped += expired.len() as u64;
            dcd_obs::counter!("serve.dropped").add(expired.len() as u64);
            if batch.is_empty() {
                // Everything at the front had expired; account and loop.
                let p = self.queue.pressure();
                let closed = self.breaker.state() == BreakerState::Closed;
                self.brownout.evaluate(now, p, closed);
                continue;
            }
            let health_before = self.runner.health;
            let ok = {
                let _batch_span = dcd_obs::span("serve.batch", dcd_obs::Category::Serve);
                match self.runner.grow_batch(batch.len()) {
                    Ok(achieved) => {
                        if achieved < batch.len() {
                            // VRAM pressure shrank the executor below the
                            // request batch: only credit what actually
                            // runs; the excess goes back to the front.
                            let excess = batch.split_off(achieved);
                            self.queue.requeue_front(excess);
                        }
                        self.runner.run().is_ok()
                    }
                    Err(_) => false,
                }
            };
            let completion = self.now();
            // Attribute the recovery effort (retry backoff above all) to
            // the batch — and thus its requests — that paid for it.
            let batch_health = self.runner.health.since(&health_before);
            dcd_obs::counter!("serve.backoff_wait_ns").add(batch_health.backoff_wait_ns);
            dcd_obs::counter!("serve.retries").add(batch_health.retries);
            if ok {
                self.breaker.on_success(completion);
                batches += 1;
                dcd_obs::counter!("serve.batches").inc();
                for req in &batch {
                    let latency = completion.saturating_sub(req.arrival_ns);
                    latencies.push(latency);
                    dcd_obs::histogram!("serve.latency_ns").record(latency);
                    if completion <= req.deadline_ns {
                        served += 1;
                        dcd_obs::counter!("serve.served").inc();
                    } else {
                        late += 1;
                        dcd_obs::counter!("serve.late").inc();
                    }
                }
            } else {
                self.breaker.on_failure(completion);
                failed_batches += 1;
                dcd_obs::counter!("serve.failed_batches").inc();
                // The whole recovery ladder failed: requeue and let the
                // breaker give the device room. The requests expire
                // naturally if the outage persists.
                self.queue.requeue_front(batch);
            }

            // 6. Brownout control step.
            let after = self.now();
            let p = self.queue.pressure();
            let closed = self.breaker.state() == BreakerState::Closed;
            self.brownout.evaluate(after, p, closed);
        }

        let end_ns = self.now();
        let p50 = percentile_ns(&mut latencies, 0.50);
        let p99 = percentile_ns(&mut latencies, 0.99);
        ServeReport {
            offered: offered.len() as u64,
            served,
            late,
            shed_capacity,
            shed_brownout,
            dropped,
            unserved,
            batches,
            failed_batches,
            p50_latency_ns: p50,
            p99_latency_ns: p99,
            breaker_transitions: self.breaker.transitions().to_vec(),
            brownout_transitions: self.brownout.transitions().to_vec(),
            breaker_open_ns: self.breaker.total_open_ns(end_ns),
            health: self.runner.health,
            fell_back: self.runner.fell_back(),
            end_ns,
        }
    }

    /// Current brownout level (for tests and live introspection).
    pub fn brownout_level(&self) -> BrownoutLevel {
        self.brownout.level()
    }

    /// Current breaker state without advancing time.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Consumes the runtime, returning the simulated device trace (for the
    /// merged host+device timeline).
    pub fn into_trace(self) -> Trace {
        self.runner.into_executor().into_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalConfig;
    use dcd_gpusim::{DeviceSpec, FaultPlan};
    use dcd_ios::{greedy_schedule, lower_sppnet, sequential_schedule};
    use dcd_nn::SppNetConfig;

    fn graph() -> Graph {
        lower_sppnet(&SppNetConfig::tiny(), (16, 16))
    }

    fn gpu_with(plan: FaultPlan) -> Gpu {
        let mut g = Gpu::new(DeviceSpec::test_gpu());
        g.set_fault_plan(plan);
        g
    }

    fn runtime(graph: &Graph, plan: FaultPlan, cfg: ServeConfig) -> ServeRuntime<'_> {
        ServeRuntime::new(
            graph,
            greedy_schedule(graph),
            sequential_schedule(graph),
            gpu_with(plan),
            cfg,
        )
        .expect("fits")
    }

    #[test]
    fn clean_load_is_fully_served_and_conserved() {
        let g = graph();
        let offered = ArrivalConfig::new(1).generate();
        let mut rt = runtime(&g, FaultPlan::none(), ServeConfig::new());
        let report = rt.run(&offered);
        assert!(report.conserved(), "{report:?}");
        assert_eq!(report.offered, offered.len() as u64);
        assert!(report.served > 0);
        assert_eq!(report.failed_batches, 0);
        assert!(report.health.is_clean());
        assert_eq!(report.final_breaker_state(), BreakerState::Closed);
        assert!(report.p50_latency_ns <= report.p99_latency_ns);
    }

    #[test]
    fn empty_load_is_a_clean_noop() {
        let g = graph();
        let mut rt = runtime(&g, FaultPlan::none(), ServeConfig::new());
        let report = rt.run(&[]);
        assert!(report.conserved());
        assert_eq!(report.offered, 0);
        assert_eq!(report.served, 0);
        assert!((report.served_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(report.p99_latency_ns, 0);
    }

    #[test]
    fn runs_are_bit_reproducible() {
        let offered = ArrivalConfig::new(5).generate();
        let plan = FaultPlan {
            seed: 5,
            launch_failure_rate: 0.05,
            ..FaultPlan::none()
        };
        let run = || {
            let g = graph();
            let mut rt = runtime(&g, plan.clone(), ServeConfig::new());
            rt.run(&offered)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn into_trace_exposes_the_device_timeline() {
        let g = graph();
        let offered = ArrivalConfig::new(2).with_duration_ns(5_000_000).generate();
        let mut rt = runtime(&g, FaultPlan::none(), ServeConfig::new());
        let report = rt.run(&offered);
        assert!(report.batches > 0);
        let trace = rt.into_trace();
        assert!(!trace.records.is_empty());
    }
}
