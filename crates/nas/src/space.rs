//! The SPP-Net search space of §4.2.

use dcd_nn::sppnet::{CONV1_KERNEL_CHOICES, FC_CHOICES, SPP_TOP_CHOICES};
use dcd_nn::SppNetConfig;
use dcd_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// The paper's search space: three mutation axes over a base configuration.
///
/// * feature engineering — first conv filter size ∈ {1, 3, 5, 7, 9}
/// * SPP layer — first pyramid level ∈ {1, 2, 3, 4, 5}
/// * fully-connected — fc1 (and optionally fc2) ∈ {128 … 8192}
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SppNetSearchSpace {
    /// Base configuration mutations are applied to (channels, input bands).
    pub base: SppNetConfig,
    /// Whether the second FC layer axis is searched too (`None` is always a
    /// candidate; the paper's Table 1 candidates all use a single FC).
    pub search_fc2: bool,
}

impl SppNetSearchSpace {
    /// The paper's space around the original SPP-Net.
    pub fn paper() -> Self {
        SppNetSearchSpace {
            base: SppNetConfig::original(),
            search_fc2: false,
        }
    }

    /// A space around an arbitrary base config.
    pub fn around(base: SppNetConfig) -> Self {
        SppNetSearchSpace {
            base,
            search_fc2: false,
        }
    }

    /// Number of distinct configurations in the space.
    pub fn size(&self) -> usize {
        let fc2 = if self.search_fc2 {
            FC_CHOICES.len() + 1
        } else {
            1
        };
        CONV1_KERNEL_CHOICES.len() * SPP_TOP_CHOICES.len() * FC_CHOICES.len() * fc2
    }

    /// Uniformly samples one configuration.
    pub fn sample(&self, rng: &mut SeededRng) -> SppNetConfig {
        let mut cfg = self.base.clone();
        cfg.conv1_kernel = *rng.choose(&CONV1_KERNEL_CHOICES);
        cfg.spp_top_level = *rng.choose(&SPP_TOP_CHOICES);
        cfg.fc1 = *rng.choose(&FC_CHOICES);
        if self.search_fc2 {
            // None plus each width, uniformly.
            let pick = rng.index(FC_CHOICES.len() + 1);
            cfg.fc2 = if pick == 0 {
                None
            } else {
                Some(FC_CHOICES[pick - 1])
            };
        } else {
            cfg.fc2 = self.base.fc2;
        }
        cfg
    }

    /// Enumerates the whole space in a deterministic order (grid search).
    pub fn enumerate(&self) -> Vec<SppNetConfig> {
        let fc2_options: Vec<Option<usize>> = if self.search_fc2 {
            std::iter::once(None)
                .chain(FC_CHOICES.iter().map(|&f| Some(f)))
                .collect()
        } else {
            vec![self.base.fc2]
        };
        let mut out = Vec::with_capacity(self.size());
        for &k in &CONV1_KERNEL_CHOICES {
            for &l in &SPP_TOP_CHOICES {
                for &f in &FC_CHOICES {
                    for &f2 in &fc2_options {
                        let mut cfg = self.base.clone();
                        cfg.conv1_kernel = k;
                        cfg.spp_top_level = l;
                        cfg.fc1 = f;
                        cfg.fc2 = f2;
                        out.push(cfg);
                    }
                }
            }
        }
        out
    }

    /// Mutates one randomly chosen axis (regularized evolution's unit step).
    pub fn mutate(&self, parent: &SppNetConfig, rng: &mut SeededRng) -> SppNetConfig {
        let mut child = parent.clone();
        let axes = if self.search_fc2 { 4 } else { 3 };
        match rng.index(axes) {
            0 => child.conv1_kernel = *rng.choose(&CONV1_KERNEL_CHOICES),
            1 => child.spp_top_level = *rng.choose(&SPP_TOP_CHOICES),
            2 => child.fc1 = *rng.choose(&FC_CHOICES),
            _ => {
                let pick = rng.index(FC_CHOICES.len() + 1);
                child.fc2 = if pick == 0 {
                    None
                } else {
                    Some(FC_CHOICES[pick - 1])
                };
            }
        }
        child
    }

    /// Whether a configuration belongs to this space.
    pub fn contains(&self, cfg: &SppNetConfig) -> bool {
        CONV1_KERNEL_CHOICES.contains(&cfg.conv1_kernel)
            && SPP_TOP_CHOICES.contains(&cfg.spp_top_level)
            && FC_CHOICES.contains(&cfg.fc1)
            && match cfg.fc2 {
                None => true,
                Some(f2) => self.search_fc2 && FC_CHOICES.contains(&f2),
            }
            && cfg.channels == self.base.channels
            && cfg.in_channels == self.base.in_channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_space_size_is_175() {
        // 5 kernels × 5 SPP levels × 7 FC widths
        assert_eq!(SppNetSearchSpace::paper().size(), 175);
    }

    #[test]
    fn fc2_axis_multiplies_size() {
        let mut s = SppNetSearchSpace::paper();
        s.search_fc2 = true;
        assert_eq!(s.size(), 175 * 8);
    }

    #[test]
    fn enumerate_matches_size_and_is_unique() {
        let s = SppNetSearchSpace::paper();
        let all = s.enumerate();
        assert_eq!(all.len(), s.size());
        let mut set = std::collections::HashSet::new();
        for cfg in &all {
            assert!(set.insert(cfg.clone()), "duplicate config {cfg:?}");
            assert!(s.contains(cfg));
        }
    }

    #[test]
    fn samples_stay_in_space() {
        let s = SppNetSearchSpace::paper();
        let mut rng = SeededRng::new(3);
        for _ in 0..100 {
            assert!(s.contains(&s.sample(&mut rng)));
        }
    }

    #[test]
    fn sampling_eventually_covers_axes() {
        let s = SppNetSearchSpace::paper();
        let mut rng = SeededRng::new(4);
        let mut kernels = std::collections::HashSet::new();
        for _ in 0..200 {
            kernels.insert(s.sample(&mut rng).conv1_kernel);
        }
        assert_eq!(kernels.len(), 5, "random search should hit all kernels");
    }

    #[test]
    fn table1_candidates_are_in_the_space() {
        let s = SppNetSearchSpace::paper();
        for (name, cfg) in SppNetConfig::table1() {
            assert!(s.contains(&cfg), "{name} outside the space");
        }
    }

    #[test]
    fn mutation_changes_at_most_one_axis() {
        let s = SppNetSearchSpace::paper();
        let mut rng = SeededRng::new(5);
        let parent = SppNetConfig::original();
        for _ in 0..50 {
            let child = s.mutate(&parent, &mut rng);
            let mut diffs = 0;
            if child.conv1_kernel != parent.conv1_kernel {
                diffs += 1;
            }
            if child.spp_top_level != parent.spp_top_level {
                diffs += 1;
            }
            if child.fc1 != parent.fc1 {
                diffs += 1;
            }
            if child.fc2 != parent.fc2 {
                diffs += 1;
            }
            assert!(diffs <= 1, "mutation changed {diffs} axes");
            assert!(s.contains(&child));
        }
    }
}
