//! Successive halving (extension): a budget-aware NAS accelerator.
//!
//! NNI ships "assessors" that kill unpromising trials early; successive
//! halving (Jamieson & Talwalkar, 2016) is the canonical form. A cohort of
//! configurations is evaluated at a small training budget, the top `1/eta`
//! survive to the next *rung* with `eta×` the budget, and so on — spending
//! most compute on the most promising architectures.

use crate::evaluator::Evaluator;
use crate::experiment::{Experiment, Trial};
use crate::space::SppNetSearchSpace;
use dcd_nn::SppNetConfig;
use dcd_tensor::SeededRng;
use std::time::Instant;

/// An evaluator that can score at a fraction of the full training budget.
///
/// `budget` is in `(0, 1]`; `1.0` must agree with [`Evaluator::evaluate`].
pub trait BudgetedEvaluator: Evaluator {
    /// Scores a configuration at a fractional budget.
    fn evaluate_budgeted(&self, config: &SppNetConfig, budget: f64) -> f64;
}

/// Wraps a plain scoring function of `(config, budget)`.
pub struct BudgetedFunctional<F: Fn(&SppNetConfig, f64) -> f64> {
    f: F,
}

impl<F: Fn(&SppNetConfig, f64) -> f64> BudgetedFunctional<F> {
    /// Wraps the function.
    pub fn new(f: F) -> Self {
        BudgetedFunctional { f }
    }
}

impl<F: Fn(&SppNetConfig, f64) -> f64> Evaluator for BudgetedFunctional<F> {
    fn evaluate(&self, config: &SppNetConfig) -> f64 {
        (self.f)(config, 1.0)
    }
}

impl<F: Fn(&SppNetConfig, f64) -> f64> BudgetedEvaluator for BudgetedFunctional<F> {
    fn evaluate_budgeted(&self, config: &SppNetConfig, budget: f64) -> f64 {
        (self.f)(config, budget)
    }
}

/// Successive-halving parameters.
#[derive(Debug, Clone, Copy)]
pub struct HalvingConfig {
    /// Initial cohort size.
    pub cohort: usize,
    /// Survivor fraction divisor per rung (classically 2–4).
    pub eta: usize,
    /// Budget of the first rung, in `(0, 1]`.
    pub min_budget: f64,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for HalvingConfig {
    fn default() -> Self {
        HalvingConfig {
            cohort: 16,
            eta: 2,
            min_budget: 0.25,
            seed: 0,
        }
    }
}

/// Result of a successive-halving run.
#[derive(Debug)]
pub struct HalvingResult {
    /// Every evaluation performed, as an experiment journal (trial order:
    /// rung by rung).
    pub experiment: Experiment,
    /// The surviving configuration (evaluated at full budget).
    pub winner: SppNetConfig,
    /// The winner's full-budget score.
    pub winner_score: f64,
    /// Total budget spent, in full-evaluation units.
    pub budget_spent: f64,
}

/// Runs successive halving over the search space.
pub fn successive_halving(
    space: &SppNetSearchSpace,
    evaluator: &dyn BudgetedEvaluator,
    config: HalvingConfig,
) -> HalvingResult {
    assert!(config.cohort >= 2, "need a cohort of at least 2");
    assert!(config.eta >= 2, "eta must be at least 2");
    assert!(
        (0.0..=1.0).contains(&config.min_budget) && config.min_budget > 0.0,
        "min_budget must be in (0, 1]"
    );
    let mut rng = SeededRng::new(config.seed);
    let mut cohort: Vec<SppNetConfig> =
        (0..config.cohort).map(|_| space.sample(&mut rng)).collect();
    let mut budget = config.min_budget;
    let mut journal = Experiment::new();
    let mut budget_spent = 0.0;
    let mut last_scores: Vec<f64>;

    loop {
        // Final rung always runs at full budget.
        let effective = if cohort.len() <= config.eta {
            1.0
        } else {
            budget.min(1.0)
        };
        last_scores = cohort
            .iter()
            .map(|cfg| {
                let start = Instant::now();
                let score = evaluator.evaluate_budgeted(cfg, effective);
                budget_spent += effective;
                journal.trials.push(Trial {
                    id: journal.trials.len(),
                    summary: format!("{} @budget {:.2}", cfg.summary(), effective),
                    config: cfg.clone(),
                    score,
                    duration_s: start.elapsed().as_secs_f64(),
                    attempts: 1,
                });
                score
            })
            .collect();
        if cohort.len() <= 1 || effective >= 1.0 {
            break;
        }
        // Keep the top 1/eta (at least one). NaN scores (a degenerate
        // low-budget evaluation) rank last instead of panicking the sort;
        // keying NaN to -inf is needed because total_cmp alone would rank
        // +NaN above every finite score.
        let rank = |s: f64| if s.is_nan() { f64::NEG_INFINITY } else { s };
        let mut order: Vec<usize> = (0..cohort.len()).collect();
        order.sort_by(|&a, &b| rank(last_scores[b]).total_cmp(&rank(last_scores[a])));
        let keep = (cohort.len() / config.eta).max(1);
        cohort = order
            .iter()
            .take(keep)
            .map(|&i| cohort[i].clone())
            .collect();
        budget = (budget * config.eta as f64).min(1.0);
    }

    let best = last_scores
        .iter()
        .enumerate()
        .max_by(|a, b| {
            let rank = |s: f64| if s.is_nan() { f64::NEG_INFINITY } else { s };
            rank(*a.1).total_cmp(&rank(*b.1))
        })
        .map(|(i, _)| i)
        .expect("non-empty cohort");
    HalvingResult {
        winner: cohort[best].clone(),
        winner_score: last_scores[best],
        experiment: journal,
        budget_spent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Noisy proxy: true quality = fc1 (bigger is better); low budgets add
    /// deterministic pseudo-noise so halving has something to filter.
    fn proxy() -> BudgetedFunctional<impl Fn(&SppNetConfig, f64) -> f64> {
        BudgetedFunctional::new(|cfg: &SppNetConfig, budget: f64| {
            let true_q = (cfg.fc1 as f64).log2();
            let noise = ((cfg.conv1_kernel * 31 + cfg.spp_top_level * 7) % 13) as f64 / 13.0;
            true_q + (1.0 - budget) * noise
        })
    }

    #[test]
    fn halving_finds_a_top_config() {
        let space = SppNetSearchSpace::paper();
        let result = successive_halving(
            &space,
            &proxy(),
            HalvingConfig {
                cohort: 16,
                eta: 2,
                min_budget: 0.25,
                seed: 3,
            },
        );
        // The winner must be among the largest-FC configs sampled.
        assert!(
            result.winner.fc1 >= 2048,
            "winner fc1 {}",
            result.winner.fc1
        );
        assert!(result.winner_score >= 11.0);
    }

    #[test]
    fn halving_spends_less_than_full_grid() {
        let space = SppNetSearchSpace::paper();
        let result = successive_halving(
            &space,
            &proxy(),
            HalvingConfig {
                cohort: 16,
                eta: 2,
                min_budget: 0.25,
                seed: 1,
            },
        );
        // 16 full evaluations would cost 16.0; halving costs
        // 16·0.25 + 8·0.5 + 4·1.0 (final rung forced to 1.0) = 12 at most,
        // and must beat evaluating all 16 fully.
        assert!(
            result.budget_spent < 16.0,
            "halving spent {}",
            result.budget_spent
        );
        // Journal records every evaluation.
        assert!(result.experiment.trials.len() >= 16);
    }

    #[test]
    fn final_rung_runs_at_full_budget() {
        let space = SppNetSearchSpace::paper();
        let result = successive_halving(
            &space,
            &proxy(),
            HalvingConfig {
                cohort: 8,
                eta: 2,
                min_budget: 0.1,
                seed: 2,
            },
        );
        let last = result.experiment.trials.last().expect("trials ran");
        assert!(
            last.summary.ends_with("@budget 1.00"),
            "last rung summary: {}",
            last.summary
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let space = SppNetSearchSpace::paper();
        let cfg = HalvingConfig {
            cohort: 8,
            eta: 2,
            min_budget: 0.25,
            seed: 9,
        };
        let a = successive_halving(&space, &proxy(), cfg);
        let b = successive_halving(&space, &proxy(), cfg);
        assert_eq!(a.winner, b.winner);
        assert_eq!(a.experiment.trials.len(), b.experiment.trials.len());
    }

    #[test]
    #[should_panic(expected = "cohort")]
    fn rejects_cohort_of_one() {
        successive_halving(
            &SppNetSearchSpace::paper(),
            &proxy(),
            HalvingConfig {
                cohort: 1,
                ..Default::default()
            },
        );
    }
}
