//! # dcd-nas
//!
//! A Retiarii-style neural architecture search framework (paper §4),
//! reimplementing the pieces of Microsoft NNI the paper uses:
//!
//! * a **search space** over SPP-Net hyper-parameters — first-conv filter
//!   size {1,3,5,7,9}, first SPP pyramid level {1..5}, and fully-connected
//!   widths {128..8192} (§4.2);
//! * **exploration strategies** — the paper's multi-trial *random search*,
//!   plus grid search and regularized evolution as extensions;
//! * a **model evaluator** — `FunctionalEvaluator` (the Retiarii default the
//!   paper selects) wrapping any `Fn(&SppNetConfig) -> f64`, and a
//!   `TrainingEvaluator` that actually trains a `dcd-nn` SPP-Net on a patch
//!   dataset and reports test AP;
//! * a **multi-trial experiment** runner with a serde-JSON journal, mirroring
//!   NNI's experiment tracking ("aggregating and comparing tuning results").
//!
//! The accuracy-constrained selection of §5.4 lives in
//! [`experiment::Experiment::candidates_above`]: it returns every trial with
//! `a(n) > A`, ready to be ranked by IOS-measured efficiency.

pub mod evaluator;
pub mod experiment;
pub mod halving;
pub mod space;
pub mod strategy;

pub use evaluator::{Evaluator, FunctionalEvaluator, TrainingEvaluator};
pub use experiment::{Experiment, Trial, TrialSupervisor};
pub use halving::{successive_halving, BudgetedEvaluator, HalvingConfig, HalvingResult};
pub use space::SppNetSearchSpace;
pub use strategy::{ExplorationStrategy, GridSearch, RandomSearch, RegularizedEvolution};
