//! Multi-trial experiment runner with an NNI-style journal.

use crate::evaluator::Evaluator;
use crate::strategy::ExplorationStrategy;
use dcd_nn::SppNetConfig;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// One completed trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trial {
    /// Sequential trial id.
    pub id: usize,
    /// The architecture evaluated.
    pub config: SppNetConfig,
    /// The paper's compact architecture string.
    pub summary: String,
    /// Score (`a(n)`, e.g. test AP).
    pub score: f64,
    /// Wall-clock evaluation time, seconds.
    pub duration_s: f64,
    /// Evaluation attempts the supervisor spent on this trial (1 when the
    /// first attempt succeeded).
    pub attempts: u32,
}

/// Per-trial supervision: evaluations run under `catch_unwind` with a
/// bounded retry budget, so one crashing trial cannot kill a long NAS
/// experiment (NNI marks such trials failed and moves on; we do the same).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialSupervisor {
    /// Attempts per trial; panicking evaluations are retried until the
    /// budget is spent. At least 1.
    pub max_attempts: u32,
    /// Score assigned when every attempt panics. Keep it below any real
    /// score (APs live in `[0, 1]`) so failed trials sink in the ranking
    /// and never pass an accuracy constraint.
    pub failed_score: f64,
}

impl Default for TrialSupervisor {
    fn default() -> Self {
        TrialSupervisor {
            max_attempts: 2,
            failed_score: -1.0,
        }
    }
}

impl TrialSupervisor {
    /// Evaluates one candidate under supervision, returning the score and
    /// the number of attempts spent. A panic on the last attempt yields
    /// `failed_score` instead of propagating.
    pub fn evaluate(&self, evaluator: &dyn Evaluator, config: &SppNetConfig) -> (f64, u32) {
        let budget = self.max_attempts.max(1);
        let mut attempt = 1;
        loop {
            match catch_unwind(AssertUnwindSafe(|| evaluator.evaluate(config))) {
                Ok(score) => return (score, attempt),
                Err(_) if attempt < budget => attempt += 1,
                Err(_) => return (self.failed_score, attempt),
            }
        }
    }
}

/// A multi-trial NAS experiment: strategy proposes, evaluator scores,
/// journal records.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Experiment {
    /// All completed trials in execution order.
    pub trials: Vec<Trial>,
}

impl Experiment {
    /// An empty experiment.
    pub fn new() -> Self {
        Experiment::default()
    }

    /// Runs trials until the strategy is exhausted or `max_trials` is hit.
    ///
    /// Evaluations run under the default [`TrialSupervisor`]; use
    /// [`Experiment::run_with`] to tune the per-trial retry budget.
    pub fn run(
        strategy: &mut dyn ExplorationStrategy,
        evaluator: &dyn Evaluator,
        max_trials: usize,
    ) -> Self {
        Self::run_with(strategy, evaluator, max_trials, TrialSupervisor::default())
    }

    /// [`Experiment::run`] with an explicit trial supervisor.
    pub fn run_with(
        strategy: &mut dyn ExplorationStrategy,
        evaluator: &dyn Evaluator,
        max_trials: usize,
        supervisor: TrialSupervisor,
    ) -> Self {
        let mut exp = Experiment::new();
        let mut history: Vec<(SppNetConfig, f64)> = Vec::new();
        while exp.trials.len() < max_trials {
            let Some(config) = strategy.next(&history) else {
                break;
            };
            let _trial_span = dcd_obs::span("nas.trial", dcd_obs::Category::Nas);
            dcd_obs::counter!("nas.trials").inc();
            let start = Instant::now();
            let (score, attempts) = supervisor.evaluate(evaluator, &config);
            let duration_s = start.elapsed().as_secs_f64();
            history.push((config.clone(), score));
            exp.trials.push(Trial {
                id: exp.trials.len(),
                summary: config.summary(),
                config,
                score,
                duration_s,
                attempts,
            });
        }
        exp
    }

    /// Runs trials with parallel evaluation (rayon) for *history-free*
    /// strategies (random search, grid search).
    ///
    /// The strategy is drained up-front with an empty history — so
    /// history-dependent strategies like regularized evolution must use the
    /// sequential [`Experiment::run`] — and the proposals are evaluated
    /// concurrently, the way NNI dispatches trials to parallel workers.
    /// Trial order (and thus the journal) is deterministic regardless of
    /// worker scheduling.
    pub fn run_parallel(
        strategy: &mut dyn ExplorationStrategy,
        evaluator: &(dyn Evaluator + Sync),
        max_trials: usize,
    ) -> Self {
        use rayon::prelude::*;
        let supervisor = TrialSupervisor::default();
        let mut proposals: Vec<SppNetConfig> = Vec::new();
        while proposals.len() < max_trials {
            match strategy.next(&[]) {
                Some(cfg) => proposals.push(cfg),
                None => break,
            }
        }
        let scored: Vec<(SppNetConfig, f64, u32, f64)> = proposals
            .into_par_iter()
            .map(|config| {
                let _trial_span = dcd_obs::span("nas.trial", dcd_obs::Category::Nas);
                dcd_obs::counter!("nas.trials").inc();
                let start = Instant::now();
                let (score, attempts) = supervisor.evaluate(evaluator, &config);
                (config, score, attempts, start.elapsed().as_secs_f64())
            })
            .collect();
        let mut exp = Experiment::new();
        for (config, score, attempts, duration_s) in scored {
            exp.trials.push(Trial {
                id: exp.trials.len(),
                summary: config.summary(),
                config,
                score,
                duration_s,
                attempts,
            });
        }
        exp
    }

    /// Trials eligible for ranking: non-finite scores (a NaN loss that
    /// leaked through an evaluator) are excluded with a counted warning
    /// rather than poisoning the comparison — one degenerate trial must not
    /// panic a long experiment's analysis.
    fn rankable(&self) -> Vec<&Trial> {
        let rankable: Vec<&Trial> = self.trials.iter().filter(|t| t.score.is_finite()).collect();
        let dropped = self.trials.len() - rankable.len();
        if dropped > 0 {
            eprintln!("warning: ranking ignored {dropped} trial(s) with non-finite scores");
        }
        rankable
    }

    /// The best trial by score, if any. Trials with non-finite scores are
    /// ignored.
    pub fn best(&self) -> Option<&Trial> {
        self.rankable()
            .into_iter()
            .max_by(|a, b| a.score.total_cmp(&b.score))
    }

    /// The `k` best trials, descending by score. Trials with non-finite
    /// scores are ignored.
    pub fn top_k(&self, k: usize) -> Vec<&Trial> {
        let mut sorted = self.rankable();
        sorted.sort_by(|a, b| b.score.total_cmp(&a.score));
        sorted.truncate(k);
        sorted
    }

    /// The accuracy-constrained candidate set of §5.4: trials with
    /// `a(n) > threshold`, ready for IOS efficiency ranking.
    pub fn candidates_above(&self, threshold: f64) -> Vec<&Trial> {
        self.trials.iter().filter(|t| t.score > threshold).collect()
    }

    /// Serializes the journal to pretty JSON (NNI-style experiment record).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trials serialize")
    }

    /// Restores a journal from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::FunctionalEvaluator;
    use crate::space::SppNetSearchSpace;
    use crate::strategy::{GridSearch, RandomSearch};

    #[test]
    fn run_records_all_trials() {
        let mut strat = RandomSearch::new(SppNetSearchSpace::paper(), 10, 1);
        let eval = FunctionalEvaluator::new(|c: &SppNetConfig| c.fc1 as f64);
        let exp = Experiment::run(&mut strat, &eval, 100);
        assert_eq!(exp.trials.len(), 10);
        for (i, t) in exp.trials.iter().enumerate() {
            assert_eq!(t.id, i);
            assert_eq!(t.score, t.config.fc1 as f64);
            assert!(t.summary.starts_with("C_{64,"));
        }
    }

    #[test]
    fn max_trials_caps_the_run() {
        let space = SppNetSearchSpace::paper();
        let mut strat = GridSearch::new(&space, usize::MAX);
        let eval = FunctionalEvaluator::new(|_: &SppNetConfig| 0.5);
        let exp = Experiment::run(&mut strat, &eval, 7);
        assert_eq!(exp.trials.len(), 7);
    }

    #[test]
    fn best_and_top_k_order_by_score() {
        let mut strat = RandomSearch::new(SppNetSearchSpace::paper(), 20, 2);
        let eval =
            FunctionalEvaluator::new(|c: &SppNetConfig| c.fc1 as f64 + c.conv1_kernel as f64);
        let exp = Experiment::run(&mut strat, &eval, 20);
        let best = exp.best().expect("has trials");
        let top = exp.top_k(5);
        assert_eq!(top[0].id, best.id);
        for w in top.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn best_and_top_k_ignore_nan_scores() {
        // Regression: ranking used partial_cmp().expect(), so one NaN score
        // panicked best()/top_k(). NaN trials must be skipped instead.
        let mut strat = RandomSearch::new(SppNetSearchSpace::paper(), 6, 9);
        let eval = FunctionalEvaluator::new(|c: &SppNetConfig| c.fc1 as f64);
        let mut exp = Experiment::run(&mut strat, &eval, 6);
        exp.trials[1].score = f64::NAN;
        exp.trials[4].score = f64::INFINITY;
        let best = exp.best().expect("finite trials remain");
        assert!(best.score.is_finite());
        let top = exp.top_k(10);
        assert_eq!(top.len(), 4, "two non-finite trials excluded");
        for w in top.windows(2) {
            assert!(w[0].score >= w[1].score);
        }

        let mut all_nan = Experiment::new();
        all_nan.trials.push(Trial {
            id: 0,
            config: SppNetConfig::tiny(),
            summary: String::new(),
            score: f64::NAN,
            duration_s: 0.0,
            attempts: 1,
        });
        assert!(all_nan.best().is_none());
        assert!(all_nan.top_k(3).is_empty());
    }

    #[test]
    fn candidates_above_filters_by_accuracy() {
        let mut strat = RandomSearch::new(SppNetSearchSpace::paper(), 30, 3);
        let eval =
            FunctionalEvaluator::new(|c: &SppNetConfig| if c.fc1 >= 2048 { 0.97 } else { 0.90 });
        let exp = Experiment::run(&mut strat, &eval, 30);
        let good = exp.candidates_above(0.95);
        assert!(!good.is_empty());
        for t in &good {
            assert!(t.config.fc1 >= 2048);
        }
        let none = exp.candidates_above(0.99);
        assert!(none.is_empty());
    }

    #[test]
    fn run_parallel_matches_sequential_for_random_search() {
        let eval = FunctionalEvaluator::new(|c: &SppNetConfig| c.fc1 as f64);
        let mut s1 = RandomSearch::new(SppNetSearchSpace::paper(), 12, 5);
        let seq = Experiment::run(&mut s1, &eval, 12);
        let mut s2 = RandomSearch::new(SppNetSearchSpace::paper(), 12, 5);
        let par = Experiment::run_parallel(&mut s2, &eval, 12);
        assert_eq!(seq.trials.len(), par.trials.len());
        for (a, b) in seq.trials.iter().zip(par.trials.iter()) {
            assert_eq!(a.config, b.config, "trial order must be deterministic");
            assert_eq!(a.score, b.score);
        }
    }

    #[test]
    fn run_parallel_respects_budget() {
        let eval = FunctionalEvaluator::new(|_: &SppNetConfig| 0.5);
        let mut s = RandomSearch::new(SppNetSearchSpace::paper(), 100, 1);
        let exp = Experiment::run_parallel(&mut s, &eval, 7);
        assert_eq!(exp.trials.len(), 7);
    }

    #[test]
    fn supervisor_retries_flaky_evaluations() {
        use std::cell::Cell;
        // Every evaluation panics on its first attempt and succeeds on the
        // second — the shape of a transient trial-worker crash.
        let calls = Cell::new(0u32);
        let eval = FunctionalEvaluator::new(|c: &SppNetConfig| {
            calls.set(calls.get() + 1);
            if calls.get() % 2 == 1 {
                panic!("transient trial crash");
            }
            c.fc1 as f64
        });
        let mut strat = RandomSearch::new(SppNetSearchSpace::paper(), 5, 8);
        let exp = Experiment::run(&mut strat, &eval, 5);
        assert_eq!(exp.trials.len(), 5);
        for t in &exp.trials {
            assert_eq!(t.attempts, 2, "each trial needed exactly one retry");
            assert_eq!(t.score, t.config.fc1 as f64, "retry recovered the score");
        }
    }

    #[test]
    fn supervisor_sinks_persistently_crashing_trials() {
        let eval = FunctionalEvaluator::new(|c: &SppNetConfig| {
            if c.conv1_kernel == 7 {
                panic!("this architecture always crashes the worker");
            }
            0.9
        });
        let mut strat = RandomSearch::new(SppNetSearchSpace::paper(), 40, 13);
        let exp = Experiment::run_with(
            &mut strat,
            &eval,
            40,
            TrialSupervisor {
                max_attempts: 3,
                failed_score: -1.0,
            },
        );
        let failed: Vec<_> = exp.trials.iter().filter(|t| t.score < 0.0).collect();
        assert!(!failed.is_empty(), "search never proposed conv1_kernel = 7");
        for t in &failed {
            assert_eq!(t.config.conv1_kernel, 7);
            assert_eq!(t.attempts, 3, "budget spent before giving up");
        }
        // Crashing trials never pass an accuracy constraint.
        assert!(exp
            .candidates_above(0.5)
            .iter()
            .all(|t| t.config.conv1_kernel != 7));
        // The experiment itself survived to the full budget.
        assert_eq!(exp.trials.len(), 40);
    }

    #[test]
    fn journal_roundtrips_through_json() {
        let mut strat = RandomSearch::new(SppNetSearchSpace::paper(), 5, 4);
        let eval = FunctionalEvaluator::new(|_: &SppNetConfig| 0.5);
        let exp = Experiment::run(&mut strat, &eval, 5);
        let json = exp.to_json();
        let back = Experiment::from_json(&json).expect("valid json");
        assert_eq!(back.trials.len(), exp.trials.len());
        assert_eq!(back.trials[2].config, exp.trials[2].config);
    }
}
