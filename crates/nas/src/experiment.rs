//! Multi-trial experiment runner with an NNI-style journal.

use crate::evaluator::Evaluator;
use crate::strategy::ExplorationStrategy;
use dcd_nn::SppNetConfig;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One completed trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trial {
    /// Sequential trial id.
    pub id: usize,
    /// The architecture evaluated.
    pub config: SppNetConfig,
    /// The paper's compact architecture string.
    pub summary: String,
    /// Score (`a(n)`, e.g. test AP).
    pub score: f64,
    /// Wall-clock evaluation time, seconds.
    pub duration_s: f64,
}

/// A multi-trial NAS experiment: strategy proposes, evaluator scores,
/// journal records.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Experiment {
    /// All completed trials in execution order.
    pub trials: Vec<Trial>,
}

impl Experiment {
    /// An empty experiment.
    pub fn new() -> Self {
        Experiment::default()
    }

    /// Runs trials until the strategy is exhausted or `max_trials` is hit.
    pub fn run(
        strategy: &mut dyn ExplorationStrategy,
        evaluator: &dyn Evaluator,
        max_trials: usize,
    ) -> Self {
        let mut exp = Experiment::new();
        let mut history: Vec<(SppNetConfig, f64)> = Vec::new();
        while exp.trials.len() < max_trials {
            let Some(config) = strategy.next(&history) else {
                break;
            };
            let start = Instant::now();
            let score = evaluator.evaluate(&config);
            let duration_s = start.elapsed().as_secs_f64();
            history.push((config.clone(), score));
            exp.trials.push(Trial {
                id: exp.trials.len(),
                summary: config.summary(),
                config,
                score,
                duration_s,
            });
        }
        exp
    }

    /// Runs trials with parallel evaluation (rayon) for *history-free*
    /// strategies (random search, grid search).
    ///
    /// The strategy is drained up-front with an empty history — so
    /// history-dependent strategies like regularized evolution must use the
    /// sequential [`Experiment::run`] — and the proposals are evaluated
    /// concurrently, the way NNI dispatches trials to parallel workers.
    /// Trial order (and thus the journal) is deterministic regardless of
    /// worker scheduling.
    pub fn run_parallel(
        strategy: &mut dyn ExplorationStrategy,
        evaluator: &(dyn Evaluator + Sync),
        max_trials: usize,
    ) -> Self {
        use rayon::prelude::*;
        let mut proposals: Vec<SppNetConfig> = Vec::new();
        while proposals.len() < max_trials {
            match strategy.next(&[]) {
                Some(cfg) => proposals.push(cfg),
                None => break,
            }
        }
        let scored: Vec<(SppNetConfig, f64, f64)> = proposals
            .into_par_iter()
            .map(|config| {
                let start = Instant::now();
                let score = evaluator.evaluate(&config);
                (config, score, start.elapsed().as_secs_f64())
            })
            .collect();
        let mut exp = Experiment::new();
        for (config, score, duration_s) in scored {
            exp.trials.push(Trial {
                id: exp.trials.len(),
                summary: config.summary(),
                config,
                score,
                duration_s,
            });
        }
        exp
    }

    /// The best trial by score, if any.
    pub fn best(&self) -> Option<&Trial> {
        self.trials
            .iter()
            .max_by(|a, b| a.score.partial_cmp(&b.score).expect("finite scores"))
    }

    /// The `k` best trials, descending by score.
    pub fn top_k(&self, k: usize) -> Vec<&Trial> {
        let mut sorted: Vec<&Trial> = self.trials.iter().collect();
        sorted.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
        sorted.truncate(k);
        sorted
    }

    /// The accuracy-constrained candidate set of §5.4: trials with
    /// `a(n) > threshold`, ready for IOS efficiency ranking.
    pub fn candidates_above(&self, threshold: f64) -> Vec<&Trial> {
        self.trials.iter().filter(|t| t.score > threshold).collect()
    }

    /// Serializes the journal to pretty JSON (NNI-style experiment record).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trials serialize")
    }

    /// Restores a journal from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::FunctionalEvaluator;
    use crate::space::SppNetSearchSpace;
    use crate::strategy::{GridSearch, RandomSearch};

    #[test]
    fn run_records_all_trials() {
        let mut strat = RandomSearch::new(SppNetSearchSpace::paper(), 10, 1);
        let eval = FunctionalEvaluator::new(|c: &SppNetConfig| c.fc1 as f64);
        let exp = Experiment::run(&mut strat, &eval, 100);
        assert_eq!(exp.trials.len(), 10);
        for (i, t) in exp.trials.iter().enumerate() {
            assert_eq!(t.id, i);
            assert_eq!(t.score, t.config.fc1 as f64);
            assert!(t.summary.starts_with("C_{64,"));
        }
    }

    #[test]
    fn max_trials_caps_the_run() {
        let space = SppNetSearchSpace::paper();
        let mut strat = GridSearch::new(&space, usize::MAX);
        let eval = FunctionalEvaluator::new(|_: &SppNetConfig| 0.5);
        let exp = Experiment::run(&mut strat, &eval, 7);
        assert_eq!(exp.trials.len(), 7);
    }

    #[test]
    fn best_and_top_k_order_by_score() {
        let mut strat = RandomSearch::new(SppNetSearchSpace::paper(), 20, 2);
        let eval = FunctionalEvaluator::new(|c: &SppNetConfig| c.fc1 as f64 + c.conv1_kernel as f64);
        let exp = Experiment::run(&mut strat, &eval, 20);
        let best = exp.best().expect("has trials");
        let top = exp.top_k(5);
        assert_eq!(top[0].id, best.id);
        for w in top.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn candidates_above_filters_by_accuracy() {
        let mut strat = RandomSearch::new(SppNetSearchSpace::paper(), 30, 3);
        let eval = FunctionalEvaluator::new(|c: &SppNetConfig| if c.fc1 >= 2048 { 0.97 } else { 0.90 });
        let exp = Experiment::run(&mut strat, &eval, 30);
        let good = exp.candidates_above(0.95);
        assert!(!good.is_empty());
        for t in &good {
            assert!(t.config.fc1 >= 2048);
        }
        let none = exp.candidates_above(0.99);
        assert!(none.is_empty());
    }

    #[test]
    fn run_parallel_matches_sequential_for_random_search() {
        let eval = FunctionalEvaluator::new(|c: &SppNetConfig| c.fc1 as f64);
        let mut s1 = RandomSearch::new(SppNetSearchSpace::paper(), 12, 5);
        let seq = Experiment::run(&mut s1, &eval, 12);
        let mut s2 = RandomSearch::new(SppNetSearchSpace::paper(), 12, 5);
        let par = Experiment::run_parallel(&mut s2, &eval, 12);
        assert_eq!(seq.trials.len(), par.trials.len());
        for (a, b) in seq.trials.iter().zip(par.trials.iter()) {
            assert_eq!(a.config, b.config, "trial order must be deterministic");
            assert_eq!(a.score, b.score);
        }
    }

    #[test]
    fn run_parallel_respects_budget() {
        let eval = FunctionalEvaluator::new(|_: &SppNetConfig| 0.5);
        let mut s = RandomSearch::new(SppNetSearchSpace::paper(), 100, 1);
        let exp = Experiment::run_parallel(&mut s, &eval, 7);
        assert_eq!(exp.trials.len(), 7);
    }

    #[test]
    fn journal_roundtrips_through_json() {
        let mut strat = RandomSearch::new(SppNetSearchSpace::paper(), 5, 4);
        let eval = FunctionalEvaluator::new(|_: &SppNetConfig| 0.5);
        let exp = Experiment::run(&mut strat, &eval, 5);
        let json = exp.to_json();
        let back = Experiment::from_json(&json).expect("valid json");
        assert_eq!(back.trials.len(), exp.trials.len());
        assert_eq!(back.trials[2].config, exp.trials[2].config);
    }
}
