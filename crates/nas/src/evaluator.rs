//! Model evaluators: how a sampled architecture gets a score.

use dcd_nn::trainer::{evaluate, TrainConfig, Trainer};
use dcd_nn::{Sample, SppNet, SppNetConfig};
use dcd_tensor::SeededRng;

/// Scores one architecture; higher is better (the paper's `a(n)`).
pub trait Evaluator {
    /// Evaluates a configuration, returning its score (e.g. test AP).
    fn evaluate(&self, config: &SppNetConfig) -> f64;
}

/// Retiarii's default evaluator: an arbitrary scoring function.
///
/// The paper: "For the model evaluator, we used FunctionalEvaluator, which is
/// the default evaluator provided by the Retiarii framework."
pub struct FunctionalEvaluator<F: Fn(&SppNetConfig) -> f64> {
    f: F,
}

impl<F: Fn(&SppNetConfig) -> f64> FunctionalEvaluator<F> {
    /// Wraps a scoring function.
    pub fn new(f: F) -> Self {
        FunctionalEvaluator { f }
    }
}

impl<F: Fn(&SppNetConfig) -> f64> Evaluator for FunctionalEvaluator<F> {
    fn evaluate(&self, config: &SppNetConfig) -> f64 {
        (self.f)(config)
    }
}

/// Trains a real `dcd-nn` SPP-Net on a patch dataset and scores it by test
/// AP at the given IoU threshold — the full §6.1 loop.
pub struct TrainingEvaluator {
    /// Training samples.
    pub train: Vec<Sample>,
    /// Held-out samples scored for AP.
    pub test: Vec<Sample>,
    /// Training-loop settings (epochs, batch 20, SGD lr 0.005 …).
    pub train_config: TrainConfig,
    /// IoU threshold for a detection to count (0.5 is standard).
    pub iou_threshold: f32,
    /// Weight-init seed (shared across trials so architecture is the only
    /// variable).
    pub init_seed: u64,
}

impl TrainingEvaluator {
    /// Standard evaluator over a train/test split.
    pub fn new(train: Vec<Sample>, test: Vec<Sample>, train_config: TrainConfig) -> Self {
        TrainingEvaluator {
            train,
            test,
            train_config,
            iou_threshold: 0.5,
            init_seed: 0,
        }
    }
}

impl Evaluator for TrainingEvaluator {
    fn evaluate(&self, config: &SppNetConfig) -> f64 {
        crate::halving::BudgetedEvaluator::evaluate_budgeted(self, config, 1.0)
    }
}

impl crate::halving::BudgetedEvaluator for TrainingEvaluator {
    /// A fractional budget scales the number of training epochs — the
    /// natural rung currency for successive halving.
    fn evaluate_budgeted(&self, config: &SppNetConfig, budget: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&budget) && budget > 0.0,
            "budget in (0, 1]"
        );
        let mut rng = SeededRng::new(self.init_seed);
        let mut model = SppNet::new(config.clone(), &mut rng);
        let mut tc = self.train_config;
        tc.epochs = ((tc.epochs as f64 * budget).round() as usize).max(1);
        Trainer::new(tc).train(&mut model, &self.train);
        let (ap, _) = evaluate(&mut model, &self.test, self.iou_threshold);
        ap as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcd_nn::{BBox, Sgd};
    use dcd_tensor::Tensor;

    #[test]
    fn functional_evaluator_calls_through() {
        let e = FunctionalEvaluator::new(|cfg: &SppNetConfig| cfg.fc1 as f64);
        assert_eq!(e.evaluate(&SppNetConfig::original()), 1024.0);
        assert_eq!(e.evaluate(&SppNetConfig::candidate2()), 4096.0);
    }

    fn toy_samples(n: usize, seed: u64) -> Vec<Sample> {
        let mut rng = SeededRng::new(seed);
        (0..n)
            .map(|i| {
                let mut img = Tensor::randn([1, 16, 16], 0.0, 0.1, &mut rng);
                if i % 2 == 0 {
                    for y in 6..10 {
                        for x in 6..10 {
                            img.set(&[0, y, x], 2.0);
                        }
                    }
                    Sample::positive(img, BBox::new(0.5, 0.5, 0.25, 0.25))
                } else {
                    Sample::negative(img)
                }
            })
            .collect()
    }

    #[test]
    fn training_evaluator_returns_valid_ap() {
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 4,
            sgd: Sgd::new(0.01, 0.9, 0.0005),
            ..Default::default()
        };
        let e = TrainingEvaluator::new(toy_samples(8, 1), toy_samples(4, 2), cfg);
        let ap = e.evaluate(&SppNetConfig::tiny());
        assert!((0.0..=1.0).contains(&ap), "AP {ap} out of range");
    }

    #[test]
    fn training_evaluator_is_deterministic() {
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 4,
            sgd: Sgd::new(0.01, 0.9, 0.0005),
            ..Default::default()
        };
        let e = TrainingEvaluator::new(toy_samples(8, 1), toy_samples(4, 2), cfg);
        let a = e.evaluate(&SppNetConfig::tiny());
        let b = e.evaluate(&SppNetConfig::tiny());
        assert_eq!(a, b);
    }
}
