//! Exploration strategies: how the next architecture to try is chosen.

use crate::space::SppNetSearchSpace;
use dcd_nn::SppNetConfig;
use dcd_tensor::SeededRng;
use std::collections::HashSet;

/// Proposes the next configuration given the trial history.
pub trait ExplorationStrategy {
    /// Returns the next configuration to evaluate, or `None` when the
    /// strategy's budget or space is exhausted. `history` holds the
    /// `(config, score)` pairs already evaluated.
    fn next(&mut self, history: &[(SppNetConfig, f64)]) -> Option<SppNetConfig>;
}

/// The paper's strategy: uniform random sampling without replacement
/// ("randomly selecting an architecture with each iteration").
pub struct RandomSearch {
    space: SppNetSearchSpace,
    rng: SeededRng,
    budget: usize,
    proposed: HashSet<SppNetConfig>,
}

impl RandomSearch {
    /// Random search over `space` with a trial budget.
    pub fn new(space: SppNetSearchSpace, budget: usize, seed: u64) -> Self {
        RandomSearch {
            space,
            rng: SeededRng::new(seed),
            budget,
            proposed: HashSet::new(),
        }
    }
}

impl ExplorationStrategy for RandomSearch {
    fn next(&mut self, _history: &[(SppNetConfig, f64)]) -> Option<SppNetConfig> {
        if self.proposed.len() >= self.budget || self.proposed.len() >= self.space.size() {
            return None;
        }
        // Rejection-sample an unseen config; the space is far larger than
        // any realistic budget so this terminates quickly.
        for _ in 0..10_000 {
            let cfg = self.space.sample(&mut self.rng);
            if self.proposed.insert(cfg.clone()) {
                return Some(cfg);
            }
        }
        None
    }
}

/// Exhaustive enumeration in deterministic order.
pub struct GridSearch {
    queue: std::vec::IntoIter<SppNetConfig>,
    budget: usize,
    issued: usize,
}

impl GridSearch {
    /// Grid search over `space`, optionally truncated to `budget` trials.
    pub fn new(space: &SppNetSearchSpace, budget: usize) -> Self {
        GridSearch {
            queue: space.enumerate().into_iter(),
            budget,
            issued: 0,
        }
    }
}

impl ExplorationStrategy for GridSearch {
    fn next(&mut self, _history: &[(SppNetConfig, f64)]) -> Option<SppNetConfig> {
        if self.issued >= self.budget {
            return None;
        }
        self.issued += 1;
        self.queue.next()
    }
}

/// Regularized evolution (Real et al., 2019) — the extension strategy:
/// tournament-select a parent from the most recent `population` trials,
/// mutate one axis, with random warm-up until the population fills.
pub struct RegularizedEvolution {
    space: SppNetSearchSpace,
    rng: SeededRng,
    budget: usize,
    issued: usize,
    /// Sliding population size.
    pub population: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
}

impl RegularizedEvolution {
    /// Evolution over `space` with a trial budget.
    pub fn new(space: SppNetSearchSpace, budget: usize, seed: u64) -> Self {
        RegularizedEvolution {
            space,
            rng: SeededRng::new(seed),
            budget,
            issued: 0,
            population: 16,
            tournament: 4,
        }
    }
}

impl ExplorationStrategy for RegularizedEvolution {
    fn next(&mut self, history: &[(SppNetConfig, f64)]) -> Option<SppNetConfig> {
        if self.issued >= self.budget {
            return None;
        }
        self.issued += 1;
        // Warm-up: random until we have a population.
        if history.len() < self.population {
            return Some(self.space.sample(&mut self.rng));
        }
        let window = &history[history.len() - self.population..];
        // Tournament: best of `tournament` random picks from the window.
        let mut best: Option<&(SppNetConfig, f64)> = None;
        for _ in 0..self.tournament {
            let pick = &window[self.rng.index(window.len())];
            if best.map(|b| pick.1 > b.1).unwrap_or(true) {
                best = Some(pick);
            }
        }
        let parent = &best.expect("non-empty window").0;
        Some(self.space.mutate(parent, &mut self.rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> SppNetSearchSpace {
        SppNetSearchSpace::paper()
    }

    #[test]
    fn random_search_respects_budget_and_dedups() {
        let mut s = RandomSearch::new(space(), 20, 1);
        let mut seen = HashSet::new();
        let mut n = 0;
        while let Some(cfg) = s.next(&[]) {
            assert!(seen.insert(cfg), "duplicate proposal");
            n += 1;
        }
        assert_eq!(n, 20);
    }

    #[test]
    fn random_search_exhausts_small_space() {
        // Budget larger than the space: stops at the space size.
        let mut s = RandomSearch::new(space(), 10_000, 2);
        let mut n = 0;
        while s.next(&[]).is_some() {
            n += 1;
        }
        assert_eq!(n, 175);
    }

    #[test]
    fn grid_search_is_exhaustive_and_ordered() {
        let sp = space();
        let mut s = GridSearch::new(&sp, usize::MAX);
        let mut got = Vec::new();
        while let Some(cfg) = s.next(&[]) {
            got.push(cfg);
        }
        assert_eq!(got, sp.enumerate());
    }

    #[test]
    fn grid_search_truncates_to_budget() {
        let mut s = GridSearch::new(&space(), 3);
        let mut n = 0;
        while s.next(&[]).is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn evolution_warms_up_then_mutates() {
        let sp = space();
        let mut s = RegularizedEvolution::new(sp.clone(), 50, 3);
        s.population = 4;
        let mut history: Vec<(SppNetConfig, f64)> = Vec::new();
        for i in 0..50 {
            let cfg = s.next(&history).expect("within budget");
            assert!(sp.contains(&cfg), "proposal {i} outside space");
            // Score favors big fc1 — evolution should drift toward it.
            let score = cfg.fc1 as f64;
            history.push((cfg, score));
        }
        assert!(s.next(&history).is_none(), "budget exhausted");
        // Later proposals should have higher mean fc1 than warm-up.
        let early: f64 = history[..8].iter().map(|(c, _)| c.fc1 as f64).sum::<f64>() / 8.0;
        let late: f64 = history[42..].iter().map(|(c, _)| c.fc1 as f64).sum::<f64>() / 8.0;
        assert!(
            late > early,
            "evolution did not improve: early {early} late {late}"
        );
    }
}
