//! Schedule representation and validation.

use crate::graph::{Graph, OpId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One stage: groups execute concurrently (one stream each); ops inside a
/// group execute sequentially in order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stage {
    /// Parallel groups of sequential op chains.
    pub groups: Vec<Vec<OpId>>,
}

impl Stage {
    /// A stage of a single one-op group.
    pub fn solo(op: OpId) -> Self {
        Stage {
            groups: vec![vec![op]],
        }
    }

    /// All ops in the stage.
    pub fn ops(&self) -> impl Iterator<Item = OpId> + '_ {
        self.groups.iter().flatten().copied()
    }

    /// Number of ops across groups.
    pub fn num_ops(&self) -> usize {
        self.groups.iter().map(|g| g.len()).sum()
    }

    /// Width (number of concurrent groups).
    pub fn width(&self) -> usize {
        self.groups.len()
    }
}

/// A complete execution schedule: stages run in order with a device barrier
/// between consecutive stages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// Stages in execution order.
    pub stages: Vec<Stage>,
}

/// Why a schedule is invalid for a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// An op appears more than once.
    Duplicate(OpId),
    /// A kernel op is missing from the schedule.
    Missing(OpId),
    /// An op references a producer that is not finished when it starts.
    DependencyViolated {
        /// The consumer.
        op: OpId,
        /// The producer that is not available.
        needs: OpId,
    },
    /// A non-kernel op (graph input) was scheduled.
    NotSchedulable(OpId),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::Duplicate(op) => write!(f, "op {op} scheduled twice"),
            ScheduleError::Missing(op) => write!(f, "op {op} not scheduled"),
            ScheduleError::DependencyViolated { op, needs } => {
                write!(f, "op {op} runs before its producer {needs} finished")
            }
            ScheduleError::NotSchedulable(op) => write!(f, "op {op} launches no kernel"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Maximum group width across stages (streams the executor needs).
    pub fn max_width(&self) -> usize {
        self.stages.iter().map(|s| s.width()).max().unwrap_or(0)
    }

    /// Total ops scheduled.
    pub fn num_ops(&self) -> usize {
        self.stages.iter().map(|s| s.num_ops()).sum()
    }

    /// Checks the schedule against the graph's dependences:
    ///
    /// * every kernel op appears exactly once;
    /// * an op's producers are either the graph input, in an earlier stage,
    ///   or earlier in the *same group*.
    pub fn validate(&self, graph: &Graph) -> Result<(), ScheduleError> {
        let mut seen: HashSet<OpId> = HashSet::new();
        for stage in &self.stages {
            for group in &stage.groups {
                for &op in group {
                    if !graph.ops[op].has_kernel() {
                        return Err(ScheduleError::NotSchedulable(op));
                    }
                    if !seen.insert(op) {
                        return Err(ScheduleError::Duplicate(op));
                    }
                }
            }
        }
        for &op in &graph.kernel_ops() {
            if !seen.contains(&op) {
                return Err(ScheduleError::Missing(op));
            }
        }
        // Dependence check: completed = ops done at the stage barrier.
        let mut completed: HashSet<OpId> = graph
            .ops
            .iter()
            .filter(|o| !o.has_kernel())
            .map(|o| o.id)
            .collect();
        for stage in &self.stages {
            for group in &stage.groups {
                let mut done_in_group: HashSet<OpId> = HashSet::new();
                for &op in group {
                    for &need in &graph.ops[op].inputs {
                        if !completed.contains(&need) && !done_in_group.contains(&need) {
                            return Err(ScheduleError::DependencyViolated { op, needs: need });
                        }
                    }
                    done_in_group.insert(op);
                }
            }
            completed.extend(stage.ops());
        }
        Ok(())
    }

    /// Compact human-readable rendering, e.g.
    /// `[conv1] → [relu1] → [spp4 | spp2 | spp1]`.
    pub fn render(&self, graph: &Graph) -> String {
        self.stages
            .iter()
            .map(|stage| {
                let groups: Vec<String> = stage
                    .groups
                    .iter()
                    .map(|g| {
                        g.iter()
                            .map(|&op| graph.ops[op].name.as_str())
                            .collect::<Vec<_>>()
                            .join(",")
                    })
                    .collect();
                format!("[{}]", groups.join(" | "))
            })
            .collect::<Vec<_>>()
            .join(" → ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::OpKind;

    /// in → a → {b, c} → d (diamond)
    fn diamond() -> Graph {
        let mut g = Graph::new();
        let input = g.add_input("in", (4, 4, 4));
        let a = g.add("a", OpKind::Relu, vec![input]);
        let b = g.add("b", OpKind::AdaptivePool { out_size: 2 }, vec![a]);
        let c = g.add("c", OpKind::AdaptivePool { out_size: 1 }, vec![a]);
        g.add("d", OpKind::Concat, vec![b, c]);
        g
    }

    #[test]
    fn valid_parallel_schedule() {
        let g = diamond();
        let s = Schedule {
            stages: vec![
                Stage::solo(1),
                Stage {
                    groups: vec![vec![2], vec![3]],
                },
                Stage::solo(4),
            ],
        };
        assert_eq!(s.validate(&g), Ok(()));
        assert_eq!(s.max_width(), 2);
        assert_eq!(s.num_ops(), 4);
    }

    #[test]
    fn chain_grouping_is_valid() {
        let g = diamond();
        // a and b in one sequential group, c parallel — c depends only on a,
        // which is in the *other* group, so this must FAIL.
        let s = Schedule {
            stages: vec![
                Stage {
                    groups: vec![vec![1, 2], vec![3]],
                },
                Stage::solo(4),
            ],
        };
        assert_eq!(
            s.validate(&g),
            Err(ScheduleError::DependencyViolated { op: 3, needs: 1 })
        );
        // But a→b as one group with c in the NEXT stage is fine.
        let s2 = Schedule {
            stages: vec![
                Stage {
                    groups: vec![vec![1, 2]],
                },
                Stage::solo(3),
                Stage::solo(4),
            ],
        };
        assert_eq!(s2.validate(&g), Ok(()));
    }

    #[test]
    fn duplicate_and_missing_detected() {
        let g = diamond();
        let dup = Schedule {
            stages: vec![Stage::solo(1), Stage::solo(1)],
        };
        assert_eq!(dup.validate(&g), Err(ScheduleError::Duplicate(1)));
        let missing = Schedule {
            stages: vec![Stage::solo(1), Stage::solo(2), Stage::solo(3)],
        };
        assert_eq!(missing.validate(&g), Err(ScheduleError::Missing(4)));
    }

    #[test]
    fn scheduling_the_input_is_rejected() {
        let g = diamond();
        let s = Schedule {
            stages: vec![Stage::solo(0)],
        };
        assert_eq!(s.validate(&g), Err(ScheduleError::NotSchedulable(0)));
    }

    #[test]
    fn dependency_order_within_stage_groups() {
        let g = diamond();
        // b before a in the same group violates the intra-group order.
        let s = Schedule {
            stages: vec![
                Stage {
                    groups: vec![vec![2, 1]],
                },
                Stage::solo(3),
                Stage::solo(4),
            ],
        };
        assert_eq!(
            s.validate(&g),
            Err(ScheduleError::DependencyViolated { op: 2, needs: 1 })
        );
    }

    #[test]
    fn render_is_readable() {
        let g = diamond();
        let s = Schedule {
            stages: vec![
                Stage::solo(1),
                Stage {
                    groups: vec![vec![2], vec![3]],
                },
                Stage::solo(4),
            ],
        };
        assert_eq!(s.render(&g), "[a] → [b | c] → [d]");
    }
}
