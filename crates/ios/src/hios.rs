//! HIOS-lite: inter-GPU *operator* parallelism (extension, §8.3).
//!
//! The paper cites HIOS (Kundu & Shu, Cluster 2023) — a hierarchical
//! scheduler that spreads a DAG's concurrent operators across GPUs while
//! keeping chains on one device. This module implements the essential
//! mechanism at simulator fidelity:
//!
//! * groups within a stage are placed on different GPUs (round-robin or
//!   all-on-one);
//! * a dependency whose producer ran on a different GPU than its consumer
//!   pays an inter-GPU transfer (PCIe peer-to-peer) of the producer's
//!   output activation before the consumer stage begins;
//! * each GPU executes its groups concurrently on local streams; the stage
//!   barrier waits for every device and every transfer.
//!
//! The interesting (and honest) result on SPP-Net: at small batch the
//! branches are tiny, so crossing the PCIe boundary costs more than the
//! parallelism buys — exactly the regime observation that motivates
//! *hierarchical* placement in HIOS rather than blind spreading.

use crate::graph::{Graph, OpId};
use crate::schedule::Schedule;
use dcd_gpusim::{CopyDir, DeviceSpec, Gpu, StreamId};
use std::collections::HashMap;

/// How groups are assigned to GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Everything on GPU 0 (baseline; equals the single-GPU executor up to
    /// bookkeeping).
    SingleGpu,
    /// Groups within each stage round-robin across the GPUs.
    RoundRobin,
}

/// A multi-GPU execution context for one schedule.
pub struct HiosExecutor<'g> {
    graph: &'g Graph,
    schedule: Schedule,
    batch: usize,
    gpus: Vec<Gpu>,
    /// One stream pool per GPU.
    streams: Vec<Vec<StreamId>>,
    placement: Placement,
    /// Effective inter-GPU bandwidth, bytes/ns (PCIe peer-to-peer).
    p2p_bytes_per_ns: f64,
    /// Fixed per-transfer latency, ns.
    p2p_latency_ns: f64,
}

impl<'g> HiosExecutor<'g> {
    /// Builds a context over `n_gpus` identical devices.
    pub fn new(
        graph: &'g Graph,
        schedule: Schedule,
        batch: usize,
        spec: DeviceSpec,
        n_gpus: usize,
        placement: Placement,
    ) -> Self {
        assert!(n_gpus >= 1, "need at least one GPU");
        schedule
            .validate(graph)
            .unwrap_or_else(|e| panic!("invalid schedule: {e}"));
        let p2p = spec.pcie_bytes_per_ns();
        let mut gpus = Vec::with_capacity(n_gpus);
        let mut streams = Vec::with_capacity(n_gpus);
        let width = schedule.max_width().max(1);
        for _ in 0..n_gpus {
            let mut gpu = Gpu::new(spec.clone());
            gpu.malloc(graph.weight_bytes()).expect("weights fit");
            gpu.malloc(graph.activation_bytes(batch))
                .expect("activations fit");
            let mut pool = vec![0usize];
            for _ in 1..width {
                pool.push(gpu.create_stream());
            }
            gpus.push(gpu);
            streams.push(pool);
        }
        HiosExecutor {
            graph,
            schedule,
            batch,
            gpus,
            streams,
            placement,
            p2p_bytes_per_ns: p2p,
            p2p_latency_ns: 9_000.0,
        }
    }

    /// GPU index a group of stage `si` lands on.
    fn gpu_for(&self, si: usize, gi: usize) -> usize {
        match self.placement {
            Placement::SingleGpu => 0,
            Placement::RoundRobin => (si + gi) % self.gpus.len(),
        }
    }

    /// Runs one inference round; returns its latency in ns.
    ///
    /// Host timelines: one driving thread per GPU (they dispatch in
    /// parallel); the stage barrier is the max over devices plus any
    /// cross-GPU activation transfers for the *next* stage.
    pub fn run_inference(&mut self) -> u64 {
        // Where each op's output currently lives.
        let mut located: HashMap<OpId, usize> = HashMap::new();
        // Treat the graph input as resident everywhere (broadcast H2D copy).
        let t0: Vec<u64> = self.gpus.iter().map(|g| g.host_ns()).collect();
        let input_bytes = 4 * self.batch as u64 * self.graph.ops[0].out_numel() as u64;
        for gpu in &mut self.gpus {
            gpu.memcpy_async(0, CopyDir::H2D, input_bytes);
            gpu.device_synchronize();
        }
        located.insert(0, usize::MAX); // input: everywhere

        let stages = self.schedule.stages.clone();
        let mut transfer_penalty_ns = 0.0f64;
        for (si, stage) in stages.iter().enumerate() {
            // Cross-GPU input transfers for this stage.
            for (gi, group) in stage.groups.iter().enumerate() {
                let dst = self.gpu_for(si, gi);
                for &op in group {
                    for &dep in &self.graph.ops[op].inputs {
                        let src = located.get(&dep).copied().unwrap_or(usize::MAX);
                        if src != usize::MAX && src != dst {
                            let bytes =
                                4.0 * self.batch as f64 * self.graph.ops[dep].out_numel() as f64;
                            transfer_penalty_ns +=
                                self.p2p_latency_ns + bytes / self.p2p_bytes_per_ns;
                        }
                    }
                }
            }
            // Launch each group on its GPU.
            for (gi, group) in stage.groups.iter().enumerate() {
                let dst = self.gpu_for(si, gi);
                let stream = self.streams[dst][gi % self.streams[dst].len()];
                for &op in group {
                    let desc = self.graph.kernel_for(op, self.batch);
                    self.gpus[dst].launch_kernel(stream, desc);
                    located.insert(op, dst);
                }
            }
            // Stage barrier across all devices.
            for gpu in &mut self.gpus {
                gpu.device_synchronize();
            }
        }
        // Output D2H from wherever the last op lives.
        let last = self.graph.ops.last().expect("non-empty").id;
        let out_gpu = located.get(&last).copied().unwrap_or(0);
        let out_gpu = if out_gpu == usize::MAX { 0 } else { out_gpu };
        let out_bytes = 4 * self.batch as u64 * self.graph.ops[last].out_numel() as u64;
        self.gpus[out_gpu].memcpy_async(0, CopyDir::D2H, out_bytes);
        self.gpus[out_gpu].device_synchronize();

        // Round latency: the slowest device timeline plus transfer time
        // (transfers serialize on the P2P link between stages).
        let device_latency = self
            .gpus
            .iter()
            .zip(t0.iter())
            .map(|(g, &t)| g.host_ns() - t)
            .max()
            .unwrap_or(0);
        device_latency + transfer_penalty_ns as u64
    }

    /// Mean latency over warmup + measured iterations.
    pub fn measure(&mut self, warmup: usize, iterations: usize) -> f64 {
        assert!(iterations > 0);
        for _ in 0..warmup {
            self.run_inference();
        }
        let mut total = 0u64;
        for _ in 0..iterations {
            total += self.run_inference();
        }
        total as f64 / iterations as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::StageCostModel;
    use crate::dp::{ios_schedule, IosOptions};
    use crate::graph::OpKind;
    use crate::lower::lower_sppnet;
    use crate::schedule::Stage;
    use dcd_nn::SppNetConfig;

    #[test]
    fn single_gpu_placement_close_to_plain_executor() {
        let graph = lower_sppnet(&SppNetConfig::original(), (100, 100));
        let spec = DeviceSpec::rtx_a5500();
        let mut cost = StageCostModel::new(&graph, spec.clone(), 1);
        let schedule = ios_schedule(&graph, &mut cost, IosOptions::default());
        let mut hios = HiosExecutor::new(
            &graph,
            schedule.clone(),
            1,
            spec.clone(),
            1,
            Placement::SingleGpu,
        );
        let t_hios = hios.measure(1, 3);
        let t_plain = crate::executor::measure_latency(&graph, &schedule, 1, &spec, 1, 3).mean_ns;
        let ratio = t_hios / t_plain;
        assert!(
            (0.9..1.1).contains(&ratio),
            "single-GPU HIOS {t_hios} vs plain {t_plain}"
        );
    }

    #[test]
    fn spreading_tiny_branches_across_gpus_hurts() {
        // The HIOS regime observation: SPP-Net's branches are too small to
        // amortize PCIe transfers, so blind round-robin loses to one GPU.
        let graph = lower_sppnet(&SppNetConfig::candidate2(), (100, 100));
        let spec = DeviceSpec::rtx_a5500();
        let mut cost = StageCostModel::new(&graph, spec.clone(), 1);
        let schedule = ios_schedule(&graph, &mut cost, IosOptions::default());
        let t_one = HiosExecutor::new(
            &graph,
            schedule.clone(),
            1,
            spec.clone(),
            2,
            Placement::SingleGpu,
        )
        .measure(1, 3);
        let t_spread =
            HiosExecutor::new(&graph, schedule, 1, spec, 2, Placement::RoundRobin).measure(1, 3);
        assert!(
            t_spread > t_one,
            "spreading tiny branches should cost: {t_spread} vs {t_one}"
        );
    }

    /// A graph with two heavy independent conv branches — the shape that
    /// *does* profit from inter-GPU operator parallelism.
    fn heavy_branches() -> (Graph, Schedule) {
        let mut g = Graph::new();
        let input = g.add_input("in", (64, 64, 64));
        let a = g.add(
            "conv_a",
            OpKind::Conv {
                c_in: 64,
                c_out: 128,
                kernel: 3,
                stride: 1,
                pad: 1,
            },
            vec![input],
        );
        let b = g.add(
            "conv_b",
            OpKind::Conv {
                c_in: 64,
                c_out: 128,
                kernel: 3,
                stride: 1,
                pad: 1,
            },
            vec![input],
        );
        let pa = g.add("spp_a", OpKind::AdaptivePool { out_size: 1 }, vec![a]);
        let pb = g.add("spp_b", OpKind::AdaptivePool { out_size: 1 }, vec![b]);
        g.add("merge", OpKind::Concat, vec![pa, pb]);
        let schedule = Schedule {
            stages: vec![
                Stage {
                    groups: vec![vec![1, 3], vec![2, 4]],
                },
                Stage::solo(5),
            ],
        };
        (g, schedule)
    }

    #[test]
    fn heavy_branches_profit_from_two_gpus() {
        let (g, schedule) = heavy_branches();
        let spec = DeviceSpec::rtx_a5500();
        // Large batch so each branch saturates one GPU.
        let batch = 16;
        let t_one = HiosExecutor::new(
            &g,
            schedule.clone(),
            batch,
            spec.clone(),
            2,
            Placement::SingleGpu,
        )
        .measure(1, 3);
        let t_spread =
            HiosExecutor::new(&g, schedule, batch, spec, 2, Placement::RoundRobin).measure(1, 3);
        assert!(
            t_spread < t_one,
            "heavy branches should profit: spread {t_spread} vs single {t_one}"
        );
    }

    #[test]
    fn round_robin_alternates_devices() {
        let (g, schedule) = heavy_branches();
        let spec = DeviceSpec::test_gpu();
        let hios = HiosExecutor::new(&g, schedule, 1, spec, 2, Placement::RoundRobin);
        assert_eq!(hios.gpu_for(0, 0), 0);
        assert_eq!(hios.gpu_for(0, 1), 1);
        assert_eq!(hios.gpu_for(1, 0), 1);
    }
}
