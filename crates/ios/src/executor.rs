//! Executes a schedule on the simulated GPU and measures latency.
//!
//! One inference is: H2D input copy → barrier → per stage {launch each group
//! on its own stream, barrier} → D2H output copy → barrier. Latency is the
//! host wall time of that sequence — the same quantity the paper reports in
//! Table 2 / Fig 6.

use crate::graph::Graph;
use crate::schedule::{Schedule, ScheduleError};
use dcd_gpusim::{CopyDir, DeviceSpec, Gpu, GpuError, StreamId, Trace};

/// Typed executor error: either the schedule does not fit the graph, or the
/// simulated device failed (allocation, launch, transfer, hang).
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The schedule failed validation against the graph.
    InvalidSchedule(ScheduleError),
    /// The simulated GPU reported an error.
    Gpu(GpuError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::InvalidSchedule(e) => write!(f, "invalid schedule: {e}"),
            ExecError::Gpu(e) => write!(f, "gpu error: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<GpuError> for ExecError {
    fn from(e: GpuError) -> Self {
        ExecError::Gpu(e)
    }
}

impl From<ScheduleError> for ExecError {
    fn from(e: ScheduleError) -> Self {
        ExecError::InvalidSchedule(e)
    }
}

/// Latency statistics of repeated inference runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Batch size of each run.
    pub batch: usize,
    /// Number of measured iterations.
    pub iterations: usize,
    /// Mean latency per inference, ns.
    pub mean_ns: f64,
    /// Fastest iteration, ns.
    pub min_ns: u64,
    /// Slowest iteration, ns.
    pub max_ns: u64,
}

impl RunStats {
    /// Mean latency in milliseconds (the unit Table 2 uses).
    pub fn mean_ms(&self) -> f64 {
        self.mean_ns / 1e6
    }

    /// Inference efficiency as defined in §6.4: latency / batch size.
    pub fn efficiency_ns_per_image(&self) -> f64 {
        self.mean_ns / self.batch as f64
    }

    /// Images per second.
    pub fn throughput(&self) -> f64 {
        self.batch as f64 / (self.mean_ns / 1e9)
    }
}

/// A prepared execution context: device memory allocated, streams created.
pub struct Executor<'g> {
    graph: &'g Graph,
    schedule: Schedule,
    batch: usize,
    gpu: Gpu,
    streams: Vec<StreamId>,
    input_bytes: u64,
    output_bytes: u64,
}

impl<'g> Executor<'g> {
    /// Validates the schedule, creates the context, allocates weights and
    /// activations, and creates one stream per maximum group width.
    ///
    /// Panics if the schedule is invalid for the graph or the model does not
    /// fit in device memory (the A5500's 24 GB fits every configuration the
    /// paper sweeps). Fault-tolerant callers use [`Executor::try_new`].
    pub fn new(graph: &'g Graph, schedule: Schedule, batch: usize, spec: DeviceSpec) -> Self {
        Self::try_new(graph, schedule, batch, spec).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Executor::new`]: returns a typed error instead of
    /// panicking on an invalid schedule or a failed allocation.
    pub fn try_new(
        graph: &'g Graph,
        schedule: Schedule,
        batch: usize,
        spec: DeviceSpec,
    ) -> Result<Self, ExecError> {
        Self::try_with_gpu(graph, schedule, batch, Gpu::new(spec))
    }

    /// Builds the context on an existing (possibly fault-planned) GPU.
    ///
    /// Allocation failures are reported as [`ExecError::Gpu`]; under VRAM
    /// pressure, construct at a small batch first and grow with
    /// [`Executor::set_batch`] so OOM degrades the batch instead of losing
    /// the context.
    pub fn try_with_gpu(
        graph: &'g Graph,
        schedule: Schedule,
        batch: usize,
        mut gpu: Gpu,
    ) -> Result<Self, ExecError> {
        assert!(batch > 0, "batch must be positive");
        schedule.validate(graph)?;
        gpu.malloc(graph.weight_bytes())?;
        gpu.malloc(graph.activation_bytes(batch))?;
        let mut streams = vec![0usize];
        for _ in 1..schedule.max_width().max(1) {
            streams.push(gpu.create_stream());
        }
        let input = &graph.ops[0];
        let input_bytes = 4 * batch as u64 * input.out_numel() as u64;
        let output_bytes =
            4 * batch as u64 * graph.ops.last().expect("non-empty").out_numel() as u64;
        Ok(Executor {
            graph,
            schedule,
            batch,
            gpu,
            streams,
            input_bytes,
            output_bytes,
        })
    }

    /// Batch size this executor runs.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The schedule currently executed.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Mutable access to the simulated GPU (fault recovery: `device_reset`,
    /// backoff via `host_busy`).
    pub fn gpu_mut(&mut self) -> &mut Gpu {
        &mut self.gpu
    }

    /// Re-sizes the batch, swapping the activation allocation. On OOM the
    /// previous allocation is restored and the executor is unchanged, so
    /// callers can halve and retry (batch-size degradation).
    pub fn set_batch(&mut self, batch: usize) -> Result<(), GpuError> {
        assert!(batch > 0, "batch must be positive");
        if batch == self.batch {
            return Ok(());
        }
        let old = self.graph.activation_bytes(self.batch);
        self.gpu.free(old);
        if let Err(e) = self.gpu.malloc(self.graph.activation_bytes(batch)) {
            self.gpu
                .malloc(old)
                .expect("restoring the previous activation allocation");
            return Err(e);
        }
        self.batch = batch;
        self.input_bytes = 4 * batch as u64 * self.graph.ops[0].out_numel() as u64;
        self.output_bytes =
            4 * batch as u64 * self.graph.ops.last().expect("non-empty").out_numel() as u64;
        Ok(())
    }

    /// Swaps in a different (validated) schedule, creating any additional
    /// streams it needs. Used by the resilience layer to fall back from an
    /// IOS-optimized schedule to the sequential baseline.
    pub fn set_schedule(&mut self, schedule: Schedule) -> Result<(), ExecError> {
        schedule.validate(self.graph)?;
        while self.streams.len() < schedule.max_width().max(1) {
            self.streams.push(self.gpu.create_stream());
        }
        self.schedule = schedule;
        Ok(())
    }

    /// Device memory currently allocated (weights + activations), bytes.
    pub fn mem_used(&self) -> u64 {
        self.gpu.mem_used()
    }

    /// Runs one inference, returning its latency in ns.
    pub fn run_inference(&mut self) -> u64 {
        let _span = dcd_obs::span("ios.infer", dcd_obs::Category::Ios);
        dcd_obs::counter!("ios.stages").add(self.schedule.stages.len() as u64);
        let t0 = self.gpu.host_ns();
        self.gpu.memcpy_async(0, CopyDir::H2D, self.input_bytes);
        self.gpu.device_synchronize();
        for stage in &self.schedule.stages {
            let max_len = stage.groups.iter().map(|g| g.len()).max().unwrap_or(0);
            // Round-robin dispatch across groups, mirroring the cost model.
            for i in 0..max_len {
                for (gi, group) in stage.groups.iter().enumerate() {
                    if let Some(&op) = group.get(i) {
                        self.gpu
                            .launch_kernel(self.streams[gi], self.graph.kernel_for(op, self.batch));
                    }
                }
            }
            self.gpu.device_synchronize();
        }
        self.gpu.memcpy_async(0, CopyDir::D2H, self.output_bytes);
        self.gpu.device_synchronize();
        self.gpu.host_ns() - t0
    }

    /// Fallible [`Executor::run_inference`]: every CUDA call can fail under
    /// an injected fault plan, and synchronization is bounded by a watchdog.
    ///
    /// On any error the device is returned to a clean state before the error
    /// propagates — a hang triggers `cudaDeviceReset`, every other failure
    /// drains the already-enqueued work — so the caller can retry, degrade
    /// the batch, or fall back to another schedule on the same executor.
    pub fn try_run_inference(&mut self, watchdog_ns: u64) -> Result<u64, GpuError> {
        let _span = dcd_obs::span("ios.infer", dcd_obs::Category::Ios);
        dcd_obs::counter!("ios.stages").add(self.schedule.stages.len() as u64);
        let t0 = self.gpu.host_ns();
        let r = self.try_run_inference_inner(watchdog_ns);
        match r {
            Ok(()) => Ok(self.gpu.host_ns() - t0),
            Err(e) => {
                self.recover(watchdog_ns, &e);
                Err(e)
            }
        }
    }

    fn try_run_inference_inner(&mut self, watchdog_ns: u64) -> Result<(), GpuError> {
        self.gpu
            .try_memcpy_async(0, CopyDir::H2D, self.input_bytes)?;
        self.gpu.try_device_synchronize(watchdog_ns)?;
        for stage in &self.schedule.stages {
            let max_len = stage.groups.iter().map(|g| g.len()).max().unwrap_or(0);
            for i in 0..max_len {
                for (gi, group) in stage.groups.iter().enumerate() {
                    if let Some(&op) = group.get(i) {
                        self.gpu.try_launch_kernel(
                            self.streams[gi],
                            self.graph.kernel_for(op, self.batch),
                        )?;
                    }
                }
            }
            self.gpu.try_device_synchronize(watchdog_ns)?;
        }
        self.gpu
            .try_memcpy_async(0, CopyDir::D2H, self.output_bytes)?;
        self.gpu.try_device_synchronize(watchdog_ns)?;
        Ok(())
    }

    /// Returns the device to an idle state after a failed inference.
    fn recover(&mut self, watchdog_ns: u64, err: &GpuError) {
        if matches!(err, GpuError::DeviceHang { .. }) || self.gpu.is_hung() {
            self.gpu.device_reset();
            return;
        }
        // Drain whatever was already enqueued; a hang surfacing here is
        // handled by reset as well.
        if self.gpu.try_device_synchronize(watchdog_ns).is_err() {
            self.gpu.device_reset();
        }
    }

    /// Runs one inference using event-based stage synchronization instead
    /// of device-wide barriers (the way the real IOS runtime chains stages):
    /// every stage's streams wait on events recorded at the end of the
    /// previous stage's groups, the host enqueues the whole graph ahead,
    /// and a single `cudaDeviceSynchronize` closes the inference.
    ///
    /// Compared with [`Executor::run_inference`], the device pipeline never
    /// drains between stages, so barrier bubbles disappear — at the price
    /// of event-record/wait API calls.
    pub fn run_inference_events(&mut self) -> u64 {
        let _span = dcd_obs::span("ios.infer", dcd_obs::Category::Ios);
        dcd_obs::counter!("ios.stages").add(self.schedule.stages.len() as u64);
        let t0 = self.gpu.host_ns();
        self.gpu.memcpy_async(0, CopyDir::H2D, self.input_bytes);
        let mut prev_events = vec![self.gpu.record_event(0)];
        let stages = self.schedule.stages.clone();
        for stage in &stages {
            let mut stage_events = Vec::with_capacity(stage.groups.len());
            for (gi, group) in stage.groups.iter().enumerate() {
                let stream = self.streams[gi];
                for &ev in &prev_events {
                    self.gpu.stream_wait_event(stream, ev);
                }
                for &op in group {
                    self.gpu
                        .launch_kernel(stream, self.graph.kernel_for(op, self.batch));
                }
                stage_events.push(self.gpu.record_event(stream));
            }
            prev_events = stage_events;
        }
        for &ev in &prev_events {
            self.gpu.stream_wait_event(0, ev);
        }
        self.gpu.memcpy_async(0, CopyDir::D2H, self.output_bytes);
        self.gpu.device_synchronize();
        self.gpu.host_ns() - t0
    }

    /// [`Executor::run_many`] using event-based stage synchronization.
    pub fn run_many_events(&mut self, warmup: usize, iterations: usize) -> RunStats {
        assert!(iterations > 0, "need at least one measured iteration");
        for _ in 0..warmup {
            self.run_inference_events();
        }
        let mut total = 0u64;
        let mut min = u64::MAX;
        let mut max = 0u64;
        for _ in 0..iterations {
            let t = self.run_inference_events();
            total += t;
            min = min.min(t);
            max = max.max(t);
        }
        RunStats {
            batch: self.batch,
            iterations,
            mean_ns: total as f64 / iterations as f64,
            min_ns: min,
            max_ns: max,
        }
    }

    /// Runs `warmup` unmeasured then `iterations` measured inferences.
    pub fn run_many(&mut self, warmup: usize, iterations: usize) -> RunStats {
        assert!(iterations > 0, "need at least one measured iteration");
        for _ in 0..warmup {
            self.run_inference();
        }
        let mut total = 0u64;
        let mut min = u64::MAX;
        let mut max = 0u64;
        for _ in 0..iterations {
            let t = self.run_inference();
            total += t;
            min = min.min(t);
            max = max.max(t);
        }
        RunStats {
            batch: self.batch,
            iterations,
            mean_ns: total as f64 / iterations as f64,
            min_ns: min,
            max_ns: max,
        }
    }

    /// Consumes the executor, returning the full trace (context setup, all
    /// inferences) for nsys-style analysis.
    pub fn into_trace(self) -> Trace {
        let mut gpu = self.gpu;
        gpu.take_trace()
    }
}

/// Convenience wrapper: build an executor, run `warmup`+`iterations`
/// inferences, return the statistics.
pub fn measure_latency(
    graph: &Graph,
    schedule: &Schedule,
    batch: usize,
    spec: &DeviceSpec,
    warmup: usize,
    iterations: usize,
) -> RunStats {
    let mut exec = Executor::new(graph, schedule.clone(), batch, spec.clone());
    exec.run_many(warmup, iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::StageCostModel;
    use crate::dp::{greedy_schedule, ios_schedule, sequential_schedule, IosOptions};
    use crate::lower::lower_sppnet;
    use dcd_nn::SppNetConfig;

    fn small_graph() -> Graph {
        lower_sppnet(&SppNetConfig::tiny(), (16, 16))
    }

    #[test]
    fn latency_is_positive_and_stable() {
        let g = small_graph();
        let s = sequential_schedule(&g);
        let stats = measure_latency(&g, &s, 1, &DeviceSpec::test_gpu(), 2, 5);
        assert!(stats.mean_ns > 0.0);
        // Steady state: deterministic up to f64 clock rounding (≤ a few ns).
        assert!(
            stats.max_ns - stats.min_ns <= 4,
            "jitter {}",
            stats.max_ns - stats.min_ns
        );
    }

    #[test]
    fn optimized_beats_sequential_on_device() {
        let g = lower_sppnet(&SppNetConfig::original(), (100, 100));
        let dev = DeviceSpec::rtx_a5500();
        let mut cost = StageCostModel::new(&g, dev.clone(), 1);
        let ios = ios_schedule(&g, &mut cost, IosOptions::default());
        let seq = sequential_schedule(&g);
        let t_ios = measure_latency(&g, &ios, 1, &dev, 1, 3);
        let t_seq = measure_latency(&g, &seq, 1, &dev, 1, 3);
        assert!(
            t_ios.mean_ns < t_seq.mean_ns,
            "ios {} vs seq {}",
            t_ios.mean_ns,
            t_seq.mean_ns
        );
    }

    #[test]
    fn efficiency_improves_with_batch() {
        // Latency/batch falls as batch grows (fixed costs amortize) — the
        // premise of Fig 6.
        let g = lower_sppnet(&SppNetConfig::original(), (100, 100));
        let dev = DeviceSpec::rtx_a5500();
        let s = sequential_schedule(&g);
        let e1 = measure_latency(&g, &s, 1, &dev, 1, 3).efficiency_ns_per_image();
        let e8 = measure_latency(&g, &s, 8, &dev, 1, 3).efficiency_ns_per_image();
        assert!(e8 < e1, "batch 8 per-image {e8} vs batch 1 {e1}");
    }

    #[test]
    fn memory_usage_scales_with_batch_but_stays_small() {
        let g = lower_sppnet(&SppNetConfig::original(), (100, 100));
        let dev = DeviceSpec::rtx_a5500();
        let s = sequential_schedule(&g);
        let e1 = Executor::new(&g, s.clone(), 1, dev.clone());
        let e64 = Executor::new(&g, s, 64, dev.clone());
        assert!(e64.mem_used() > e1.mem_used());
        // Paper §7.1: even 64 images stay far below the 24 GB capacity.
        assert!(e64.mem_used() < dev.mem_capacity / 4);
    }

    #[test]
    fn trace_contains_kernels_memops_and_syncs() {
        let g = small_graph();
        let s = greedy_schedule(&g);
        let mut exec = Executor::new(&g, s, 2, DeviceSpec::test_gpu());
        exec.run_inference();
        let trace = exec.into_trace();
        use dcd_gpusim::{ApiKind, KernelClass};
        assert!(trace.api_time(ApiKind::DeviceSynchronize) > 0);
        assert!(trace.api_time(ApiKind::LibraryLoadData) > 0);
        assert!(trace.kernel_time(KernelClass::Conv) > 0);
        assert!(trace.memops().count() >= 2); // input H2D + output D2H
    }

    #[test]
    fn event_sync_beats_barrier_sync() {
        // Removing the per-stage device drain should never be slower.
        let g = lower_sppnet(&SppNetConfig::original(), (100, 100));
        let dev = DeviceSpec::rtx_a5500();
        let mut cost = StageCostModel::new(&g, dev.clone(), 1);
        let ios = ios_schedule(&g, &mut cost, IosOptions::default());
        let mut barrier = Executor::new(&g, ios.clone(), 1, dev.clone());
        let t_barrier = barrier.run_many(1, 3).mean_ns;
        let mut events = Executor::new(&g, ios, 1, dev);
        let t_events = events.run_many_events(1, 3).mean_ns;
        assert!(
            t_events < t_barrier,
            "events {t_events} should beat barriers {t_barrier}"
        );
    }

    #[test]
    fn event_sync_produces_valid_ordering() {
        // All kernels still run, and per-stage ordering holds: a stage's
        // kernels never start before every kernel of the previous stage
        // completed (guaranteed by the event chain).
        let g = small_graph();
        let s = greedy_schedule(&g);
        let mut exec = Executor::new(&g, s.clone(), 2, DeviceSpec::test_gpu());
        exec.run_inference_events();
        let trace = exec.into_trace();
        let kernels: Vec<&str> = trace
            .records
            .iter()
            .filter_map(|r| match r {
                dcd_gpusim::TraceRecord::Kernel { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(kernels.len(), g.kernel_ops().len());
    }

    #[test]
    fn stats_unit_conversions() {
        let stats = RunStats {
            batch: 4,
            iterations: 10,
            mean_ns: 2_000_000.0,
            min_ns: 1_900_000,
            max_ns: 2_100_000,
        };
        assert!((stats.mean_ms() - 2.0).abs() < 1e-9);
        assert!((stats.efficiency_ns_per_image() - 500_000.0).abs() < 1e-9);
        assert!((stats.throughput() - 2000.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "invalid schedule")]
    fn executor_rejects_invalid_schedule() {
        let g = small_graph();
        let s = Schedule {
            stages: vec![crate::schedule::Stage::solo(1)],
        };
        Executor::new(&g, s, 1, DeviceSpec::test_gpu());
    }

    #[test]
    fn try_new_reports_typed_errors() {
        let g = small_graph();
        let bad = Schedule {
            stages: vec![crate::schedule::Stage::solo(1)],
        };
        match Executor::try_new(&g, bad, 1, DeviceSpec::test_gpu()) {
            Err(ExecError::InvalidSchedule(_)) => {}
            other => panic!(
                "expected InvalidSchedule, got {other:?}",
                other = other.err()
            ),
        }
        let mut tiny = DeviceSpec::test_gpu();
        tiny.mem_capacity = 16;
        match Executor::try_new(&g, sequential_schedule(&g), 1, tiny) {
            Err(ExecError::Gpu(GpuError::OutOfMemory(_))) => {}
            other => panic!("expected OOM, got {other:?}", other = other.err()),
        }
    }

    #[test]
    fn try_run_inference_matches_infallible_without_faults() {
        let g = small_graph();
        let s = sequential_schedule(&g);
        let mut a = Executor::new(&g, s.clone(), 2, DeviceSpec::test_gpu());
        let mut b = Executor::new(&g, s, 2, DeviceSpec::test_gpu());
        let plain = a.run_inference();
        let fallible = b.try_run_inference(u64::MAX).expect("no faults planned");
        assert_eq!(plain, fallible);
    }

    #[test]
    fn set_batch_restores_allocation_on_oom() {
        let g = small_graph();
        let s = sequential_schedule(&g);
        let mut spec = DeviceSpec::test_gpu();
        // Fits batch 2 but not batch 64.
        spec.mem_capacity = g.weight_bytes() + g.activation_bytes(4);
        let mut exec = Executor::try_new(&g, s, 2, spec).expect("batch 2 fits");
        let before = exec.mem_used();
        assert!(matches!(exec.set_batch(64), Err(GpuError::OutOfMemory(_))));
        assert_eq!(exec.batch(), 2);
        assert_eq!(exec.mem_used(), before);
        exec.set_batch(4).expect("batch 4 fits");
        assert_eq!(exec.batch(), 4);
        // The executor still runs after the failed resize.
        assert!(exec.try_run_inference(u64::MAX).is_ok());
    }

    #[test]
    fn set_schedule_swaps_to_sequential_fallback() {
        let g = small_graph();
        let wide = greedy_schedule(&g);
        let mut exec = Executor::new(&g, wide, 1, DeviceSpec::test_gpu());
        exec.run_inference();
        exec.set_schedule(sequential_schedule(&g)).expect("valid");
        assert_eq!(exec.schedule().max_width(), 1);
        assert!(exec.try_run_inference(u64::MAX).is_ok());
    }

    #[test]
    fn hang_recovery_resets_device_and_allows_rerun() {
        use dcd_gpusim::FaultPlan;
        let g = small_graph();
        let s = sequential_schedule(&g);
        let plan = FaultPlan {
            hang_after_kernels: Some(0),
            ..FaultPlan::none()
        };
        let mut gpu = Gpu::new(DeviceSpec::test_gpu());
        gpu.set_fault_plan(plan);
        let mut exec = Executor::try_with_gpu(&g, s, 1, gpu).expect("fits");
        match exec.try_run_inference(1_000_000) {
            Err(GpuError::DeviceHang { watchdog_ns }) => assert_eq!(watchdog_ns, 1_000_000),
            other => panic!("expected DeviceHang, got {other:?}"),
        }
        // The hang fired once; after reset the executor completes cleanly.
        assert!(!exec.gpu_mut().is_hung());
        assert!(exec.try_run_inference(1_000_000).is_ok());
    }
}
