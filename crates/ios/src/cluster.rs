//! Multi-GPU data-parallel inference (extension).
//!
//! The paper flags multi-GPU execution as future work (§4.1) and cites HIOS
//! — the authors' hierarchical inter-/intra-GPU scheduler — in §8.3. This
//! module models the first rung of that ladder: **data parallelism** over
//! `n` simulated GPUs, each running the single-GPU IOS schedule on a slice
//! of the batch.
//!
//! Two host models bound the design space:
//!
//! * `shared_host = false` — one driving thread per GPU (DDP-style): GPUs
//!   are fully independent and cluster latency is the slowest slice.
//! * `shared_host = true` — a single thread dispatches to all GPUs in turn:
//!   each GPU's work starts only after the host finished enqueueing its
//!   predecessors, modelling the dispatch serialization that motivates
//!   hierarchical scheduling.

use crate::executor::Executor;
use crate::graph::Graph;
use crate::schedule::Schedule;
use dcd_gpusim::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Cluster configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of identical GPUs.
    pub n_gpus: usize,
    /// Whether one host thread serializes dispatch across GPUs.
    pub shared_host: bool,
}

/// Result of a cluster measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterStats {
    /// Total images per inference round.
    pub batch_total: usize,
    /// Per-GPU sub-batch sizes.
    pub sub_batches: Vec<usize>,
    /// Per-GPU inference latency for its slice, ns.
    pub per_gpu_ns: Vec<f64>,
    /// Host dispatch time per GPU slice (only serialized when
    /// `shared_host`), ns.
    pub dispatch_ns: f64,
    /// End-to-end round latency, ns.
    pub latency_ns: f64,
    /// Images per second.
    pub throughput: f64,
    /// Throughput relative to `n × single-GPU` (1.0 = perfect scaling).
    pub scaling_efficiency: f64,
}

/// Splits `batch` as evenly as possible across `n` GPUs (empty slices
/// dropped).
pub fn split_batch(batch: usize, n: usize) -> Vec<usize> {
    assert!(n > 0, "need at least one GPU");
    let base = batch / n;
    let extra = batch % n;
    (0..n)
        .map(|g| base + usize::from(g < extra))
        .filter(|&b| b > 0)
        .collect()
}

/// Host-side dispatch cost of one inference round: the API call overheads
/// the host pays before it could move on to the next GPU (launches, memcpy
/// enqueues — not the barrier waits, which a multi-GPU driver overlaps via
/// events).
fn dispatch_cost_ns(schedule: &Schedule, spec: &DeviceSpec) -> f64 {
    let launches = schedule.num_ops() as f64 * spec.api_launch_ns as f64;
    let memcpys = 2.0 * spec.api_memcpy_ns as f64;
    launches + memcpys
}

/// Measures data-parallel inference of `batch_total` images across the
/// cluster, with `warmup`/`iterations` per GPU.
pub fn measure_cluster(
    graph: &Graph,
    schedule: &Schedule,
    batch_total: usize,
    spec: &DeviceSpec,
    cluster: ClusterConfig,
    warmup: usize,
    iterations: usize,
) -> ClusterStats {
    assert!(batch_total > 0, "batch must be positive");
    let sub_batches = split_batch(batch_total, cluster.n_gpus);
    let dispatch_ns = dispatch_cost_ns(schedule, spec);

    let per_gpu_ns: Vec<f64> = sub_batches
        .iter()
        .map(|&b| {
            let mut exec = Executor::new(graph, schedule.clone(), b, spec.clone());
            exec.run_many(warmup, iterations).mean_ns
        })
        .collect();

    // Round latency: GPU g starts after g serialized dispatches (if the
    // host is shared) and then runs its slice.
    let latency_ns = per_gpu_ns
        .iter()
        .enumerate()
        .map(|(g, &t)| {
            let start = if cluster.shared_host {
                g as f64 * dispatch_ns
            } else {
                0.0
            };
            start + t
        })
        .fold(0.0, f64::max);
    let throughput = batch_total as f64 / (latency_ns / 1e9);

    // Ideal reference: n × the throughput of one GPU running the same
    // per-GPU slice size (the classic weak-scaling reference).
    let single = {
        let b = sub_batches[0];
        let mut exec = Executor::new(graph, schedule.clone(), b, spec.clone());
        let t = exec.run_many(warmup, iterations).mean_ns;
        b as f64 / (t / 1e9)
    };
    let ideal = single * sub_batches.len() as f64;
    let scaling_efficiency = if ideal > 0.0 { throughput / ideal } else { 0.0 };

    ClusterStats {
        batch_total,
        sub_batches,
        per_gpu_ns,
        dispatch_ns,
        latency_ns,
        throughput,
        scaling_efficiency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::StageCostModel;
    use crate::dp::{ios_schedule, IosOptions};
    use crate::lower::lower_sppnet;
    use dcd_nn::SppNetConfig;

    fn setup() -> (Graph, Schedule, DeviceSpec) {
        let graph = lower_sppnet(&SppNetConfig::original(), (100, 100));
        let spec = DeviceSpec::rtx_a5500();
        let mut cost = StageCostModel::new(&graph, spec.clone(), 8);
        let schedule = ios_schedule(&graph, &mut cost, IosOptions::default());
        (graph, schedule, spec)
    }

    #[test]
    fn split_batch_is_fair_and_complete() {
        assert_eq!(split_batch(64, 4), vec![16, 16, 16, 16]);
        assert_eq!(split_batch(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(split_batch(2, 4), vec![1, 1]); // empty slices dropped
        assert_eq!(split_batch(7, 1), vec![7]);
        for (b, n) in [(64, 4), (10, 4), (7, 3)] {
            assert_eq!(split_batch(b, n).iter().sum::<usize>(), b);
        }
    }

    #[test]
    fn one_gpu_matches_single_executor() {
        let (graph, schedule, spec) = setup();
        let stats = measure_cluster(
            &graph,
            &schedule,
            16,
            &spec,
            ClusterConfig {
                n_gpus: 1,
                shared_host: false,
            },
            1,
            2,
        );
        let mut exec = Executor::new(&graph, schedule.clone(), 16, spec.clone());
        let single = exec.run_many(1, 2).mean_ns;
        assert!((stats.latency_ns - single).abs() < 10.0);
        assert!((stats.scaling_efficiency - 1.0).abs() < 1e-6);
    }

    #[test]
    fn independent_hosts_scale_throughput() {
        let (graph, schedule, spec) = setup();
        let one = measure_cluster(
            &graph,
            &schedule,
            64,
            &spec,
            ClusterConfig {
                n_gpus: 1,
                shared_host: false,
            },
            1,
            2,
        );
        let four = measure_cluster(
            &graph,
            &schedule,
            64,
            &spec,
            ClusterConfig {
                n_gpus: 4,
                shared_host: false,
            },
            1,
            2,
        );
        // 4 GPUs on a quarter slice each: much faster than 1 GPU on 64,
        // though sublinear (per-image fixed costs grow at smaller batch).
        assert!(
            four.throughput > 2.0 * one.throughput,
            "4-GPU throughput {} vs 1-GPU {}",
            four.throughput,
            one.throughput
        );
        assert!(
            four.scaling_efficiency > 0.95,
            "eff {}",
            four.scaling_efficiency
        );
    }

    #[test]
    fn shared_host_pays_dispatch_serialization() {
        let (graph, schedule, spec) = setup();
        let free = measure_cluster(
            &graph,
            &schedule,
            32,
            &spec,
            ClusterConfig {
                n_gpus: 4,
                shared_host: false,
            },
            1,
            2,
        );
        let shared = measure_cluster(
            &graph,
            &schedule,
            32,
            &spec,
            ClusterConfig {
                n_gpus: 4,
                shared_host: true,
            },
            1,
            2,
        );
        assert!(shared.latency_ns > free.latency_ns);
        assert!(shared.scaling_efficiency < free.scaling_efficiency);
        // The gap equals (n−1) dispatches.
        let gap = shared.latency_ns - free.latency_ns;
        assert!((gap - 3.0 * shared.dispatch_ns).abs() < 1e3, "gap {gap}");
    }

    #[test]
    fn more_gpus_than_images_degrades_gracefully() {
        let (graph, schedule, spec) = setup();
        let stats = measure_cluster(
            &graph,
            &schedule,
            2,
            &spec,
            ClusterConfig {
                n_gpus: 8,
                shared_host: false,
            },
            1,
            1,
        );
        assert_eq!(stats.sub_batches, vec![1, 1]);
        assert_eq!(stats.per_gpu_ns.len(), 2);
    }
}
