//! Operator graph IR.
//!
//! A [`Graph`] is a DAG of [`Op`]s in topological order. Each op carries its
//! output activation shape `(channels, height, width)` for a single sample;
//! batch size is applied when a kernel descriptor is materialized.

use dcd_gpusim::{DeviceSpec, KernelClass, KernelDesc};
use serde::{Deserialize, Serialize};

/// Index of an op within its graph.
pub type OpId = usize;

/// Operator kinds the SPP-Net pipeline needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// Graph input (no kernel; realized as an H2D copy by the executor).
    Input,
    /// 2-D convolution.
    Conv {
        /// Input channels.
        c_in: usize,
        /// Output channels.
        c_out: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
    },
    /// Rectified linear unit.
    Relu,
    /// Fixed-window max pooling.
    MaxPool {
        /// Window.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Adaptive max pooling to `out × out` (one SPP pyramid branch). The
    /// output is already flattened to `(c·out², 1, 1)`.
    AdaptivePool {
        /// Output bins per side.
        out_size: usize,
    },
    /// Channel-wise concatenation of flattened vectors.
    Concat,
    /// Fully-connected layer.
    Gemm {
        /// Input features.
        in_f: usize,
        /// Output features.
        out_f: usize,
    },
}

/// One operator in the graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Op {
    /// Index in [`Graph::ops`].
    pub id: OpId,
    /// Display name (also the simulated kernel name).
    pub name: String,
    /// Operator kind.
    pub kind: OpKind,
    /// Producer ops.
    pub inputs: Vec<OpId>,
    /// Output shape `(c, h, w)` per sample.
    pub out_shape: (usize, usize, usize),
}

impl Op {
    /// Elements produced per sample.
    pub fn out_numel(&self) -> usize {
        self.out_shape.0 * self.out_shape.1 * self.out_shape.2
    }

    /// Trainable parameter count (weights + bias), zero for stateless ops.
    pub fn param_count(&self) -> usize {
        match &self.kind {
            OpKind::Conv {
                c_in,
                c_out,
                kernel,
                ..
            } => c_out * c_in * kernel * kernel + c_out,
            OpKind::Gemm { in_f, out_f } => in_f * out_f + out_f,
            _ => 0,
        }
    }

    /// Whether this op launches a device kernel (`Input` does not).
    pub fn has_kernel(&self) -> bool {
        !matches!(self.kind, OpKind::Input)
    }

    /// Kernel class for profiling buckets.
    pub fn kernel_class(&self) -> KernelClass {
        match &self.kind {
            OpKind::Input => KernelClass::Other,
            OpKind::Conv { .. } => KernelClass::Conv,
            OpKind::Relu => KernelClass::Elementwise,
            OpKind::MaxPool { .. } | OpKind::AdaptivePool { .. } => KernelClass::Pool,
            OpKind::Concat => KernelClass::Copy,
            OpKind::Gemm { .. } => KernelClass::Gemm,
        }
    }

    /// Materializes the simulated kernel for a given batch size.
    ///
    /// `in_numel` is the per-sample element count of this op's inputs
    /// (summed over producers). FLOP/byte accounting:
    /// * Conv — `2·C_out·C_in·K²·OH·OW·b` FLOPs; bytes = weights + in/out
    ///   activations (weights are read once per launch, which is what makes
    ///   small-batch FC memory-bound and large-batch conv compute-bound).
    /// * Gemm — `2·in_f·out_f·b` FLOPs; bytes = weight matrix + activations.
    /// * Pool/ReLU/Concat — bandwidth-bound: bytes ≈ in + out.
    pub fn kernel_desc(&self, batch: usize, in_numel: usize) -> KernelDesc {
        let b = batch as f64;
        let out = self.out_numel() as f64;
        let inp = in_numel as f64;
        let act_bytes = 4.0 * b * (inp + out);
        let (flops, bytes, threads) = match &self.kind {
            OpKind::Input => (0.0, 0.0, 0.0),
            OpKind::Conv {
                c_in,
                c_out,
                kernel,
                ..
            } => {
                let macs =
                    (*c_out * *c_in * *kernel * *kernel) as f64 * out / self.out_shape.0 as f64 * b;
                let weight_bytes = 4.0 * (*c_out * *c_in * *kernel * *kernel) as f64;
                (2.0 * macs, weight_bytes + act_bytes, out * b)
            }
            OpKind::Relu => (out * b, act_bytes, out * b),
            OpKind::MaxPool { kernel, .. } => {
                ((kernel * kernel) as f64 * out * b, act_bytes, out * b)
            }
            OpKind::AdaptivePool { .. } => {
                // Each input element is visited once when reducing into bins.
                (inp * b, act_bytes, out * b)
            }
            OpKind::Concat => (0.0, act_bytes, out * b),
            OpKind::Gemm { in_f, out_f } => {
                let weight_bytes = 4.0 * (*in_f * *out_f) as f64;
                (
                    2.0 * (*in_f * *out_f) as f64 * b,
                    weight_bytes + act_bytes,
                    *out_f as f64 * b,
                )
            }
        };
        KernelDesc::new(
            self.name.clone(),
            self.kernel_class(),
            flops,
            bytes,
            threads,
        )
    }
}

/// A DAG of ops in topological order (every op's inputs precede it).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    /// Ops, id == index.
    pub ops: Vec<Op>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Appends an op, computing its output shape from its inputs.
    ///
    /// Panics on malformed wiring (unknown input ids, shape mismatches) —
    /// graphs are built by trusted lowering code.
    pub fn add(&mut self, name: impl Into<String>, kind: OpKind, inputs: Vec<OpId>) -> OpId {
        let id = self.ops.len();
        for &i in &inputs {
            assert!(i < id, "op input {i} must precede op {id}");
        }
        let out_shape = self.infer_shape(&kind, &inputs);
        self.ops.push(Op {
            id,
            name: name.into(),
            kind,
            inputs,
            out_shape,
        });
        id
    }

    /// Adds the graph input with an explicit shape.
    pub fn add_input(&mut self, name: impl Into<String>, shape: (usize, usize, usize)) -> OpId {
        let id = self.ops.len();
        self.ops.push(Op {
            id,
            name: name.into(),
            kind: OpKind::Input,
            inputs: Vec::new(),
            out_shape: shape,
        });
        id
    }

    fn infer_shape(&self, kind: &OpKind, inputs: &[OpId]) -> (usize, usize, usize) {
        let shape_of = |id: OpId| self.ops[id].out_shape;
        match kind {
            OpKind::Input => panic!("use add_input for inputs"),
            OpKind::Conv {
                c_in,
                c_out,
                kernel,
                stride,
                pad,
            } => {
                assert_eq!(inputs.len(), 1, "conv takes one input");
                let (c, h, w) = shape_of(inputs[0]);
                assert_eq!(c, *c_in, "conv input channels");
                let oh = (h + 2 * pad - kernel) / stride + 1;
                let ow = (w + 2 * pad - kernel) / stride + 1;
                (*c_out, oh, ow)
            }
            OpKind::Relu => {
                assert_eq!(inputs.len(), 1, "relu takes one input");
                shape_of(inputs[0])
            }
            OpKind::MaxPool { kernel, stride } => {
                assert_eq!(inputs.len(), 1, "pool takes one input");
                let (c, h, w) = shape_of(inputs[0]);
                ((c), (h - kernel) / stride + 1, (w - kernel) / stride + 1)
            }
            OpKind::AdaptivePool { out_size } => {
                assert_eq!(inputs.len(), 1, "adaptive pool takes one input");
                let (c, _, _) = shape_of(inputs[0]);
                (c * out_size * out_size, 1, 1)
            }
            OpKind::Concat => {
                assert!(!inputs.is_empty(), "concat needs inputs");
                let mut total = 0;
                for &i in inputs {
                    let (c, h, w) = shape_of(i);
                    assert_eq!((h, w), (1, 1), "concat expects flattened inputs");
                    total += c;
                }
                (total, 1, 1)
            }
            OpKind::Gemm { in_f, out_f } => {
                assert_eq!(inputs.len(), 1, "gemm takes one input");
                let (c, h, w) = shape_of(inputs[0]);
                assert_eq!(c * h * w, *in_f, "gemm input features");
                (*out_f, 1, 1)
            }
        }
    }

    /// Number of ops (including the input).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Ids of ops that launch kernels (everything but `Input`).
    pub fn kernel_ops(&self) -> Vec<OpId> {
        self.ops
            .iter()
            .filter(|o| o.has_kernel())
            .map(|o| o.id)
            .collect()
    }

    /// Consumers of each op.
    pub fn successors(&self) -> Vec<Vec<OpId>> {
        let mut succ = vec![Vec::new(); self.ops.len()];
        for op in &self.ops {
            for &i in &op.inputs {
                succ[i].push(op.id);
            }
        }
        succ
    }

    /// Per-sample input element count of an op (sum over producers).
    pub fn in_numel(&self, id: OpId) -> usize {
        self.ops[id]
            .inputs
            .iter()
            .map(|&i| self.ops[i].out_numel())
            .sum()
    }

    /// Kernel descriptor for op `id` at the given batch size.
    pub fn kernel_for(&self, id: OpId, batch: usize) -> KernelDesc {
        self.ops[id].kernel_desc(batch, self.in_numel(id))
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.ops.iter().map(|o| o.param_count()).sum()
    }

    /// Total device bytes for weights (f32).
    pub fn weight_bytes(&self) -> u64 {
        4 * self.param_count() as u64
    }

    /// Device bytes for all activations at a batch size (f32, no reuse —
    /// an upper bound matching an allocator without in-place sharing).
    pub fn activation_bytes(&self, batch: usize) -> u64 {
        4 * batch as u64 * self.ops.iter().map(|o| o.out_numel() as u64).sum::<u64>()
    }

    /// Sum of isolated kernel times at a batch size — a lower bound on any
    /// sequential execution (useful for sanity checks and tests).
    pub fn serial_kernel_ns(&self, batch: usize, dev: &DeviceSpec) -> f64 {
        self.kernel_ops()
            .iter()
            .map(|&id| self.kernel_for(id, batch).isolated_ns(dev))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// input(2,8,8) → conv(4) → relu → pool → two adaptive pools → concat → gemm
    fn toy_graph() -> Graph {
        let mut g = Graph::new();
        let input = g.add_input("input", (2, 8, 8));
        let conv = g.add(
            "conv",
            OpKind::Conv {
                c_in: 2,
                c_out: 4,
                kernel: 3,
                stride: 1,
                pad: 1,
            },
            vec![input],
        );
        let relu = g.add("relu", OpKind::Relu, vec![conv]);
        let pool = g.add(
            "pool",
            OpKind::MaxPool {
                kernel: 2,
                stride: 2,
            },
            vec![relu],
        );
        let spp2 = g.add("spp2", OpKind::AdaptivePool { out_size: 2 }, vec![pool]);
        let spp1 = g.add("spp1", OpKind::AdaptivePool { out_size: 1 }, vec![pool]);
        let cat = g.add("concat", OpKind::Concat, vec![spp2, spp1]);
        g.add(
            "fc",
            OpKind::Gemm {
                in_f: 4 * 5,
                out_f: 3,
            },
            vec![cat],
        );
        g
    }

    #[test]
    fn shapes_propagate() {
        let g = toy_graph();
        assert_eq!(g.ops[1].out_shape, (4, 8, 8)); // same-pad conv
        assert_eq!(g.ops[3].out_shape, (4, 4, 4)); // 2x2/2 pool
        assert_eq!(g.ops[4].out_shape, (16, 1, 1)); // adaptive 2x2 flattened
        assert_eq!(g.ops[6].out_shape, (20, 1, 1)); // concat 16+4
        assert_eq!(g.ops[7].out_shape, (3, 1, 1)); // gemm
    }

    #[test]
    fn successors_mirror_inputs() {
        let g = toy_graph();
        let succ = g.successors();
        assert_eq!(succ[3], vec![4, 5]); // pool feeds both SPP branches
        assert_eq!(succ[6], vec![7]);
        assert!(succ[7].is_empty());
    }

    #[test]
    fn param_count_covers_conv_and_gemm() {
        let g = toy_graph();
        // conv: 4·2·9+4 = 76; gemm: 20·3+3 = 63
        assert_eq!(g.param_count(), 76 + 63);
        assert_eq!(g.weight_bytes(), 4 * 139);
    }

    #[test]
    fn kernel_ops_excludes_input() {
        let g = toy_graph();
        assert_eq!(g.kernel_ops().len(), g.len() - 1);
    }

    #[test]
    fn conv_flops_scale_with_batch() {
        let g = toy_graph();
        let k1 = g.kernel_for(1, 1);
        let k4 = g.kernel_for(1, 4);
        assert!((k4.flops / k1.flops - 4.0).abs() < 1e-9);
        // Weight bytes do not scale with batch: bytes grow sublinearly.
        assert!(k4.bytes < 4.0 * k1.bytes);
    }

    #[test]
    fn gemm_bytes_dominated_by_weights_at_batch_1() {
        let mut g = Graph::new();
        let input = g.add_input("in", (1024, 1, 1));
        let fc = g.add(
            "fc",
            OpKind::Gemm {
                in_f: 1024,
                out_f: 4096,
            },
            vec![input],
        );
        let k = g.kernel_for(fc, 1);
        let weight_bytes = 4.0 * 1024.0 * 4096.0;
        assert!(k.bytes >= weight_bytes);
        assert!(k.bytes < 1.02 * weight_bytes);
    }

    #[test]
    fn activation_bytes_scale_linearly() {
        let g = toy_graph();
        assert_eq!(g.activation_bytes(2), 2 * g.activation_bytes(1));
    }

    #[test]
    #[should_panic(expected = "gemm input features")]
    fn gemm_shape_mismatch_panics() {
        let mut g = Graph::new();
        let input = g.add_input("in", (8, 1, 1));
        g.add("fc", OpKind::Gemm { in_f: 9, out_f: 2 }, vec![input]);
    }

    #[test]
    #[should_panic(expected = "must precede")]
    fn forward_references_panic() {
        let mut g = Graph::new();
        g.add("bad", OpKind::Relu, vec![3]);
    }

    #[test]
    fn serial_kernel_ns_positive_and_monotonic_in_batch() {
        let g = toy_graph();
        let dev = DeviceSpec::test_gpu();
        let t1 = g.serial_kernel_ns(1, &dev);
        let t8 = g.serial_kernel_ns(8, &dev);
        assert!(t1 > 0.0);
        assert!(t8 > t1);
    }
}
