//! Lowering an [`SppNetConfig`] to the graph IR.
//!
//! [`SppNetConfig`]: dcd_nn::SppNetConfig

use crate::graph::{Graph, OpKind};
use dcd_nn::SppNetConfig;

/// Lowers an SPP-Net configuration to the operator graph the scheduler and
/// the GPU simulator consume.
///
/// `input_hw` is the patch size (the paper uses 100×100). The resulting DAG
/// is the conv backbone chain, the parallel SPP pyramid branches converging
/// in a `Concat`, the FC trunk, and the two parallel detection heads
/// converging in the output `Concat`:
///
/// ```text
/// in → c1 → r → p → c2 → r → p → c3 → r → p →  {spp_a, spp_b, spp_c} →
///   concat → fc1 → r [→ fc2 → r] → {head_obj, head_box} → out
/// ```
pub fn lower_sppnet(config: &SppNetConfig, input_hw: (usize, usize)) -> Graph {
    let mut g = Graph::new();
    let [c1, c2, c3] = config.channels;
    let input = g.add_input("input", (config.in_channels, input_hw.0, input_hw.1));

    let conv1 = g.add(
        "conv1",
        OpKind::Conv {
            c_in: config.in_channels,
            c_out: c1,
            kernel: config.conv1_kernel,
            stride: 1,
            pad: config.conv1_kernel / 2,
        },
        vec![input],
    );
    let relu1 = g.add("relu1", OpKind::Relu, vec![conv1]);
    let pool1 = g.add(
        "pool1",
        OpKind::MaxPool {
            kernel: 2,
            stride: 2,
        },
        vec![relu1],
    );
    let conv2 = g.add(
        "conv2",
        OpKind::Conv {
            c_in: c1,
            c_out: c2,
            kernel: 3,
            stride: 1,
            pad: 1,
        },
        vec![pool1],
    );
    let relu2 = g.add("relu2", OpKind::Relu, vec![conv2]);
    let pool2 = g.add(
        "pool2",
        OpKind::MaxPool {
            kernel: 2,
            stride: 2,
        },
        vec![relu2],
    );
    let conv3 = g.add(
        "conv3",
        OpKind::Conv {
            c_in: c2,
            c_out: c3,
            kernel: 3,
            stride: 1,
            pad: 1,
        },
        vec![pool2],
    );
    let relu3 = g.add("relu3", OpKind::Relu, vec![conv3]);
    let pool3 = g.add(
        "pool3",
        OpKind::MaxPool {
            kernel: 2,
            stride: 2,
        },
        vec![relu3],
    );

    // SPP pyramid: one adaptive-pool branch per level — the branched block
    // IOS parallelizes.
    let branches: Vec<_> = config
        .spp_levels()
        .into_iter()
        .map(|level| {
            g.add(
                format!("spp{level}"),
                OpKind::AdaptivePool { out_size: level },
                vec![pool3],
            )
        })
        .collect();
    let concat = g.add("spp_concat", OpKind::Concat, branches);

    let fc1 = g.add(
        "fc1",
        OpKind::Gemm {
            in_f: config.spp_features(),
            out_f: config.fc1,
        },
        vec![concat],
    );
    let mut trunk = g.add("fc1_relu", OpKind::Relu, vec![fc1]);
    let mut trunk_features = config.fc1;
    if let Some(f2) = config.fc2 {
        let fc2 = g.add(
            "fc2",
            OpKind::Gemm {
                in_f: trunk_features,
                out_f: f2,
            },
            vec![trunk],
        );
        trunk = g.add("fc2_relu", OpKind::Relu, vec![fc2]);
        trunk_features = f2;
    }

    // Detection heads: two parallel GEMVs converging in the output concat.
    let head_obj = g.add(
        "head_obj",
        OpKind::Gemm {
            in_f: trunk_features,
            out_f: 1,
        },
        vec![trunk],
    );
    let head_box = g.add(
        "head_box",
        OpKind::Gemm {
            in_f: trunk_features,
            out_f: 4,
        },
        vec![trunk],
    );
    g.add("output", OpKind::Concat, vec![head_obj, head_box]);
    g
}

/// Builds a synthetic Inception-style block: `branches` parallel conv→pool
/// chains over a shared input, converging in a concat — the graph family the
/// IOS paper originally targets, where branch parallelism (not just chain
/// grouping) carries the win.
///
/// `input` is `(channels, h, w)`; each branch convolves to `branch_width`
/// channels and adaptive-pools to 1×1.
pub fn branched_graph(branches: usize, input: (usize, usize, usize), branch_width: usize) -> Graph {
    assert!(branches >= 1, "need at least one branch");
    let mut g = Graph::new();
    let inp = g.add_input("input", input);
    let outs: Vec<_> = (0..branches)
        .map(|b| {
            let conv = g.add(
                format!("branch{b}_conv"),
                OpKind::Conv {
                    c_in: input.0,
                    c_out: branch_width,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                },
                vec![inp],
            );
            let relu = g.add(format!("branch{b}_relu"), OpKind::Relu, vec![conv]);
            g.add(
                format!("branch{b}_pool"),
                OpKind::AdaptivePool { out_size: 1 },
                vec![relu],
            )
        })
        .collect();
    g.add("merge", OpKind::Concat, outs);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcd_tensor::SeededRng;

    #[test]
    fn branched_graph_shape() {
        let g = branched_graph(4, (16, 32, 32), 32);
        // input + 4×(conv, relu, pool) + merge
        assert_eq!(g.len(), 1 + 12 + 1);
        assert_eq!(g.ops.last().unwrap().out_shape, (4 * 32, 1, 1));
    }

    #[test]
    fn branched_graph_wavefront_is_wide() {
        let g = branched_graph(3, (8, 16, 16), 16);
        let s = crate::dp::greedy_schedule(&g);
        assert_eq!(s.validate(&g), Ok(()));
        // First wavefront: all three convs.
        assert_eq!(s.stages[0].width(), 3);
    }

    #[test]
    fn original_sppnet_lowers_to_expected_size() {
        let g = lower_sppnet(&SppNetConfig::original(), (100, 100));
        // input + 3×(conv,relu,pool) + 3 spp + concat + fc1 + relu +
        // 2 heads + output = 1 + 9 + 3 + 1 + 2 + 2 + 1 = 19
        assert_eq!(g.len(), 19);
    }

    #[test]
    fn fc2_adds_two_ops() {
        let mut cfg = SppNetConfig::original();
        let base = lower_sppnet(&cfg, (100, 100)).len();
        cfg.fc2 = Some(512);
        assert_eq!(lower_sppnet(&cfg, (100, 100)).len(), base + 2);
    }

    #[test]
    fn spp_branch_count_follows_levels() {
        let mut cfg = SppNetConfig::original();
        cfg.spp_top_level = 5; // [5,2,1]
        let g = lower_sppnet(&cfg, (100, 100));
        let branches = g
            .ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::AdaptivePool { .. }))
            .count();
        assert_eq!(branches, 3);
        cfg.spp_top_level = 2; // [2,1]
        let g2 = lower_sppnet(&cfg, (100, 100));
        let branches2 = g2
            .ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::AdaptivePool { .. }))
            .count();
        assert_eq!(branches2, 2);
    }

    #[test]
    fn backbone_shrinks_100_to_12() {
        let g = lower_sppnet(&SppNetConfig::original(), (100, 100));
        let pool3 = g.ops.iter().find(|o| o.name == "pool3").unwrap();
        assert_eq!(pool3.out_shape, (256, 12, 12));
    }

    #[test]
    fn param_count_matches_nn_model() {
        // The lowered graph must account for exactly the same parameters as
        // the executable dcd-nn model.
        let cfg = SppNetConfig::tiny();
        let g = lower_sppnet(&cfg, (16, 16));
        let mut rng = SeededRng::new(0);
        let mut model = dcd_nn::SppNet::new(cfg, &mut rng);
        assert_eq!(g.param_count(), model.num_params());
    }

    #[test]
    fn output_concat_is_five_wide() {
        let g = lower_sppnet(&SppNetConfig::original(), (100, 100));
        let out = g.ops.last().unwrap();
        assert_eq!(out.out_shape, (5, 1, 1)); // objectness + 4 box coords
    }

    #[test]
    fn table1_configs_all_lower() {
        for (name, cfg) in SppNetConfig::table1() {
            let g = lower_sppnet(&cfg, (100, 100));
            assert!(g.len() >= 19, "{name} lowered to {} ops", g.len());
            assert!(g.param_count() > 100_000, "{name} has real weights");
        }
    }
}
