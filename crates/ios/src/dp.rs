//! The three schedulers: sequential baseline, greedy (Nimble-like) baseline,
//! and the IOS dynamic program.

use crate::cost::StageCostModel;
use crate::graph::{Graph, OpId};
use crate::schedule::{Schedule, Stage};
use std::collections::{HashMap, HashSet};

/// Pruning options for the IOS dynamic program (the paper's IOS exposes the
/// same two knobs as "max number of groups / max stage size").
///
/// Non-exhaustive: construct with [`IosOptions::new`] (or `default()`) and
/// refine with the `with_*` methods, so new knobs can be added without
/// breaking callers. Defaults: `max_groups = 4`, `max_group_len = 6`.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IosOptions {
    /// Maximum concurrent groups in one stage.
    pub max_groups: usize,
    /// Maximum ops in one group (chain length bound).
    pub max_group_len: usize,
}

impl IosOptions {
    /// The default pruning bounds (groups ≤ 4, group length ≤ 6).
    pub fn new() -> Self {
        IosOptions {
            max_groups: 4,
            max_group_len: 6,
        }
    }

    /// Caps the number of concurrent groups per stage.
    pub fn with_max_groups(mut self, max_groups: usize) -> Self {
        self.max_groups = max_groups;
        self
    }

    /// Caps the chain length of one group.
    pub fn with_max_group_len(mut self, max_group_len: usize) -> Self {
        self.max_group_len = max_group_len;
        self
    }
}

impl Default for IosOptions {
    fn default() -> Self {
        IosOptions::new()
    }
}

/// The degenerate baseline: every op is its own stage, in topological order.
/// Maximum number of barriers, no concurrency — the "Sequential Inference
/// Latency" column of Table 2.
pub fn sequential_schedule(graph: &Graph) -> Schedule {
    Schedule {
        stages: graph.kernel_ops().into_iter().map(Stage::solo).collect(),
    }
}

/// Nimble-style greedy wavefront schedule: each stage executes *all* ready
/// ops, one group per op. Maximum width, but no grouping choice and no
/// latency model — the ablation baseline between sequential and IOS.
pub fn greedy_schedule(graph: &Graph) -> Schedule {
    let mut done: HashSet<OpId> = graph
        .ops
        .iter()
        .filter(|o| !o.has_kernel())
        .map(|o| o.id)
        .collect();
    let kernel_ops: Vec<OpId> = graph.kernel_ops();
    let mut remaining: HashSet<OpId> = kernel_ops.iter().copied().collect();
    let mut stages = Vec::new();
    while !remaining.is_empty() {
        let ready: Vec<OpId> = kernel_ops
            .iter()
            .copied()
            .filter(|op| {
                remaining.contains(op) && graph.ops[*op].inputs.iter().all(|i| done.contains(i))
            })
            .collect();
        assert!(!ready.is_empty(), "graph has a dependency cycle");
        stages.push(Stage {
            groups: ready.iter().map(|&op| vec![op]).collect(),
        });
        for op in ready {
            remaining.remove(&op);
            done.insert(op);
        }
    }
    Schedule { stages }
}

/// The IOS dynamic program.
///
/// States are dependence-closed sets of completed kernel ops (bitmask over
/// the kernel ops). From each state the candidate next stages are built from
/// subsets of the ready frontier, in two families:
///
/// 1. **wide** — each selected ready op forms a single-op group (pure branch
///    parallelism, what the greedy baseline does one wavefront at a time);
/// 2. **chained** — each selected ready op seeds a group that is greedily
///    extended along the dependence chain while every predecessor of the
///    extension lies in the completed set or earlier in the same group
///    (fewer barriers for linear backbone sections).
///
/// Each candidate stage is profiled through [`StageCostModel`] (simulated
/// execution on the target device) and the DP minimizes total latency.
/// Memoization is over the completed-set bitmask, so the result is optimal
/// within the candidate family and pruning bounds.
pub fn ios_schedule(graph: &Graph, cost: &mut StageCostModel<'_>, opts: IosOptions) -> Schedule {
    let kernel_ops = graph.kernel_ops();
    let n = kernel_ops.len();
    assert!(
        n <= 63,
        "bitmask DP supports at most 63 kernel ops, got {n}"
    );
    assert!(opts.max_groups >= 1 && opts.max_group_len >= 1);

    // op id -> bit position
    let bit: HashMap<OpId, usize> = kernel_ops
        .iter()
        .enumerate()
        .map(|(i, &op)| (op, i))
        .collect();
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };

    // Predecessor masks (non-kernel inputs are always satisfied).
    let pred_mask: Vec<u64> = kernel_ops
        .iter()
        .map(|&op| {
            graph.ops[op]
                .inputs
                .iter()
                .filter_map(|i| bit.get(i))
                .fold(0u64, |m, &b| m | (1 << b))
        })
        .collect();

    let ready_of = |mask: u64| -> Vec<usize> {
        (0..n)
            .filter(|&b| mask & (1 << b) == 0 && pred_mask[b] & !mask == 0)
            .collect()
    };

    /// Extends a seed op into a chain while dependences stay inside
    /// `mask ∪ group` and the op is not claimed by the stage already.
    fn extend_chain(
        seed: usize,
        mask: u64,
        claimed: u64,
        succ_bits: &[Vec<usize>],
        pred_mask: &[u64],
        max_len: usize,
    ) -> Vec<usize> {
        let mut group = vec![seed];
        let mut group_mask = 1u64 << seed;
        while group.len() < max_len {
            let last = *group.last().expect("non-empty");
            let mut next = None;
            for &s in &succ_bits[last] {
                let taken = claimed | group_mask;
                if taken & (1 << s) != 0 {
                    continue;
                }
                if pred_mask[s] & !(mask | group_mask) == 0 {
                    next = Some(s);
                    break;
                }
            }
            match next {
                Some(s) => {
                    group.push(s);
                    group_mask |= 1 << s;
                }
                None => break,
            }
        }
        group
    }

    // Successor lists in bit space.
    let succ = graph.successors();
    let succ_bits: Vec<Vec<usize>> = kernel_ops
        .iter()
        .map(|&op| {
            succ[op]
                .iter()
                .filter_map(|s| bit.get(s))
                .copied()
                .collect()
        })
        .collect();

    // Candidate stages (as groups of bit indices) from a state.
    let candidates = |mask: u64| -> Vec<Vec<Vec<usize>>> {
        let ready = ready_of(mask);
        let r = ready.len();
        let mut out: Vec<Vec<Vec<usize>>> = Vec::new();
        let mut seen: HashSet<Vec<Vec<usize>>> = HashSet::new();
        // Non-empty subsets of the ready frontier, bounded by max_groups.
        for subset in 1u32..(1u32 << r) {
            if (subset.count_ones() as usize) > opts.max_groups {
                continue;
            }
            let seeds: Vec<usize> = (0..r)
                .filter(|i| subset & (1 << i) != 0)
                .map(|i| ready[i])
                .collect();
            // Family 1: singleton groups.
            let wide: Vec<Vec<usize>> = seeds.iter().map(|&s| vec![s]).collect();
            if seen.insert(wide.clone()) {
                out.push(wide);
            }
            // Family 2: chain-extended groups.
            let mut claimed: u64 = seeds.iter().fold(0, |m, &s| m | (1 << s));
            let mut chained: Vec<Vec<usize>> = Vec::with_capacity(seeds.len());
            for &s in &seeds {
                let grp =
                    extend_chain(s, mask, claimed, &succ_bits, &pred_mask, opts.max_group_len);
                claimed |= grp.iter().fold(0u64, |m, &b| m | (1 << b));
                chained.push(grp);
            }
            if seen.insert(chained.clone()) {
                out.push(chained);
            }
        }
        out
    };

    // Memoized DP over completed-set masks.
    let mut memo: HashMap<u64, (f64, Vec<Vec<usize>>)> = HashMap::new();
    let mut order: Vec<u64> = vec![full];
    // Iterative post-order: discover reachable states, then solve in
    // decreasing popcount order.
    let mut discovered: HashSet<u64> = HashSet::new();
    let mut stack = vec![0u64];
    discovered.insert(0);
    while let Some(mask) = stack.pop() {
        if mask == full {
            continue;
        }
        for stage in candidates(mask) {
            let add: u64 = stage.iter().flatten().fold(0, |m, &b| m | (1 << b));
            let next = mask | add;
            if discovered.insert(next) {
                stack.push(next);
            }
        }
    }
    order.extend(discovered.iter().copied());
    order.sort_by_key(|m| std::cmp::Reverse(m.count_ones()));
    order.dedup();

    memo.insert(full, (0.0, Vec::new()));
    for &mask in &order {
        if mask == full || memo.contains_key(&mask) {
            continue;
        }
        let mut best = f64::INFINITY;
        let mut best_stage: Vec<Vec<usize>> = Vec::new();
        for stage in candidates(mask) {
            let add: u64 = stage.iter().flatten().fold(0, |m, &b| m | (1 << b));
            let next = mask | add;
            let tail = match memo.get(&next) {
                Some((t, _)) => *t,
                None => continue, // unreachable under pruning from here
            };
            let groups_ops: Vec<Vec<OpId>> = stage
                .iter()
                .map(|g| g.iter().map(|&b| kernel_ops[b]).collect())
                .collect();
            let latency = cost.stage_latency(&groups_ops) + tail;
            if latency < best {
                best = latency;
                best_stage = stage;
            }
        }
        assert!(best.is_finite(), "no candidate stage from state {mask:#b}");
        memo.insert(mask, (best, best_stage));
    }

    // Reconstruct.
    let mut stages = Vec::new();
    let mut mask = 0u64;
    while mask != full {
        let (_, stage) = memo.get(&mask).expect("state solved").clone();
        let add: u64 = stage.iter().flatten().fold(0, |m, &b| m | (1 << b));
        stages.push(Stage {
            groups: stage
                .iter()
                .map(|g| g.iter().map(|&b| kernel_ops[b]).collect())
                .collect(),
        });
        mask |= add;
    }
    let schedule = Schedule { stages };
    debug_assert_eq!(schedule.validate(graph), Ok(()));
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::OpKind;
    use crate::lower::lower_sppnet;
    use dcd_gpusim::DeviceSpec;
    use dcd_nn::SppNetConfig;

    fn diamond() -> Graph {
        let mut g = Graph::new();
        let input = g.add_input("in", (8, 16, 16));
        let a = g.add("a", OpKind::Relu, vec![input]);
        let b = g.add("b", OpKind::AdaptivePool { out_size: 2 }, vec![a]);
        let c = g.add("c", OpKind::AdaptivePool { out_size: 1 }, vec![a]);
        g.add("d", OpKind::Concat, vec![b, c]);
        g
    }

    #[test]
    fn sequential_is_one_op_per_stage() {
        let g = diamond();
        let s = sequential_schedule(&g);
        assert_eq!(s.num_stages(), 4);
        assert_eq!(s.max_width(), 1);
        assert_eq!(s.validate(&g), Ok(()));
    }

    #[test]
    fn greedy_runs_branches_in_one_stage() {
        let g = diamond();
        let s = greedy_schedule(&g);
        assert_eq!(s.validate(&g), Ok(()));
        assert_eq!(s.num_stages(), 3); // a | {b,c} | d
        assert_eq!(s.stages[1].width(), 2);
    }

    #[test]
    fn ios_beats_or_matches_sequential_and_greedy() {
        let g = diamond();
        let dev = DeviceSpec::test_gpu();
        let mut cost = StageCostModel::new(&g, dev, 1);
        let ios = ios_schedule(&g, &mut cost, IosOptions::default());
        assert_eq!(ios.validate(&g), Ok(()));
        let t_ios = cost.schedule_latency(&ios);
        let t_seq = cost.schedule_latency(&sequential_schedule(&g));
        let t_greedy = cost.schedule_latency(&greedy_schedule(&g));
        assert!(t_ios <= t_seq, "ios {t_ios} > sequential {t_seq}");
        assert!(t_ios <= t_greedy, "ios {t_ios} > greedy {t_greedy}");
        assert!(
            t_ios < t_seq,
            "ios should strictly beat the sequential baseline"
        );
    }

    #[test]
    fn ios_on_pure_chain_merges_into_groups() {
        // in → relu → relu → relu: best schedule is one stage, one group.
        let mut g = Graph::new();
        let input = g.add_input("in", (4, 8, 8));
        let a = g.add("a", OpKind::Relu, vec![input]);
        let b = g.add("b", OpKind::Relu, vec![a]);
        g.add("c", OpKind::Relu, vec![b]);
        let dev = DeviceSpec::test_gpu();
        let mut cost = StageCostModel::new(&g, dev, 1);
        let s = ios_schedule(&g, &mut cost, IosOptions::default());
        assert_eq!(s.validate(&g), Ok(()));
        assert_eq!(
            s.num_stages(),
            1,
            "chain should fuse into one stage: {}",
            s.render(&g)
        );
        assert_eq!(s.stages[0].groups[0], vec![1, 2, 3]);
    }

    #[test]
    fn ios_respects_max_group_len() {
        let mut g = Graph::new();
        let mut prev = g.add_input("in", (4, 8, 8));
        for i in 0..5 {
            prev = g.add(format!("r{i}"), OpKind::Relu, vec![prev]);
        }
        let dev = DeviceSpec::test_gpu();
        let mut cost = StageCostModel::new(&g, dev, 1);
        let s = ios_schedule(
            &g,
            &mut cost,
            IosOptions::new().with_max_groups(2).with_max_group_len(2),
        );
        assert_eq!(s.validate(&g), Ok(()));
        assert!(s
            .stages
            .iter()
            .all(|st| st.groups.iter().all(|gr| gr.len() <= 2)));
        assert_eq!(s.num_stages(), 3); // 5 ops in chains of ≤2 → ≥3 stages
    }

    #[test]
    fn ios_schedules_full_sppnet() {
        let cfg = SppNetConfig::original();
        let g = lower_sppnet(&cfg, (100, 100));
        let dev = DeviceSpec::rtx_a5500();
        let mut cost = StageCostModel::new(&g, dev, 1);
        let s = ios_schedule(&g, &mut cost, IosOptions::default());
        assert_eq!(s.validate(&g), Ok(()));
        // The SPP branches must end up in one parallel stage.
        let spp_stage = s
            .stages
            .iter()
            .find(|st| st.ops().any(|op| g.ops[op].name == "spp4"));
        assert!(spp_stage.is_some());
        // IOS should use fewer stages than the sequential baseline.
        assert!(s.num_stages() < sequential_schedule(&g).num_stages());
        let t_ios = cost.schedule_latency(&s);
        let t_seq = cost.schedule_latency(&sequential_schedule(&g));
        assert!(t_ios < t_seq, "IOS {t_ios} must beat sequential {t_seq}");
    }

    #[test]
    fn dp_is_deterministic() {
        let g = diamond();
        let dev = DeviceSpec::test_gpu();
        let mut c1 = StageCostModel::new(&g, dev.clone(), 1);
        let mut c2 = StageCostModel::new(&g, dev, 1);
        let s1 = ios_schedule(&g, &mut c1, IosOptions::default());
        let s2 = ios_schedule(&g, &mut c2, IosOptions::default());
        assert_eq!(s1, s2);
    }
}
