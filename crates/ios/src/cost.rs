//! Stage cost model: candidate stages are "profiled" on the simulator.
//!
//! IOS measures every candidate stage on the target device and feeds the
//! measured latency to its dynamic program. Here the target device is
//! `dcd-gpusim`; a stage is costed by actually simulating it — launch each
//! group on its own stream, barrier, read the host clock — and memoizing the
//! result.

use crate::graph::{Graph, OpId};
use dcd_gpusim::{DeviceSpec, Gpu};
use std::collections::HashMap;

/// Memoizing stage profiler.
pub struct StageCostModel<'g> {
    graph: &'g Graph,
    device: DeviceSpec,
    batch: usize,
    memo: HashMap<Vec<Vec<OpId>>, f64>,
}

impl<'g> StageCostModel<'g> {
    /// Creates a cost model for one graph / device / batch size.
    pub fn new(graph: &'g Graph, device: DeviceSpec, batch: usize) -> Self {
        assert!(batch > 0, "batch must be positive");
        StageCostModel {
            graph,
            device,
            batch,
            memo: HashMap::new(),
        }
    }

    /// The batch size this model profiles at.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Latency of one stage in ns: concurrent groups on separate streams,
    /// sequential ops within a group, one device barrier at the end.
    pub fn stage_latency(&mut self, groups: &[Vec<OpId>]) -> f64 {
        if let Some(&t) = self.memo.get(groups) {
            return t;
        }
        // Profile on a pristine context with free module loading (module
        // loads are a per-process cost, not a per-stage cost).
        let mut spec = self.device.clone();
        spec.api_library_load_ns = 0;
        let mut gpu = Gpu::new(spec);
        let mut streams = vec![0usize];
        for _ in 1..groups.len() {
            streams.push(gpu.create_stream());
        }
        let t0 = gpu.host_ns();
        // Interleave launches across groups the way the executor's host
        // thread does (round-robin), so host-dispatch overlap is modelled
        // the same way it will execute.
        let max_len = groups.iter().map(|g| g.len()).max().unwrap_or(0);
        for i in 0..max_len {
            for (gi, group) in groups.iter().enumerate() {
                if let Some(&op) = group.get(i) {
                    gpu.launch_kernel(streams[gi], self.graph.kernel_for(op, self.batch));
                }
            }
        }
        gpu.device_synchronize();
        let latency = (gpu.host_ns() - t0) as f64;
        self.memo.insert(groups.to_vec(), latency);
        latency
    }

    /// Total latency of a full schedule under this model: the sum of its
    /// stage latencies (stages are separated by barriers, so they add).
    pub fn schedule_latency(&mut self, schedule: &crate::schedule::Schedule) -> f64 {
        schedule
            .stages
            .iter()
            .map(|s| self.stage_latency(&s.groups))
            .sum()
    }

    /// Number of distinct stages profiled so far.
    pub fn profiled_stages(&self) -> usize {
        self.memo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::OpKind;
    use crate::schedule::{Schedule, Stage};

    /// in → a → {b, c} → d with small pool branches.
    fn diamond() -> Graph {
        let mut g = Graph::new();
        let input = g.add_input("in", (8, 16, 16));
        let a = g.add("a", OpKind::Relu, vec![input]);
        let b = g.add("b", OpKind::AdaptivePool { out_size: 2 }, vec![a]);
        let c = g.add("c", OpKind::AdaptivePool { out_size: 1 }, vec![a]);
        g.add("d", OpKind::Concat, vec![b, c]);
        g
    }

    #[test]
    fn parallel_stage_cheaper_than_two_solo_stages() {
        let g = diamond();
        let mut m = StageCostModel::new(&g, DeviceSpec::test_gpu(), 1);
        let parallel = m.stage_latency(&[vec![2], vec![3]]);
        let solo_b = m.stage_latency(&[vec![2]]);
        let solo_c = m.stage_latency(&[vec![3]]);
        assert!(
            parallel < solo_b + solo_c,
            "parallel {parallel} vs serial {}",
            solo_b + solo_c
        );
    }

    #[test]
    fn chained_group_cheaper_than_two_stages() {
        // One group [a, b] = one barrier; two stages = two barriers.
        let g = diamond();
        let mut m = StageCostModel::new(&g, DeviceSpec::test_gpu(), 1);
        let chained = m.stage_latency(&[vec![1, 2]]);
        let split = m.stage_latency(&[vec![1]]) + m.stage_latency(&[vec![2]]);
        assert!(chained < split, "chained {chained} vs split {split}");
    }

    #[test]
    fn memoization_hits() {
        let g = diamond();
        let mut m = StageCostModel::new(&g, DeviceSpec::test_gpu(), 1);
        let a = m.stage_latency(&[vec![1]]);
        let b = m.stage_latency(&[vec![1]]);
        assert_eq!(a, b);
        assert_eq!(m.profiled_stages(), 1);
    }

    #[test]
    fn schedule_latency_sums_stages() {
        let g = diamond();
        let mut m = StageCostModel::new(&g, DeviceSpec::test_gpu(), 1);
        let s = Schedule {
            stages: vec![
                Stage::solo(1),
                Stage {
                    groups: vec![vec![2], vec![3]],
                },
                Stage::solo(4),
            ],
        };
        let total = m.schedule_latency(&s);
        let parts = m.stage_latency(&[vec![1]])
            + m.stage_latency(&[vec![2], vec![3]])
            + m.stage_latency(&[vec![4]]);
        assert!((total - parts).abs() < 1e-9);
    }

    #[test]
    fn latency_grows_with_batch() {
        let g = diamond();
        let mut m1 = StageCostModel::new(&g, DeviceSpec::test_gpu(), 1);
        let mut m64 = StageCostModel::new(&g, DeviceSpec::test_gpu(), 64);
        assert!(m64.stage_latency(&[vec![1]]) > m1.stage_latency(&[vec![1]]));
    }
}
