//! Stage cost model: candidate stages are "profiled" on the simulator.
//!
//! IOS measures every candidate stage on the target device and feeds the
//! measured latency to its dynamic program. Here the target device is
//! `dcd-gpusim`; a stage is costed by actually simulating it — launch each
//! group on its own stream, barrier, read the host clock — and memoizing the
//! result.
//!
//! Attaching a [`SpanCalibration`] switches the model to throughput rates
//! *measured* from `dcd-obs` spans (host GEMM/conv flop rates) where
//! available, mirroring how the real IOS feeds measured per-operator timing
//! back into its dynamic program.

use crate::graph::{Graph, OpId};
use dcd_gpusim::{DeviceSpec, Gpu, KernelClass};
use dcd_obs::{Category, MetricsSnapshot, SpanRecord};
use std::collections::HashMap;

/// Measured per-class throughput (flops per ns) distilled from host spans
/// and the metrics registry. Classes without a measurement fall back to the
/// simulator's analytic roofline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanCalibration {
    rates: HashMap<KernelClass, f64>,
}

impl SpanCalibration {
    /// An empty calibration (every class analytic).
    pub fn new() -> Self {
        SpanCalibration::default()
    }

    /// Derives rates from recorded host spans plus the metrics snapshot:
    /// the GEMM rate is the `gemm.flops` counter divided by the summed
    /// duration of `Category::Gemm` spans, and likewise `conv.flops` over
    /// `Category::Conv`. Classes with no spans or a zero counter stay
    /// uncalibrated.
    pub fn from_observations(spans: &[SpanRecord], metrics: &MetricsSnapshot) -> Self {
        let mut cal = SpanCalibration::new();
        for (class, cat, counter) in [
            (KernelClass::Gemm, Category::Gemm, "gemm.flops"),
            (KernelClass::Conv, Category::Conv, "conv.flops"),
        ] {
            let ns: u64 = spans
                .iter()
                .filter(|s| s.cat == cat)
                .map(|s| s.dur_ns)
                .sum();
            let flops = metrics.counter(counter).unwrap_or(0);
            if ns > 0 && flops > 0 {
                cal.rates.insert(class, flops as f64 / ns as f64);
            }
        }
        cal
    }

    /// Pins the rate of one class, flops per ns.
    pub fn set_rate(&mut self, class: KernelClass, flops_per_ns: f64) {
        assert!(flops_per_ns > 0.0, "rate must be positive");
        self.rates.insert(class, flops_per_ns);
    }

    /// The measured rate for a class, if one was derived.
    pub fn rate(&self, class: KernelClass) -> Option<f64> {
        self.rates.get(&class).copied()
    }

    /// True when no class has a measured rate.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }
}

/// Memoizing stage profiler.
pub struct StageCostModel<'g> {
    graph: &'g Graph,
    device: DeviceSpec,
    batch: usize,
    memo: HashMap<Vec<Vec<OpId>>, f64>,
    calibration: Option<SpanCalibration>,
}

impl<'g> StageCostModel<'g> {
    /// Creates a cost model for one graph / device / batch size.
    pub fn new(graph: &'g Graph, device: DeviceSpec, batch: usize) -> Self {
        assert!(batch > 0, "batch must be positive");
        StageCostModel {
            graph,
            device,
            batch,
            memo: HashMap::new(),
            calibration: None,
        }
    }

    /// Builder form of [`StageCostModel::set_calibration`].
    pub fn with_calibration(mut self, calibration: SpanCalibration) -> Self {
        self.set_calibration(Some(calibration));
        self
    }

    /// Attaches (or clears, with `None`) measured calibration. Invalidates
    /// the memo: costs under the two models are not comparable.
    pub fn set_calibration(&mut self, calibration: Option<SpanCalibration>) {
        self.memo.clear();
        self.calibration = calibration.filter(|c| !c.is_empty());
    }

    /// The active calibration, if any.
    pub fn calibration(&self) -> Option<&SpanCalibration> {
        self.calibration.as_ref()
    }

    /// The batch size this model profiles at.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Latency of one stage in ns: concurrent groups on separate streams,
    /// sequential ops within a group, one device barrier at the end.
    /// With a calibration attached, per-op costs use measured flop rates
    /// where available instead of the pure simulation.
    pub fn stage_latency(&mut self, groups: &[Vec<OpId>]) -> f64 {
        if let Some(&t) = self.memo.get(groups) {
            return t;
        }
        if self.calibration.is_some() {
            let t = self.calibrated_stage_latency(groups);
            self.memo.insert(groups.to_vec(), t);
            return t;
        }
        // Profile on a pristine context with free module loading (module
        // loads are a per-process cost, not a per-stage cost).
        let mut spec = self.device.clone();
        spec.api_library_load_ns = 0;
        let mut gpu = Gpu::new(spec);
        let mut streams = vec![0usize];
        for _ in 1..groups.len() {
            streams.push(gpu.create_stream());
        }
        let t0 = gpu.host_ns();
        // Interleave launches across groups the way the executor's host
        // thread does (round-robin), so host-dispatch overlap is modelled
        // the same way it will execute.
        let max_len = groups.iter().map(|g| g.len()).max().unwrap_or(0);
        for i in 0..max_len {
            for (gi, group) in groups.iter().enumerate() {
                if let Some(&op) = group.get(i) {
                    gpu.launch_kernel(streams[gi], self.graph.kernel_for(op, self.batch));
                }
            }
        }
        gpu.device_synchronize();
        let latency = (gpu.host_ns() - t0) as f64;
        self.memo.insert(groups.to_vec(), latency);
        latency
    }

    /// Analytic/measured hybrid: each op costs `flops / measured_rate` when
    /// its class is calibrated, the simulator's roofline otherwise; a stage
    /// is the slowest group (groups run concurrently) plus per-launch and
    /// barrier overheads.
    fn calibrated_stage_latency(&self, groups: &[Vec<OpId>]) -> f64 {
        let cal = self.calibration.as_ref().expect("calibration attached");
        let mut slowest = 0.0f64;
        let mut launches = 0u64;
        for group in groups {
            let mut t = 0.0f64;
            for &op in group {
                let desc = self.graph.kernel_for(op, self.batch);
                launches += 1;
                t += match cal.rate(desc.class) {
                    Some(rate) if desc.flops > 0.0 => desc.flops / rate,
                    _ => desc.isolated_ns(&self.device),
                };
            }
            slowest = slowest.max(t);
        }
        slowest
            + launches as f64 * self.device.api_launch_ns as f64
            + self.device.api_sync_ns as f64
    }

    /// Total latency of a full schedule under this model: the sum of its
    /// stage latencies (stages are separated by barriers, so they add).
    pub fn schedule_latency(&mut self, schedule: &crate::schedule::Schedule) -> f64 {
        schedule
            .stages
            .iter()
            .map(|s| self.stage_latency(&s.groups))
            .sum()
    }

    /// Number of distinct stages profiled so far.
    pub fn profiled_stages(&self) -> usize {
        self.memo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::OpKind;
    use crate::schedule::{Schedule, Stage};

    /// in → a → {b, c} → d with small pool branches.
    fn diamond() -> Graph {
        let mut g = Graph::new();
        let input = g.add_input("in", (8, 16, 16));
        let a = g.add("a", OpKind::Relu, vec![input]);
        let b = g.add("b", OpKind::AdaptivePool { out_size: 2 }, vec![a]);
        let c = g.add("c", OpKind::AdaptivePool { out_size: 1 }, vec![a]);
        g.add("d", OpKind::Concat, vec![b, c]);
        g
    }

    #[test]
    fn parallel_stage_cheaper_than_two_solo_stages() {
        let g = diamond();
        let mut m = StageCostModel::new(&g, DeviceSpec::test_gpu(), 1);
        let parallel = m.stage_latency(&[vec![2], vec![3]]);
        let solo_b = m.stage_latency(&[vec![2]]);
        let solo_c = m.stage_latency(&[vec![3]]);
        assert!(
            parallel < solo_b + solo_c,
            "parallel {parallel} vs serial {}",
            solo_b + solo_c
        );
    }

    #[test]
    fn chained_group_cheaper_than_two_stages() {
        // One group [a, b] = one barrier; two stages = two barriers.
        let g = diamond();
        let mut m = StageCostModel::new(&g, DeviceSpec::test_gpu(), 1);
        let chained = m.stage_latency(&[vec![1, 2]]);
        let split = m.stage_latency(&[vec![1]]) + m.stage_latency(&[vec![2]]);
        assert!(chained < split, "chained {chained} vs split {split}");
    }

    #[test]
    fn memoization_hits() {
        let g = diamond();
        let mut m = StageCostModel::new(&g, DeviceSpec::test_gpu(), 1);
        let a = m.stage_latency(&[vec![1]]);
        let b = m.stage_latency(&[vec![1]]);
        assert_eq!(a, b);
        assert_eq!(m.profiled_stages(), 1);
    }

    #[test]
    fn schedule_latency_sums_stages() {
        let g = diamond();
        let mut m = StageCostModel::new(&g, DeviceSpec::test_gpu(), 1);
        let s = Schedule {
            stages: vec![
                Stage::solo(1),
                Stage {
                    groups: vec![vec![2], vec![3]],
                },
                Stage::solo(4),
            ],
        };
        let total = m.schedule_latency(&s);
        let parts = m.stage_latency(&[vec![1]])
            + m.stage_latency(&[vec![2], vec![3]])
            + m.stage_latency(&[vec![4]]);
        assert!((total - parts).abs() < 1e-9);
    }

    #[test]
    fn latency_grows_with_batch() {
        let g = diamond();
        let mut m1 = StageCostModel::new(&g, DeviceSpec::test_gpu(), 1);
        let mut m64 = StageCostModel::new(&g, DeviceSpec::test_gpu(), 64);
        assert!(m64.stage_latency(&[vec![1]]) > m1.stage_latency(&[vec![1]]));
    }

    #[test]
    fn calibration_from_observations_derives_rates() {
        let spans = vec![
            SpanRecord {
                name: "gemm",
                cat: Category::Gemm,
                tid: 0,
                depth: 0,
                start_ns: 0,
                dur_ns: 1_000,
            },
            SpanRecord {
                name: "gemm",
                cat: Category::Gemm,
                tid: 0,
                depth: 0,
                start_ns: 2_000,
                dur_ns: 1_000,
            },
        ];
        let metrics = MetricsSnapshot {
            counters: vec![dcd_obs::CounterSnapshot {
                name: "gemm.flops".to_string(),
                value: 40_000,
            }],
            histograms: Vec::new(),
        };
        let cal = SpanCalibration::from_observations(&spans, &metrics);
        // 40 kflop over 2 µs of gemm spans = 20 flops/ns.
        assert!((cal.rate(KernelClass::Gemm).unwrap() - 20.0).abs() < 1e-9);
        assert!(cal.rate(KernelClass::Conv).is_none());
        assert!(!cal.is_empty());
        // No spans / no counter → empty calibration.
        assert!(SpanCalibration::from_observations(&[], &MetricsSnapshot::default()).is_empty());
    }

    #[test]
    fn calibrated_model_uses_measured_rate_and_clears_memo() {
        let g = diamond();
        let mut m = StageCostModel::new(&g, DeviceSpec::test_gpu(), 1);
        let simulated = m.stage_latency(&[vec![1]]);
        assert_eq!(m.profiled_stages(), 1);
        // A pool op has flops > 0; pin its class to an absurdly fast rate so
        // the calibrated path is observably different from the simulation.
        let mut cal = SpanCalibration::new();
        cal.set_rate(KernelClass::Pool, 1e12);
        m.set_calibration(Some(cal));
        assert_eq!(m.profiled_stages(), 0, "memo must clear on recalibration");
        let calibrated = m.stage_latency(&[vec![2]]);
        assert!(calibrated > 0.0);
        let analytic_relu = m.stage_latency(&[vec![1]]);
        assert!(
            analytic_relu > 0.0,
            "uncalibrated classes fall back to the roofline"
        );
        assert!(simulated > 0.0);
    }

    #[test]
    fn calibrated_parallel_stage_still_cheaper_than_serial() {
        // The DP's core invariant must hold under measured costs too.
        let g = diamond();
        let mut cal = SpanCalibration::new();
        cal.set_rate(KernelClass::Pool, 5.0);
        let mut m = StageCostModel::new(&g, DeviceSpec::test_gpu(), 1).with_calibration(cal);
        let parallel = m.stage_latency(&[vec![2], vec![3]]);
        let serial = m.stage_latency(&[vec![2]]) + m.stage_latency(&[vec![3]]);
        assert!(parallel < serial, "parallel {parallel} vs serial {serial}");
    }

    #[test]
    fn empty_calibration_keeps_simulated_costs() {
        let g = diamond();
        let mut m = StageCostModel::new(&g, DeviceSpec::test_gpu(), 1);
        let simulated = m.stage_latency(&[vec![1]]);
        m.set_calibration(Some(SpanCalibration::new()));
        assert!(m.calibration().is_none(), "empty calibration is dropped");
        assert_eq!(m.stage_latency(&[vec![1]]), simulated);
    }
}
