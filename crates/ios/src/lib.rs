//! # dcd-ios
//!
//! A clean-room implementation of the **Inter-Operator Scheduler** (Ding et
//! al., MLSys 2021) as used by the paper to optimize SPP-Net inference.
//!
//! IOS partitions a model's operator DAG into sequential **stages**; each
//! stage holds one or more **groups** that execute *concurrently* (one CUDA
//! stream per group), and the ops inside a group execute sequentially. A
//! barrier synchronizes the device after every stage. A dynamic program over
//! dependence-closed op subsets picks the stage partition with the lowest
//! total latency, where each candidate stage is *profiled on the device*
//! (here: the `dcd-gpusim` simulator, playing the role of the paper's RTX
//! A5500).
//!
//! Three schedulers are provided, forming the ablation of DESIGN.md:
//!
//! * [`dp::sequential_schedule`] — one op per stage (the paper's
//!   "sequential" baseline: maximum barriers, no concurrency);
//! * [`dp::greedy_schedule`] — Nimble-style: every ready op starts
//!   immediately, one stage per wavefront (maximum width, no grouping
//!   choice);
//! * [`dp::ios_schedule`] — the IOS dynamic program (chain grouping + branch
//!   parallelism, latency-optimal over its candidate space).

pub mod cluster;
pub mod cost;
pub mod dp;
pub mod executor;
pub mod graph;
pub mod hios;
pub mod lower;
pub mod schedule;

pub use cluster::{measure_cluster, split_batch, ClusterConfig, ClusterStats};
pub use cost::{SpanCalibration, StageCostModel};
pub use dp::{greedy_schedule, ios_schedule, sequential_schedule, IosOptions};
pub use executor::{measure_latency, ExecError, Executor, RunStats};
pub use graph::{Graph, Op, OpId, OpKind};
pub use hios::{HiosExecutor, Placement};
pub use lower::{branched_graph, lower_sppnet};
pub use schedule::{Schedule, Stage};
