//! Property-based tests: scheduler correctness over random DAGs and
//! simulator invariants.

use dcd_gpusim::{DeviceSpec, FaultPlan, Gpu, GpuError};
use dcd_ios::{
    greedy_schedule, ios_schedule, sequential_schedule, Executor, Graph, IosOptions, OpKind,
    StageCostModel,
};
use proptest::prelude::*;

/// Builds a random layered DAG of cheap ops: `widths[i]` ops in layer `i`,
/// each consuming 1–2 ops of the previous layer via a Concat/Relu mix, all
/// flattened vectors so shapes always match.
fn random_graph(widths: &[usize], seed: u64) -> Graph {
    let mut g = Graph::new();
    let input = g.add_input("in", (8, 1, 1));
    let mut prev = vec![input];
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next_rand = move |n: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as usize) % n.max(1)
    };
    for (li, &width) in widths.iter().enumerate() {
        let mut layer = Vec::with_capacity(width);
        for oi in 0..width {
            // Choose 1 or 2 producers from the previous layer.
            let a = prev[next_rand(prev.len())];
            let two = prev.len() > 1 && next_rand(2) == 1;
            if two {
                let mut b = prev[next_rand(prev.len())];
                if b == a {
                    b = prev[(prev.iter().position(|&p| p == a).unwrap() + 1) % prev.len()];
                }
                // Concat keeps shapes flat: (c,1,1)+(c,1,1).
                layer.push(g.add(format!("c{li}_{oi}"), OpKind::Concat, vec![a, b]));
            } else {
                layer.push(g.add(format!("r{li}_{oi}"), OpKind::Relu, vec![a]));
            }
        }
        prev = layer;
    }
    // Converge to one output so the graph is a valid block.
    if prev.len() > 1 {
        g.add("out", OpKind::Concat, prev);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_schedulers_produce_valid_schedules(
        w1 in 1usize..4, w2 in 1usize..4, w3 in 1usize..3, seed in 0u64..10_000,
    ) {
        let g = random_graph(&[w1, w2, w3], seed);
        prop_assert_eq!(sequential_schedule(&g).validate(&g), Ok(()));
        prop_assert_eq!(greedy_schedule(&g).validate(&g), Ok(()));
        let mut cost = StageCostModel::new(&g, DeviceSpec::test_gpu(), 1);
        let ios = ios_schedule(&g, &mut cost, IosOptions::default());
        prop_assert_eq!(ios.validate(&g), Ok(()));
    }

    #[test]
    fn ios_never_loses_to_baselines(
        w1 in 1usize..4, w2 in 1usize..4, seed in 0u64..10_000,
    ) {
        let g = random_graph(&[w1, w2], seed);
        let dev = DeviceSpec::test_gpu();
        let mut cost = StageCostModel::new(&g, dev, 1);
        let ios = ios_schedule(&g, &mut cost, IosOptions::default());
        let t_ios = cost.schedule_latency(&ios);
        let t_seq = cost.schedule_latency(&sequential_schedule(&g));
        let t_greedy = cost.schedule_latency(&greedy_schedule(&g));
        prop_assert!(t_ios <= t_seq + 1.0, "ios {} > seq {}", t_ios, t_seq);
        prop_assert!(t_ios <= t_greedy + 1.0, "ios {} > greedy {}", t_ios, t_greedy);
    }

    #[test]
    fn schedules_cover_each_kernel_op_exactly_once(
        w1 in 1usize..4, w2 in 1usize..4, w3 in 1usize..3, seed in 0u64..10_000,
    ) {
        let g = random_graph(&[w1, w2, w3], seed);
        let mut cost = StageCostModel::new(&g, DeviceSpec::test_gpu(), 1);
        let ios = ios_schedule(&g, &mut cost, IosOptions::default());
        let mut scheduled: Vec<_> = ios
            .stages
            .iter()
            .flat_map(|s| s.ops().collect::<Vec<_>>())
            .collect();
        scheduled.sort_unstable();
        let mut expected = g.kernel_ops();
        expected.sort_unstable();
        prop_assert_eq!(scheduled, expected);
    }

    #[test]
    fn executor_latency_positive_and_monotone_in_batch(
        w1 in 1usize..3, w2 in 1usize..3, seed in 0u64..1_000,
    ) {
        let g = random_graph(&[w1, w2], seed);
        let dev = DeviceSpec::test_gpu();
        let s = sequential_schedule(&g);
        let t1 = dcd_ios::measure_latency(&g, &s, 1, &dev, 0, 1).mean_ns;
        let t16 = dcd_ios::measure_latency(&g, &s, 16, &dev, 0, 1).mean_ns;
        prop_assert!(t1 > 0.0);
        prop_assert!(t16 >= t1 * 0.99, "batch 16 ({t16}) cheaper than batch 1 ({t1})");
    }

    #[test]
    fn batch_degradation_is_monotone_and_terminates_at_one(
        target in 1usize..128, headroom in 0usize..8, seed in 0u64..1_000,
    ) {
        // Under arbitrary VRAM pressure, the OOM-driven halving loop
        // strictly decreases the batch, stops at the first fit, and in the
        // worst case bottoms out at batch 1 (which always fits, because the
        // runner was constructed there).
        let g = random_graph(&[2, 2], seed);
        let spec = DeviceSpec::test_gpu();
        // Leave room for exactly `headroom` batches' worth of activations.
        let fits = g.weight_bytes() + g.activation_bytes(headroom.max(1));
        let plan = FaultPlan {
            vram_pressure_bytes: spec.mem_capacity.saturating_sub(fits),
            ..FaultPlan::none()
        };
        let mut gpu = Gpu::new(spec);
        gpu.set_fault_plan(plan);
        let mut exec = Executor::try_with_gpu(&g, sequential_schedule(&g), 1, gpu)
            .expect("batch 1 always fits");
        let mut batch = target;
        let mut degradations = 0usize;
        let achieved = loop {
            prop_assert!(batch >= 1, "halving loop dropped below 1");
            match exec.set_batch(batch) {
                Ok(()) => break batch,
                Err(GpuError::OutOfMemory(_)) => {
                    prop_assert!(batch > 1, "batch 1 must never OOM here");
                    let next = batch / 2;
                    prop_assert!(next < batch, "degradation must be strictly monotone");
                    batch = next;
                    degradations += 1;
                }
                Err(e) => prop_assert!(false, "unexpected error {}", e),
            }
        };
        prop_assert_eq!(achieved, exec.batch());
        prop_assert!(achieved <= target);
        prop_assert!(achieved >= 1);
        prop_assert!(achieved <= headroom.max(1), "achieved batch cannot exceed the headroom");
        // Halving from `target` reaches the fit in at most log2(target)+1 steps.
        prop_assert!(degradations <= target.ilog2() as usize + 1);
        // The degraded executor still runs.
        prop_assert!(exec.try_run_inference(u64::MAX).is_ok());
    }

    #[test]
    fn stage_cost_superadditive_under_serialization(
        seed in 0u64..10_000,
    ) {
        // Running two ops in one chained group never costs more than two
        // separate stages (one barrier saved), for any random pair.
        let g = random_graph(&[2, 2], seed);
        let ops = g.kernel_ops();
        let mut cost = StageCostModel::new(&g, DeviceSpec::test_gpu(), 1);
        // Find a dependent chain pair (a -> b) if one exists.
        for &b in &ops {
            for &a in &g.ops[b].inputs {
                if g.ops[a].has_kernel() {
                    let chained = cost.stage_latency(&[vec![a, b]]);
                    let split = cost.stage_latency(&[vec![a]]) + cost.stage_latency(&[vec![b]]);
                    prop_assert!(chained <= split, "chained {} > split {}", chained, split);
                }
            }
        }
    }
}
