//! # dcd-profiler
//!
//! nsys-style analysis over `dcd-gpusim` traces. Three views reproduce the
//! paper's §7:
//!
//! * [`api_report`] — per-CUDA-API call counts, total time and share of the
//!   API timeline (Fig 8: `cuLibraryLoadData` vs `cudaDeviceSynchronize`);
//! * [`memop_report`] — DMA transfer statistics and the per-image memop
//!   timing the paper plots against batch size (Fig 7);
//! * [`kernel_report`] — device time share per operator class (Table 3:
//!   Matrix Multiplication / Pooling / Conv).
//!
//! [`render_stats`] renders all three as a text report shaped like
//! `nsys profile --stats=true` output.

pub mod report;
pub mod timeline;

pub use report::{
    api_report, fault_report, kernel_report, memop_report, render_stats, ApiUsage, FaultCount,
    KernelShare, MemopStats,
};
pub use timeline::{timeline, TimelineStats};
