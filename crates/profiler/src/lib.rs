//! # dcd-profiler
//!
//! nsys-style analysis over `dcd-gpusim` traces, reached through one value
//! type: [`ProfileReport::from_trace`]. The report reproduces the paper's
//! §7 views with typed accessors:
//!
//! * [`ProfileReport::api`] / [`ProfileReport::api_pct`] — per-CUDA-API call
//!   counts, total time and share of the API timeline (Fig 8:
//!   `cuLibraryLoadData` vs `cudaDeviceSynchronize`);
//! * [`ProfileReport::memops`] — DMA transfer statistics and the per-image
//!   memop timing the paper plots against batch size (Fig 7);
//! * [`ProfileReport::kernels`] / [`ProfileReport::kernel_pct`] — device time
//!   share per operator class (Table 3);
//! * [`ProfileReport::timeline`] — busy spans, occupancy and concurrency;
//! * [`ProfileReport::render`] — all of the above as a text report shaped
//!   like `nsys profile --stats=true` output.
//!
//! Attaching host spans ([`ProfileReport::with_host_spans`], recorded by
//! `dcd-obs`) adds a host section to the text report and unlocks
//! [`ProfileReport::chrome_trace`]: a merged host+device timeline in
//! Chrome-trace JSON that loads directly in [Perfetto](https://ui.perfetto.dev).
//!
//! The original free functions (`api_report`, `render_stats`, …) remain as
//! `#[deprecated]` wrappers for one release cycle.

pub mod merge;
pub mod report;
pub mod timeline;

pub use merge::{
    ChromeArgs, ChromeEvent, ChromeTrace, API_TID, DEVICE_PID, DMA_TID, FAULT_TID, HOST_PID,
};
#[allow(deprecated)]
pub use report::{
    api_pct, api_report, fault_report, kernel_pct, kernel_report, memop_report, render_stats,
};
pub use report::{ApiUsage, FaultCount, HostOpStats, KernelShare, MemopStats, ProfileReport};
#[allow(deprecated)]
pub use timeline::timeline;
pub use timeline::TimelineStats;
