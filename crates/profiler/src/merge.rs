//! Merged host+device timeline export in Chrome-trace (Perfetto) JSON.
//!
//! Host spans (from `dcd-obs`, wall-clock ns) and simulated device records
//! (from `dcd-gpusim`, simulated ns) live in different clock domains. The
//! exporter normalizes each domain so its earliest event sits at t = 0 and
//! lays them out as two Perfetto processes: pid 1 = host (one track per
//! recording thread), pid 2 = simulated device (one track per stream, plus
//! API, DMA and fault tracks). Absolute alignment between the domains is
//! not meaningful — the device clock is simulated — but relative structure
//! within each is, which is what the paper's nsys figures read off too.

use crate::report::ProfileReport;
use dcd_gpusim::TraceRecord;
use serde::{Deserialize, Serialize};

/// Process id of host (span) tracks in the exported timeline.
pub const HOST_PID: u32 = 1;
/// Process id of simulated-device tracks in the exported timeline.
pub const DEVICE_PID: u32 = 2;
/// Track id for simulated CUDA API call intervals.
pub const API_TID: u32 = 800;
/// Track id for simulated DMA transfers.
pub const DMA_TID: u32 = 900;
/// Track id for injected fault markers.
pub const FAULT_TID: u32 = 950;

/// Optional per-event payload (Perfetto shows it in the detail pane).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChromeArgs {
    /// Metadata payload (thread/process name) for `ph: "M"` events.
    pub name: Option<String>,
    /// Bytes moved, for DMA events.
    pub bytes: Option<u64>,
}

/// One event in Chrome trace-event format. Field names follow the format
/// spec, not Rust convention, because they are the JSON keys.
#[allow(non_snake_case)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeEvent {
    /// Event name (span name, kernel name, API label, …).
    pub name: String,
    /// Comma-free category tag (`gemm`, `kernel`, `memop`, …).
    pub cat: String,
    /// Phase: `"X"` complete event, `"M"` metadata.
    pub ph: String,
    /// Start, microseconds from the track's domain origin.
    pub ts: f64,
    /// Duration, microseconds (0 for instant/metadata events).
    pub dur: f64,
    /// Process id: [`HOST_PID`] or [`DEVICE_PID`].
    pub pid: u32,
    /// Track id within the process.
    pub tid: u32,
    /// Extra payload.
    pub args: ChromeArgs,
}

/// A complete Chrome-trace document: load at <https://ui.perfetto.dev>.
#[allow(non_snake_case)]
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChromeTrace {
    /// All events, metadata first, then complete events sorted per track.
    pub traceEvents: Vec<ChromeEvent>,
}

impl ChromeTrace {
    /// Serializes to compact JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("chrome trace serializes")
    }

    /// Serializes to indented JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("chrome trace serializes")
    }

    /// Parses a document produced by [`ChromeTrace::to_json`].
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("{e:?}"))
    }

    /// Events on one `(pid, tid)` track, metadata excluded.
    pub fn track(&self, pid: u32, tid: u32) -> Vec<&ChromeEvent> {
        self.traceEvents
            .iter()
            .filter(|e| e.pid == pid && e.tid == tid && e.ph == "X")
            .collect()
    }
}

fn meta(pid: u32, tid: u32, key: &str, value: &str) -> ChromeEvent {
    ChromeEvent {
        name: key.to_string(),
        cat: "__metadata".to_string(),
        ph: "M".to_string(),
        ts: 0.0,
        dur: 0.0,
        pid,
        tid,
        args: ChromeArgs {
            name: Some(value.to_string()),
            bytes: None,
        },
    }
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

impl ProfileReport {
    /// Builds the merged host+device Chrome-trace timeline. Host spans only
    /// appear if attached via [`ProfileReport::with_host_spans`]; a report
    /// without them still exports the full device view.
    pub fn chrome_trace(&self) -> ChromeTrace {
        let mut events: Vec<ChromeEvent> = Vec::new();
        let mut metadata: Vec<ChromeEvent> = Vec::new();

        // --- host process ---
        let spans = self.host_spans();
        if !spans.is_empty() {
            metadata.push(meta(HOST_PID, 0, "process_name", "host"));
            let t0 = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
            let mut tids: Vec<u32> = spans.iter().map(|s| s.tid).collect();
            tids.sort_unstable();
            tids.dedup();
            for tid in tids {
                metadata.push(meta(
                    HOST_PID,
                    tid,
                    "thread_name",
                    &format!("host thread {tid}"),
                ));
            }
            for s in spans {
                events.push(ChromeEvent {
                    name: s.name.to_string(),
                    cat: s.cat.label().to_string(),
                    ph: "X".to_string(),
                    ts: us(s.start_ns - t0),
                    dur: us(s.dur_ns),
                    pid: HOST_PID,
                    tid: s.tid,
                    args: ChromeArgs::default(),
                });
            }
        }

        // --- simulated device process ---
        let records = &self.device_trace().records;
        if !records.is_empty() {
            metadata.push(meta(DEVICE_PID, 0, "process_name", "device (gpusim)"));
            let t0 = records
                .iter()
                .map(|r| match r {
                    TraceRecord::Api { start_ns, .. }
                    | TraceRecord::Kernel { start_ns, .. }
                    | TraceRecord::Memop { start_ns, .. }
                    | TraceRecord::Fault { start_ns, .. } => *start_ns,
                })
                .min()
                .unwrap_or(0);
            let mut streams: Vec<usize> = Vec::new();
            let mut seen = (false, false, false); // (api, dma, fault)
            for r in records {
                match r {
                    TraceRecord::Api {
                        kind,
                        start_ns,
                        dur_ns,
                    } => {
                        seen.0 = true;
                        events.push(ChromeEvent {
                            name: kind.label().to_string(),
                            cat: "cuda_api".to_string(),
                            ph: "X".to_string(),
                            ts: us(start_ns - t0),
                            dur: us(*dur_ns),
                            pid: DEVICE_PID,
                            tid: API_TID,
                            args: ChromeArgs::default(),
                        });
                    }
                    TraceRecord::Kernel {
                        name,
                        class,
                        stream,
                        start_ns,
                        dur_ns,
                    } => {
                        if !streams.contains(stream) {
                            streams.push(*stream);
                        }
                        events.push(ChromeEvent {
                            name: name.clone(),
                            cat: format!("kernel.{}", class.label()),
                            ph: "X".to_string(),
                            ts: us(start_ns - t0),
                            dur: us(*dur_ns),
                            pid: DEVICE_PID,
                            tid: *stream as u32,
                            args: ChromeArgs::default(),
                        });
                    }
                    TraceRecord::Memop {
                        dir,
                        bytes,
                        start_ns,
                        dur_ns,
                    } => {
                        seen.1 = true;
                        events.push(ChromeEvent {
                            name: dir.label().to_string(),
                            cat: "memop".to_string(),
                            ph: "X".to_string(),
                            ts: us(start_ns - t0),
                            dur: us(*dur_ns),
                            pid: DEVICE_PID,
                            tid: DMA_TID,
                            args: ChromeArgs {
                                name: None,
                                bytes: Some(*bytes),
                            },
                        });
                    }
                    TraceRecord::Fault {
                        kind,
                        stream,
                        start_ns,
                    } => {
                        seen.2 = true;
                        events.push(ChromeEvent {
                            name: kind.label().to_string(),
                            cat: "fault".to_string(),
                            ph: "X".to_string(),
                            ts: us(start_ns - t0),
                            dur: 0.0,
                            pid: DEVICE_PID,
                            tid: FAULT_TID,
                            args: ChromeArgs {
                                name: stream.map(|s| format!("stream {s}")),
                                bytes: None,
                            },
                        });
                    }
                }
            }
            streams.sort_unstable();
            for s in streams {
                metadata.push(meta(
                    DEVICE_PID,
                    s as u32,
                    "thread_name",
                    &format!("stream {s}"),
                ));
            }
            if seen.0 {
                metadata.push(meta(DEVICE_PID, API_TID, "thread_name", "CUDA API"));
            }
            if seen.1 {
                metadata.push(meta(DEVICE_PID, DMA_TID, "thread_name", "DMA"));
            }
            if seen.2 {
                metadata.push(meta(DEVICE_PID, FAULT_TID, "thread_name", "faults"));
            }
        }

        // Stable, per-track-monotone layout: metadata first, then complete
        // events ordered by track and start time.
        events.sort_by(|a, b| {
            (a.pid, a.tid)
                .cmp(&(b.pid, b.tid))
                .then(a.ts.total_cmp(&b.ts))
        });
        metadata.extend(events);
        ChromeTrace {
            traceEvents: metadata,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcd_gpusim::{ApiKind, CopyDir, KernelClass, Trace};
    use dcd_obs::{Category, SpanRecord};

    fn device_trace() -> Trace {
        let mut t = Trace::new();
        t.push(TraceRecord::Api {
            kind: ApiKind::LaunchKernel,
            start_ns: 1000,
            dur_ns: 100,
        });
        t.push(TraceRecord::Memop {
            dir: CopyDir::H2D,
            bytes: 2048,
            start_ns: 1100,
            dur_ns: 50,
        });
        t.push(TraceRecord::Kernel {
            name: "conv1".into(),
            class: KernelClass::Conv,
            stream: 3,
            start_ns: 1200,
            dur_ns: 400,
        });
        t
    }

    fn host_spans() -> Vec<SpanRecord> {
        vec![
            SpanRecord {
                name: "scan.chunk",
                cat: Category::Scan,
                tid: 0,
                depth: 0,
                start_ns: 5_000,
                dur_ns: 9_000,
            },
            SpanRecord {
                name: "gemm",
                cat: Category::Gemm,
                tid: 0,
                depth: 1,
                start_ns: 6_000,
                dur_ns: 2_000,
            },
        ]
    }

    #[test]
    fn merged_timeline_has_both_processes() {
        let ct = ProfileReport::from_trace(&device_trace())
            .with_host_spans(host_spans())
            .chrome_trace();
        assert!(ct.traceEvents.iter().any(|e| e.pid == HOST_PID));
        assert!(ct.traceEvents.iter().any(|e| e.pid == DEVICE_PID));
        // Kernel lands on its stream's track; memop on the DMA track.
        assert_eq!(ct.track(DEVICE_PID, 3).len(), 1);
        assert_eq!(ct.track(DEVICE_PID, DMA_TID)[0].args.bytes, Some(2048));
        assert_eq!(ct.track(HOST_PID, 0).len(), 2);
    }

    #[test]
    fn each_domain_is_normalized_to_zero() {
        let ct = ProfileReport::from_trace(&device_trace())
            .with_host_spans(host_spans())
            .chrome_trace();
        let host_min = ct
            .track(HOST_PID, 0)
            .iter()
            .map(|e| e.ts)
            .fold(f64::INFINITY, f64::min);
        let device_min = ct
            .traceEvents
            .iter()
            .filter(|e| e.pid == DEVICE_PID && e.ph == "X")
            .map(|e| e.ts)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(host_min, 0.0);
        assert_eq!(device_min, 0.0);
    }

    #[test]
    fn device_only_report_still_exports() {
        let ct = ProfileReport::from_trace(&device_trace()).chrome_trace();
        assert!(!ct.traceEvents.iter().any(|e| e.pid == HOST_PID));
        assert!(ct
            .traceEvents
            .iter()
            .any(|e| e.ph == "M" && e.args.name.as_deref() == Some("device (gpusim)")));
    }

    #[test]
    fn json_round_trips() {
        let ct = ProfileReport::from_trace(&device_trace())
            .with_host_spans(host_spans())
            .chrome_trace();
        let json = ct.to_json();
        assert!(json.contains("\"traceEvents\""));
        let back = ChromeTrace::from_json(&json).unwrap();
        assert_eq!(back, ct);
    }

    #[test]
    fn tracks_are_monotone_and_metadata_first() {
        let ct = ProfileReport::from_trace(&device_trace())
            .with_host_spans(host_spans())
            .chrome_trace();
        let first_x = ct.traceEvents.iter().position(|e| e.ph == "X").unwrap();
        assert!(ct.traceEvents[..first_x].iter().all(|e| e.ph == "M"));
        for e in &ct.traceEvents[first_x..] {
            assert_eq!(e.ph, "X");
        }
        let mut prev: Option<(u32, u32, f64)> = None;
        for e in &ct.traceEvents[first_x..] {
            if let Some((pid, tid, ts)) = prev {
                if (pid, tid) == (e.pid, e.tid) {
                    assert!(e.ts >= ts, "track ({pid},{tid}) not monotone");
                }
            }
            prev = Some((e.pid, e.tid, e.ts));
        }
    }
}
