//! Trace aggregation and text rendering behind [`ProfileReport`].

use crate::timeline::TimelineStats;
use dcd_gpusim::{ApiKind, CopyDir, FaultKind, KernelClass, Trace, TraceRecord};
use dcd_obs::SpanRecord;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Aggregated host-side usage of one CUDA API.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApiUsage {
    /// Typed API kind — use this (not `name`) to look rows up.
    pub kind: ApiKind,
    /// API function name (`cuLibraryLoadData`, …), for display.
    pub name: String,
    /// Number of calls.
    pub calls: usize,
    /// Total host time, ns.
    pub total_ns: u64,
    /// Share of the total API time, in percent.
    pub pct: f64,
}

/// Aggregated DMA transfer statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemopStats {
    /// Number of transfers.
    pub count: usize,
    /// Total transfer time, ns.
    pub total_ns: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// Mean transfer duration, ns.
    pub mean_ns: f64,
    /// Host→device transfer time, ns.
    pub h2d_ns: u64,
    /// Device→host transfer time, ns.
    pub d2h_ns: u64,
}

impl MemopStats {
    /// The paper's Fig 7 metric: GPU memops timing normalized per image —
    /// total DMA time divided by the number of images moved through the
    /// profile (`batch × iterations`). Fixed per-transfer overheads amortize
    /// as batch grows, so the curve falls and then stabilizes at the pure
    /// bandwidth cost.
    pub fn per_image_ns(&self, batch: usize, iterations: usize) -> f64 {
        let images = (batch * iterations).max(1);
        self.total_ns as f64 / images as f64
    }
}

/// Device-time share of one kernel class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelShare {
    /// Typed kernel class — use this (not `class`) to look rows up.
    pub kind: KernelClass,
    /// Class label (`gemm`, `pool`, `conv`, …), for display.
    pub class: String,
    /// Total device time, ns.
    pub total_ns: u64,
    /// Share of all kernel time, percent.
    pub pct: f64,
}

/// Occurrence count of one injected-fault category.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultCount {
    /// Fault category label (`kernel launch failure`, …).
    pub kind: String,
    /// Number of injections recorded in the trace.
    pub count: usize,
    /// Time of the first injection, ns.
    pub first_ns: u64,
}

/// Host time aggregated over spans with the same name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostOpStats {
    /// Span name (`gemm`, `scan.chunk`, …).
    pub name: String,
    /// Span category label.
    pub cat: String,
    /// Number of spans recorded under this name.
    pub calls: usize,
    /// Summed span duration, ns (nested spans count toward their own row).
    pub total_ns: u64,
}

fn compute_api(trace: &Trace) -> Vec<ApiUsage> {
    let mut by_api: HashMap<ApiKind, (usize, u64)> = HashMap::new();
    for r in &trace.records {
        if let TraceRecord::Api { kind, dur_ns, .. } = r {
            let e = by_api.entry(*kind).or_insert((0, 0));
            e.0 += 1;
            e.1 += dur_ns;
        }
    }
    let total: u64 = by_api.values().map(|(_, t)| t).sum();
    let mut rows: Vec<ApiUsage> = by_api
        .into_iter()
        .map(|(kind, (calls, total_ns))| ApiUsage {
            kind,
            name: kind.label().to_string(),
            calls,
            total_ns,
            pct: if total == 0 {
                0.0
            } else {
                100.0 * total_ns as f64 / total as f64
            },
        })
        .collect();
    rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    rows
}

fn compute_memops(trace: &Trace) -> MemopStats {
    let mut stats = MemopStats {
        count: 0,
        total_ns: 0,
        bytes: 0,
        mean_ns: 0.0,
        h2d_ns: 0,
        d2h_ns: 0,
    };
    for (dir, bytes, dur) in trace.memops() {
        stats.count += 1;
        stats.total_ns += dur;
        stats.bytes += bytes;
        match dir {
            CopyDir::H2D => stats.h2d_ns += dur,
            CopyDir::D2H => stats.d2h_ns += dur,
        }
    }
    if stats.count > 0 {
        stats.mean_ns = stats.total_ns as f64 / stats.count as f64;
    }
    stats
}

fn compute_kernels(trace: &Trace) -> Vec<KernelShare> {
    let mut by_class: HashMap<KernelClass, u64> = HashMap::new();
    for r in &trace.records {
        if let TraceRecord::Kernel { class, dur_ns, .. } = r {
            *by_class.entry(*class).or_insert(0) += dur_ns;
        }
    }
    let total: u64 = by_class.values().sum();
    let mut rows: Vec<KernelShare> = by_class
        .into_iter()
        .map(|(kind, total_ns)| KernelShare {
            kind,
            class: kind.label().to_string(),
            total_ns,
            pct: if total == 0 {
                0.0
            } else {
                100.0 * total_ns as f64 / total as f64
            },
        })
        .collect();
    rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.class.cmp(&b.class)));
    rows
}

fn compute_faults(trace: &Trace) -> Vec<FaultCount> {
    let mut by_kind: HashMap<FaultKind, (usize, u64)> = HashMap::new();
    for (kind, _stream, at_ns) in trace.faults() {
        let e = by_kind.entry(kind).or_insert((0, u64::MAX));
        e.0 += 1;
        e.1 = e.1.min(at_ns);
    }
    let mut rows: Vec<FaultCount> = by_kind
        .into_iter()
        .map(|(kind, (count, first_ns))| FaultCount {
            kind: kind.label().to_string(),
            count,
            first_ns,
        })
        .collect();
    rows.sort_by(|a, b| b.count.cmp(&a.count).then(a.kind.cmp(&b.kind)));
    rows
}

fn compute_host_ops(spans: &[SpanRecord]) -> Vec<HostOpStats> {
    let mut by_name: HashMap<&'static str, (&'static str, usize, u64)> = HashMap::new();
    for s in spans {
        let e = by_name.entry(s.name).or_insert((s.cat.label(), 0, 0));
        e.1 += 1;
        e.2 += s.dur_ns;
    }
    let mut rows: Vec<HostOpStats> = by_name
        .into_iter()
        .map(|(name, (cat, calls, total_ns))| HostOpStats {
            name: name.to_string(),
            cat: cat.to_string(),
            calls,
            total_ns,
        })
        .collect();
    rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    rows
}

/// All of the paper's §7 profiling views over one device trace — and,
/// optionally, the host spans recorded alongside it — behind typed
/// accessors. This is the single entry point for profile analysis; the
/// module-level free functions it replaced survive only as `#[deprecated]`
/// wrappers.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    device: Trace,
    api: Vec<ApiUsage>,
    memops: MemopStats,
    kernels: Vec<KernelShare>,
    faults: Vec<FaultCount>,
    timeline: Option<TimelineStats>,
    host_spans: Vec<SpanRecord>,
    host_ops: Vec<HostOpStats>,
}

impl ProfileReport {
    /// Aggregates every view over a device trace (clones the records so the
    /// report can later re-walk them for the merged timeline export).
    pub fn from_trace(trace: &Trace) -> Self {
        ProfileReport {
            device: trace.clone(),
            api: compute_api(trace),
            memops: compute_memops(trace),
            kernels: compute_kernels(trace),
            faults: compute_faults(trace),
            timeline: crate::timeline::compute(trace),
            host_spans: Vec::new(),
            host_ops: Vec::new(),
        }
    }

    /// Attaches host spans (from [`dcd_obs::drain_spans`]) so the rendered
    /// report gains a host section and [`ProfileReport::chrome_trace`] emits
    /// host tracks next to the device ones.
    pub fn with_host_spans(mut self, spans: Vec<SpanRecord>) -> Self {
        self.host_ops = compute_host_ops(&spans);
        self.host_spans = spans;
        self
    }

    /// The device trace this report was built from.
    pub fn device_trace(&self) -> &Trace {
        &self.device
    }

    /// Per-API usage rows, sorted by descending total time (Fig 8).
    pub fn api(&self) -> &[ApiUsage] {
        &self.api
    }

    /// Usage row for one API kind, if it appears in the trace.
    pub fn api_usage(&self, kind: ApiKind) -> Option<&ApiUsage> {
        self.api.iter().find(|r| r.kind == kind)
    }

    /// Share of one API in the trace's API timeline, percent (0.0 when the
    /// kind never appears). Keyed on [`ApiKind`], not on the display label.
    pub fn api_pct(&self, kind: ApiKind) -> f64 {
        self.api_usage(kind).map(|r| r.pct).unwrap_or(0.0)
    }

    /// DMA transfer statistics (Fig 7 input).
    pub fn memops(&self) -> &MemopStats {
        &self.memops
    }

    /// Kernel-class shares, sorted by descending time (Table 3).
    pub fn kernels(&self) -> &[KernelShare] {
        &self.kernels
    }

    /// Share row for one kernel class, if it appears in the trace.
    pub fn kernel_share(&self, class: KernelClass) -> Option<&KernelShare> {
        self.kernels.iter().find(|r| r.kind == class)
    }

    /// Share of one kernel class in total kernel time, percent.
    pub fn kernel_pct(&self, class: KernelClass) -> f64 {
        self.kernel_share(class).map(|r| r.pct).unwrap_or(0.0)
    }

    /// Injected-fault counts by category; empty for a healthy run.
    pub fn faults(&self) -> &[FaultCount] {
        &self.faults
    }

    /// Device kernel-timeline statistics; `None` without kernel records.
    pub fn timeline(&self) -> Option<&TimelineStats> {
        self.timeline.as_ref()
    }

    /// Host spans attached via [`ProfileReport::with_host_spans`].
    pub fn host_spans(&self) -> &[SpanRecord] {
        &self.host_spans
    }

    /// Host time aggregated per span name, sorted by descending total.
    pub fn host_ops(&self) -> &[HostOpStats] {
        &self.host_ops
    }

    /// Renders every view as a text report shaped like
    /// `nsys profile --stats=true` (plus a host section when spans are
    /// attached).
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(out, "** CUDA API Summary:").unwrap();
        writeln!(
            out,
            "{:>8}  {:>14}  {:>7}  Name",
            "Calls", "Total (ns)", "Time %"
        )
        .unwrap();
        for row in &self.api {
            writeln!(
                out,
                "{:>8}  {:>14}  {:>6.1}%  {}",
                row.calls, row.total_ns, row.pct, row.name
            )
            .unwrap();
        }
        let m = &self.memops;
        writeln!(out, "\n** CUDA GPU MemOps Summary:").unwrap();
        writeln!(
            out,
            "{:>8}  {:>14}  {:>14}  {:>12}",
            "Count", "Total (ns)", "Bytes", "Mean (ns)"
        )
        .unwrap();
        writeln!(
            out,
            "{:>8}  {:>14}  {:>14}  {:>12.1}",
            m.count, m.total_ns, m.bytes, m.mean_ns
        )
        .unwrap();
        writeln!(out, "\n** CUDA Kernel Summary (by operator class):").unwrap();
        writeln!(out, "{:>14}  {:>7}  Class", "Total (ns)", "Time %").unwrap();
        for row in &self.kernels {
            writeln!(
                out,
                "{:>14}  {:>6.1}%  {}",
                row.total_ns, row.pct, row.class
            )
            .unwrap();
        }
        if let Some(t) = &self.timeline {
            writeln!(out, "\n** Device Timeline Summary:").unwrap();
            writeln!(
                out,
                "span {} ns | occupancy {:.1}% | mean concurrency {:.2} | streams {}",
                t.span_end_ns - t.span_start_ns,
                100.0 * t.occupancy,
                t.parallelism,
                t.per_stream_ns.len()
            )
            .unwrap();
        }
        if !self.faults.is_empty() {
            writeln!(out, "\n** Injected Fault Summary:").unwrap();
            writeln!(out, "{:>8}  {:>14}  Kind", "Count", "First (ns)").unwrap();
            for row in &self.faults {
                writeln!(out, "{:>8}  {:>14}  {}", row.count, row.first_ns, row.kind).unwrap();
            }
        }
        if !self.host_ops.is_empty() {
            writeln!(out, "\n** Host Span Summary:").unwrap();
            writeln!(
                out,
                "{:>8}  {:>14}  {:<12}  Name",
                "Calls", "Total (ns)", "Category"
            )
            .unwrap();
            for row in &self.host_ops {
                writeln!(
                    out,
                    "{:>8}  {:>14}  {:<12}  {}",
                    row.calls, row.total_ns, row.cat, row.name
                )
                .unwrap();
            }
        }
        out
    }
}

/// Computes per-API usage, sorted by descending total time (Fig 8).
#[deprecated(since = "0.1.0", note = "use ProfileReport::from_trace(trace).api()")]
pub fn api_report(trace: &Trace) -> Vec<ApiUsage> {
    compute_api(trace)
}

/// Share of a named API in the trace's API timeline, in percent.
#[deprecated(
    since = "0.1.0",
    note = "use ProfileReport::from_trace(trace).api_pct(kind)"
)]
pub fn api_pct(trace: &Trace, kind: ApiKind) -> f64 {
    compute_api(trace)
        .into_iter()
        .find(|r| r.kind == kind)
        .map(|r| r.pct)
        .unwrap_or(0.0)
}

/// Computes DMA statistics over a trace.
#[deprecated(
    since = "0.1.0",
    note = "use ProfileReport::from_trace(trace).memops()"
)]
pub fn memop_report(trace: &Trace) -> MemopStats {
    compute_memops(trace)
}

/// Computes kernel-class shares (Table 3), sorted by descending time.
#[deprecated(
    since = "0.1.0",
    note = "use ProfileReport::from_trace(trace).kernels()"
)]
pub fn kernel_report(trace: &Trace) -> Vec<KernelShare> {
    compute_kernels(trace)
}

/// Share of one kernel class, in percent of total kernel time.
#[deprecated(
    since = "0.1.0",
    note = "use ProfileReport::from_trace(trace).kernel_pct(class)"
)]
pub fn kernel_pct(trace: &Trace, class: KernelClass) -> f64 {
    compute_kernels(trace)
        .into_iter()
        .find(|r| r.kind == class)
        .map(|r| r.pct)
        .unwrap_or(0.0)
}

/// Aggregates injected-fault records by category, sorted by descending
/// count. Empty for a healthy (or fault-free) run.
#[deprecated(
    since = "0.1.0",
    note = "use ProfileReport::from_trace(trace).faults()"
)]
pub fn fault_report(trace: &Trace) -> Vec<FaultCount> {
    compute_faults(trace)
}

/// Renders the three views as a text report shaped like
/// `nsys profile --stats=true`.
#[deprecated(
    since = "0.1.0",
    note = "use ProfileReport::from_trace(trace).render()"
)]
pub fn render_stats(trace: &Trace) -> String {
    ProfileReport::from_trace(trace).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcd_obs::Category;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.push(TraceRecord::Api {
            kind: ApiKind::LibraryLoadData,
            start_ns: 0,
            dur_ns: 800,
        });
        t.push(TraceRecord::Api {
            kind: ApiKind::LaunchKernel,
            start_ns: 800,
            dur_ns: 100,
        });
        t.push(TraceRecord::Api {
            kind: ApiKind::LaunchKernel,
            start_ns: 900,
            dur_ns: 60,
        });
        t.push(TraceRecord::Api {
            kind: ApiKind::DeviceSynchronize,
            start_ns: 960,
            dur_ns: 40,
        });
        t.push(TraceRecord::Kernel {
            name: "fc".into(),
            class: KernelClass::Gemm,
            stream: 0,
            start_ns: 810,
            dur_ns: 70,
        });
        t.push(TraceRecord::Kernel {
            name: "conv".into(),
            class: KernelClass::Conv,
            stream: 0,
            start_ns: 880,
            dur_ns: 30,
        });
        t.push(TraceRecord::Memop {
            dir: CopyDir::H2D,
            bytes: 4096,
            start_ns: 805,
            dur_ns: 20,
        });
        t.push(TraceRecord::Memop {
            dir: CopyDir::D2H,
            bytes: 64,
            start_ns: 990,
            dur_ns: 10,
        });
        t
    }

    #[test]
    fn api_rows_share_sum_to_100() {
        let report = ProfileReport::from_trace(&sample_trace());
        let total_pct: f64 = report.api().iter().map(|r| r.pct).sum();
        assert!((total_pct - 100.0).abs() < 1e-9);
        // Library load dominates this tiny trace: 800 / 1000 = 80%.
        assert_eq!(report.api()[0].kind, ApiKind::LibraryLoadData);
        assert_eq!(report.api()[0].name, "cuLibraryLoadData");
        assert!((report.api()[0].pct - 80.0).abs() < 1e-9);
    }

    #[test]
    fn api_rows_count_calls() {
        let report = ProfileReport::from_trace(&sample_trace());
        let launch = report.api_usage(ApiKind::LaunchKernel).unwrap();
        assert_eq!(launch.calls, 2);
        assert_eq!(launch.total_ns, 160);
    }

    #[test]
    fn api_pct_keys_on_kind() {
        let report = ProfileReport::from_trace(&sample_trace());
        assert!((report.api_pct(ApiKind::DeviceSynchronize) - 4.0).abs() < 1e-9);
        assert_eq!(report.api_pct(ApiKind::Malloc), 0.0);
        assert!(report.api_usage(ApiKind::Malloc).is_none());
    }

    #[test]
    fn memop_stats_aggregate_directions() {
        let report = ProfileReport::from_trace(&sample_trace());
        let m = report.memops();
        assert_eq!(m.count, 2);
        assert_eq!(m.total_ns, 30);
        assert_eq!(m.bytes, 4160);
        assert_eq!(m.h2d_ns, 20);
        assert_eq!(m.d2h_ns, 10);
        assert!((m.mean_ns - 15.0).abs() < 1e-9);
    }

    #[test]
    fn per_image_normalization() {
        let report = ProfileReport::from_trace(&sample_trace());
        assert!((report.memops().per_image_ns(2, 1) - 15.0).abs() < 1e-9);
        assert!((report.memops().per_image_ns(1, 1) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn kernel_rows_bucket_and_order() {
        let report = ProfileReport::from_trace(&sample_trace());
        let rows = report.kernels();
        assert_eq!(rows[0].kind, KernelClass::Gemm);
        assert!((rows[0].pct - 70.0).abs() < 1e-9);
        assert_eq!(rows[1].kind, KernelClass::Conv);
        assert!((rows[1].pct - 30.0).abs() < 1e-9);
    }

    #[test]
    fn kernel_pct_missing_class_is_zero() {
        let report = ProfileReport::from_trace(&sample_trace());
        assert_eq!(report.kernel_pct(KernelClass::Pool), 0.0);
        assert!(report.kernel_share(KernelClass::Pool).is_none());
    }

    #[test]
    fn empty_trace_is_all_zeroes() {
        let report = ProfileReport::from_trace(&Trace::new());
        assert!(report.api().is_empty());
        assert_eq!(report.memops().count, 0);
        assert_eq!(report.memops().mean_ns, 0.0);
        assert!(report.kernels().is_empty());
        assert!(report.timeline().is_none());
    }

    #[test]
    fn render_contains_all_sections() {
        let s = ProfileReport::from_trace(&sample_trace()).render();
        assert!(s.contains("CUDA API Summary"));
        assert!(s.contains("MemOps Summary"));
        assert!(s.contains("Kernel Summary"));
        assert!(s.contains("cuLibraryLoadData"));
        assert!(s.contains("gemm"));
    }

    #[test]
    fn render_includes_timeline_when_kernels_present() {
        let s = ProfileReport::from_trace(&sample_trace()).render();
        assert!(s.contains("Device Timeline Summary"));
        assert!(s.contains("occupancy"));
    }

    #[test]
    fn render_omits_timeline_without_kernels() {
        let mut t = Trace::new();
        t.push(TraceRecord::Api {
            kind: ApiKind::Malloc,
            start_ns: 0,
            dur_ns: 10,
        });
        let s = ProfileReport::from_trace(&t).render();
        assert!(!s.contains("Device Timeline Summary"));
    }

    #[test]
    fn fault_rows_count_by_kind() {
        let mut t = sample_trace();
        t.push(TraceRecord::Fault {
            kind: FaultKind::LaunchFailure,
            stream: Some(1),
            start_ns: 850,
        });
        t.push(TraceRecord::Fault {
            kind: FaultKind::LaunchFailure,
            stream: Some(2),
            start_ns: 820,
        });
        t.push(TraceRecord::Fault {
            kind: FaultKind::DeviceHang,
            stream: None,
            start_ns: 950,
        });
        let report = ProfileReport::from_trace(&t);
        let rows = report.faults();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].kind, FaultKind::LaunchFailure.label());
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].first_ns, 820);
        assert_eq!(rows[1].count, 1);
        let s = report.render();
        assert!(s.contains("Injected Fault Summary"));
        assert!(s.contains(FaultKind::DeviceHang.label()));
    }

    #[test]
    fn healthy_trace_omits_fault_section() {
        let report = ProfileReport::from_trace(&sample_trace());
        assert!(report.faults().is_empty());
        assert!(!report.render().contains("Injected Fault Summary"));
    }

    #[test]
    fn render_is_deterministic() {
        // Ties and ordering: same trace renders identically twice.
        let a = ProfileReport::from_trace(&sample_trace()).render();
        let b = ProfileReport::from_trace(&sample_trace()).render();
        assert_eq!(a, b);
    }

    #[test]
    fn host_spans_aggregate_and_render() {
        let spans = vec![
            SpanRecord {
                name: "gemm",
                cat: Category::Gemm,
                tid: 0,
                depth: 1,
                start_ns: 10,
                dur_ns: 100,
            },
            SpanRecord {
                name: "gemm",
                cat: Category::Gemm,
                tid: 1,
                depth: 1,
                start_ns: 30,
                dur_ns: 50,
            },
            SpanRecord {
                name: "scan.chunk",
                cat: Category::Scan,
                tid: 0,
                depth: 0,
                start_ns: 0,
                dur_ns: 400,
            },
        ];
        let report = ProfileReport::from_trace(&sample_trace()).with_host_spans(spans);
        assert_eq!(report.host_spans().len(), 3);
        let ops = report.host_ops();
        assert_eq!(ops[0].name, "scan.chunk");
        assert_eq!(ops[0].total_ns, 400);
        let gemm = ops.iter().find(|o| o.name == "gemm").unwrap();
        assert_eq!(gemm.calls, 2);
        assert_eq!(gemm.total_ns, 150);
        assert_eq!(gemm.cat, "gemm");
        let s = report.render();
        assert!(s.contains("Host Span Summary"));
        assert!(s.contains("scan.chunk"));
    }

    #[test]
    fn without_host_spans_render_omits_host_section() {
        let s = ProfileReport::from_trace(&sample_trace()).render();
        assert!(!s.contains("Host Span Summary"));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_report() {
        // The legacy free functions must stay bit-identical to the new
        // accessors until they are removed.
        let t = sample_trace();
        let report = ProfileReport::from_trace(&t);
        assert_eq!(api_report(&t), report.api());
        assert_eq!(&memop_report(&t), report.memops());
        assert_eq!(kernel_report(&t), report.kernels());
        assert_eq!(fault_report(&t), report.faults());
        assert_eq!(render_stats(&t), report.render());
        assert_eq!(
            api_pct(&t, ApiKind::LaunchKernel),
            report.api_pct(ApiKind::LaunchKernel)
        );
        assert_eq!(
            kernel_pct(&t, KernelClass::Gemm),
            report.kernel_pct(KernelClass::Gemm)
        );
    }

    #[test]
    fn kernel_rows_full_pipeline_trace() {
        // End-to-end: a real executor trace aggregates cleanly.
        use dcd_gpusim::DeviceSpec;
        let graph = dcd_ios::lower_sppnet(&dcd_nn::SppNetConfig::original(), (100, 100));
        let schedule = dcd_ios::sequential_schedule(&graph);
        let mut exec = dcd_ios::Executor::new(&graph, schedule, 2, DeviceSpec::rtx_a5500());
        exec.run_inference();
        let trace = exec.into_trace();
        let report = ProfileReport::from_trace(&trace);
        let total: f64 = report.kernels().iter().map(|r| r.pct).sum();
        assert!((total - 100.0).abs() < 1e-6);
        assert!(report.kernel_share(KernelClass::Conv).is_some());
        assert!(report.kernel_share(KernelClass::Gemm).is_some());
        assert!(report.kernel_share(KernelClass::Pool).is_some());
    }
}
