//! Trace aggregation and text rendering.

use dcd_gpusim::{ApiKind, CopyDir, FaultKind, KernelClass, Trace, TraceRecord};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Aggregated host-side usage of one CUDA API.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApiUsage {
    /// API function name (`cuLibraryLoadData`, …).
    pub name: String,
    /// Number of calls.
    pub calls: usize,
    /// Total host time, ns.
    pub total_ns: u64,
    /// Share of the total API time, in percent.
    pub pct: f64,
}

/// Computes per-API usage, sorted by descending total time (Fig 8).
pub fn api_report(trace: &Trace) -> Vec<ApiUsage> {
    let mut by_api: HashMap<ApiKind, (usize, u64)> = HashMap::new();
    for r in &trace.records {
        if let TraceRecord::Api { kind, dur_ns, .. } = r {
            let e = by_api.entry(*kind).or_insert((0, 0));
            e.0 += 1;
            e.1 += dur_ns;
        }
    }
    let total: u64 = by_api.values().map(|(_, t)| t).sum();
    let mut rows: Vec<ApiUsage> = by_api
        .into_iter()
        .map(|(kind, (calls, total_ns))| ApiUsage {
            name: kind.label().to_string(),
            calls,
            total_ns,
            pct: if total == 0 {
                0.0
            } else {
                100.0 * total_ns as f64 / total as f64
            },
        })
        .collect();
    rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    rows
}

/// Share of a named API in the trace's API timeline, in percent.
pub fn api_pct(trace: &Trace, kind: ApiKind) -> f64 {
    api_report(trace)
        .into_iter()
        .find(|r| r.name == kind.label())
        .map(|r| r.pct)
        .unwrap_or(0.0)
}

/// Aggregated DMA transfer statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemopStats {
    /// Number of transfers.
    pub count: usize,
    /// Total transfer time, ns.
    pub total_ns: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// Mean transfer duration, ns.
    pub mean_ns: f64,
    /// Host→device transfer time, ns.
    pub h2d_ns: u64,
    /// Device→host transfer time, ns.
    pub d2h_ns: u64,
}

/// Computes DMA statistics over a trace.
pub fn memop_report(trace: &Trace) -> MemopStats {
    let mut stats = MemopStats {
        count: 0,
        total_ns: 0,
        bytes: 0,
        mean_ns: 0.0,
        h2d_ns: 0,
        d2h_ns: 0,
    };
    for (dir, bytes, dur) in trace.memops() {
        stats.count += 1;
        stats.total_ns += dur;
        stats.bytes += bytes;
        match dir {
            CopyDir::H2D => stats.h2d_ns += dur,
            CopyDir::D2H => stats.d2h_ns += dur,
        }
    }
    if stats.count > 0 {
        stats.mean_ns = stats.total_ns as f64 / stats.count as f64;
    }
    stats
}

impl MemopStats {
    /// The paper's Fig 7 metric: GPU memops timing normalized per image —
    /// total DMA time divided by the number of images moved through the
    /// profile (`batch × iterations`). Fixed per-transfer overheads amortize
    /// as batch grows, so the curve falls and then stabilizes at the pure
    /// bandwidth cost.
    pub fn per_image_ns(&self, batch: usize, iterations: usize) -> f64 {
        let images = (batch * iterations).max(1);
        self.total_ns as f64 / images as f64
    }
}

/// Device-time share of one kernel class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelShare {
    /// Class label (`gemm`, `pool`, `conv`, …).
    pub class: String,
    /// Total device time, ns.
    pub total_ns: u64,
    /// Share of all kernel time, percent.
    pub pct: f64,
}

/// Computes kernel-class shares (Table 3), sorted by descending time.
pub fn kernel_report(trace: &Trace) -> Vec<KernelShare> {
    let mut by_class: HashMap<KernelClass, u64> = HashMap::new();
    for r in &trace.records {
        if let TraceRecord::Kernel { class, dur_ns, .. } = r {
            *by_class.entry(*class).or_insert(0) += dur_ns;
        }
    }
    let total: u64 = by_class.values().sum();
    let mut rows: Vec<KernelShare> = by_class
        .into_iter()
        .map(|(class, total_ns)| KernelShare {
            class: class.label().to_string(),
            total_ns,
            pct: if total == 0 {
                0.0
            } else {
                100.0 * total_ns as f64 / total as f64
            },
        })
        .collect();
    rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.class.cmp(&b.class)));
    rows
}

/// Share of one kernel class, in percent of total kernel time.
pub fn kernel_pct(trace: &Trace, class: KernelClass) -> f64 {
    kernel_report(trace)
        .into_iter()
        .find(|r| r.class == class.label())
        .map(|r| r.pct)
        .unwrap_or(0.0)
}

/// Occurrence count of one injected-fault category.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultCount {
    /// Fault category label (`kernel launch failure`, …).
    pub kind: String,
    /// Number of injections recorded in the trace.
    pub count: usize,
    /// Time of the first injection, ns.
    pub first_ns: u64,
}

/// Aggregates injected-fault records by category, sorted by descending
/// count. Empty for a healthy (or fault-free) run.
pub fn fault_report(trace: &Trace) -> Vec<FaultCount> {
    let mut by_kind: HashMap<FaultKind, (usize, u64)> = HashMap::new();
    for (kind, _stream, at_ns) in trace.faults() {
        let e = by_kind.entry(kind).or_insert((0, u64::MAX));
        e.0 += 1;
        e.1 = e.1.min(at_ns);
    }
    let mut rows: Vec<FaultCount> = by_kind
        .into_iter()
        .map(|(kind, (count, first_ns))| FaultCount {
            kind: kind.label().to_string(),
            count,
            first_ns,
        })
        .collect();
    rows.sort_by(|a, b| b.count.cmp(&a.count).then(a.kind.cmp(&b.kind)));
    rows
}

/// Renders the three views as a text report shaped like
/// `nsys profile --stats=true`.
pub fn render_stats(trace: &Trace) -> String {
    let mut out = String::new();
    writeln!(out, "** CUDA API Summary:").unwrap();
    writeln!(
        out,
        "{:>8}  {:>14}  {:>7}  Name",
        "Calls", "Total (ns)", "Time %"
    )
    .unwrap();
    for row in api_report(trace) {
        writeln!(
            out,
            "{:>8}  {:>14}  {:>6.1}%  {}",
            row.calls, row.total_ns, row.pct, row.name
        )
        .unwrap();
    }
    let m = memop_report(trace);
    writeln!(out, "\n** CUDA GPU MemOps Summary:").unwrap();
    writeln!(
        out,
        "{:>8}  {:>14}  {:>14}  {:>12}",
        "Count", "Total (ns)", "Bytes", "Mean (ns)"
    )
    .unwrap();
    writeln!(
        out,
        "{:>8}  {:>14}  {:>14}  {:>12.1}",
        m.count, m.total_ns, m.bytes, m.mean_ns
    )
    .unwrap();
    writeln!(out, "\n** CUDA Kernel Summary (by operator class):").unwrap();
    writeln!(out, "{:>14}  {:>7}  Class", "Total (ns)", "Time %").unwrap();
    for row in kernel_report(trace) {
        writeln!(
            out,
            "{:>14}  {:>6.1}%  {}",
            row.total_ns, row.pct, row.class
        )
        .unwrap();
    }
    if let Some(t) = crate::timeline::timeline(trace) {
        writeln!(out, "\n** Device Timeline Summary:").unwrap();
        writeln!(
            out,
            "span {} ns | occupancy {:.1}% | mean concurrency {:.2} | streams {}",
            t.span_end_ns - t.span_start_ns,
            100.0 * t.occupancy,
            t.parallelism,
            t.per_stream_ns.len()
        )
        .unwrap();
    }
    let faults = fault_report(trace);
    if !faults.is_empty() {
        writeln!(out, "\n** Injected Fault Summary:").unwrap();
        writeln!(out, "{:>8}  {:>14}  Kind", "Count", "First (ns)").unwrap();
        for row in &faults {
            writeln!(out, "{:>8}  {:>14}  {}", row.count, row.first_ns, row.kind).unwrap();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.push(TraceRecord::Api {
            kind: ApiKind::LibraryLoadData,
            start_ns: 0,
            dur_ns: 800,
        });
        t.push(TraceRecord::Api {
            kind: ApiKind::LaunchKernel,
            start_ns: 800,
            dur_ns: 100,
        });
        t.push(TraceRecord::Api {
            kind: ApiKind::LaunchKernel,
            start_ns: 900,
            dur_ns: 60,
        });
        t.push(TraceRecord::Api {
            kind: ApiKind::DeviceSynchronize,
            start_ns: 960,
            dur_ns: 40,
        });
        t.push(TraceRecord::Kernel {
            name: "fc".into(),
            class: KernelClass::Gemm,
            stream: 0,
            start_ns: 810,
            dur_ns: 70,
        });
        t.push(TraceRecord::Kernel {
            name: "conv".into(),
            class: KernelClass::Conv,
            stream: 0,
            start_ns: 880,
            dur_ns: 30,
        });
        t.push(TraceRecord::Memop {
            dir: CopyDir::H2D,
            bytes: 4096,
            start_ns: 805,
            dur_ns: 20,
        });
        t.push(TraceRecord::Memop {
            dir: CopyDir::D2H,
            bytes: 64,
            start_ns: 990,
            dur_ns: 10,
        });
        t
    }

    #[test]
    fn api_report_shares_sum_to_100() {
        let rows = api_report(&sample_trace());
        let total_pct: f64 = rows.iter().map(|r| r.pct).sum();
        assert!((total_pct - 100.0).abs() < 1e-9);
        // Library load dominates this tiny trace: 800 / 1000 = 80%.
        assert_eq!(rows[0].name, "cuLibraryLoadData");
        assert!((rows[0].pct - 80.0).abs() < 1e-9);
    }

    #[test]
    fn api_report_counts_calls() {
        let rows = api_report(&sample_trace());
        let launch = rows.iter().find(|r| r.name == "cudaLaunchKernel").unwrap();
        assert_eq!(launch.calls, 2);
        assert_eq!(launch.total_ns, 160);
    }

    #[test]
    fn api_pct_finds_kind() {
        let t = sample_trace();
        assert!((api_pct(&t, ApiKind::DeviceSynchronize) - 4.0).abs() < 1e-9);
        assert_eq!(api_pct(&t, ApiKind::Malloc), 0.0);
    }

    #[test]
    fn memop_report_aggregates_directions() {
        let m = memop_report(&sample_trace());
        assert_eq!(m.count, 2);
        assert_eq!(m.total_ns, 30);
        assert_eq!(m.bytes, 4160);
        assert_eq!(m.h2d_ns, 20);
        assert_eq!(m.d2h_ns, 10);
        assert!((m.mean_ns - 15.0).abs() < 1e-9);
    }

    #[test]
    fn per_image_normalization() {
        let m = memop_report(&sample_trace());
        assert!((m.per_image_ns(2, 1) - 15.0).abs() < 1e-9);
        assert!((m.per_image_ns(1, 1) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn kernel_report_buckets_and_orders() {
        let rows = kernel_report(&sample_trace());
        assert_eq!(rows[0].class, "gemm");
        assert!((rows[0].pct - 70.0).abs() < 1e-9);
        assert_eq!(rows[1].class, "conv");
        assert!((rows[1].pct - 30.0).abs() < 1e-9);
    }

    #[test]
    fn kernel_pct_missing_class_is_zero() {
        assert_eq!(kernel_pct(&sample_trace(), KernelClass::Pool), 0.0);
    }

    #[test]
    fn empty_trace_is_all_zeroes() {
        let t = Trace::new();
        assert!(api_report(&t).is_empty());
        assert_eq!(memop_report(&t).count, 0);
        assert_eq!(memop_report(&t).mean_ns, 0.0);
        assert!(kernel_report(&t).is_empty());
    }

    #[test]
    fn render_contains_all_sections() {
        let s = render_stats(&sample_trace());
        assert!(s.contains("CUDA API Summary"));
        assert!(s.contains("MemOps Summary"));
        assert!(s.contains("Kernel Summary"));
        assert!(s.contains("cuLibraryLoadData"));
        assert!(s.contains("gemm"));
    }

    #[test]
    fn render_includes_timeline_when_kernels_present() {
        let s = render_stats(&sample_trace());
        assert!(s.contains("Device Timeline Summary"));
        assert!(s.contains("occupancy"));
    }

    #[test]
    fn render_omits_timeline_without_kernels() {
        let mut t = Trace::new();
        t.push(TraceRecord::Api {
            kind: ApiKind::Malloc,
            start_ns: 0,
            dur_ns: 10,
        });
        let s = render_stats(&t);
        assert!(!s.contains("Device Timeline Summary"));
    }

    #[test]
    fn fault_report_counts_by_kind() {
        let mut t = sample_trace();
        t.push(TraceRecord::Fault {
            kind: FaultKind::LaunchFailure,
            stream: Some(1),
            start_ns: 850,
        });
        t.push(TraceRecord::Fault {
            kind: FaultKind::LaunchFailure,
            stream: Some(2),
            start_ns: 820,
        });
        t.push(TraceRecord::Fault {
            kind: FaultKind::DeviceHang,
            stream: None,
            start_ns: 950,
        });
        let rows = fault_report(&t);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].kind, FaultKind::LaunchFailure.label());
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].first_ns, 820);
        assert_eq!(rows[1].count, 1);
        let s = render_stats(&t);
        assert!(s.contains("Injected Fault Summary"));
        assert!(s.contains(FaultKind::DeviceHang.label()));
    }

    #[test]
    fn healthy_trace_omits_fault_section() {
        assert!(fault_report(&sample_trace()).is_empty());
        assert!(!render_stats(&sample_trace()).contains("Injected Fault Summary"));
    }

    #[test]
    fn api_report_is_deterministic_order() {
        // Ties and ordering: same trace renders identically twice.
        let a = render_stats(&sample_trace());
        let b = render_stats(&sample_trace());
        assert_eq!(a, b);
    }

    #[test]
    fn kernel_report_full_pipeline_trace() {
        // End-to-end: a real executor trace aggregates cleanly.
        use dcd_gpusim::DeviceSpec;
        let graph = dcd_ios::lower_sppnet(&dcd_nn::SppNetConfig::original(), (100, 100));
        let schedule = dcd_ios::sequential_schedule(&graph);
        let mut exec = dcd_ios::Executor::new(&graph, schedule, 2, DeviceSpec::rtx_a5500());
        exec.run_inference();
        let trace = exec.into_trace();
        let rows = kernel_report(&trace);
        let total: f64 = rows.iter().map(|r| r.pct).sum();
        assert!((total - 100.0).abs() < 1e-6);
        assert!(rows.iter().any(|r| r.class == "conv"));
        assert!(rows.iter().any(|r| r.class == "gemm"));
        assert!(rows.iter().any(|r| r.class == "pool"));
    }
}
