//! Device-timeline analysis: busy spans, utilization and kernel concurrency.
//!
//! These views quantify *why* an IOS schedule is faster: the kernel trace
//! shows more time spent at concurrency ≥ 2 and fewer barrier gaps than the
//! sequential schedule's.

use dcd_gpusim::{Trace, TraceRecord};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Summary of device kernel activity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineStats {
    /// First kernel start, ns.
    pub span_start_ns: u64,
    /// Last kernel end, ns.
    pub span_end_ns: u64,
    /// Sum of kernel durations (counts overlap multiply), ns.
    pub busy_sum_ns: u64,
    /// Union of kernel intervals (overlap counted once), ns.
    pub busy_union_ns: u64,
    /// Fraction of the span covered by at least one kernel.
    pub occupancy: f64,
    /// Mean number of kernels in flight while any kernel runs
    /// (`busy_sum / busy_union`); 1.0 = fully serial.
    pub parallelism: f64,
    /// Time spent at each concurrency level: `at_level[k]` = ns with
    /// exactly `k` kernels in flight (index 0 = idle gaps inside the span).
    pub at_level: Vec<u64>,
    /// Busy time per stream, ns.
    pub per_stream_ns: HashMap<usize, u64>,
}

/// Computes the kernel-timeline statistics of a trace.
///
/// Returns `None` if the trace contains no kernel records.
#[deprecated(
    since = "0.1.0",
    note = "use ProfileReport::from_trace(trace).timeline()"
)]
pub fn timeline(trace: &Trace) -> Option<TimelineStats> {
    compute(trace)
}

pub(crate) fn compute(trace: &Trace) -> Option<TimelineStats> {
    let mut events: Vec<(u64, i64)> = Vec::new(); // (time, +1/-1)
    let mut per_stream: HashMap<usize, u64> = HashMap::new();
    let mut busy_sum = 0u64;
    let mut start = u64::MAX;
    let mut end = 0u64;
    for r in &trace.records {
        if let TraceRecord::Kernel {
            stream,
            start_ns,
            dur_ns,
            ..
        } = r
        {
            events.push((*start_ns, 1));
            events.push((start_ns + dur_ns, -1));
            *per_stream.entry(*stream).or_insert(0) += dur_ns;
            busy_sum += dur_ns;
            start = start.min(*start_ns);
            end = end.max(start_ns + dur_ns);
        }
    }
    if events.is_empty() {
        return None;
    }
    // Sweep: ends before starts at equal times so zero-length overlap does
    // not count as concurrency.
    events.sort_by_key(|&(t, delta)| (t, delta));
    let mut level = 0i64;
    let mut prev_t = start;
    let mut busy_union = 0u64;
    let mut at_level: Vec<u64> = Vec::new();
    for (t, delta) in events {
        let dt = t.saturating_sub(prev_t);
        let k = level.max(0) as usize;
        if at_level.len() <= k {
            at_level.resize(k + 1, 0);
        }
        at_level[k] += dt;
        if k >= 1 {
            busy_union += dt;
        }
        level += delta;
        prev_t = t;
    }
    let span = (end - start).max(1);
    Some(TimelineStats {
        span_start_ns: start,
        span_end_ns: end,
        busy_sum_ns: busy_sum,
        busy_union_ns: busy_union,
        occupancy: busy_union as f64 / span as f64,
        parallelism: busy_sum as f64 / busy_union.max(1) as f64,
        at_level,
        per_stream_ns: per_stream,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcd_gpusim::KernelClass;

    fn kernel(stream: usize, start: u64, dur: u64) -> TraceRecord {
        TraceRecord::Kernel {
            name: "k".into(),
            class: KernelClass::Conv,
            stream,
            start_ns: start,
            dur_ns: dur,
        }
    }

    #[test]
    fn empty_trace_is_none() {
        assert!(compute(&Trace::new()).is_none());
    }

    #[test]
    fn serial_kernels_have_parallelism_one() {
        let mut t = Trace::new();
        t.push(kernel(0, 0, 100));
        t.push(kernel(0, 100, 50));
        let s = compute(&t).unwrap();
        assert_eq!(s.busy_sum_ns, 150);
        assert_eq!(s.busy_union_ns, 150);
        assert!((s.parallelism - 1.0).abs() < 1e-9);
        assert!((s.occupancy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overlapping_kernels_raise_parallelism() {
        let mut t = Trace::new();
        t.push(kernel(0, 0, 100));
        t.push(kernel(1, 0, 100));
        let s = compute(&t).unwrap();
        assert_eq!(s.busy_sum_ns, 200);
        assert_eq!(s.busy_union_ns, 100);
        assert!((s.parallelism - 2.0).abs() < 1e-9);
        assert_eq!(s.at_level[2], 100);
    }

    #[test]
    fn gaps_lower_occupancy_and_show_as_level_zero() {
        let mut t = Trace::new();
        t.push(kernel(0, 0, 50));
        t.push(kernel(0, 100, 50)); // 50 ns gap
        let s = compute(&t).unwrap();
        assert!((s.occupancy - 100.0 / 150.0).abs() < 1e-9);
        assert_eq!(s.at_level[0], 50);
        assert_eq!(s.at_level[1], 100);
    }

    #[test]
    fn per_stream_accounting() {
        let mut t = Trace::new();
        t.push(kernel(0, 0, 30));
        t.push(kernel(1, 0, 70));
        t.push(kernel(0, 30, 20));
        let s = compute(&t).unwrap();
        assert_eq!(s.per_stream_ns[&0], 50);
        assert_eq!(s.per_stream_ns[&1], 70);
    }

    #[test]
    fn partial_overlap_levels() {
        // [0,100) and [50,150): levels 1,2,1 for 50 ns each.
        let mut t = Trace::new();
        t.push(kernel(0, 0, 100));
        t.push(kernel(1, 50, 100));
        let s = compute(&t).unwrap();
        assert_eq!(s.at_level[1], 100);
        assert_eq!(s.at_level[2], 50);
        assert_eq!(s.busy_union_ns, 150);
    }
}
