//! Structured tracing spans: thread-local scope guards with a shared clock.
//!
//! A span is opened with [`span`] and recorded when the returned guard
//! drops. Records go into per-thread buffers (registered globally so
//! [`drain_spans`] can collect from rayon workers), each reserved to a fixed
//! capacity at thread registration — steady-state recording never allocates,
//! and a full buffer drops (and counts) rather than grows.

use crate::clock;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Which subsystem a span belongs to (one Perfetto "category" per value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Packed GEMM / fully-connected products (`dcd-tensor`).
    Gemm,
    /// Convolution forward/backward (`dcd-tensor`).
    Conv,
    /// Network forward passes (`dcd-nn`).
    Nn,
    /// Whole-scene scanning (`dcd-core`).
    Scan,
    /// Training steps (`dcd-nn`).
    Train,
    /// NAS trial lifecycle (`dcd-nas`).
    Nas,
    /// IOS schedule execution / cost profiling (`dcd-ios`).
    Ios,
    /// Pipeline orchestration (`dcd-core`).
    Pipeline,
    /// Fault recovery (`dcd-core`).
    Resilience,
    /// Serving runtime: admission, batching, breaker, brownout
    /// (`dcd-serve`).
    Serve,
    /// Anything else.
    Other,
}

impl Category {
    /// Stable label used in reports and the Chrome-trace `cat` field.
    pub fn label(&self) -> &'static str {
        match self {
            Category::Gemm => "gemm",
            Category::Conv => "conv",
            Category::Nn => "nn",
            Category::Scan => "scan",
            Category::Train => "train",
            Category::Nas => "nas",
            Category::Ios => "ios",
            Category::Pipeline => "pipeline",
            Category::Resilience => "resilience",
            Category::Serve => "serve",
            Category::Other => "other",
        }
    }
}

/// One completed span. `Copy` so draining is a memcpy, never a clone chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// Static span name (no per-span string allocation).
    pub name: &'static str,
    /// Subsystem category.
    pub cat: Category,
    /// Observability thread id (dense, assigned at first span per thread).
    pub tid: u32,
    /// Nesting depth at open time (0 = top-level on its thread).
    pub depth: u16,
    /// Start, ns on the [`clock::now_ns`] timeline.
    pub start_ns: u64,
    /// Duration, ns.
    pub dur_ns: u64,
}

impl SpanRecord {
    /// End of the span, ns.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU32 = AtomicU32::new(0);
/// Buffer allocations since process start (one per thread registration in
/// steady state — the no-alloc-after-warmup tests snapshot this).
static GROW_EVENTS: AtomicU64 = AtomicU64::new(0);
/// Per-thread span capacity applied to future thread registrations.
static CAPACITY: AtomicUsize = AtomicUsize::new(1 << 14);

struct ThreadBuf {
    tid: u32,
    spans: Mutex<Vec<SpanRecord>>,
    dropped: AtomicU64,
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: RefCell<Option<Arc<ThreadBuf>>> = const { RefCell::new(None) };
    static DEPTH: Cell<u16> = const { Cell::new(0) };
}

/// Turns span recording (and metric updates) on or off, process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Whether observability is currently recording.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Sets the per-thread span buffer capacity for threads that have not yet
/// recorded a span (existing buffers keep their reservation).
pub fn set_thread_capacity(cap: usize) {
    CAPACITY.store(cap.max(1), Ordering::Relaxed);
}

/// How many span-buffer allocations have happened, process-wide. In steady
/// state this moves only when a *new thread* records its first span.
pub fn grow_events() -> u64 {
    GROW_EVENTS.load(Ordering::Relaxed)
}

/// Spans discarded because a thread's buffer was full when they completed.
pub fn dropped_spans() -> u64 {
    registry()
        .lock()
        .expect("span registry")
        .iter()
        .map(|b| b.dropped.load(Ordering::Relaxed))
        .sum()
}

fn with_local<R>(f: impl FnOnce(&ThreadBuf) -> R) -> R {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        if slot.is_none() {
            let cap = CAPACITY.load(Ordering::Relaxed);
            GROW_EVENTS.fetch_add(1, Ordering::Relaxed);
            let buf = Arc::new(ThreadBuf {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                spans: Mutex::new(Vec::with_capacity(cap)),
                dropped: AtomicU64::new(0),
            });
            registry().lock().expect("span registry").push(buf.clone());
            *slot = Some(buf);
        }
        f(slot.as_ref().expect("just initialized"))
    })
}

/// Scope guard for one span: records on drop. Create with [`span`].
#[must_use = "a span records when its guard drops; binding to _ discards it immediately"]
pub struct Span {
    name: &'static str,
    cat: Category,
    start_ns: u64,
    depth: u16,
    active: bool,
}

/// Opens a span. When observability is disabled this is one relaxed atomic
/// load and the guard's drop is a no-op.
pub fn span(name: &'static str, cat: Category) -> Span {
    if !enabled() {
        return Span {
            name,
            cat,
            start_ns: 0,
            depth: 0,
            active: false,
        };
    }
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v.saturating_add(1));
        v
    });
    Span {
        name,
        cat,
        start_ns: clock::now_ns(),
        depth,
        active: true,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let dur_ns = clock::now_ns().saturating_sub(self.start_ns);
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        with_local(|buf| {
            let mut spans = buf.spans.lock().expect("span buffer");
            // `len < capacity` keeps the push allocation-free by
            // construction; beyond the reservation we drop, never grow.
            if spans.len() < spans.capacity() {
                spans.push(SpanRecord {
                    name: self.name,
                    cat: self.cat,
                    tid: buf.tid,
                    depth: self.depth,
                    start_ns: self.start_ns,
                    dur_ns,
                });
            } else {
                buf.dropped.fetch_add(1, Ordering::Relaxed);
            }
        });
    }
}

/// Collects (and clears) every thread's recorded spans, sorted by start
/// time. Buffers keep their capacity, so draining does not disturb the
/// steady-state no-allocation property.
pub fn drain_spans() -> Vec<SpanRecord> {
    let mut out = Vec::new();
    for buf in registry().lock().expect("span registry").iter() {
        let mut spans = buf.spans.lock().expect("span buffer");
        out.extend_from_slice(&spans);
        spans.clear();
        buf.dropped.store(0, Ordering::Relaxed);
    }
    // Outer-before-inner at equal starts, so parents precede children.
    out.sort_by_key(|s| (s.start_ns, s.tid, s.depth));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// `ENABLED` and the registry are process-global; serialize the tests
    /// in this binary so one test's drain cannot race another's recording.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        drain_spans();
        {
            let _s = span("quiet", Category::Other);
        }
        assert!(drain_spans().is_empty());
    }

    #[test]
    fn nested_spans_record_depth_and_containment() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        drain_spans();
        {
            let _outer = span("outer", Category::Scan);
            {
                let _inner = span("inner", Category::Conv);
            }
        }
        set_enabled(false);
        let spans = drain_spans();
        assert_eq!(spans.len(), 2);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.tid, inner.tid);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns() <= outer.end_ns());
    }

    #[test]
    fn drain_orders_by_start_time() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        drain_spans();
        for _ in 0..5 {
            let _s = span("tick", Category::Other);
        }
        set_enabled(false);
        let spans = drain_spans();
        assert_eq!(spans.len(), 5);
        for w in spans.windows(2) {
            assert!(w[0].start_ns <= w[1].start_ns);
        }
    }

    #[test]
    fn steady_state_does_not_allocate() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        // Warm-up: registers this thread's buffer (the one allowed growth).
        {
            let _s = span("warmup", Category::Other);
        }
        let before = grow_events();
        for _ in 0..1000 {
            let _s = span("steady", Category::Gemm);
        }
        assert_eq!(grow_events(), before, "enabled tracing allocated");
        set_enabled(false);
        drain_spans();
    }

    #[test]
    fn full_buffer_drops_instead_of_growing() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        drain_spans();
        // Fill this thread's buffer to its reservation, then overflow.
        let cap = with_local(|b| b.spans.lock().unwrap().capacity());
        let grow_before = grow_events();
        for _ in 0..cap + 10 {
            let _s = span("flood", Category::Other);
        }
        set_enabled(false);
        assert!(dropped_spans() >= 10);
        assert_eq!(grow_events(), grow_before, "overflow grew the buffer");
        let spans = drain_spans();
        assert_eq!(spans.iter().filter(|s| s.name == "flood").count(), cap);
        assert_eq!(dropped_spans(), 0, "drain resets the dropped counter");
    }
}
