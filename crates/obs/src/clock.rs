//! The host monotonic clock shared by every span.
//!
//! All span timestamps are nanoseconds since the process's first
//! observation (lazily anchored `Instant`). A single epoch — rather than
//! per-thread clocks — is what lets records from rayon workers, the main
//! thread and the profiler's merge step land on one consistent timeline.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the clock epoch (first call in the process).
///
/// Monotonic and shared across threads; the first call anchors the epoch,
/// so timelines start near 0 rather than at an arbitrary boot offset.
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn clock_advances() {
        let a = now_ns();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(now_ns() > a + 1_000_000);
    }
}
