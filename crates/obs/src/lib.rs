//! # dcd-obs
//!
//! Zero-dependency host-side observability for the workspace: structured
//! tracing **spans** and a **metrics registry** (counters + fixed-bucket
//! histograms). The design mirrors the paper's profiling methodology (§7,
//! nsys) for the *host* half of the system: where `dcd-gpusim` traces the
//! simulated device, this crate traces the Rust hot paths driving it —
//! packed GEMM, conv/im2col, scan batch assembly, trainer steps, NAS trials
//! and IOS stage dispatch — so `dcd-profiler` can interleave both onto one
//! Perfetto timeline.
//!
//! Cost discipline (the scratch-arena rules from `dcd_tensor::scratch`):
//!
//! * **Disabled** (the default), [`span`] and [`metrics::Counter::add`] are a
//!   single relaxed atomic load — no clock read, no lock, no allocation.
//! * **Enabled**, spans append into per-thread buffers whose capacity is
//!   reserved once at thread registration; steady state never touches the
//!   allocator (enforced by the [`span::grow_events`] counter, test-style
//!   identical to `tests/scratch_reuse.rs`). A full buffer drops new spans
//!   (counted by [`span::dropped_spans`]) instead of growing.
//!
//! Host spans use one monotonic clock ([`clock::now_ns`], ns since the first
//! observation in the process), so records from different threads interleave
//! correctly on a shared timeline.

pub mod clock;
pub mod metrics;
pub mod span;

pub use metrics::{
    counter, histogram, reset_metrics, snapshot, Counter, CounterSnapshot, Histogram,
    HistogramSnapshot, MetricsSnapshot,
};
pub use span::{
    drain_spans, dropped_spans, enabled, grow_events, set_enabled, set_thread_capacity, span,
    Category, Span, SpanRecord,
};
