//! Process-wide metrics registry: named counters and fixed-bucket
//! histograms.
//!
//! Handles are `&'static` (registered once via [`counter`]/[`histogram`],
//! leaked intentionally) so hot paths cache them in a `OnceLock` and update
//! with a single atomic op. Updates are gated on the global observability
//! switch ([`crate::span::enabled`]) so a disabled build pays one relaxed
//! load per update site.

use crate::span::enabled;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of power-of-two buckets in a [`Histogram`]. Bucket `i` holds
/// values `v` with `v < 2^(i+1)` (last bucket catches the rest); at 40
/// buckets the top bucket starts near 2^40 ns ≈ 18 minutes.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Monotonically increasing named counter.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` when observability is enabled; no-op (one relaxed atomic
    /// load) otherwise.
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments by one (same gating as [`Counter::add`]).
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Fixed-bucket (power-of-two) histogram with running sum and count.
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Records one observation when observability is enabled.
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        let idx = (64 - u64::leading_zeros(value | 1) as usize - 1).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean of recorded observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }
}

struct Registry {
    counters: Vec<&'static Counter>,
    histograms: Vec<&'static Histogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            counters: Vec::new(),
            histograms: Vec::new(),
        })
    })
}

/// Returns the counter registered under `name`, creating it on first use.
/// Idempotent: repeated calls with the same name return the same handle.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = registry().lock().expect("metrics registry");
    if let Some(c) = reg.counters.iter().find(|c| c.name == name) {
        return c;
    }
    let c: &'static Counter = Box::leak(Box::new(Counter {
        name,
        value: AtomicU64::new(0),
    }));
    reg.counters.push(c);
    c
}

/// Returns the histogram registered under `name`, creating it on first use.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = registry().lock().expect("metrics registry");
    if let Some(h) = reg.histograms.iter().find(|h| h.name == name) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram {
        name,
        buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        sum: AtomicU64::new(0),
        count: AtomicU64::new(0),
    }));
    reg.histograms.push(h);
    h
}

/// Caches a [`Counter`] handle in a local static so the hot path skips the
/// registry lock: `counter!("gemm.flops").add(n)`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::counter($name))
    }};
}

/// Caches a [`Histogram`] handle in a local static, like [`counter!`].
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::histogram($name))
    }};
}

/// Point-in-time value of one counter.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Mean observation (0.0 when empty).
    pub mean: f64,
    /// Upper edge (exclusive, `2^(i+1)`) and count of each non-empty bucket.
    pub buckets: Vec<(u64, u64)>,
}

/// Everything the registry holds, sorted by name for stable output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All registered counters.
    pub counters: Vec<CounterSnapshot>,
    /// All registered histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of the named counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Summary of the named histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Plain-text table of all non-zero metrics.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("** Host Metrics Summary:\n\n");
        let live: Vec<_> = self.counters.iter().filter(|c| c.value > 0).collect();
        if live.is_empty() && self.histograms.iter().all(|h| h.count == 0) {
            out.push_str("  (no metrics recorded)\n");
            return out;
        }
        if !live.is_empty() {
            out.push_str(&format!("  {:<28} {:>16}\n", "Counter", "Value"));
            for c in &live {
                out.push_str(&format!("  {:<28} {:>16}\n", c.name, c.value));
            }
        }
        let live_h: Vec<_> = self.histograms.iter().filter(|h| h.count > 0).collect();
        if !live_h.is_empty() {
            out.push_str(&format!(
                "\n  {:<28} {:>10} {:>16} {:>14}\n",
                "Histogram", "Count", "Sum", "Mean"
            ));
            for h in &live_h {
                out.push_str(&format!(
                    "  {:<28} {:>10} {:>16} {:>14.1}\n",
                    h.name, h.count, h.sum, h.mean
                ));
            }
        }
        out
    }
}

/// Snapshots every registered metric, sorted by name.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry().lock().expect("metrics registry");
    let mut counters: Vec<CounterSnapshot> = reg
        .counters
        .iter()
        .map(|c| CounterSnapshot {
            name: c.name.to_string(),
            value: c.get(),
        })
        .collect();
    counters.sort_by(|a, b| a.name.cmp(&b.name));
    let mut histograms: Vec<HistogramSnapshot> = reg
        .histograms
        .iter()
        .map(|h| HistogramSnapshot {
            name: h.name.to_string(),
            count: h.count(),
            sum: h.sum(),
            mean: h.mean(),
            buckets: h
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then(|| (1u64 << (i + 1).min(63), n))
                })
                .collect(),
        })
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    MetricsSnapshot {
        counters,
        histograms,
    }
}

/// Zeroes every registered metric (handles stay valid).
pub fn reset_metrics() {
    let reg = registry().lock().expect("metrics registry");
    for c in &reg.counters {
        c.value.store(0, Ordering::Relaxed);
    }
    for h in &reg.histograms {
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.sum.store(0, Ordering::Relaxed);
        h.count.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::set_enabled;
    use std::sync::Mutex as StdMutex;

    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    #[test]
    fn counter_is_idempotent_by_name_and_gated() {
        let _guard = TEST_LOCK.lock().unwrap();
        let a = counter("test.metrics.alpha");
        let b = counter("test.metrics.alpha");
        assert!(std::ptr::eq(a, b));
        set_enabled(false);
        a.add(5);
        assert_eq!(a.get(), 0, "disabled counter must not move");
        set_enabled(true);
        a.add(5);
        a.inc();
        set_enabled(false);
        assert_eq!(b.get(), 6);
        reset_metrics();
        assert_eq!(a.get(), 0);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let _guard = TEST_LOCK.lock().unwrap();
        let h = histogram("test.metrics.lat");
        set_enabled(true);
        h.record(0);
        h.record(1);
        h.record(3);
        h.record(1024);
        set_enabled(false);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1028);
        assert!((h.mean() - 257.0).abs() < 1e-9);
        let snap = snapshot();
        let hs = snap.histogram("test.metrics.lat").unwrap();
        // 0 and 1 share bucket 0 (<2); 3 lands in bucket 1 (<4);
        // 1024 in bucket 10 (<2048).
        assert!(hs.buckets.contains(&(2, 2)));
        assert!(hs.buckets.contains(&(4, 1)));
        assert!(hs.buckets.contains(&(2048, 1)));
        reset_metrics();
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn snapshot_sorts_and_renders() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        counter("test.render.zz").add(2);
        counter("test.render.aa").add(1);
        set_enabled(false);
        let snap = snapshot();
        let names: Vec<_> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        let zz = names.iter().position(|n| *n == "test.render.zz").unwrap();
        let aa = names.iter().position(|n| *n == "test.render.aa").unwrap();
        assert!(aa < zz);
        let text = snap.render();
        assert!(text.contains("Host Metrics Summary"));
        assert!(text.contains("test.render.aa"));
        reset_metrics();
    }

    #[test]
    fn macro_caches_handle() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        counter!("test.macro.count").add(3);
        counter!("test.macro.count").inc();
        histogram!("test.macro.hist").record(7);
        set_enabled(false);
        assert_eq!(counter("test.macro.count").get(), 4);
        assert_eq!(histogram("test.macro.hist").count(), 1);
        reset_metrics();
    }
}
