//! Steady-state allocation behaviour of the scratch arena.
//!
//! After a warm-up call, repeated conv2d forward/backward passes at a fixed
//! shape must run entirely out of the thread-local scratch pool: the global
//! grow-event counter must not move. Run single-threaded so every
//! `scratch::take` hits the same thread-local pool that the warm-up filled —
//! under the work-stealing pool the sample loop may land on a worker with a
//! cold pool, which is fine in production (each worker warms once) but would
//! make the counter nondeterministic here.

use dcd_tensor::{conv2d, conv2d_backward, scratch, SeededRng, Tensor};
use std::sync::Mutex;

/// `grow_events` is process-global while pools are thread-local; serialize
/// the tests in this binary so one test's warm-up growth cannot land inside
/// another's snapshot window when the harness runs them on parallel threads.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn conv2d_steady_state_does_not_grow_scratch() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    rayon::force_sequential(|| {
        let mut rng = SeededRng::new(71);
        let x = Tensor::randn([2, 4, 24, 24], 0.0, 1.0, &mut rng);
        let w = Tensor::randn([8, 4, 3, 3], 0.0, 0.2, &mut rng);
        let b = Tensor::randn([8], 0.0, 0.1, &mut rng);
        let go = Tensor::randn([2, 8, 24, 24], 0.0, 1.0, &mut rng);

        // Warm-up: first calls populate the pool with every buffer size the
        // shape needs (im2col cols, packed panels, gradient cols).
        for _ in 0..2 {
            std::hint::black_box(conv2d(&x, &w, &b, 1, 1));
            std::hint::black_box(conv2d_backward(&x, &w, &go, 1, 1));
        }

        let before = scratch::grow_events();
        for _ in 0..10 {
            std::hint::black_box(conv2d(&x, &w, &b, 1, 1));
            std::hint::black_box(conv2d_backward(&x, &w, &go, 1, 1));
        }
        let after = scratch::grow_events();
        assert_eq!(
            before,
            after,
            "scratch pool grew in steady state: {} new allocations",
            after - before
        );
    });
}

#[test]
fn mixed_shapes_settle_after_one_round() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    rayon::force_sequential(|| {
        let mut rng = SeededRng::new(73);
        let shapes: Vec<(Tensor, Tensor, Tensor)> = [(4usize, 16usize), (8, 12), (3, 20)]
            .iter()
            .map(|&(c, s)| {
                (
                    Tensor::randn([1, c, s, s], 0.0, 1.0, &mut rng),
                    Tensor::randn([6, c, 3, 3], 0.0, 0.2, &mut rng),
                    Tensor::randn([6], 0.0, 0.1, &mut rng),
                )
            })
            .collect();

        // One interleaved round allocates the high-water-mark buffers.
        for (x, w, b) in &shapes {
            std::hint::black_box(conv2d(x, w, b, 1, 1));
        }
        let before = scratch::grow_events();
        for _ in 0..5 {
            for (x, w, b) in &shapes {
                std::hint::black_box(conv2d(x, w, b, 1, 1));
            }
        }
        assert_eq!(
            scratch::grow_events(),
            before,
            "alternating shapes should reuse pooled buffers"
        );
    });
}
