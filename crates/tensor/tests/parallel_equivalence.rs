//! Parallel-vs-sequential equivalence: every kernel must produce output
//! **bit-identical** to a single-threaded run.
//!
//! The rayon shim guarantees piece boundaries depend only on input length
//! and that order-sensitive reductions combine piece partials in index
//! order; these tests pin that guarantee at the kernel level, where any
//! reassociation of f32 arithmetic would show up in the low bits. Each test
//! first pins the pool to 4 threads (oversubscribed on small machines —
//! the point is exercising the parallel path, not speed) and compares
//! against `rayon::force_sequential` running the *same* code inline.

use dcd_tensor::gemm::gemm_bias;
use dcd_tensor::{
    conv2d, conv2d_backward, conv2d_relu, gemm, gemm_at, gemm_bias_relu, gemm_bt, max_pool2d,
    max_pool2d_backward, SeededRng, Tensor,
};

fn pin_threads() {
    rayon::ensure_threads(4);
}

fn assert_bits_eq(par: &[f32], seq: &[f32], what: &str) {
    assert_eq!(par.len(), seq.len(), "{what}: length mismatch");
    for (i, (p, s)) in par.iter().zip(seq.iter()).enumerate() {
        assert_eq!(
            p.to_bits(),
            s.to_bits(),
            "{what}: bit mismatch at index {i}: parallel {p} vs sequential {s}"
        );
    }
}

#[test]
fn gemm_parallel_matches_sequential_bitwise() {
    pin_threads();
    // Sized so work = m*k*n = 70*300*50 > 2^16 takes the parallel branch,
    // and m = 70 > MC = 60 splits into multiple row blocks.
    let (m, k, n) = (70, 300, 50);
    let mut rng = SeededRng::new(17);
    let a = Tensor::randn([m, k], 0.0, 1.0, &mut rng);
    let b = Tensor::randn([k, n], 0.0, 1.0, &mut rng);
    let par = gemm(a.data(), b.data(), m, k, n);
    let seq = rayon::force_sequential(|| gemm(a.data(), b.data(), m, k, n));
    assert_bits_eq(&par, &seq, "gemm 70x300x50");
}

#[test]
fn gemm_bias_parallel_matches_sequential_bitwise() {
    pin_threads();
    let (m, k, n) = (48, 200, 64);
    let mut rng = SeededRng::new(23);
    let a = Tensor::randn([m, k], 0.0, 1.0, &mut rng);
    let b = Tensor::randn([k, n], 0.0, 1.0, &mut rng);
    let bias = Tensor::randn([n], 0.0, 0.5, &mut rng);
    let par = gemm_bias(a.data(), b.data(), bias.data(), m, k, n);
    let seq = rayon::force_sequential(|| gemm_bias(a.data(), b.data(), bias.data(), m, k, n));
    assert_bits_eq(&par, &seq, "gemm_bias 48x200x64");
}

#[test]
fn gemm_at_parallel_matches_sequential_bitwise() {
    pin_threads();
    // Transposed-LHS variant: a stored [k, m]; sized past the parallel
    // threshold with a ragged row edge (m = 70).
    let (m, k, n) = (70, 300, 50);
    let mut rng = SeededRng::new(47);
    let at = Tensor::randn([k, m], 0.0, 1.0, &mut rng);
    let b = Tensor::randn([k, n], 0.0, 1.0, &mut rng);
    let par = gemm_at(at.data(), b.data(), m, k, n);
    let seq = rayon::force_sequential(|| gemm_at(at.data(), b.data(), m, k, n));
    assert_bits_eq(&par, &seq, "gemm_at 70x300x50");
}

#[test]
fn gemm_bt_parallel_matches_sequential_bitwise() {
    pin_threads();
    // Transposed-RHS variant: b stored [n, k].
    let (m, k, n) = (70, 300, 50);
    let mut rng = SeededRng::new(53);
    let a = Tensor::randn([m, k], 0.0, 1.0, &mut rng);
    let bt = Tensor::randn([n, k], 0.0, 1.0, &mut rng);
    let par = gemm_bt(a.data(), bt.data(), m, k, n);
    let seq = rayon::force_sequential(|| gemm_bt(a.data(), bt.data(), m, k, n));
    assert_bits_eq(&par, &seq, "gemm_bt 70x300x50");
}

#[test]
fn gemm_bias_relu_parallel_matches_sequential_bitwise() {
    pin_threads();
    let (m, k, n) = (70, 300, 50);
    let mut rng = SeededRng::new(59);
    let a = Tensor::randn([m, k], 0.0, 1.0, &mut rng);
    let b = Tensor::randn([k, n], 0.0, 1.0, &mut rng);
    let bias = Tensor::randn([n], 0.0, 0.5, &mut rng);
    let par = gemm_bias_relu(a.data(), b.data(), bias.data(), m, k, n);
    let seq = rayon::force_sequential(|| gemm_bias_relu(a.data(), b.data(), bias.data(), m, k, n));
    assert_bits_eq(&par, &seq, "gemm_bias_relu 70x300x50");
}

#[test]
fn conv2d_forward_parallel_matches_sequential_bitwise() {
    pin_threads();
    // Batch > 1 so the per-sample par_chunks split actually splits.
    let mut rng = SeededRng::new(31);
    let x = Tensor::randn([6, 4, 24, 24], 0.0, 1.0, &mut rng);
    let w = Tensor::randn([8, 4, 3, 3], 0.0, 0.2, &mut rng);
    let b = Tensor::randn([8], 0.0, 0.1, &mut rng);
    let par = conv2d(&x, &w, &b, 1, 1);
    let seq = rayon::force_sequential(|| conv2d(&x, &w, &b, 1, 1));
    assert_eq!(par.dims(), seq.dims());
    assert_bits_eq(par.data(), seq.data(), "conv2d forward");
}

#[test]
fn conv2d_relu_parallel_matches_sequential_bitwise() {
    pin_threads();
    // Fused conv+ReLU epilogue over the per-sample parallel split.
    let mut rng = SeededRng::new(61);
    let x = Tensor::randn([6, 4, 24, 24], 0.0, 1.0, &mut rng);
    let w = Tensor::randn([8, 4, 3, 3], 0.0, 0.2, &mut rng);
    let b = Tensor::randn([8], 0.0, 0.1, &mut rng);
    let par = conv2d_relu(&x, &w, &b, 1, 1);
    let seq = rayon::force_sequential(|| conv2d_relu(&x, &w, &b, 1, 1));
    assert_eq!(par.dims(), seq.dims());
    assert_bits_eq(par.data(), seq.data(), "conv2d_relu forward");
}

#[test]
fn conv2d_backward_parallel_matches_sequential_bitwise() {
    pin_threads();
    let mut rng = SeededRng::new(37);
    let x = Tensor::randn([6, 4, 16, 16], 0.0, 1.0, &mut rng);
    let w = Tensor::randn([8, 4, 3, 3], 0.0, 0.2, &mut rng);
    let go = Tensor::randn([6, 8, 16, 16], 0.0, 1.0, &mut rng);
    let par = conv2d_backward(&x, &w, &go, 1, 1);
    let seq = rayon::force_sequential(|| conv2d_backward(&x, &w, &go, 1, 1));
    assert_bits_eq(par.input.data(), seq.input.data(), "conv2d_backward input");
    // Weight/bias gradients accumulate across samples — the order-sensitive
    // part that forced the in-order piece combination.
    assert_bits_eq(
        par.weight.data(),
        seq.weight.data(),
        "conv2d_backward weight",
    );
    assert_bits_eq(par.bias.data(), seq.bias.data(), "conv2d_backward bias");
}

#[test]
fn max_pool2d_parallel_matches_sequential_bitwise() {
    pin_threads();
    let mut rng = SeededRng::new(41);
    let x = Tensor::randn([6, 8, 20, 20], 0.0, 1.0, &mut rng);
    let (par, par_idx) = max_pool2d(&x, 2, 2);
    let (seq, seq_idx) = rayon::force_sequential(|| max_pool2d(&x, 2, 2));
    assert_bits_eq(par.data(), seq.data(), "max_pool2d values");
    // Argmax indices are private; routing a gradient through them exposes
    // any divergence (ties broken differently would move gradient mass).
    let go = Tensor::randn([6, 8, 10, 10], 0.0, 1.0, &mut rng);
    let par_gx = max_pool2d_backward(&go, &par_idx);
    let seq_gx = rayon::force_sequential(|| max_pool2d_backward(&go, &seq_idx));
    assert_bits_eq(par_gx.data(), seq_gx.data(), "max_pool2d backward");
}

#[test]
fn tensor_map_and_sum_parallel_match_sequential_bitwise() {
    pin_threads();
    // Above PAR_THRESHOLD (2^14) so elementwise ops take the parallel path;
    // mixed magnitudes so any sum reassociation is visible in the low bits.
    let mut rng = SeededRng::new(43);
    let x = Tensor::randn([40_000], 0.0, 1.0, &mut rng);
    let scaled = x.map(|v| v * 1e3 + 0.1);

    let par_map = scaled.map(|v| v.exp().min(1e6));
    let seq_map = rayon::force_sequential(|| scaled.map(|v| v.exp().min(1e6)));
    assert_bits_eq(par_map.data(), seq_map.data(), "tensor map");

    let par_sum = scaled.sum();
    let seq_sum = rayon::force_sequential(|| scaled.sum());
    assert_eq!(par_sum.to_bits(), seq_sum.to_bits(), "tensor sum diverged");

    let par_sq = scaled.sq_norm();
    let seq_sq = rayon::force_sequential(|| scaled.sq_norm());
    assert_eq!(par_sq.to_bits(), seq_sq.to_bits(), "sq_norm diverged");
}
