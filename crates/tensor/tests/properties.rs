//! Property-based tests for the tensor kernels.

use dcd_tensor::{
    adaptive_avg_pool2d, adaptive_max_pool2d, conv2d, conv2d_backward, gemm, gemm_at, gemm_bias,
    gemm_bias_relu, gemm_bt, max_pool2d, SeededRng, Tensor,
};
use proptest::prelude::*;

/// Naive O(mnk) GEMM oracle in f64.
fn gemm_ref(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f64; m * n];
    for i in 0..m {
        for p in 0..k {
            for j in 0..n {
                c[i * n + j] += a[i * k + p] as f64 * b[p * n + j] as f64;
            }
        }
    }
    c.into_iter().map(|x| x as f32).collect()
}

fn small_f32() -> impl Strategy<Value = f32> {
    (-100i32..=100).prop_map(|x| x as f32 / 10.0)
}

/// Dimension sizes that stress the packed kernel's edge handling: every
/// residue mod the 8/4/1 tile sizes, plus 31 (odd, just under a panel
/// multiple) and 64 (whole panels, exercises the MC row-block split).
const TILE_EDGE_SIZES: [usize; 19] = [
    1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 31, 64,
];

fn tile_edge_dim() -> impl Strategy<Value = usize> {
    (0usize..TILE_EDGE_SIZES.len()).prop_map(|i| TILE_EDGE_SIZES[i])
}

proptest! {
    #[test]
    fn gemm_matches_naive_oracle(
        m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..1000,
    ) {
        let mut rng = SeededRng::new(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        let got = gemm(&a, &b, m, k, n);
        let want = gemm_ref(&a, &b, m, k, n);
        for (g, w) in got.iter().zip(want.iter()) {
            prop_assert!((g - w).abs() < 1e-4 * (1.0 + w.abs()));
        }
    }

    #[test]
    fn gemm_matches_oracle_at_tile_edges(
        m in tile_edge_dim(), k in tile_edge_dim(), n in tile_edge_dim(), seed in 0u64..1000,
    ) {
        // Non-multiple-of-tile shapes: ragged last row-panel, ragged last
        // column-panel, and every MR/NR selection path.
        let mut rng = SeededRng::new(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        let got = gemm(&a, &b, m, k, n);
        let want = gemm_ref(&a, &b, m, k, n);
        for (g, w) in got.iter().zip(want.iter()) {
            prop_assert!((g - w).abs() < 1e-4 * (1.0 + w.abs()));
        }
    }

    #[test]
    fn gemm_at_matches_transposed_oracle(
        m in tile_edge_dim(), k in tile_edge_dim(), n in tile_edge_dim(), seed in 0u64..1000,
    ) {
        // a holds Aᵀ in [k, m] storage; result must equal gemm on the
        // explicitly transposed matrix.
        let mut rng = SeededRng::new(seed);
        let at: Vec<f32> = (0..k * m).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        let mut a = vec![0.0f32; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = at[p * m + i];
            }
        }
        let got = gemm_at(&at, &b, m, k, n);
        let want = gemm_ref(&a, &b, m, k, n);
        for (g, w) in got.iter().zip(want.iter()) {
            prop_assert!((g - w).abs() < 1e-4 * (1.0 + w.abs()));
        }
    }

    #[test]
    fn gemm_bt_matches_transposed_oracle(
        m in tile_edge_dim(), k in tile_edge_dim(), n in tile_edge_dim(), seed in 0u64..1000,
    ) {
        // b holds Bᵀ in [n, k] storage.
        let mut rng = SeededRng::new(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let bt: Vec<f32> = (0..n * k).map(|_| rng.normal()).collect();
        let mut b = vec![0.0f32; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = bt[j * k + p];
            }
        }
        let got = gemm_bt(&a, &bt, m, k, n);
        let want = gemm_ref(&a, &b, m, k, n);
        for (g, w) in got.iter().zip(want.iter()) {
            prop_assert!((g - w).abs() < 1e-4 * (1.0 + w.abs()));
        }
    }

    #[test]
    fn fused_bias_epilogues_match_unfused(
        m in tile_edge_dim(), k in tile_edge_dim(), n in tile_edge_dim(), seed in 0u64..1000,
    ) {
        let mut rng = SeededRng::new(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        let bias: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let plain = gemm(&a, &b, m, k, n);
        let biased = gemm_bias(&a, &b, &bias, m, k, n);
        let relu = gemm_bias_relu(&a, &b, &bias, m, k, n);
        for i in 0..m * n {
            let want = plain[i] + bias[i % n];
            // Fused bias adds in the same order → bitwise equal.
            prop_assert_eq!(biased[i].to_bits(), want.to_bits());
            let want_relu = if want > 0.0 { want } else { 0.0 };
            prop_assert_eq!(relu[i].to_bits(), want_relu.to_bits());
        }
    }

    #[test]
    fn gemm_is_linear_in_first_argument(
        m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..1000, alpha in small_f32(),
    ) {
        let mut rng = SeededRng::new(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        let scaled: Vec<f32> = a.iter().map(|x| alpha * x).collect();
        let lhs = gemm(&scaled, &b, m, k, n);
        let rhs: Vec<f32> = gemm(&a, &b, m, k, n).iter().map(|x| alpha * x).collect();
        for (l, r) in lhs.iter().zip(rhs.iter()) {
            prop_assert!((l - r).abs() < 1e-3 * (1.0 + r.abs()), "{l} vs {r}");
        }
    }

    #[test]
    fn concat_then_index_recovers_parts(
        rows_a in 1usize..5, rows_b in 1usize..5, cols in 1usize..5, seed in 0u64..1000,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn([rows_a, cols], 0.0, 1.0, &mut rng);
        let b = Tensor::randn([rows_b, cols], 0.0, 1.0, &mut rng);
        let c = Tensor::concat(&[&a, &b], 0);
        prop_assert_eq!(c.dims(), &[rows_a + rows_b, cols]);
        for i in 0..rows_a {
            prop_assert_eq!(c.index_axis0(i), a.index_axis0(i));
        }
        for i in 0..rows_b {
            prop_assert_eq!(c.index_axis0(rows_a + i), b.index_axis0(i));
        }
    }

    #[test]
    fn conv_is_translation_covariant_in_batch(
        h in 3usize..8, w in 3usize..8, seed in 0u64..500,
    ) {
        // Duplicating a sample in the batch duplicates its output.
        let mut rng = SeededRng::new(seed);
        let x1 = Tensor::randn([1, 2, h, w], 0.0, 1.0, &mut rng);
        let weight = Tensor::randn([3, 2, 3, 3], 0.0, 0.5, &mut rng);
        let bias = Tensor::randn([3], 0.0, 0.1, &mut rng);
        let x2 = Tensor::stack(&[x1.index_axis0(0), x1.index_axis0(0)]);
        let y1 = conv2d(&x1, &weight, &bias, 1, 1);
        let y2 = conv2d(&x2, &weight, &bias, 1, 1);
        prop_assert!(y2.index_axis0(0).max_abs_diff(&y1.index_axis0(0)) < 1e-6);
        prop_assert!(y2.index_axis0(1).max_abs_diff(&y1.index_axis0(0)) < 1e-6);
    }

    #[test]
    fn conv_is_linear_in_input(h in 4usize..8, seed in 0u64..500) {
        let mut rng = SeededRng::new(seed);
        let x = Tensor::randn([1, 1, h, h], 0.0, 1.0, &mut rng);
        let weight = Tensor::randn([2, 1, 3, 3], 0.0, 0.5, &mut rng);
        let zero_bias = Tensor::zeros([2]);
        let y = conv2d(&x, &weight, &zero_bias, 1, 0);
        let y2 = conv2d(&x.scale(2.0), &weight, &zero_bias, 1, 0);
        prop_assert!(y2.max_abs_diff(&y.scale(2.0)) < 1e-4);
    }

    #[test]
    fn max_pool_output_bounded_by_input_extrema(
        h in 2usize..9, w in 2usize..9, seed in 0u64..1000,
    ) {
        let mut rng = SeededRng::new(seed);
        let x = Tensor::randn([1, 2, h, w], 0.0, 1.0, &mut rng);
        let (y, _) = max_pool2d(&x, 2, 1);
        let lo = x.data().iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = x.max();
        for &v in y.data() {
            prop_assert!(v >= lo && v <= hi);
        }
    }

    #[test]
    fn adaptive_max_dominates_adaptive_avg(
        h in 1usize..10, w in 1usize..10, bins in 1usize..5, seed in 0u64..1000,
    ) {
        let mut rng = SeededRng::new(seed);
        let x = Tensor::randn([1, 1, h, w], 0.0, 1.0, &mut rng);
        let (mx, _) = adaptive_max_pool2d(&x, bins);
        let av = adaptive_avg_pool2d(&x, bins);
        for (m, a) in mx.data().iter().zip(av.data().iter()) {
            prop_assert!(m >= a, "max {m} < avg {a}");
        }
    }

    #[test]
    fn adaptive_pool_fixed_output_size(
        h in 1usize..20, w in 1usize..20, bins in 1usize..6,
    ) {
        // The SPP invariant: output size depends only on the bin count.
        let x = Tensor::zeros([1, 3, h, w]);
        let (y, _) = adaptive_max_pool2d(&x, bins);
        prop_assert_eq!(y.dims(), &[1, 3, bins, bins]);
    }

    #[test]
    fn conv_backward_grads_have_forward_shapes(
        h in 3usize..7, cin in 1usize..3, cout in 1usize..3, seed in 0u64..200,
    ) {
        let mut rng = SeededRng::new(seed);
        let x = Tensor::randn([1, cin, h, h], 0.0, 1.0, &mut rng);
        let weight = Tensor::randn([cout, cin, 3, 3], 0.0, 0.5, &mut rng);
        let bias = Tensor::zeros([cout]);
        let y = conv2d(&x, &weight, &bias, 1, 1);
        let go = Tensor::ones(y.shape().clone());
        let g = conv2d_backward(&x, &weight, &go, 1, 1);
        prop_assert_eq!(g.input.shape(), x.shape());
        prop_assert_eq!(g.weight.shape(), weight.shape());
        prop_assert_eq!(g.bias.dims(), &[cout]);
    }

    #[test]
    fn axpy_matches_scale_add(len in 1usize..64, alpha in small_f32(), seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let x = Tensor::randn([len], 0.0, 1.0, &mut rng);
        let y = Tensor::randn([len], 0.0, 1.0, &mut rng);
        let mut z = x.clone();
        z.axpy(alpha, &y);
        let want = x.add(&y.scale(alpha));
        prop_assert!(z.max_abs_diff(&want) < 1e-4);
    }
}
