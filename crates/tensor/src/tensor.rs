//! The dense `f32` tensor type.

use crate::rng::SeededRng;
use crate::shape::{Shape, ShapeError};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Minimum element count before elementwise ops switch to rayon.
///
/// Below this the splitting overhead dominates; the value was picked so a
/// single 100×100×4 patch stays sequential while batched activations go wide.
const PAR_THRESHOLD: usize = 1 << 14;

/// A dense, contiguous, row-major `f32` tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ---------------------------------------------------------------- ctors

    /// All-zero tensor of the given shape.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = vec![0.0; shape.numel()];
        Tensor { shape, data }
    }

    /// Tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let data = vec![value; shape.numel()];
        Tensor { shape, data }
    }

    /// All-one tensor.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Builds a tensor from an existing buffer, checking the element count.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self, ShapeError> {
        let shape = shape.into();
        if shape.numel() != data.len() {
            return Err(ShapeError {
                expected: shape.numel(),
                actual: data.len(),
                dims: shape.dims().to_vec(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// I.i.d. uniform samples in `[lo, hi)`.
    pub fn uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut SeededRng) -> Self {
        let shape = shape.into();
        let data = (0..shape.numel())
            .map(|_| rng.uniform_range(lo, hi))
            .collect();
        Tensor { shape, data }
    }

    /// I.i.d. normal samples with the given mean and standard deviation.
    pub fn randn(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut SeededRng) -> Self {
        let shape = shape.into();
        let data = (0..shape.numel())
            .map(|_| mean + std * rng.normal())
            .collect();
        Tensor { shape, data }
    }

    /// Kaiming/He initialization for a layer with `fan_in` inputs — the
    /// standard init for ReLU networks, used by every conv/linear layer here.
    pub fn kaiming(shape: impl Into<Shape>, fan_in: usize, rng: &mut SeededRng) -> Self {
        let std = (2.0 / fan_in as f32).sqrt();
        Self::randn(shape, 0.0, std, rng)
    }

    // ------------------------------------------------------------ accessors

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes (shorthand for `shape().dims()`).
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total element count.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the backing buffer (row-major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    #[inline]
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    #[inline]
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    // -------------------------------------------------------- shape surgery

    /// Reinterprets the buffer under a new shape with the same element count.
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.data.len(),
            "reshape to {shape} changes element count from {}",
            self.data.len()
        );
        self.shape = shape;
        self
    }

    /// Returns the `i`-th slice along axis 0 (e.g. one sample of a batch),
    /// copied into a new tensor with the leading axis removed.
    pub fn index_axis0(&self, i: usize) -> Tensor {
        let dims = self.shape.dims();
        assert!(!dims.is_empty(), "cannot index a scalar");
        assert!(
            i < dims[0],
            "index {i} out of bounds for axis 0 of size {}",
            dims[0]
        );
        let inner: usize = dims[1..].iter().product();
        let data = self.data[i * inner..(i + 1) * inner].to_vec();
        Tensor {
            shape: Shape::new(dims[1..].to_vec()),
            data,
        }
    }

    /// Stacks tensors of identical shape along a new leading axis.
    pub fn stack(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "stack of zero tensors");
        let inner = parts[0].shape.clone();
        let mut data = Vec::with_capacity(parts.len() * inner.numel());
        for p in parts {
            assert_eq!(p.shape, inner, "stack requires identical shapes");
            data.extend_from_slice(&p.data);
        }
        let mut dims = vec![parts.len()];
        dims.extend_from_slice(inner.dims());
        Tensor {
            shape: Shape::new(dims),
            data,
        }
    }

    /// Concatenates tensors along `axis`; all other axes must agree.
    pub fn concat(parts: &[&Tensor], axis: usize) -> Tensor {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let rank = parts[0].shape.rank();
        assert!(
            axis < rank,
            "concat axis {axis} out of range for rank {rank}"
        );
        for p in parts {
            assert_eq!(p.shape.rank(), rank, "concat rank mismatch");
            for a in 0..rank {
                if a != axis {
                    assert_eq!(
                        p.shape.dim(a),
                        parts[0].shape.dim(a),
                        "concat: axis {a} disagrees"
                    );
                }
            }
        }
        let outer: usize = parts[0].dims()[..axis].iter().product();
        let inner: usize = parts[0].dims()[axis + 1..].iter().product();
        let total_axis: usize = parts.iter().map(|p| p.shape.dim(axis)).sum();

        let mut dims = parts[0].dims().to_vec();
        dims[axis] = total_axis;
        let mut data = Vec::with_capacity(outer * total_axis * inner);
        for o in 0..outer {
            for p in parts {
                let chunk = p.shape.dim(axis) * inner;
                data.extend_from_slice(&p.data[o * chunk..(o + 1) * chunk]);
            }
        }
        Tensor {
            shape: Shape::new(dims),
            data,
        }
    }

    /// Transposes a rank-2 tensor.
    pub fn transpose2d(&self) -> Tensor {
        let (r, c) = self.shape.matrix();
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor {
            shape: Shape::from([c, r]),
            data: out,
        }
    }

    // ----------------------------------------------------------- elementwise

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let data = if self.data.len() >= PAR_THRESHOLD {
            self.data.par_iter().map(|&x| f(x)).collect()
        } else {
            self.data.iter().map(|&x| f(x)).collect()
        };
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Applies `f` in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        if self.data.len() >= PAR_THRESHOLD {
            self.data.par_iter_mut().for_each(|x| *x = f(*x));
        } else {
            self.data.iter_mut().for_each(|x| *x = f(*x));
        }
    }

    /// Combines two same-shaped tensors elementwise.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip shape mismatch");
        let data = if self.data.len() >= PAR_THRESHOLD {
            self.data
                .par_iter()
                .zip(other.data.par_iter())
                .map(|(&a, &b)| f(a, b))
                .collect()
        } else {
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect()
        };
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, k: f32) -> Tensor {
        self.map(|x| k * x)
    }

    /// `self += alpha * other`, the SGD update primitive.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        if self.data.len() >= PAR_THRESHOLD {
            self.data
                .par_iter_mut()
                .zip(other.data.par_iter())
                .for_each(|(x, &y)| *x += alpha * y);
        } else {
            self.data
                .iter_mut()
                .zip(other.data.iter())
                .for_each(|(x, &y)| *x += alpha * y);
        }
    }

    // ------------------------------------------------------------ reductions

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        if self.data.len() >= PAR_THRESHOLD {
            self.data.par_iter().sum()
        } else {
            self.data.iter().sum()
        }
    }

    /// Arithmetic mean (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element. Panics on an empty tensor.
    pub fn max(&self) -> f32 {
        assert!(!self.data.is_empty(), "max of empty tensor");
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element (first occurrence).
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Squared L2 norm.
    pub fn sq_norm(&self) -> f32 {
        if self.data.len() >= PAR_THRESHOLD {
            self.data.par_iter().map(|x| x * x).sum()
        } else {
            self.data.iter().map(|x| x * x).sum()
        }
    }

    /// `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Maximum absolute difference against another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros([2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones([2, 2]).sum(), 4.0);
        assert_eq!(Tensor::full([3], 2.5).sum(), 7.5);
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Tensor::from_vec([2, 2], vec![1.0; 4]).is_ok());
        let err = Tensor::from_vec([2, 2], vec![1.0; 3]).unwrap_err();
        assert_eq!(err.expected, 4);
        assert_eq!(err.actual, 3);
    }

    #[test]
    fn at_and_set_roundtrip() {
        let mut t = Tensor::zeros([2, 3]);
        t.set(&[1, 2], 5.0);
        assert_eq!(t.at(&[1, 2]), 5.0);
        assert_eq!(t.at(&[0, 0]), 0.0);
        assert_eq!(t.data()[5], 5.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|x| x as f32).collect()).unwrap();
        let r = t.clone().reshape([3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.dims(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_rejects_bad_count() {
        Tensor::zeros([2, 3]).reshape([4, 2]);
    }

    #[test]
    fn index_axis0_extracts_sample() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|x| x as f32).collect()).unwrap();
        let s = t.index_axis0(1);
        assert_eq!(s.dims(), &[3]);
        assert_eq!(s.data(), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn stack_roundtrips_index_axis0() {
        let a = Tensor::full([2, 2], 1.0);
        let b = Tensor::full([2, 2], 2.0);
        let s = Tensor::stack(&[a.clone(), b.clone()]);
        assert_eq!(s.dims(), &[2, 2, 2]);
        assert_eq!(s.index_axis0(0), a);
        assert_eq!(s.index_axis0(1), b);
    }

    #[test]
    fn concat_axis1_channels() {
        // Two [1,2,2] tensors concatenated along channel axis -> [1,4,2].
        let a = Tensor::from_vec([1, 2, 2], vec![1., 2., 3., 4.]).unwrap();
        let b = Tensor::from_vec([1, 2, 2], vec![5., 6., 7., 8.]).unwrap();
        let c = Tensor::concat(&[&a, &b], 1);
        assert_eq!(c.dims(), &[1, 4, 2]);
        assert_eq!(c.data(), &[1., 2., 3., 4., 5., 6., 7., 8.]);
    }

    #[test]
    fn concat_last_axis_interleaves() {
        let a = Tensor::from_vec([2, 1], vec![1., 2.]).unwrap();
        let b = Tensor::from_vec([2, 2], vec![3., 4., 5., 6.]).unwrap();
        let c = Tensor::concat(&[&a, &b], 1);
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.data(), &[1., 3., 4., 2., 5., 6.]);
    }

    #[test]
    fn transpose2d_involution() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|x| x as f32).collect()).unwrap();
        let tt = t.transpose2d();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.at(&[2, 1]), t.at(&[1, 2]));
        assert_eq!(tt.transpose2d(), t);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec([3], vec![1., 2., 3.]).unwrap();
        let b = Tensor::from_vec([3], vec![4., 5., 6.]).unwrap();
        assert_eq!(a.add(&b).data(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).data(), &[3., 3., 3.]);
        assert_eq!(a.mul(&b).data(), &[4., 10., 18.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6.]);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = Tensor::from_vec([2], vec![1., 1.]).unwrap();
        let g = Tensor::from_vec([2], vec![10., 20.]).unwrap();
        a.axpy(-0.1, &g);
        assert!((a.data()[0] - 0.0).abs() < 1e-6);
        assert!((a.data()[1] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec([4], vec![-1., 3., 2., 0.]).unwrap();
        assert_eq!(t.sum(), 4.0);
        assert_eq!(t.mean(), 1.0);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.argmax(), 1);
        assert_eq!(t.sq_norm(), 14.0);
    }

    #[test]
    fn parallel_path_matches_sequential() {
        // Large enough to take the rayon path.
        let n = PAR_THRESHOLD * 2;
        let t = Tensor::from_vec([n], (0..n).map(|x| (x % 17) as f32).collect()).unwrap();
        let seq_sum: f32 = t.data().iter().sum();
        assert!((t.sum() - seq_sum).abs() <= 1e-3 * seq_sum.abs());
        let doubled = t.map(|x| 2.0 * x);
        assert_eq!(doubled.data()[12345], t.data()[12345] * 2.0);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros([4]);
        assert!(!t.has_non_finite());
        t.set(&[2], f32::NAN);
        assert!(t.has_non_finite());
    }

    #[test]
    fn kaiming_scale_tracks_fan_in() {
        let mut rng = SeededRng::new(0);
        let w = Tensor::kaiming([64, 36], 36, &mut rng);
        let std = (w.sq_norm() / w.numel() as f32).sqrt();
        let expect = (2.0f32 / 36.0).sqrt();
        assert!((std - expect).abs() < 0.05, "std {std} vs {expect}");
    }

    #[test]
    fn serde_roundtrip() {
        let t = Tensor::from_vec([2, 2], vec![1., 2., 3., 4.]).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
