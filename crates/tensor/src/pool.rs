//! Max pooling and adaptive (spatial-pyramid) pooling, forward and backward.
//!
//! The SPP layer of SPP-Net is a set of parallel *adaptive* max pools: each
//! pyramid level divides the feature map into `k × k` bins regardless of the
//! input's spatial size, producing a fixed-length representation (He et al.,
//! TPAMI 2015). Adaptive bins follow the PyTorch convention:
//! `start = floor(i·H / k)`, `end = ceil((i+1)·H / k)`.

use crate::conv::out_dim;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Argmax bookkeeping from [`max_pool2d`], consumed by [`max_pool2d_backward`].
#[derive(Debug, Clone)]
pub struct MaxIndices {
    /// For each output element, the linear index of its source in the input.
    indices: Vec<usize>,
    input_dims: [usize; 4],
    output_dims: [usize; 4],
}

/// Fixed-window max pooling.
///
/// Returns the pooled tensor and the argmax indices needed for backprop.
pub fn max_pool2d(input: &Tensor, kernel: usize, stride: usize) -> (Tensor, MaxIndices) {
    let (n, c, h, w) = input.shape().nchw();
    let oh = out_dim(h, kernel, stride, 0);
    let ow = out_dim(w, kernel, stride, 0);
    let in_spatial = h * w;
    let out_spatial = oh * ow;
    let sample_in = c * in_spatial;
    let sample_out = c * out_spatial;

    let mut out = vec![0.0f32; n * sample_out];
    let mut idx = vec![0usize; n * sample_out];
    out.par_chunks_mut(sample_out)
        .zip(idx.par_chunks_mut(sample_out))
        .enumerate()
        .for_each(|(s, (o, ix))| {
            let x = &input.data()[s * sample_in..(s + 1) * sample_in];
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_i = 0usize;
                        for ky in 0..kernel {
                            let iy = oy * stride + ky;
                            for kx in 0..kernel {
                                let ixp = ox * stride + kx;
                                let lin = ci * in_spatial + iy * w + ixp;
                                if x[lin] > best {
                                    best = x[lin];
                                    best_i = lin;
                                }
                            }
                        }
                        let olin = ci * out_spatial + oy * ow + ox;
                        o[olin] = best;
                        ix[olin] = s * sample_in + best_i;
                    }
                }
            }
        });
    (
        Tensor::from_vec([n, c, oh, ow], out).expect("pool output size"),
        MaxIndices {
            indices: idx,
            input_dims: [n, c, h, w],
            output_dims: [n, c, oh, ow],
        },
    )
}

/// [`max_pool2d`] without the argmax bookkeeping — the inference path,
/// which never backprops, skips the index buffer allocation entirely.
/// Values are bit-identical to [`max_pool2d`]'s.
pub fn max_pool2d_values(input: &Tensor, kernel: usize, stride: usize) -> Tensor {
    let (n, c, h, w) = input.shape().nchw();
    let oh = out_dim(h, kernel, stride, 0);
    let ow = out_dim(w, kernel, stride, 0);
    let in_spatial = h * w;
    let out_spatial = oh * ow;
    let sample_in = c * in_spatial;
    let sample_out = c * out_spatial;

    let mut out = vec![0.0f32; n * sample_out];
    out.par_chunks_mut(sample_out)
        .enumerate()
        .for_each(|(s, o)| {
            let x = &input.data()[s * sample_in..(s + 1) * sample_in];
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        for ky in 0..kernel {
                            let iy = oy * stride + ky;
                            for kx in 0..kernel {
                                let ixp = ox * stride + kx;
                                let v = x[ci * in_spatial + iy * w + ixp];
                                if v > best {
                                    best = v;
                                }
                            }
                        }
                        o[ci * out_spatial + oy * ow + ox] = best;
                    }
                }
            }
        });
    Tensor::from_vec([n, c, oh, ow], out).expect("pool output size")
}

/// Backward pass of [`max_pool2d`]: routes each output gradient to the input
/// element that won the max.
pub fn max_pool2d_backward(grad_out: &Tensor, saved: &MaxIndices) -> Tensor {
    assert_eq!(
        grad_out.dims(),
        &saved.output_dims,
        "max_pool2d_backward: grad shape mismatch"
    );
    let [n, c, h, w] = saved.input_dims;
    let mut gx = vec![0.0f32; n * c * h * w];
    for (&src, &g) in saved.indices.iter().zip(grad_out.data().iter()) {
        gx[src] += g;
    }
    Tensor::from_vec([n, c, h, w], gx).expect("pool grad size")
}

/// Bin boundaries for adaptive pooling (PyTorch convention).
#[inline]
fn adaptive_bin(i: usize, input: usize, bins: usize) -> (usize, usize) {
    let start = i * input / bins;
    let end = ((i + 1) * input).div_ceil(bins);
    (start, end.max(start + 1).min(input))
}

/// Argmax bookkeeping from [`adaptive_max_pool2d`].
#[derive(Debug, Clone)]
pub struct AdaptiveMaxIndices {
    indices: Vec<usize>,
    input_dims: [usize; 4],
    output_dims: [usize; 4],
}

/// Adaptive max pooling to an `out × out` grid — one SPP pyramid level.
pub fn adaptive_max_pool2d(input: &Tensor, out_size: usize) -> (Tensor, AdaptiveMaxIndices) {
    assert!(out_size > 0, "adaptive pool output must be positive");
    let (n, c, h, w) = input.shape().nchw();
    assert!(
        h >= 1 && w >= 1,
        "adaptive pool needs non-empty spatial dims"
    );
    let out_spatial = out_size * out_size;
    let in_spatial = h * w;
    let sample_in = c * in_spatial;
    let sample_out = c * out_spatial;

    let mut out = vec![0.0f32; n * sample_out];
    let mut idx = vec![0usize; n * sample_out];
    out.par_chunks_mut(sample_out)
        .zip(idx.par_chunks_mut(sample_out))
        .enumerate()
        .for_each(|(s, (o, ix))| {
            let x = &input.data()[s * sample_in..(s + 1) * sample_in];
            for ci in 0..c {
                for oy in 0..out_size {
                    let (y0, y1) = adaptive_bin(oy, h, out_size);
                    for ox in 0..out_size {
                        let (x0, x1) = adaptive_bin(ox, w, out_size);
                        let mut best = f32::NEG_INFINITY;
                        let mut best_i = 0usize;
                        for iy in y0..y1 {
                            for ixp in x0..x1 {
                                let lin = ci * in_spatial + iy * w + ixp;
                                if x[lin] > best {
                                    best = x[lin];
                                    best_i = lin;
                                }
                            }
                        }
                        let olin = ci * out_spatial + oy * out_size + ox;
                        o[olin] = best;
                        ix[olin] = s * sample_in + best_i;
                    }
                }
            }
        });
    (
        Tensor::from_vec([n, c, out_size, out_size], out).expect("adaptive pool output"),
        AdaptiveMaxIndices {
            indices: idx,
            input_dims: [n, c, h, w],
            output_dims: [n, c, out_size, out_size],
        },
    )
}

/// [`adaptive_max_pool2d`] without the argmax bookkeeping (see
/// [`max_pool2d_values`]). Values are bit-identical to the tracked variant.
pub fn adaptive_max_pool2d_values(input: &Tensor, out_size: usize) -> Tensor {
    assert!(out_size > 0, "adaptive pool output must be positive");
    let (n, c, h, w) = input.shape().nchw();
    assert!(
        h >= 1 && w >= 1,
        "adaptive pool needs non-empty spatial dims"
    );
    let out_spatial = out_size * out_size;
    let in_spatial = h * w;
    let sample_in = c * in_spatial;
    let sample_out = c * out_spatial;

    let mut out = vec![0.0f32; n * sample_out];
    out.par_chunks_mut(sample_out)
        .enumerate()
        .for_each(|(s, o)| {
            let x = &input.data()[s * sample_in..(s + 1) * sample_in];
            for ci in 0..c {
                for oy in 0..out_size {
                    let (y0, y1) = adaptive_bin(oy, h, out_size);
                    for ox in 0..out_size {
                        let (x0, x1) = adaptive_bin(ox, w, out_size);
                        let mut best = f32::NEG_INFINITY;
                        for iy in y0..y1 {
                            for ixp in x0..x1 {
                                let v = x[ci * in_spatial + iy * w + ixp];
                                if v > best {
                                    best = v;
                                }
                            }
                        }
                        o[ci * out_spatial + oy * out_size + ox] = best;
                    }
                }
            }
        });
    Tensor::from_vec([n, c, out_size, out_size], out).expect("adaptive pool output")
}

/// Backward pass of [`adaptive_max_pool2d`].
pub fn adaptive_max_pool2d_backward(grad_out: &Tensor, saved: &AdaptiveMaxIndices) -> Tensor {
    assert_eq!(
        grad_out.dims(),
        &saved.output_dims,
        "adaptive_max_pool2d_backward: grad shape mismatch"
    );
    let [n, c, h, w] = saved.input_dims;
    let mut gx = vec![0.0f32; n * c * h * w];
    for (&src, &g) in saved.indices.iter().zip(grad_out.data().iter()) {
        gx[src] += g;
    }
    Tensor::from_vec([n, c, h, w], gx).expect("adaptive pool grad size")
}

/// Adaptive average pooling to an `out × out` grid.
pub fn adaptive_avg_pool2d(input: &Tensor, out_size: usize) -> Tensor {
    assert!(out_size > 0, "adaptive pool output must be positive");
    let (n, c, h, w) = input.shape().nchw();
    let out_spatial = out_size * out_size;
    let in_spatial = h * w;
    let sample_in = c * in_spatial;
    let sample_out = c * out_spatial;

    let mut out = vec![0.0f32; n * sample_out];
    out.par_chunks_mut(sample_out)
        .enumerate()
        .for_each(|(s, o)| {
            let x = &input.data()[s * sample_in..(s + 1) * sample_in];
            for ci in 0..c {
                for oy in 0..out_size {
                    let (y0, y1) = adaptive_bin(oy, h, out_size);
                    for ox in 0..out_size {
                        let (x0, x1) = adaptive_bin(ox, w, out_size);
                        let mut acc = 0.0f32;
                        for iy in y0..y1 {
                            for ixp in x0..x1 {
                                acc += x[ci * in_spatial + iy * w + ixp];
                            }
                        }
                        let count = ((y1 - y0) * (x1 - x0)) as f32;
                        o[ci * out_spatial + oy * out_size + ox] = acc / count;
                    }
                }
            }
        });
    Tensor::from_vec([n, c, out_size, out_size], out).expect("adaptive avg output")
}

/// Backward pass of [`adaptive_avg_pool2d`]: spreads each output gradient
/// uniformly over its bin.
pub fn adaptive_avg_pool2d_backward(
    grad_out: &Tensor,
    input_shape: &[usize],
    out_size: usize,
) -> Tensor {
    let [n, c, h, w]: [usize; 4] = input_shape.try_into().expect("NCHW input shape");
    let (gn, gc, goh, gow) = grad_out.shape().nchw();
    assert_eq!(
        (gn, gc),
        (n, c),
        "adaptive_avg backward batch/channel mismatch"
    );
    assert_eq!(
        (goh, gow),
        (out_size, out_size),
        "adaptive_avg backward size mismatch"
    );
    let in_spatial = h * w;
    let out_spatial = out_size * out_size;
    let mut gx = vec![0.0f32; n * c * in_spatial];
    for s in 0..n {
        for ci in 0..c {
            for oy in 0..out_size {
                let (y0, y1) = adaptive_bin(oy, h, out_size);
                for ox in 0..out_size {
                    let (x0, x1) = adaptive_bin(ox, w, out_size);
                    let count = ((y1 - y0) * (x1 - x0)) as f32;
                    let g =
                        grad_out.data()[(s * c + ci) * out_spatial + oy * out_size + ox] / count;
                    for iy in y0..y1 {
                        for ixp in x0..x1 {
                            gx[(s * c + ci) * in_spatial + iy * w + ixp] += g;
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec([n, c, h, w], gx).expect("adaptive avg grad size")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::numeric_grad;
    use crate::rng::SeededRng;

    #[test]
    fn max_pool_2x2_known() {
        let x = Tensor::from_vec(
            [1, 1, 4, 4],
            vec![
                1., 2., 5., 3., //
                4., 0., 1., 2., //
                7., 8., 0., 1., //
                2., 3., 4., 9.,
            ],
        )
        .unwrap();
        let (y, _) = max_pool2d(&x, 2, 2);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4., 5., 8., 9.]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1., 4., 2., 3.]).unwrap();
        let (y, ix) = max_pool2d(&x, 2, 2);
        assert_eq!(y.data(), &[4.0]);
        let go = Tensor::from_vec([1, 1, 1, 1], vec![2.5]).unwrap();
        let gx = max_pool2d_backward(&go, &ix);
        assert_eq!(gx.data(), &[0., 2.5, 0., 0.]);
    }

    #[test]
    fn max_pool_backward_matches_numeric() {
        let mut rng = SeededRng::new(4);
        let x = Tensor::randn([1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let (_, ix) = max_pool2d(&x, 2, 2);
        let go = Tensor::ones([1, 2, 2, 2]);
        let gx = max_pool2d_backward(&go, &ix);
        let num = numeric_grad(&x, 1e-3, |xp| max_pool2d(xp, 2, 2).0.sum());
        assert!(gx.max_abs_diff(&num) < 1e-2);
    }

    #[test]
    fn values_variants_match_tracked_bitwise() {
        let mut rng = SeededRng::new(12);
        let x = Tensor::randn([2, 3, 9, 11], 0.0, 1.0, &mut rng);
        let (y, _) = max_pool2d(&x, 2, 2);
        let yv = max_pool2d_values(&x, 2, 2);
        assert_eq!(y.dims(), yv.dims());
        for (a, b) in y.data().iter().zip(yv.data().iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let (z, _) = adaptive_max_pool2d(&x, 4);
        let zv = adaptive_max_pool2d_values(&x, 4);
        assert_eq!(z.dims(), zv.dims());
        for (a, b) in z.data().iter().zip(zv.data().iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn adaptive_bins_cover_input_exactly() {
        for input in 1..=20 {
            for bins in 1..=input {
                let mut covered = vec![false; input];
                let mut prev_end = 0;
                for i in 0..bins {
                    let (s, e) = adaptive_bin(i, input, bins);
                    assert!(s <= prev_end, "gap before bin {i}");
                    assert!(e > s);
                    prev_end = e;
                    covered[s..e].iter_mut().for_each(|c| *c = true);
                }
                assert_eq!(prev_end, input, "bins do not reach end");
                assert!(covered.iter().all(|&c| c), "uncovered element");
            }
        }
    }

    #[test]
    fn adaptive_max_1x1_is_global_max() {
        let mut rng = SeededRng::new(5);
        let x = Tensor::randn([2, 3, 7, 9], 0.0, 1.0, &mut rng);
        let (y, _) = adaptive_max_pool2d(&x, 1);
        assert_eq!(y.dims(), &[2, 3, 1, 1]);
        for s in 0..2 {
            for c in 0..3 {
                let mut best = f32::NEG_INFINITY;
                for i in 0..7 * 9 {
                    best = best.max(x.data()[(s * 3 + c) * 63 + i]);
                }
                assert_eq!(y.at(&[s, c, 0, 0]), best);
            }
        }
    }

    #[test]
    fn adaptive_max_identity_when_bins_equal_size() {
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1., 2., 3., 4.]).unwrap();
        let (y, _) = adaptive_max_pool2d(&x, 2);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn adaptive_max_handles_output_larger_than_input() {
        // SPP on tiny maps: 1x1 input pooled to 2x2 replicates the value.
        let x = Tensor::from_vec([1, 1, 1, 1], vec![3.0]).unwrap();
        let (y, _) = adaptive_max_pool2d(&x, 2);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[3., 3., 3., 3.]);
    }

    #[test]
    fn adaptive_max_backward_matches_numeric() {
        let mut rng = SeededRng::new(6);
        let x = Tensor::randn([1, 2, 5, 5], 0.0, 1.0, &mut rng);
        let (_, ix) = adaptive_max_pool2d(&x, 3);
        let go = Tensor::ones([1, 2, 3, 3]);
        let gx = adaptive_max_pool2d_backward(&go, &ix);
        let num = numeric_grad(&x, 1e-3, |xp| adaptive_max_pool2d(xp, 3).0.sum());
        assert!(gx.max_abs_diff(&num) < 1e-2);
    }

    #[test]
    fn adaptive_avg_1x1_is_mean() {
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1., 2., 3., 6.]).unwrap();
        let y = adaptive_avg_pool2d(&x, 1);
        assert_eq!(y.data(), &[3.0]);
    }

    #[test]
    fn adaptive_avg_backward_matches_numeric() {
        let mut rng = SeededRng::new(10);
        let x = Tensor::randn([1, 1, 5, 7], 0.0, 1.0, &mut rng);
        let go = Tensor::ones([1, 1, 2, 2]);
        let gx = adaptive_avg_pool2d_backward(&go, x.dims(), 2);
        let num = numeric_grad(&x, 1e-3, |xp| adaptive_avg_pool2d(xp, 2).sum());
        assert!(gx.max_abs_diff(&num) < 1e-2);
    }

    #[test]
    fn spp_vector_length_is_input_size_independent() {
        // The defining SPP property: pyramid {4,2,1} gives 21·C features for
        // any spatial input size.
        let mut rng = SeededRng::new(11);
        for &(h, w) in &[(8usize, 8usize), (13, 9), (25, 25)] {
            let x = Tensor::randn([1, 2, h, w], 0.0, 1.0, &mut rng);
            let mut total = 0;
            for &level in &[4usize, 2, 1] {
                let (y, _) = adaptive_max_pool2d(&x, level);
                total += y.numel();
            }
            assert_eq!(total, 2 * (16 + 4 + 1));
        }
    }
}
