//! Blocked, rayon-parallel single-precision GEMM.
//!
//! This is the workhorse behind both the fully-connected layers and the
//! im2col convolution. The kernel parallelizes over row blocks of `A` (each
//! output row block is written by exactly one rayon task, so the loop is
//! data-race free by construction) and tiles the `k` dimension for cache
//! locality.

use crate::tensor::Tensor;
use rayon::prelude::*;

/// Cache-blocking tile along the shared `k` dimension.
const KC: usize = 256;
/// Row-block granularity handed to rayon.
const MC: usize = 32;

/// `C = A (m×k) · B (k×n)` into a freshly allocated row-major buffer.
///
/// Slices are raw row-major matrices; see [`matmul`] for the [`Tensor`]
/// wrapper.
pub fn gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(
        a.len(),
        m * k,
        "A buffer is {} but m*k = {}",
        a.len(),
        m * k
    );
    assert_eq!(
        b.len(),
        k * n,
        "B buffer is {} but k*n = {}",
        b.len(),
        k * n
    );
    let mut c = vec![0.0f32; m * n];
    gemm_into(a, b, &mut c, m, k, n);
    c
}

/// `C += A·B` accumulated into an existing buffer.
pub fn gemm_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    inner_gemm(a, b, c, m, k, n);
}

/// `C = A·B` overwriting an existing buffer.
pub fn gemm_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(
        c.len(),
        m * n,
        "C buffer is {} but m*n = {}",
        c.len(),
        m * n
    );
    c.iter_mut().for_each(|x| *x = 0.0);
    inner_gemm(a, b, c, m, k, n);
}

fn inner_gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // Parallelize over disjoint row blocks of C; sequential fallback for
    // small problems where rayon's scheduling would dominate.
    let work = m * n * k;
    if work < 1 << 16 {
        for kb in (0..k).step_by(KC) {
            let kend = (kb + KC).min(k);
            block_rows(a, b, c, 0, m, kb, kend, k, n);
        }
        return;
    }
    c.par_chunks_mut(MC * n)
        .enumerate()
        .for_each(|(blk, c_blk)| {
            let i0 = blk * MC;
            let i1 = (i0 + MC).min(m);
            for kb in (0..k).step_by(KC) {
                let kend = (kb + KC).min(k);
                block_rows(a, b, c_blk, i0, i1, kb, kend, k, n);
            }
        });
}

/// Multiplies rows `[i0, i1)` of A against the `[kb, kend)` slab of B,
/// accumulating into `c_rows` (whose row 0 corresponds to global row `i0`).
#[inline]
#[allow(clippy::too_many_arguments)]
fn block_rows(
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
    i0: usize,
    i1: usize,
    kb: usize,
    kend: usize,
    k: usize,
    n: usize,
) {
    for i in i0..i1 {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c_rows[(i - i0) * n..(i - i0 + 1) * n];
        for p in kb..kend {
            let aval = a_row[p];
            if aval == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            // Simple axpy over the output row: autovectorizes well.
            for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                *cv += aval * bv;
            }
        }
    }
}

/// `C = A·B + bias` where `bias` (length `n`) is broadcast over rows — the
/// fully-connected layer forward pass.
pub fn gemm_bias(a: &[f32], b: &[f32], bias: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(bias.len(), n, "bias length {} != n {}", bias.len(), n);
    let mut c = gemm(a, b, m, k, n);
    c.par_chunks_mut(n).for_each(|row| {
        for (x, &bv) in row.iter_mut().zip(bias.iter()) {
            *x += bv;
        }
    });
    c
}

/// Rank-2 [`Tensor`] matrix product.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape().matrix();
    let (k2, n) = b.shape().matrix();
    assert_eq!(k, k2, "matmul inner dims disagree: {k} vs {k2}");
    let c = gemm(a.data(), b.data(), m, k, n);
    Tensor::from_vec([m, n], c).expect("gemm output size")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    /// Naive reference O(mnk) product.
    fn gemm_ref(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f64; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + p] as f64 * b[p * n + j] as f64;
                }
            }
        }
        c.into_iter().map(|x| x as f32).collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "element {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn identity_matmul() {
        let a = Tensor::from_vec([2, 2], vec![1., 2., 3., 4.]).unwrap();
        let eye = Tensor::from_vec([2, 2], vec![1., 0., 0., 1.]).unwrap();
        assert_eq!(matmul(&a, &eye), a);
        assert_eq!(matmul(&eye, &a), a);
    }

    #[test]
    fn known_2x3_by_3x2() {
        let a = vec![1., 2., 3., 4., 5., 6.];
        let b = vec![7., 8., 9., 10., 11., 12.];
        let c = gemm(&a, &b, 2, 3, 2);
        assert_eq!(c, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn matches_reference_small() {
        let mut rng = SeededRng::new(1);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (7, 4, 9), (16, 16, 16)] {
            let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
            assert_close(&gemm(&a, &b, m, k, n), &gemm_ref(&a, &b, m, k, n), 1e-5);
        }
    }

    #[test]
    fn matches_reference_parallel_path() {
        // Large enough that inner_gemm takes the rayon branch and the KC
        // blocking kicks in (k > KC).
        let (m, k, n) = (70, 300, 50);
        let mut rng = SeededRng::new(2);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        assert_close(&gemm(&a, &b, m, k, n), &gemm_ref(&a, &b, m, k, n), 1e-4);
    }

    #[test]
    fn gemm_acc_accumulates() {
        let a = vec![1., 0., 0., 1.];
        let b = vec![2., 3., 4., 5.];
        let mut c = vec![1.0; 4];
        gemm_acc(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, vec![3., 4., 5., 6.]);
    }

    #[test]
    fn gemm_bias_broadcasts_rows() {
        let a = vec![1., 0., 0., 1.];
        let b = vec![1., 2., 3., 4.];
        let c = gemm_bias(&a, &b, &[10., 20.], 2, 2, 2);
        assert_eq!(c, vec![11., 22., 13., 24.]);
    }

    #[test]
    fn empty_dims_are_ok() {
        assert!(gemm(&[], &[], 0, 3, 0).is_empty());
        let c = gemm(&[0.0; 0], &[0.0; 0], 2, 0, 2);
        assert_eq!(c, vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "inner dims disagree")]
    fn matmul_checks_inner_dim() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        matmul(&a, &b);
    }
}
