//! Packed, register-blocked, rayon-parallel single-precision GEMM.
//!
//! This is the workhorse behind the fully-connected layers and the im2col
//! convolution, organized BLIS-style:
//!
//! * `A` is packed into row-panels of `MR` rows and `B` into column-panels
//!   of `NR` columns (k-major inside each panel), once per call — not per
//!   k-tile — into thread-local [`crate::scratch`] buffers, so the inner
//!   loop reads both operands with unit stride and steady-state calls make
//!   no heap allocations.
//! * An `MR×NR` register tile (6×16 for full-size problems — 12 ymm
//!   accumulators under AVX2, narrowed for skinny ones) accumulates over
//!   the whole `k` extent with one `mul_add` per element and no
//!   data-dependent branches; LLVM autovectorizes the `NR`-wide inner loop
//!   to FMA lanes (the workspace builds with `target-cpu=native`, see
//!   `.cargo/config.toml`).
//! * The write-back applies a fused [`Epilogue`] — overwrite, accumulate,
//!   or bias (+ optional ReLU), broadcast over rows or columns — so callers
//!   like the fully-connected forward pass no longer make a second sweep
//!   over `C`.
//! * Transposed variants ([`gemm_at`], [`gemm_bt`]) pack straight from the
//!   transposed layout, so backward passes never materialize `Aᵀ`/`Bᵀ`.
//!
//! Skinny products (`m` at most [`THIN_M`] — e.g. batch-1 inference
//! through a fully-connected layer — or at most [`THIN_M_BIG_RHS`] when
//! `B` is too large for L2) skip the packing entirely: packing `B` costs
//! `k·n` writes, more than the whole product is worth at `m = 1`. They run
//! a `k`-blocked axpy kernel straight off the row-major `b` instead.
//!
//! Parallelism splits `C` into disjoint `MC`-row blocks (each block is
//! written by exactly one rayon task), and every output element is a single
//! fused-multiply-add chain over `p = 0..k` in ascending order regardless
//! of the tile shape, code path, or thread count — which is what keeps
//! parallel runs bit-identical to sequential ones and the thin path
//! bit-identical to the tiled one. (The retained [`gemm_legacy`] baseline
//! uses separate mul+add, so it agrees with the packed kernel only to
//! rounding, not to the bit.)

use crate::scratch;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Rows per A micro-panel at full size. 6 rows × 16 columns is 12 ymm
/// accumulators — with the B row (2) and the A broadcast (1) that is 15 of
/// the 16 AVX2 registers, and 12 independent FMA chains comfortably covers
/// the latency×throughput product of the FMA units.
const MR_MAX: usize = 6;
/// Columns per B micro-panel at full size (two 8-lane vectors).
const NR_MAX: usize = 16;
/// Rows of `C` per parallel task (a multiple of every selectable `MR`).
const MC: usize = 60;
/// `m` at or below which the packing overhead cannot amortize and the thin
/// axpy path runs instead.
const THIN_M: usize = 8;
/// The thin path also wins up to this `m` when the right operand is too
/// big for L2 — packing it then costs a full extra DRAM round trip.
const THIN_M_BIG_RHS: usize = 32;
/// `k·n` above which `B` is considered DRAM-resident (≥ 8 MB of f32).
const BIG_RHS: usize = 1 << 21;
/// `k`-chunk of the thin path: one chunk of `B` rows (≤ 1 MB) stays cached
/// while every output row consumes it.
const KC_THIN: usize = 256;
/// `m·n·k` below which the block loop runs inline (scheduling would
/// dominate). The parallel and sequential paths run identical code.
const PAR_WORK: usize = 1 << 16;

/// Whether an operand is stored transposed.
///
/// `gemm`-family entry points take matrices in row-major storage; `Yes`
/// means the buffer holds the transpose of the operand (so `op(A)[i][p]`
/// reads `a[p*m + i]`), and the packing routines absorb the transpose —
/// no intermediate buffer is ever materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Operand stored as written in the product.
    No,
    /// Buffer holds the operand's transpose.
    Yes,
}

/// Fused write-back applied as each register tile leaves the accumulators.
#[derive(Debug, Clone, Copy)]
pub enum Epilogue<'a> {
    /// `C = A·B`.
    Store,
    /// `C += A·B`.
    Accumulate,
    /// `C = A·B + bias[j]` — bias broadcast over rows (fully-connected
    /// layers; `bias` has length `n`).
    BiasCols(&'a [f32]),
    /// [`Epilogue::BiasCols`] followed by `max(0, ·)`.
    BiasColsRelu(&'a [f32]),
    /// `C = A·B + bias[i]` — bias broadcast over columns (convolution
    /// output channels; `bias` has length `m`).
    BiasRows(&'a [f32]),
    /// [`Epilogue::BiasRows`] followed by `max(0, ·)`.
    BiasRowsRelu(&'a [f32]),
}

impl Epilogue<'_> {
    fn check(&self, m: usize, n: usize) {
        match self {
            Epilogue::BiasCols(b) | Epilogue::BiasColsRelu(b) => {
                assert_eq!(b.len(), n, "column bias length {} != n {n}", b.len());
            }
            Epilogue::BiasRows(b) | Epilogue::BiasRowsRelu(b) => {
                assert_eq!(b.len(), m, "row bias length {} != m {m}", b.len());
            }
            Epilogue::Store | Epilogue::Accumulate => {}
        }
    }
}

/// Micro-panel height for an `m`-row problem: full 6 when there is enough
/// work to fill the tile, narrowed so a skinny GEMM does not burn the FLOPs
/// on padding.
fn select_mr(m: usize) -> usize {
    if m >= MR_MAX {
        MR_MAX
    } else if m >= 4 {
        4
    } else if m >= 2 {
        2
    } else {
        1
    }
}

/// Micro-panel width for an `n`-column problem (see [`select_mr`]).
fn select_nr(n: usize) -> usize {
    if n >= NR_MAX {
        NR_MAX
    } else if n >= 8 {
        8
    } else if n >= 2 {
        4
    } else {
        1
    }
}

// ----------------------------------------------------------------- packing

/// Packs `op(A)` (`m×k` logical) into row-panels of `mr` rows, k-major
/// within each panel: element `(p, ii)` of panel `pi` lands at
/// `pi·mr·k + p·mr + ii`. `out` must be zeroed (ragged panels stay padded).
fn pack_lhs(a: &[f32], ta: Trans, m: usize, k: usize, mr: usize, out: &mut [f32]) {
    if k == 0 {
        return; // zero-extent panels; the epilogue still runs on write-back
    }
    match ta {
        Trans::No => {
            for (pi, panel) in out.chunks_mut(mr * k).enumerate() {
                let i0 = pi * mr;
                let rows = mr.min(m - i0);
                for ii in 0..rows {
                    let src = &a[(i0 + ii) * k..(i0 + ii + 1) * k];
                    for (p, &v) in src.iter().enumerate() {
                        panel[p * mr + ii] = v;
                    }
                }
            }
        }
        Trans::Yes => {
            // `a` stores Aᵀ: `op(A)[i][p] = a[p*m + i]`, so each source row
            // of `a` is contiguous in `ii` and copies as a slice.
            for (pi, panel) in out.chunks_mut(mr * k).enumerate() {
                let i0 = pi * mr;
                let rows = mr.min(m - i0);
                for p in 0..k {
                    let src = &a[p * m + i0..p * m + i0 + rows];
                    panel[p * mr..p * mr + rows].copy_from_slice(src);
                }
            }
        }
    }
}

/// Packs `op(B)` (`k×n` logical) into column-panels of `nr` columns,
/// k-major within each panel: element `(p, jj)` of panel `pj` lands at
/// `pj·nr·k + p·nr + jj`. `out` must be zeroed.
fn pack_rhs(b: &[f32], tb: Trans, k: usize, n: usize, nr: usize, out: &mut [f32]) {
    if k == 0 {
        return;
    }
    match tb {
        Trans::No => {
            for (pj, panel) in out.chunks_mut(nr * k).enumerate() {
                let j0 = pj * nr;
                let cols = nr.min(n - j0);
                for p in 0..k {
                    let src = &b[p * n + j0..p * n + j0 + cols];
                    panel[p * nr..p * nr + cols].copy_from_slice(src);
                }
            }
        }
        Trans::Yes => {
            // `b` stores Bᵀ: `op(B)[p][j] = b[j*k + p]`.
            for (pj, panel) in out.chunks_mut(nr * k).enumerate() {
                let j0 = pj * nr;
                let cols = nr.min(n - j0);
                for jj in 0..cols {
                    let src = &b[(j0 + jj) * k..(j0 + jj + 1) * k];
                    for (p, &v) in src.iter().enumerate() {
                        panel[p * nr + jj] = v;
                    }
                }
            }
        }
    }
}

/// `A` pre-packed for reuse across many [`gemm_packed`] calls.
///
/// `conv2d` packs its weight matrix once per layer invocation and shares it
/// (read-only) across every sample's im2col GEMM instead of re-packing per
/// sample. The panel buffer is borrowed from the packing thread's scratch
/// pool and returned on drop.
pub struct PackedLhs {
    buf: Vec<f32>,
    m: usize,
    k: usize,
    mr: usize,
}

impl PackedLhs {
    /// Packs `op(A)` with logical shape `m×k` (`a` holds `k×m` storage when
    /// `ta` is [`Trans::Yes`]).
    pub fn pack(a: &[f32], ta: Trans, m: usize, k: usize) -> PackedLhs {
        assert_eq!(
            a.len(),
            m * k,
            "A buffer is {} but m*k = {}",
            a.len(),
            m * k
        );
        let mr = select_mr(m.max(1));
        let mut buf = scratch::take(m.div_ceil(mr) * mr * k);
        pack_lhs(a, ta, m, k, mr, &mut buf);
        PackedLhs { buf, m, k, mr }
    }

    /// Logical row count of the packed operand.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Shared (inner) dimension of the packed operand.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Drop for PackedLhs {
    fn drop(&mut self) {
        scratch::release(std::mem::take(&mut self.buf));
    }
}

// ------------------------------------------------------------ micro-kernel

/// Computes one `MR×NR` register tile over the full `k` extent and writes
/// it back through the epilogue, masking the ragged edge.
///
/// Each accumulator is one `mul_add` chain over `a[i][p]·b[p][j]` for `p`
/// ascending — one fused chain per output element, independent of tile
/// shape and thread count, which is the invariant behind the
/// bit-determinism guarantee.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_tile<const MR: usize, const NR: usize>(
    apanel: &[f32],
    bpanel: &[f32],
    kdim: usize,
    c_rows: &mut [f32],
    row0: usize,
    gi: usize,
    j0: usize,
    m_rem: usize,
    n_rem: usize,
    n: usize,
    ep: Epilogue<'_>,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..kdim {
        let ar = &apanel[p * MR..p * MR + MR];
        let br = &bpanel[p * NR..p * NR + NR];
        for i in 0..MR {
            let ai = ar[i];
            for j in 0..NR {
                acc[i][j] = ai.mul_add(br[j], acc[i][j]);
            }
        }
    }
    for (i, acc_row) in acc.iter().enumerate().take(m_rem) {
        let crow = &mut c_rows[(row0 + i) * n + j0..(row0 + i) * n + j0 + n_rem];
        match ep {
            Epilogue::Store => {
                crow.copy_from_slice(&acc_row[..n_rem]);
            }
            Epilogue::Accumulate => {
                for (c, &v) in crow.iter_mut().zip(acc_row.iter()) {
                    *c += v;
                }
            }
            Epilogue::BiasCols(bias) => {
                let brow = &bias[j0..j0 + n_rem];
                for ((c, &v), &b) in crow.iter_mut().zip(acc_row.iter()).zip(brow.iter()) {
                    *c = v + b;
                }
            }
            Epilogue::BiasColsRelu(bias) => {
                let brow = &bias[j0..j0 + n_rem];
                for ((c, &v), &b) in crow.iter_mut().zip(acc_row.iter()).zip(brow.iter()) {
                    let y = v + b;
                    *c = if y > 0.0 { y } else { 0.0 };
                }
            }
            Epilogue::BiasRows(bias) => {
                let b = bias[gi + i];
                for (c, &v) in crow.iter_mut().zip(acc_row.iter()) {
                    *c = v + b;
                }
            }
            Epilogue::BiasRowsRelu(bias) => {
                let b = bias[gi + i];
                for (c, &v) in crow.iter_mut().zip(acc_row.iter()) {
                    let y = v + b;
                    *c = if y > 0.0 { y } else { 0.0 };
                }
            }
        }
    }
}

/// Runs every micro-tile of one `MC`-row block of `C`.
#[allow(clippy::too_many_arguments)]
fn block<const MR: usize, const NR: usize>(
    apack: &[f32],
    bpack: &[f32],
    c_rows: &mut [f32],
    i0: usize,
    i1: usize,
    k: usize,
    n: usize,
    ep: Epilogue<'_>,
) {
    for ip in (i0..i1).step_by(MR) {
        let apanel = &apack[(ip / MR) * MR * k..(ip / MR + 1) * MR * k];
        let m_rem = MR.min(i1 - ip);
        for jp in (0..n).step_by(NR) {
            let bpanel = &bpack[(jp / NR) * NR * k..(jp / NR + 1) * NR * k];
            let n_rem = NR.min(n - jp);
            micro_tile::<MR, NR>(
                apanel,
                bpanel,
                k,
                c_rows,
                ip - i0,
                ip,
                jp,
                m_rem,
                n_rem,
                n,
                ep,
            );
        }
    }
}

/// [`block`] with the tile shape resolved at runtime.
#[allow(clippy::too_many_arguments)]
fn block_dyn(
    (mr, nr): (usize, usize),
    apack: &[f32],
    bpack: &[f32],
    c_rows: &mut [f32],
    i0: usize,
    i1: usize,
    k: usize,
    n: usize,
    ep: Epilogue<'_>,
) {
    match (mr, nr) {
        (6, 16) => block::<6, 16>(apack, bpack, c_rows, i0, i1, k, n, ep),
        (6, 8) => block::<6, 8>(apack, bpack, c_rows, i0, i1, k, n, ep),
        (6, 4) => block::<6, 4>(apack, bpack, c_rows, i0, i1, k, n, ep),
        (6, 1) => block::<6, 1>(apack, bpack, c_rows, i0, i1, k, n, ep),
        (4, 16) => block::<4, 16>(apack, bpack, c_rows, i0, i1, k, n, ep),
        (4, 8) => block::<4, 8>(apack, bpack, c_rows, i0, i1, k, n, ep),
        (4, 4) => block::<4, 4>(apack, bpack, c_rows, i0, i1, k, n, ep),
        (4, 1) => block::<4, 1>(apack, bpack, c_rows, i0, i1, k, n, ep),
        (2, 16) => block::<2, 16>(apack, bpack, c_rows, i0, i1, k, n, ep),
        (2, 8) => block::<2, 8>(apack, bpack, c_rows, i0, i1, k, n, ep),
        (2, 4) => block::<2, 4>(apack, bpack, c_rows, i0, i1, k, n, ep),
        (2, 1) => block::<2, 1>(apack, bpack, c_rows, i0, i1, k, n, ep),
        (1, 16) => block::<1, 16>(apack, bpack, c_rows, i0, i1, k, n, ep),
        (1, 8) => block::<1, 8>(apack, bpack, c_rows, i0, i1, k, n, ep),
        (1, 4) => block::<1, 4>(apack, bpack, c_rows, i0, i1, k, n, ep),
        (1, 1) => block::<1, 1>(apack, bpack, c_rows, i0, i1, k, n, ep),
        _ => unreachable!("unsupported tile {mr}x{nr}"),
    }
}

/// `C[m×n] = op(A)·B'` against a pre-packed left operand, `B'` packed here
/// from `b` (transposed when `tb` says so), with a fused epilogue.
pub fn gemm_packed(pa: &PackedLhs, b: &[f32], tb: Trans, c: &mut [f32], n: usize, ep: Epilogue) {
    let (m, k) = (pa.m, pa.k);
    assert_eq!(
        b.len(),
        k * n,
        "B buffer is {} but k*n = {}",
        b.len(),
        k * n
    );
    assert_eq!(
        c.len(),
        m * n,
        "C buffer is {} but m*n = {}",
        c.len(),
        m * n
    );
    ep.check(m, n);
    if m == 0 || n == 0 {
        return;
    }
    let nr = select_nr(n);
    let mut bpack = scratch::take(n.div_ceil(nr) * nr * k);
    pack_rhs(b, tb, k, n, nr, &mut bpack);
    let tile = (pa.mr, nr);
    if m * n * k < PAR_WORK {
        for blk in 0..m.div_ceil(MC) {
            let (i0, i1) = (blk * MC, (blk * MC + MC).min(m));
            block_dyn(
                tile,
                &pa.buf,
                &bpack,
                &mut c[i0 * n..i1 * n],
                i0,
                i1,
                k,
                n,
                ep,
            );
        }
    } else {
        let (apack, bpack_ref) = (&pa.buf, &bpack);
        c.par_chunks_mut(MC * n)
            .enumerate()
            .for_each(|(blk, c_blk)| {
                let (i0, i1) = (blk * MC, (blk * MC + MC).min(m));
                block_dyn(tile, apack, bpack_ref, c_blk, i0, i1, k, n, ep);
            });
    }
    scratch::release(bpack);
}

/// Row-at-a-time axpy kernel for skinny products.
///
/// Packing `B` costs `k·n` writes; at `m = 1` (batch-1 inference through a
/// fully-connected layer) that is more memory traffic than the entire
/// product. This path reads the row-major `b` directly in `KC_THIN`-row
/// chunks — each chunk stays cached while all `m` accumulator rows consume
/// it — and applies the same fused epilogue. Every output element is still
/// a single `mul_add` chain with `p` ascending, so the thin and tiled
/// paths agree to the bit. Runs inline — thin problems are too small for
/// task scheduling to pay off.
#[allow(clippy::too_many_arguments)]
fn gemm_thin(
    a: &[f32],
    ta: Trans,
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ep: Epilogue<'_>,
) {
    let mut accs = scratch::take(m * n);
    for kb in (0..k).step_by(KC_THIN) {
        let kend = (kb + KC_THIN).min(k);
        for i in 0..m {
            let acc = &mut accs[i * n..(i + 1) * n];
            for p in kb..kend {
                let ai = match ta {
                    Trans::No => a[i * k + p],
                    Trans::Yes => a[p * m + i],
                };
                let brow = &b[p * n..(p + 1) * n];
                for (av, &bv) in acc.iter_mut().zip(brow.iter()) {
                    *av = ai.mul_add(bv, *av);
                }
            }
        }
    }
    for (i, acc) in accs.chunks(n.max(1)).enumerate().take(m) {
        let crow = &mut c[i * n..(i + 1) * n];
        match ep {
            Epilogue::Store => crow.copy_from_slice(acc),
            Epilogue::Accumulate => {
                for (cv, &v) in crow.iter_mut().zip(acc.iter()) {
                    *cv += v;
                }
            }
            Epilogue::BiasCols(bias) => {
                for ((cv, &v), &bj) in crow.iter_mut().zip(acc.iter()).zip(bias.iter()) {
                    *cv = v + bj;
                }
            }
            Epilogue::BiasColsRelu(bias) => {
                for ((cv, &v), &bj) in crow.iter_mut().zip(acc.iter()).zip(bias.iter()) {
                    let y = v + bj;
                    *cv = if y > 0.0 { y } else { 0.0 };
                }
            }
            Epilogue::BiasRows(bias) => {
                let bi = bias[i];
                for (cv, &v) in crow.iter_mut().zip(acc.iter()) {
                    *cv = v + bi;
                }
            }
            Epilogue::BiasRowsRelu(bias) => {
                let bi = bias[i];
                for (cv, &v) in crow.iter_mut().zip(acc.iter()) {
                    let y = v + bi;
                    *cv = if y > 0.0 { y } else { 0.0 };
                }
            }
        }
    }
    scratch::release(accs);
}

/// General packed GEMM: `C[m×n] ←(ep) op(A)·op(B)` where `a` stores `A`
/// (`m×k`, or `k×m` when `ta` = [`Trans::Yes`]) and `b` stores `B` (`k×n`,
/// or `n×k` when `tb` = [`Trans::Yes`]).
#[allow(clippy::too_many_arguments)]
pub fn gemm_ep(
    a: &[f32],
    ta: Trans,
    b: &[f32],
    tb: Trans,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ep: Epilogue,
) {
    let _span = dcd_obs::span("gemm", dcd_obs::Category::Gemm);
    dcd_obs::counter!("gemm.flops").add(2 * (m * k * n) as u64);
    let thin = m <= THIN_M || (m <= THIN_M_BIG_RHS && k * n >= BIG_RHS);
    if thin && tb == Trans::No {
        assert_eq!(
            a.len(),
            m * k,
            "A buffer is {} but m*k = {}",
            a.len(),
            m * k
        );
        assert_eq!(
            b.len(),
            k * n,
            "B buffer is {} but k*n = {}",
            b.len(),
            k * n
        );
        assert_eq!(
            c.len(),
            m * n,
            "C buffer is {} but m*n = {}",
            c.len(),
            m * n
        );
        ep.check(m, n);
        gemm_thin(a, ta, b, c, m, k, n, ep);
        return;
    }
    let pa = PackedLhs::pack(a, ta, m, k);
    gemm_packed(&pa, b, tb, c, n, ep);
}

// ---------------------------------------------------------- entry points

/// `C = A (m×k) · B (k×n)` into a freshly allocated row-major buffer.
///
/// Slices are raw row-major matrices; see [`matmul`] for the [`Tensor`]
/// wrapper.
pub fn gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    gemm_ep(a, Trans::No, b, Trans::No, &mut c, m, k, n, Epilogue::Store);
    c
}

/// `C = A·B` overwriting an existing buffer (no zeroing pre-pass — the
/// packed kernel stores every element exactly once).
pub fn gemm_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_ep(a, Trans::No, b, Trans::No, c, m, k, n, Epilogue::Store);
}

/// `C += A·B` accumulated into an existing buffer.
pub fn gemm_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_ep(a, Trans::No, b, Trans::No, c, m, k, n, Epilogue::Accumulate);
}

/// `C = A·B + bias` where `bias` (length `n`) is broadcast over rows — the
/// fully-connected forward pass, bias fused into the tile write-back
/// instead of a second sweep over `C`.
pub fn gemm_bias(a: &[f32], b: &[f32], bias: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    gemm_ep(
        a,
        Trans::No,
        b,
        Trans::No,
        &mut c,
        m,
        k,
        n,
        Epilogue::BiasCols(bias),
    );
    c
}

/// [`gemm_bias`] with a fused `max(0, ·)` — the inference fast path for
/// `Linear → ReLU`, skipping the separate mask pass entirely.
pub fn gemm_bias_relu(
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    m: usize,
    k: usize,
    n: usize,
) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    gemm_ep(
        a,
        Trans::No,
        b,
        Trans::No,
        &mut c,
        m,
        k,
        n,
        Epilogue::BiasColsRelu(bias),
    );
    c
}

/// `C[m×n] = Aᵀ·B` where `a` holds `A` in `k×m` storage — e.g. the
/// fully-connected weight gradient `xᵀ·∂y` without materializing `xᵀ`.
pub fn gemm_at(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    gemm_ep(
        a,
        Trans::Yes,
        b,
        Trans::No,
        &mut c,
        m,
        k,
        n,
        Epilogue::Store,
    );
    c
}

/// `C[m×n] = A·Bᵀ` where `b` holds `B` in `n×k` storage — e.g. the
/// fully-connected input gradient `∂y·Wᵀ` without materializing `Wᵀ`.
pub fn gemm_bt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    gemm_ep(
        a,
        Trans::No,
        b,
        Trans::Yes,
        &mut c,
        m,
        k,
        n,
        Epilogue::Store,
    );
    c
}

/// `C += A·Bᵀ` (`b` in `n×k` storage) — the convolution weight-gradient
/// accumulation `∂y·colsᵀ` without building the `colsᵀ` buffer.
pub fn gemm_bt_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_ep(
        a,
        Trans::No,
        b,
        Trans::Yes,
        c,
        m,
        k,
        n,
        Epilogue::Accumulate,
    );
}

/// Rank-2 [`Tensor`] matrix product.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape().matrix();
    let (k2, n) = b.shape().matrix();
    assert_eq!(k, k2, "matmul inner dims disagree: {k} vs {k2}");
    let c = gemm(a.data(), b.data(), m, k, n);
    Tensor::from_vec([m, n], c).expect("gemm output size")
}

// -------------------------------------------------------------- legacy

/// The pre-packing scalar axpy kernel, kept as the benchmark baseline
/// (`dcd-bench --bin gemm` reports packed-vs-legacy speedups) and as an
/// independent oracle in tests. Not used by any layer.
pub fn gemm_legacy(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    let mut c = vec![0.0f32; m * n];
    if m == 0 || n == 0 || k == 0 {
        return c;
    }
    const KC: usize = 256;
    let legacy_rows = |a: &[f32], c_rows: &mut [f32], i0: usize, i1: usize| {
        for kb in (0..k).step_by(KC) {
            let kend = (kb + KC).min(k);
            for i in i0..i1 {
                let a_row = &a[i * k..(i + 1) * k];
                let c_row = &mut c_rows[(i - i0) * n..(i - i0 + 1) * n];
                for p in kb..kend {
                    let aval = a_row[p];
                    if aval == 0.0 {
                        continue;
                    }
                    let b_row = &b[p * n..(p + 1) * n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                        *cv += aval * bv;
                    }
                }
            }
        }
    };
    if m * n * k < PAR_WORK {
        legacy_rows(a, &mut c, 0, m);
    } else {
        c.par_chunks_mut(32 * n)
            .enumerate()
            .for_each(|(blk, c_blk)| {
                legacy_rows(a, c_blk, blk * 32, (blk * 32 + 32).min(m));
            });
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    /// Naive reference O(mnk) product.
    fn gemm_ref(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f64; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + p] as f64 * b[p * n + j] as f64;
                }
            }
        }
        c.into_iter().map(|x| x as f32).collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "element {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn identity_matmul() {
        let a = Tensor::from_vec([2, 2], vec![1., 2., 3., 4.]).unwrap();
        let eye = Tensor::from_vec([2, 2], vec![1., 0., 0., 1.]).unwrap();
        assert_eq!(matmul(&a, &eye), a);
        assert_eq!(matmul(&eye, &a), a);
    }

    #[test]
    fn known_2x3_by_3x2() {
        let a = vec![1., 2., 3., 4., 5., 6.];
        let b = vec![7., 8., 9., 10., 11., 12.];
        let c = gemm(&a, &b, 2, 3, 2);
        assert_eq!(c, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn matches_reference_small() {
        let mut rng = SeededRng::new(1);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (7, 4, 9), (16, 16, 16)] {
            let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
            assert_close(&gemm(&a, &b, m, k, n), &gemm_ref(&a, &b, m, k, n), 1e-5);
        }
    }

    #[test]
    fn matches_reference_parallel_path() {
        // Large enough that the rayon branch engages and multiple row
        // blocks and ragged edge panels are exercised (70 % 8 != 0).
        let (m, k, n) = (70, 300, 50);
        let mut rng = SeededRng::new(2);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        assert_close(&gemm(&a, &b, m, k, n), &gemm_ref(&a, &b, m, k, n), 1e-4);
    }

    #[test]
    fn packed_matches_legacy_closely() {
        // The packed kernel keeps the legacy summation order (single
        // accumulator per element, p ascending) but fuses each multiply-add,
        // so it agrees with the separate-mul-add legacy kernel to rounding.
        let mut rng = SeededRng::new(12);
        for &(m, k, n) in &[(1, 7, 5), (13, 31, 9), (70, 300, 50)] {
            let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
            let packed = gemm(&a, &b, m, k, n);
            let legacy = gemm_legacy(&a, &b, m, k, n);
            assert_close(&packed, &legacy, 1e-5);
        }
    }

    #[test]
    fn thin_matches_tiled_bitwise() {
        // m ≤ THIN_M routes through the axpy path; the tiled kernel run on
        // the same inputs (via a pre-packed LHS, which always tiles) must
        // agree to the bit — both are one fma chain per element.
        let mut rng = SeededRng::new(14);
        for &(m, k, n) in &[(1, 5376, 64), (4, 37, 21), (8, 100, 33)] {
            let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
            let thin = gemm(&a, &b, m, k, n);
            let pa = PackedLhs::pack(&a, Trans::No, m, k);
            let mut tiled = vec![0.0f32; m * n];
            gemm_packed(&pa, &b, Trans::No, &mut tiled, n, Epilogue::Store);
            for (i, (t, g)) in thin.iter().zip(tiled.iter()).enumerate() {
                assert_eq!(t.to_bits(), g.to_bits(), "element {i}: {t} vs {g}");
            }
        }
    }

    #[test]
    fn gemm_acc_accumulates() {
        let a = vec![1., 0., 0., 1.];
        let b = vec![2., 3., 4., 5.];
        let mut c = vec![1.0; 4];
        gemm_acc(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, vec![3., 4., 5., 6.]);
    }

    #[test]
    fn gemm_bias_broadcasts_rows() {
        let a = vec![1., 0., 0., 1.];
        let b = vec![1., 2., 3., 4.];
        let c = gemm_bias(&a, &b, &[10., 20.], 2, 2, 2);
        assert_eq!(c, vec![11., 22., 13., 24.]);
    }

    #[test]
    fn gemm_bias_relu_clamps_negatives() {
        let a = vec![1., 0., 0., 1.];
        let b = vec![1., -2., 3., -4.];
        let c = gemm_bias_relu(&a, &b, &[0.5, 0.5], 2, 2, 2);
        assert_eq!(c, vec![1.5, 0.0, 3.5, 0.0]);
    }

    #[test]
    fn row_bias_broadcasts_columns() {
        let a = vec![1., 0., 0., 1.];
        let b = vec![1., 2., 3., 4.];
        let mut c = vec![0.0; 4];
        gemm_ep(
            &a,
            Trans::No,
            &b,
            Trans::No,
            &mut c,
            2,
            2,
            2,
            Epilogue::BiasRows(&[10., 20.]),
        );
        assert_eq!(c, vec![11., 12., 23., 24.]);
    }

    #[test]
    fn gemm_at_transposes_lhs() {
        // A stored [k=3 × m=2]; op(A) = Aᵀ is [[1,3,5],[2,4,6]].
        let a = vec![1., 2., 3., 4., 5., 6.];
        let b = vec![7., 8., 9., 10., 11., 12.];
        let c = gemm_at(&a, &b, 2, 3, 2);
        assert_eq!(c, vec![89., 98., 116., 128.]);
    }

    #[test]
    fn gemm_bt_transposes_rhs() {
        // B stored [n=2 × k=3]; op(B) = Bᵀ.
        let a = vec![1., 2., 3., 4., 5., 6.];
        let b = vec![7., 8., 9., 10., 11., 12.];
        let c = gemm_bt(&a, &b, 2, 3, 2);
        assert_eq!(c, vec![50., 68., 122., 167.]);
    }

    #[test]
    fn gemm_bt_acc_accumulates() {
        let a = vec![1., 0., 0., 1.];
        let b = vec![2., 3., 4., 5.]; // B stored [n=2 × k=2]
        let mut c = vec![1.0; 4];
        gemm_bt_acc(&a, &b, &mut c, 2, 2, 2);
        // A·Bᵀ = [[2,4],[3,5]] + 1
        assert_eq!(c, vec![3., 5., 4., 6.]);
    }

    #[test]
    fn packed_lhs_reused_across_calls() {
        let mut rng = SeededRng::new(3);
        let (m, k, n) = (11, 23, 17);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let pa = PackedLhs::pack(&a, Trans::No, m, k);
        for seed in 0..4 {
            let mut r2 = SeededRng::new(seed);
            let b: Vec<f32> = (0..k * n).map(|_| r2.normal()).collect();
            let mut c = vec![0.0; m * n];
            gemm_packed(&pa, &b, Trans::No, &mut c, n, Epilogue::Store);
            assert_close(&c, &gemm_ref(&a, &b, m, k, n), 1e-5);
        }
    }

    #[test]
    fn zero_k_applies_epilogue_only() {
        let mut c = vec![7.0; 4];
        gemm_ep(
            &[],
            Trans::No,
            &[],
            Trans::No,
            &mut c,
            2,
            0,
            2,
            Epilogue::BiasCols(&[1.0, 2.0]),
        );
        assert_eq!(c, vec![1., 2., 1., 2.]);
        gemm_ep(
            &[],
            Trans::No,
            &[],
            Trans::No,
            &mut c,
            2,
            0,
            2,
            Epilogue::Accumulate,
        );
        assert_eq!(c, vec![1., 2., 1., 2.]);
    }

    #[test]
    fn empty_dims_are_ok() {
        assert!(gemm(&[], &[], 0, 3, 0).is_empty());
        let c = gemm(&[0.0; 0], &[0.0; 0], 2, 0, 2);
        assert_eq!(c, vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "inner dims disagree")]
    fn matmul_checks_inner_dim() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        matmul(&a, &b);
    }
}
