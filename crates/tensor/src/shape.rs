//! Tensor shapes and row-major stride arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned when a buffer and a requested shape disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Number of elements the shape implies.
    pub expected: usize,
    /// Number of elements actually provided.
    pub actual: usize,
    /// The offending shape.
    pub dims: Vec<usize>,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape {:?} implies {} elements but buffer holds {}",
            self.dims, self.expected, self.actual
        )
    }
}

impl std::error::Error for ShapeError {}

/// A dense, row-major tensor shape.
///
/// The last axis is contiguous. CNN activations use the NCHW convention:
/// `[batch, channels, height, width]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Builds a shape from its dimension sizes.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// The dimension sizes.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of axes.
    #[inline]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dims; 1 for a scalar/rank-0 shape).
    #[inline]
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of axis `axis`. Panics if out of range.
    #[inline]
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-dimensional index. Panics on out-of-bounds
    /// indices or rank mismatch.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.0.len(),
            "index rank {} != shape rank {}",
            index.len(),
            self.0.len()
        );
        let mut off = 0;
        let mut stride = 1;
        for axis in (0..self.0.len()).rev() {
            assert!(
                index[axis] < self.0[axis],
                "index {} out of bounds for axis {} of size {}",
                index[axis],
                axis,
                self.0[axis]
            );
            off += index[axis] * stride;
            stride *= self.0[axis];
        }
        off
    }

    /// Interprets this shape as NCHW and returns `(n, c, h, w)`.
    /// Panics if the rank is not 4.
    pub fn nchw(&self) -> (usize, usize, usize, usize) {
        assert_eq!(self.rank(), 4, "expected NCHW (rank 4), got {self}");
        (self.0[0], self.0[1], self.0[2], self.0[3])
    }

    /// Interprets this shape as a matrix and returns `(rows, cols)`.
    /// Panics if the rank is not 2.
    pub fn matrix(&self) -> (usize, usize) {
        assert_eq!(self.rank(), 2, "expected a matrix (rank 2), got {self}");
        (self.0[0], self.0[1])
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(v: [usize; N]) -> Self {
        Shape(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(Vec::<usize>::new());
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
    }

    #[test]
    fn row_major_strides() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[0, 1, 1]), 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_bounds_checked() {
        Shape::from([2, 3]).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn offset_rank_checked() {
        Shape::from([2, 3]).offset(&[1]);
    }

    #[test]
    fn nchw_accessor() {
        assert_eq!(Shape::from([1, 4, 100, 100]).nchw(), (1, 4, 100, 100));
    }

    #[test]
    fn display_is_debug_vec() {
        assert_eq!(Shape::from([2, 3]).to_string(), "[2, 3]");
    }
}
