//! # dcd-tensor
//!
//! A small, deterministic, CPU tensor library purpose-built for the
//! drainage-crossing CNN reproduction. It provides exactly the kernels an
//! SPP-Net needs — blocked GEMM, im2col convolution, max pooling, adaptive
//! (spatial-pyramid) pooling — together with their backward passes, all
//! data-parallel via rayon.
//!
//! Design notes:
//! * Tensors are dense, contiguous, row-major `f32` buffers with an explicit
//!   shape; CNN activations use NCHW order.
//! * Shape errors are programming errors and panic with a precise message
//!   (the same contract ndarray uses); fallible construction from user data
//!   goes through [`Tensor::from_vec`], which returns a [`ShapeError`].
//! * Every random initializer takes an explicit seed so that training runs,
//!   NAS trials and tests are bit-reproducible.

pub mod conv;
pub mod gemm;
pub mod grad_check;
pub mod pool;
pub mod rng;
pub mod scratch;
pub mod shape;
pub mod tensor;

pub use conv::{conv2d, conv2d_backward, conv2d_relu, Conv2dGrads};
pub use gemm::{
    gemm, gemm_acc, gemm_at, gemm_bias, gemm_bias_relu, gemm_bt, gemm_bt_acc, gemm_ep, gemm_into,
    gemm_legacy, gemm_packed, matmul, Epilogue, PackedLhs, Trans,
};
pub use pool::{
    adaptive_avg_pool2d, adaptive_avg_pool2d_backward, adaptive_max_pool2d,
    adaptive_max_pool2d_backward, adaptive_max_pool2d_values, max_pool2d, max_pool2d_backward,
    max_pool2d_values, AdaptiveMaxIndices, MaxIndices,
};
pub use rng::SeededRng;
pub use shape::{Shape, ShapeError};
pub use tensor::Tensor;
