//! Thread-local scratch arena for kernel work buffers.
//!
//! The conv/im2col/GEMM hot path used to heap-allocate its intermediates
//! (`im2col` columns, GEMM pack panels, `col2im` staging) with `vec!` on
//! every call — per sample, per tile, per NAS trial. This module replaces
//! those with a per-thread free list of `f32` buffers: [`take`] hands out a
//! zeroed buffer of the requested length, [`release`] returns it with its
//! capacity intact, and in steady state no call touches the allocator at
//! all.
//!
//! Design:
//! * The pool is `thread_local!`, so rayon workers never contend and a
//!   buffer's contents can never be observed by another thread. A buffer
//!   released on a different thread than it was taken from simply migrates
//!   pools — capacity is conserved globally either way.
//! * [`take`] zero-fills. That costs one memset per checkout, but it makes
//!   reuse indistinguishable from a fresh `vec![0.0; len]`: kernels like
//!   `im2col` that only write the in-bounds positions stay correct, and no
//!   stale data from a previous caller can leak into a result (which would
//!   also break the workspace's bit-determinism guarantee).
//! * Checkout prefers the smallest pooled buffer whose capacity fits, so a
//!   mixed workload (tiny bias panels next to megabyte im2col columns)
//!   does not burn its big buffers on small requests.
//! * Every capacity growth increments a global counter, [`grow_events`].
//!   Tests use the counter to prove the steady-state claim: after a warm-up
//!   call, repeated `conv2d` invocations must not grow anything.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Global count of scratch allocations/growths since process start.
static GROW_EVENTS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread free list of released buffers.
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Checks out a zeroed buffer of exactly `len` elements.
///
/// Pair with [`release`]; a buffer that is never released is just a normal
/// allocation (nothing leaks, the pool only loses the reuse).
pub fn take(len: usize) -> Vec<f32> {
    if len == 0 {
        return Vec::new();
    }
    let mut buf = POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        // Smallest pooled buffer that fits without growing; otherwise the
        // overall largest, which minimizes the size of the growth.
        let mut best: Option<(usize, bool)> = None; // (index, fits)
        for (i, b) in pool.iter().enumerate() {
            let fits = b.capacity() >= len;
            best = match best {
                None => Some((i, fits)),
                Some((bi, bfits)) => {
                    let better = match (fits, bfits) {
                        (true, false) => true,
                        (false, true) => false,
                        (true, true) => b.capacity() < pool[bi].capacity(),
                        (false, false) => b.capacity() > pool[bi].capacity(),
                    };
                    if better {
                        Some((i, fits))
                    } else {
                        Some((bi, bfits))
                    }
                }
            };
        }
        match best {
            Some((i, _)) => pool.swap_remove(i),
            None => Vec::new(),
        }
    });
    if buf.capacity() < len {
        GROW_EVENTS.fetch_add(1, Ordering::Relaxed);
    }
    buf.clear();
    buf.resize(len, 0.0);
    buf
}

/// Returns a buffer to this thread's pool, keeping its capacity for reuse.
pub fn release(buf: Vec<f32>) {
    if buf.capacity() == 0 {
        return;
    }
    POOL.with(|pool| pool.borrow_mut().push(buf));
}

/// How many times [`take`] has had to allocate or grow, process-wide.
///
/// Monotone; tests snapshot it around a workload to assert steady-state
/// reuse (`delta == 0` after warm-up).
pub fn grow_events() -> u64 {
    GROW_EVENTS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_buffer_of_len() {
        let mut b = take(17);
        assert_eq!(b.len(), 17);
        assert!(b.iter().all(|&x| x == 0.0));
        b.iter_mut().for_each(|x| *x = 5.0);
        release(b);
        // Reused buffer is re-zeroed.
        let b2 = take(17);
        assert_eq!(b2.len(), 17);
        assert!(b2.iter().all(|&x| x == 0.0));
        release(b2);
    }

    #[test]
    fn steady_state_does_not_grow() {
        // Warm the pool with the sizes we'll request.
        let (a, b) = (take(1000), take(50));
        release(a);
        release(b);
        let before = grow_events();
        for _ in 0..100 {
            let a = take(1000);
            let b = take(50);
            release(b);
            release(a);
        }
        assert_eq!(grow_events(), before, "steady-state take/release grew");
    }

    #[test]
    fn prefers_smallest_fitting_buffer() {
        release(Vec::with_capacity(1 << 16));
        release(Vec::with_capacity(64));
        let small = take(10);
        assert!(
            small.capacity() < 1 << 16,
            "small request took the big buffer"
        );
        let big = take(1 << 15);
        assert!(big.capacity() >= 1 << 16, "big buffer was not reused");
        release(small);
        release(big);
    }

    #[test]
    fn zero_len_take_is_free() {
        let before = grow_events();
        let b = take(0);
        assert!(b.is_empty());
        release(b);
        assert_eq!(grow_events(), before);
    }
}
