//! Deterministic random number generation.
//!
//! Every stochastic component of the reproduction (weight init, data
//! generation, NAS sampling) threads an explicit seed through this type so
//! experiments are bit-reproducible across runs and machines.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A seeded RNG with the handful of draws the stack needs.
///
/// Wraps [`StdRng`] so the crate's public API is insulated from `rand`'s
/// version churn.
#[derive(Debug)]
pub struct SeededRng {
    inner: StdRng,
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeededRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; `stream` distinguishes
    /// consumers that share a parent seed (e.g. per-layer init streams).
    pub fn fork(&mut self, stream: u64) -> Self {
        let s = self.inner.random::<u64>() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SeededRng::new(s)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f32 {
        self.inner.random::<f32>()
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        debug_assert!(lo < hi);
        lo + (hi - lo) * self.uniform()
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        // Draw u1 in (0, 1] to keep ln() finite.
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * (u1 as f64).ln()).sqrt() as f32 * (std::f32::consts::TAU * u2).cos()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() requires a non-empty range");
        self.inner.random_range(0..n)
    }

    /// Uniform `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random::<u64>()
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn chance(&mut self, p: f32) -> bool {
        self.uniform() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.index(slice.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SeededRng::new(3);
        for _ in 0..1000 {
            let x = r.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = SeededRng::new(11);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn index_stays_in_range() {
        let mut r = SeededRng::new(5);
        for _ in 0..1000 {
            assert!(r.index(7) < 7);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SeededRng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50-element shuffle left identity"
        );
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = SeededRng::new(42);
        let mut c1 = parent.fork(0);
        let mut c2 = parent.fork(1);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SeededRng::new(1);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.1)));
    }
}
