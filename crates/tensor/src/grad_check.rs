//! Central-difference gradient checking.
//!
//! Every backward pass in `dcd-nn` is validated against this oracle; keeping
//! it in the tensor crate lets layer crates share one implementation.

use crate::tensor::Tensor;

/// Numerically estimates `d f / d x` by central differences with step `eps`.
///
/// `f` must be a deterministic scalar function of the tensor. This is `O(numel)`
/// evaluations of `f`, so use small tensors in tests.
pub fn numeric_grad(x: &Tensor, eps: f32, f: impl Fn(&Tensor) -> f32) -> Tensor {
    let mut grad = Tensor::zeros(x.shape().clone());
    let mut probe = x.clone();
    for i in 0..x.numel() {
        let orig = probe.data()[i];
        probe.data_mut()[i] = orig + eps;
        let plus = f(&probe);
        probe.data_mut()[i] = orig - eps;
        let minus = f(&probe);
        probe.data_mut()[i] = orig;
        grad.data_mut()[i] = (plus - minus) / (2.0 * eps);
    }
    grad
}

/// Relative error between analytic and numeric gradients:
/// `max |a - n| / (1 + max(|a|, |n|))` over all elements.
pub fn rel_error(analytic: &Tensor, numeric: &Tensor) -> f32 {
    assert_eq!(analytic.shape(), numeric.shape(), "gradient shape mismatch");
    analytic
        .data()
        .iter()
        .zip(numeric.data().iter())
        .map(|(&a, &n)| (a - n).abs() / (1.0 + a.abs().max(n.abs())))
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_gradient() {
        // f(x) = sum(x^2), df/dx = 2x.
        let x = Tensor::from_vec([3], vec![1., -2., 0.5]).unwrap();
        let g = numeric_grad(&x, 1e-3, |t| t.data().iter().map(|v| v * v).sum());
        let expect = Tensor::from_vec([3], vec![2., -4., 1.]).unwrap();
        assert!(g.max_abs_diff(&expect) < 1e-2);
    }

    #[test]
    fn linear_gradient_is_exact() {
        let x = Tensor::from_vec([4], vec![1., 2., 3., 4.]).unwrap();
        let g = numeric_grad(&x, 1e-2, |t| t.sum() * 3.0);
        for &v in g.data() {
            assert!((v - 3.0).abs() < 1e-3);
        }
    }

    #[test]
    fn rel_error_zero_for_identical() {
        let a = Tensor::from_vec([2], vec![1., 2.]).unwrap();
        assert_eq!(rel_error(&a, &a), 0.0);
    }

    #[test]
    fn rel_error_detects_mismatch() {
        let a = Tensor::from_vec([2], vec![1., 2.]).unwrap();
        let b = Tensor::from_vec([2], vec![1., 3.]).unwrap();
        assert!(rel_error(&a, &b) > 0.2);
    }
}
