//! 2-D convolution via im2col + GEMM, with the full backward pass.
//!
//! Layout conventions:
//! * input  `[N, C_in, H, W]`
//! * weight `[C_out, C_in, KH, KW]`
//! * bias   `[C_out]`
//! * output `[N, C_out, OH, OW]` with `OH = (H + 2·pad − KH)/stride + 1`
//!
//! The batch dimension is embarrassingly parallel; forward and backward both
//! fan out over samples with rayon and reduce weight gradients with in-order
//! combination (no shared mutable state).
//!
//! Hot-path memory discipline: the weight matrix is packed once per call
//! ([`PackedLhs`]) and shared read-only by every sample; the per-sample
//! im2col columns and gradient columns live in the worker's
//! [`crate::scratch`] pool, so steady-state forward calls perform zero heap
//! allocations per sample; and the bias (+ optional ReLU) is applied by the
//! GEMM epilogue as tiles are written back — there is no intermediate
//! product buffer and no second sweep over the output.

use crate::gemm::{gemm_bt_acc, gemm_packed, Epilogue, PackedLhs, Trans};
use crate::scratch;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Output spatial size of a conv/pool window sweep.
///
/// Panics if the window does not fit (which indicates a mis-sized model).
pub fn out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    assert!(
        input + 2 * pad >= kernel,
        "window of size {kernel} does not fit input {input} with pad {pad}"
    );
    (input + 2 * pad - kernel) / stride + 1
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// `d loss / d input`, same shape as the forward input.
    pub input: Tensor,
    /// `d loss / d weight`, same shape as the weight.
    pub weight: Tensor,
    /// `d loss / d bias`, same shape as the bias.
    pub bias: Tensor,
}

/// Unpacks one sample `[C, H, W]` into im2col columns
/// `[C·KH·KW, OH·OW]` (row-major, column index = oh·OW + ow).
///
/// `cols` must be zeroed (a fresh [`scratch::take`] buffer is): padding
/// positions are skipped, not written.
#[allow(clippy::too_many_arguments)]
fn im2col_into(
    x: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    cols: &mut [f32],
) {
    let ospatial = oh * ow;
    debug_assert_eq!(cols.len(), c * kh * kw * ospatial);
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let dst = &mut cols[row * ospatial..(row + 1) * ospatial];
                for oy in 0..oh {
                    let iy = (oy * stride + ki) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue; // zero padding
                    }
                    let src_row = &x[(ci * h + iy as usize) * w..(ci * h + iy as usize + 1) * w];
                    for ox in 0..ow {
                        let ix = (ox * stride + kj) as isize - pad as isize;
                        if ix >= 0 && ix < w as isize {
                            dst[oy * ow + ox] = src_row[ix as usize];
                        }
                    }
                }
            }
        }
    }
}

/// Scatters im2col columns back into a `[C, H, W]` gradient (the adjoint of
/// [`im2col_into`]); overlapping windows accumulate into `x`, which must be
/// zeroed on entry.
#[allow(clippy::too_many_arguments)]
fn col2im_into(
    cols: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    x: &mut [f32],
) {
    let ospatial = oh * ow;
    debug_assert_eq!(x.len(), c * h * w);
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let src = &cols[row * ospatial..(row + 1) * ospatial];
                for oy in 0..oh {
                    let iy = (oy * stride + ki) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let dst_row =
                        &mut x[(ci * h + iy as usize) * w..(ci * h + iy as usize + 1) * w];
                    for ox in 0..ow {
                        let ix = (ox * stride + kj) as isize - pad as isize;
                        if ix >= 0 && ix < w as isize {
                            dst_row[ix as usize] += src[oy * ow + ox];
                        }
                    }
                }
            }
        }
    }
}

fn conv2d_fused(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    stride: usize,
    pad: usize,
    relu: bool,
) -> Tensor {
    let (n, c_in, h, w) = input.shape().nchw();
    let (c_out, wc_in, kh, kw) = weight.shape().nchw();
    assert_eq!(
        c_in, wc_in,
        "conv2d: input channels {c_in} != weight channels {wc_in}"
    );
    assert_eq!(bias.numel(), c_out, "conv2d: bias size != C_out");
    let oh = out_dim(h, kh, stride, pad);
    let ow = out_dim(w, kw, stride, pad);
    let k = c_in * kh * kw;
    let ospatial = oh * ow;
    let sample_in = c_in * h * w;
    let sample_out = c_out * ospatial;
    let _span = dcd_obs::span("conv2d", dcd_obs::Category::Conv);
    dcd_obs::counter!("conv.flops").add(2 * (n * c_out * k * ospatial) as u64);

    // Pack the weight matrix once; every sample's GEMM reads it in place.
    let pw = PackedLhs::pack(weight.data(), Trans::No, c_out, k);
    let ep = if relu {
        Epilogue::BiasRowsRelu(bias.data())
    } else {
        Epilogue::BiasRows(bias.data())
    };

    let mut out = vec![0.0f32; n * sample_out];
    out.par_chunks_mut(sample_out)
        .zip(input.data().par_chunks(sample_in))
        .for_each(|(o, x)| {
            let mut cols = scratch::take(k * ospatial);
            im2col_into(x, c_in, h, w, kh, kw, stride, pad, oh, ow, &mut cols);
            gemm_packed(&pw, &cols, Trans::No, o, ospatial, ep);
            scratch::release(cols);
        });
    Tensor::from_vec([n, c_out, oh, ow], out).expect("conv2d output size")
}

/// Convolution forward pass (bias fused into the GEMM write-back).
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, stride: usize, pad: usize) -> Tensor {
    conv2d_fused(input, weight, bias, stride, pad, false)
}

/// [`conv2d`] with a fused `max(0, ·)` — the inference fast path for
/// `Conv → ReLU`, producing the activation without a separate mask pass.
///
/// Note the fused clamp maps negative pre-activations to `+0.0` where the
/// mask-based training path yields `-0.0`; downstream arithmetic and
/// comparisons are unaffected.
pub fn conv2d_relu(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    stride: usize,
    pad: usize,
) -> Tensor {
    conv2d_fused(input, weight, bias, stride, pad, true)
}

/// Convolution backward pass: gradients w.r.t. input, weight and bias.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
) -> Conv2dGrads {
    let (n, c_in, h, w) = input.shape().nchw();
    let (c_out, _, kh, kw) = weight.shape().nchw();
    let (gn, gc, oh, ow) = grad_out.shape().nchw();
    assert_eq!(gn, n, "conv2d_backward: batch mismatch");
    assert_eq!(gc, c_out, "conv2d_backward: channel mismatch");
    let k = c_in * kh * kw;
    let ospatial = oh * ow;
    let sample_in = c_in * h * w;
    let sample_out = c_out * ospatial;
    let _span = dcd_obs::span("conv2d.backward", dcd_obs::Category::Conv);
    // Three per-sample GEMMs (grad-input, grad-weight, forward-shaped cols).
    dcd_obs::counter!("conv.flops").add(6 * (n * c_out * k * ospatial) as u64);

    // Wᵀ [k, c_out] packed once straight from the weight's [c_out, k]
    // storage — no transpose buffer — and shared by every sample's
    // grad-input GEMM.
    let pwt = PackedLhs::pack(weight.data(), Trans::Yes, k, c_out);

    struct PerSample {
        gx: Vec<f32>,
        gw: Vec<f32>,
        gb: Vec<f32>,
    }

    let results: Vec<(usize, PerSample)> = input
        .data()
        .par_chunks(sample_in)
        .zip(grad_out.data().par_chunks(sample_out))
        .enumerate()
        .map(|(i, (x, go))| {
            let mut cols = scratch::take(k * ospatial);
            im2col_into(x, c_in, h, w, kh, kw, stride, pad, oh, ow, &mut cols);
            let mut acc = PerSample {
                gx: vec![0.0; sample_in],
                gw: vec![0.0; c_out * k],
                gb: vec![0.0; c_out],
            };
            // grad_weight += go [c_out, os] · colsᵀ — reads `cols` in its
            // [k, os] storage directly via the transposed-B kernel.
            gemm_bt_acc(go, &cols, &mut acc.gw, c_out, ospatial, k);
            // grad_bias += row sums of go
            for co in 0..c_out {
                acc.gb[co] = go[co * ospatial..(co + 1) * ospatial].iter().sum();
            }
            // grad_cols = Wᵀ [k, c_out] · go [c_out, os]; scatter via col2im.
            let mut gcols = scratch::take(k * ospatial);
            gemm_packed(&pwt, go, Trans::No, &mut gcols, ospatial, Epilogue::Store);
            col2im_into(&gcols, c_in, h, w, kh, kw, stride, pad, oh, ow, &mut acc.gx);
            scratch::release(gcols);
            scratch::release(cols);
            (i, acc)
        })
        .collect();

    let mut gx_all = vec![0.0f32; n * sample_in];
    let mut gw = vec![0.0f32; c_out * k];
    let mut gb = vec![0.0f32; c_out];
    for (i, acc) in results {
        gx_all[i * sample_in..(i + 1) * sample_in].copy_from_slice(&acc.gx);
        for (d, s) in gw.iter_mut().zip(acc.gw.iter()) {
            *d += s;
        }
        for (d, s) in gb.iter_mut().zip(acc.gb.iter()) {
            *d += s;
        }
    }

    Conv2dGrads {
        input: Tensor::from_vec([n, c_in, h, w], gx_all).expect("grad input size"),
        weight: Tensor::from_vec([c_out, c_in, kh, kw], gw).expect("grad weight size"),
        bias: Tensor::from_vec([c_out], gb).expect("grad bias size"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::numeric_grad;
    use crate::rng::SeededRng;

    #[test]
    fn out_dim_formula() {
        assert_eq!(out_dim(100, 3, 1, 1), 100); // same-pad 3x3
        assert_eq!(out_dim(100, 2, 2, 0), 50); // 2x2/2 pool
        assert_eq!(out_dim(5, 5, 1, 0), 1);
        assert_eq!(out_dim(7, 3, 2, 0), 3);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn out_dim_rejects_oversized_kernel() {
        out_dim(3, 5, 1, 0);
    }

    #[test]
    fn identity_kernel_passes_through() {
        // 1x1 kernel with weight 1 and zero bias is the identity.
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1., 2., 3., 4.]).unwrap();
        let w = Tensor::ones([1, 1, 1, 1]);
        let b = Tensor::zeros([1]);
        let y = conv2d(&x, &w, &b, 1, 0);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_3x3_sum_kernel() {
        // All-ones 3x3 kernel over a 3x3 input of ones, no pad: single output = 9.
        let x = Tensor::ones([1, 1, 3, 3]);
        let w = Tensor::ones([1, 1, 3, 3]);
        let b = Tensor::from_vec([1], vec![0.5]).unwrap();
        let y = conv2d(&x, &w, &b, 1, 0);
        assert_eq!(y.dims(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 9.5);
    }

    #[test]
    fn padding_zero_extends() {
        // 3x3 ones kernel over a 1x1 input with pad 1: center tap only.
        let x = Tensor::from_vec([1, 1, 1, 1], vec![2.0]).unwrap();
        let w = Tensor::ones([1, 1, 3, 3]);
        let b = Tensor::zeros([1]);
        let y = conv2d(&x, &w, &b, 1, 1);
        assert_eq!(y.dims(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 2.0);
    }

    #[test]
    fn stride_subsamples() {
        let x = Tensor::from_vec([1, 1, 4, 4], (0..16).map(|v| v as f32).collect()).unwrap();
        let w = Tensor::ones([1, 1, 1, 1]);
        let b = Tensor::zeros([1]);
        let y = conv2d(&x, &w, &b, 2, 0);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[0., 2., 8., 10.]);
    }

    #[test]
    fn multi_channel_sums_channels() {
        // Two input channels, kernel = 1x1 with weights [1, 10].
        let x = Tensor::from_vec([1, 2, 1, 2], vec![1., 2., 3., 4.]).unwrap();
        let w = Tensor::from_vec([1, 2, 1, 1], vec![1., 10.]).unwrap();
        let b = Tensor::zeros([1]);
        let y = conv2d(&x, &w, &b, 1, 0);
        assert_eq!(y.data(), &[31., 42.]);
    }

    #[test]
    fn relu_variant_clamps_negatives() {
        let x = Tensor::from_vec([1, 1, 1, 2], vec![1.0, -3.0]).unwrap();
        let w = Tensor::ones([1, 1, 1, 1]);
        let b = Tensor::from_vec([1], vec![0.5]).unwrap();
        let y = conv2d_relu(&x, &w, &b, 1, 0);
        assert_eq!(y.data(), &[1.5, 0.0]);
        // Positive region matches the unfused path bitwise.
        let plain = conv2d(&x, &w, &b, 1, 0);
        assert_eq!(y.data()[0].to_bits(), plain.data()[0].to_bits());
    }

    #[test]
    fn batch_samples_independent() {
        let mut rng = SeededRng::new(3);
        let x = Tensor::randn([2, 3, 6, 6], 0.0, 1.0, &mut rng);
        let w = Tensor::randn([4, 3, 3, 3], 0.0, 0.5, &mut rng);
        let b = Tensor::randn([4], 0.0, 0.1, &mut rng);
        let y = conv2d(&x, &w, &b, 1, 1);
        let y0 = conv2d(&Tensor::stack(&[x.index_axis0(0)]), &w, &b, 1, 1);
        let y1 = conv2d(&Tensor::stack(&[x.index_axis0(1)]), &w, &b, 1, 1);
        assert!(y.index_axis0(0).max_abs_diff(&y0.index_axis0(0)) < 1e-6);
        assert!(y.index_axis0(1).max_abs_diff(&y1.index_axis0(0)) < 1e-6);
    }

    #[test]
    fn backward_matches_numeric_grad_input() {
        let mut rng = SeededRng::new(7);
        let x = Tensor::randn([1, 2, 5, 5], 0.0, 1.0, &mut rng);
        let w = Tensor::randn([3, 2, 3, 3], 0.0, 0.5, &mut rng);
        let b = Tensor::randn([3], 0.0, 0.1, &mut rng);
        // Loss = sum(conv(x)); then dL/dy = 1 everywhere.
        let y = conv2d(&x, &w, &b, 1, 1);
        let go = Tensor::ones(y.shape().clone());
        let grads = conv2d_backward(&x, &w, &go, 1, 1);

        let num = numeric_grad(&x, 1e-2, |xp| conv2d(xp, &w, &b, 1, 1).sum());
        assert!(
            grads.input.max_abs_diff(&num) < 0.05,
            "analytic vs numeric input grad diff {}",
            grads.input.max_abs_diff(&num)
        );
    }

    #[test]
    fn backward_matches_numeric_grad_weight_and_bias() {
        let mut rng = SeededRng::new(8);
        let x = Tensor::randn([2, 2, 4, 4], 0.0, 1.0, &mut rng);
        let w = Tensor::randn([2, 2, 3, 3], 0.0, 0.5, &mut rng);
        let b = Tensor::randn([2], 0.0, 0.1, &mut rng);
        let y = conv2d(&x, &w, &b, 1, 0);
        let go = Tensor::ones(y.shape().clone());
        let grads = conv2d_backward(&x, &w, &go, 1, 0);

        let num_w = numeric_grad(&w, 1e-2, |wp| conv2d(&x, wp, &b, 1, 0).sum());
        assert!(grads.weight.max_abs_diff(&num_w) < 0.05);
        let num_b = numeric_grad(&b, 1e-2, |bp| conv2d(&x, &w, bp, 1, 0).sum());
        assert!(grads.bias.max_abs_diff(&num_b) < 0.05);
    }

    #[test]
    fn backward_with_stride_matches_numeric() {
        let mut rng = SeededRng::new(9);
        let x = Tensor::randn([1, 1, 6, 6], 0.0, 1.0, &mut rng);
        let w = Tensor::randn([2, 1, 2, 2], 0.0, 0.5, &mut rng);
        let b = Tensor::zeros([2]);
        let y = conv2d(&x, &w, &b, 2, 0);
        let go = Tensor::ones(y.shape().clone());
        let grads = conv2d_backward(&x, &w, &go, 2, 0);
        let num = numeric_grad(&x, 1e-2, |xp| conv2d(xp, &w, &b, 2, 0).sum());
        assert!(grads.input.max_abs_diff(&num) < 0.05);
    }
}
