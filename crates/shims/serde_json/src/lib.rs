//! Offline stand-in for `serde_json`: renders and parses JSON over the local
//! `serde` shim's `Value` tree.
//!
//! Supports the workspace's usage: `to_string`, `to_string_pretty`,
//! `from_str`, and an `Error` type. Numbers keep the integer/float split of
//! the `Value` model; non-finite floats render as `null` (real `serde_json`
//! errors instead — our callers never serialize non-finite values on the
//! happy path, and `null → NaN` keeps roundtrips total).

use serde::{DeError, Deserialize, Serialize, Value};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::deserialize(&value)?)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Rust's shortest-roundtrip formatting; always valid JSON
                // because finite floats never print as `inf`/`NaN`.
                out.push_str(&x.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f32>("3").unwrap(), 3.0);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn roundtrip_nested() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3]");
        let back: Vec<Option<u32>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_shape() {
        let v: Vec<u32> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u32>("1 x").is_err());
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &x in &[0.1f64, 1e-9, 12345.6789, -2.5e30] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, x);
        }
    }
}
