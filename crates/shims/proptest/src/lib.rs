//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! `proptest!` macro with an optional `#![proptest_config(...)]` header,
//! integer/float range strategies, `prop_map`, `prop::collection::vec`, and
//! the `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from real proptest, by design:
//! - cases are drawn from a fixed-seed deterministic RNG (no persisted
//!   failure seeds, no env-var overrides), so every run explores the same
//!   inputs — reproducibility over novelty;
//! - no shrinking: a failing case reports its index and message directly.

/// Test-runner configuration and failure plumbing.
pub mod test_runner {
    /// Subset of proptest's config: just the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property within a generated case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Deterministic splitmix64 case generator.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed generator every test uses.
        pub fn deterministic() -> TestRng {
            TestRng {
                state: 0x005E_ED0F_CAFE_D00D,
            }
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            let zone = u64::MAX - (u64::MAX % n);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % n;
                }
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of an associated type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A constant strategy (proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let width = (end as i128 - start as i128 + 1) as u64;
                    if width == 0 {
                        return (start as i128 + rng.next_u64() as i128) as $t;
                    }
                    (start as i128 + rng.below(width) as i128) as $t
                }
            }
        )*};
    }

    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    start + (end - start) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    float_strategies!(f32, f64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length is drawn from `len` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` namespace (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests. Supports an optional
/// `#![proptest_config(ProptestConfig::with_cases(N))]` header followed by
/// any number of `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal: expands each test item under a shared config.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            for __case in 0..__config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!("property failed at case {}/{}: {}", __case + 1, __config.cases, __e);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(__l == __r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(__l != __r, "assertion failed: `{:?}` == `{:?}`", __l, __r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn scaled() -> impl Strategy<Value = f32> {
        (-100i32..=100).prop_map(|x| x as f32 / 10.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respected(a in 1usize..10, b in 0u64..1000, x in 0.5f64..2.0) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b < 1000);
            prop_assert!((0.5..2.0).contains(&x));
        }

        #[test]
        fn mapped_strategy_applies(v in scaled()) {
            prop_assert!((-10.0..=10.0).contains(&v), "{v} out of range");
        }

        #[test]
        fn vec_strategy_len_and_elements(xs in prop::collection::vec(0u8..4, 1..20)) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            for x in xs {
                prop_assert!(x < 4);
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic();
        let mut b = crate::test_runner::TestRng::deterministic();
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
