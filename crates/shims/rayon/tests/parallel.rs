//! Pool behaviour tests: genuine parallelism, determinism, and panic safety.
//!
//! Every test first pins the pool to 4 threads (oversubscription is fine —
//! the point is concurrency, not speed), so the whole binary exercises the
//! real parallel path even on a single-core machine. Under
//! `RAYON_NUM_THREADS=1` the pool stays sequential and these tests become
//! (still valid) no-op comparisons.

use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

fn pool_threads() -> usize {
    rayon::ensure_threads(4)
}

#[test]
fn work_is_spread_across_threads() {
    if pool_threads() < 2 {
        return; // pinned sequential via RAYON_NUM_THREADS
    }
    // Two pieces rendezvous: each waits (bounded) until the other has
    // started. Only concurrent execution lets both proceed quickly.
    let started = [AtomicBool::new(false), AtomicBool::new(false)];
    let both_ran_concurrently = AtomicBool::new(false);
    [0usize, 1].par_iter().for_each(|&i| {
        started[i].store(true, Ordering::SeqCst);
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if started[1 - i].load(Ordering::SeqCst) {
                both_ran_concurrently.store(true, Ordering::SeqCst);
                return;
            }
            std::thread::yield_now();
        }
    });
    assert!(
        both_ran_concurrently.load(Ordering::SeqCst),
        "pieces never overlapped — the pool is not parallel"
    );
}

#[test]
fn parallel_sum_is_bit_identical_to_sequential() {
    pool_threads();
    // Values chosen so float addition order matters: mixing magnitudes makes
    // any reassociation visible in the low bits.
    let v: Vec<f32> = (0..100_000)
        .map(|i| ((i * 2654435761u64 as usize) % 1000) as f32 * 1e-3 + (i % 7) as f32 * 1e4)
        .collect();
    let par: f32 = v.par_iter().sum();
    let seq: f32 = rayon::force_sequential(|| v.par_iter().sum());
    assert_eq!(par.to_bits(), seq.to_bits());

    let par_sq: f32 = v.par_iter().map(|x| x * x).sum();
    let seq_sq: f32 = rayon::force_sequential(|| v.par_iter().map(|x| x * x).sum());
    assert_eq!(par_sq.to_bits(), seq_sq.to_bits());
}

#[test]
fn parallel_collect_preserves_order() {
    pool_threads();
    let v: Vec<usize> = (0..10_000).collect();
    let out: Vec<usize> = v.par_iter().map(|&x| x * 3).collect();
    assert_eq!(out.len(), v.len());
    for (i, &x) in out.iter().enumerate() {
        assert_eq!(x, i * 3);
    }
}

#[test]
fn panicking_piece_propagates_without_wedging_the_pool() {
    pool_threads();
    let caught = std::panic::catch_unwind(|| {
        (0..100usize).collect::<Vec<_>>().par_iter().for_each(|&i| {
            if i == 37 {
                panic!("injected piece failure");
            }
        });
    });
    assert!(caught.is_err(), "panic must reach the caller");

    // The pool still works after the panic: run a full-size job and check
    // every element was processed exactly once.
    let counter = AtomicUsize::new(0);
    let mut v = vec![0u8; 50_000];
    v.par_iter_mut().for_each(|x| {
        *x = 1;
        counter.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(counter.load(Ordering::Relaxed), v.len());
    assert!(v.iter().all(|&x| x == 1));
}

#[test]
fn join_runs_both_and_propagates_panics() {
    pool_threads();
    let (a, b) = rayon::join(|| 2 + 2, || "ok".to_string());
    assert_eq!(a, 4);
    assert_eq!(b, "ok");

    let caught = std::panic::catch_unwind(|| {
        rayon::join(|| 1, || -> i32 { panic!("right side fails") });
    });
    assert!(caught.is_err());
}

#[test]
fn nested_parallel_calls_complete() {
    pool_threads();
    // Outer fan-out whose pieces each run an inner parallel reduction —
    // the shape of conv2d calling gemm per sample.
    let results: Vec<f64> = (0..8usize)
        .collect::<Vec<_>>()
        .par_iter()
        .map(|&s| {
            let inner: Vec<f64> = (0..1000).map(|i| (s * 1000 + i) as f64).collect();
            inner.par_iter().sum::<f64>()
        })
        .collect();
    for (s, &r) in results.iter().enumerate() {
        let expect: f64 = (0..1000).map(|i| (s * 1000 + i) as f64).sum();
        assert_eq!(r, expect);
    }
}

#[test]
fn concurrent_callers_do_not_interfere() {
    pool_threads();
    // Several OS threads issue parallel calls at once; each must see only
    // its own results.
    let handles: Vec<_> = (0..4u64)
        .map(|seed| {
            std::thread::spawn(move || {
                let v: Vec<u64> = (0..20_000).map(|i| i ^ seed).collect();
                let got: u64 = v.par_iter().sum();
                let want: u64 = v.iter().sum();
                assert_eq!(got, want);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("caller thread panicked");
    }
}
