//! Offline stand-in for `rayon` with a **real** thread pool.
//!
//! The build environment has no crates.io access, so `par_iter`-family calls
//! resolve to this crate. Unlike the first-generation shim — which silently
//! returned *sequential* std iterators — this implementation genuinely runs
//! work in parallel: a lazily-initialized global pool of `std::thread`
//! workers (sized from [`std::thread::available_parallelism`], overridable
//! via `RAYON_NUM_THREADS`) executes split pieces of every
//! `par_iter`/`par_iter_mut`/`par_chunks`/`par_chunks_mut`/`into_par_iter`
//! call, and [`join`] provides rayon-style fork-join via scoped threads.
//!
//! Supported adapter surface (the slice this workspace uses): `map`, `zip`,
//! `enumerate`, `for_each`, `sum`, `collect`. Call sites keep rayon's
//! spelling, so restoring the real `rayon` remains a one-line Cargo change —
//! but with this crate the parallelism is real either way.
//!
//! # Determinism guarantee
//!
//! Every consumer produces output **bit-identical** to a single-threaded run
//! (`RAYON_NUM_THREADS=1`, or [`force_sequential`]):
//!
//! * piece boundaries are a pure function of the input length, never of the
//!   pool size or scheduling;
//! * each item's result is written to the slot of its original index;
//! * order-sensitive reductions (`sum`) fold each piece left-to-right and
//!   combine piece partials in index order.
//!
//! # Divergences from real rayon
//!
//! * Nested parallel calls issued from a pool worker run inline (the outer
//!   call already owns the pool's parallelism); rayon would work-steal.
//! * `into_par_iter` buffers the source into a deque before splitting.
//! * A piece that panics does not abort sibling pieces; the first panic is
//!   re-thrown on the calling thread after the call completes, and the pool
//!   itself is never wedged by a panicking task.

mod iter;
mod pool;

pub use pool::{current_num_threads, ensure_threads, force_sequential, join};

/// Parallel-iterator entry traits, mirroring rayon's prelude.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut,
        Producer,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn matches_sequential_semantics() {
        let v = [1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);

        let mut w = vec![0u32; 4];
        w.par_chunks_mut(2)
            .enumerate()
            .for_each(|(i, chunk)| chunk.fill(i as u32));
        assert_eq!(w, vec![0, 0, 1, 1]);

        let total: u32 = (1u32..=10).into_par_iter().sum();
        assert_eq!(total, 55);
    }

    #[test]
    fn zip_truncates_to_shorter_side() {
        let a = [1u32, 2, 3, 4, 5];
        let b = [10u32, 20, 30];
        let sums: Vec<u32> = a
            .par_iter()
            .zip(b.par_iter())
            .map(|(&x, &y)| x + y)
            .collect();
        assert_eq!(sums, vec![11, 22, 33]);
    }

    #[test]
    fn chunked_writes_cover_every_element() {
        let mut v = vec![0usize; 1000];
        v.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i;
            }
        });
        for (j, &x) in v.iter().enumerate() {
            assert_eq!(x, j / 7);
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<f32> = Vec::new();
        let out: Vec<f32> = v.par_iter().map(|&x| x + 1.0).collect();
        assert!(out.is_empty());
        let s: f32 = v.par_iter().sum();
        assert_eq!(s, 0.0);
        v.par_chunks(4).for_each(|_| panic!("no chunks expected"));
    }

    #[test]
    fn mutation_through_par_iter_mut() {
        let mut v: Vec<f32> = (0..100).map(|i| i as f32).collect();
        v.par_iter_mut().for_each(|x| *x *= 2.0);
        assert_eq!(v[40], 80.0);
    }
}
