//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so `par_iter`-family calls
//! resolve to these traits, which return the corresponding *sequential*
//! standard-library iterators. Call sites keep rayon's spelling (and with it
//! the documented parallel intent); dropping the real `rayon` back in is a
//! one-line Cargo change. Because std iterators supply `map`, `zip`,
//! `enumerate`, `for_each`, `sum`, and `collect`, no adapter shims are
//! needed.

/// Sequential stand-ins for rayon's prelude traits.
pub mod prelude {
    /// `into_par_iter()` on any `IntoIterator` (ranges, `Vec`, …).
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Sequential stand-in for rayon's parallel consumption.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator> IntoParallelIterator for T {}

    /// `par_iter()` / `par_chunks()` on slices.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential stand-in for `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `par_iter_mut()` / `par_chunks_mut()` on slices.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for `par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Sequential stand-in for `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn matches_sequential_semantics() {
        let v = [1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);

        let mut w = vec![0u32; 4];
        w.par_chunks_mut(2)
            .enumerate()
            .for_each(|(i, chunk)| chunk.fill(i as u32));
        assert_eq!(w, vec![0, 0, 1, 1]);

        let total: u32 = (1u32..=10).into_par_iter().sum();
        assert_eq!(total, 55);
    }
}
