//! Parallel iterators over splittable producers.
//!
//! A [`Producer`] is an exact-length source that can be split at an index
//! and drained from the front; adapters ([`MapProducer`], [`ZipProducer`],
//! [`EnumerateProducer`]) compose producers, and the consumers on
//! [`ParIter`] split the composed producer into pieces and hand them to the
//! pool ([`crate::pool::run_pieces`]).
//!
//! Determinism: the piece count is a pure function of the length (never of
//! the pool size), each item's result lands in the slot of its original
//! index, and order-sensitive reductions ([`ParIter::sum`]) fold each piece
//! left-to-right and then combine the piece partials in index order — so
//! every consumer yields bit-identical results whether it runs on one
//! thread or many.

use crate::pool::run_pieces;
use std::sync::Arc;

/// Cap on pieces per parallel call: enough slack for work-stealing-style
/// load balance on any realistic thread count, small enough that piece
/// bookkeeping stays negligible. Must not depend on the pool size, or f32
/// reductions would stop being reproducible across machines.
const MAX_PIECES: usize = 64;

/// An exact-length, front-drainable, splittable work source.
pub trait Producer: Send + Sized {
    /// Item handed to consumer closures.
    type Item: Send;
    /// Remaining items.
    fn len(&self) -> usize;
    /// `true` when no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Splits into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);
    /// Removes and returns the front item.
    fn pop_front(&mut self) -> Option<Self::Item>;
}

/// Sequential drain of one piece (used inside pool tasks).
struct SeqIter<P>(P);

impl<P: Producer> Iterator for SeqIter<P> {
    type Item = P::Item;
    fn next(&mut self) -> Option<P::Item> {
        self.0.pop_front()
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.len();
        (n, Some(n))
    }
}

/// Splits a producer into at most [`MAX_PIECES`] balanced pieces. Boundaries
/// depend only on `len`, keeping reductions reproducible.
fn split_pieces<P: Producer>(producer: P) -> Vec<P> {
    let len = producer.len();
    if len == 0 {
        return Vec::new();
    }
    let pieces = len.min(MAX_PIECES);
    let mut out = Vec::with_capacity(pieces);
    let mut rest = producer;
    let mut start = 0;
    for j in 1..pieces {
        let end = len * j / pieces;
        let (head, tail) = rest.split_at(end - start);
        out.push(head);
        rest = tail;
        start = end;
    }
    out.push(rest);
    out
}

// ------------------------------------------------------------ base producers

/// Shared-slice items (`par_iter`).
pub struct SliceProducer<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index);
        (SliceProducer { slice: l }, SliceProducer { slice: r })
    }
    fn pop_front(&mut self) -> Option<&'a T> {
        let (first, rest) = self.slice.split_first()?;
        self.slice = rest;
        Some(first)
    }
}

/// Exclusive-slice items (`par_iter_mut`).
pub struct SliceMutProducer<'a, T: Send> {
    slice: &'a mut [T],
}

impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(index);
        (SliceMutProducer { slice: l }, SliceMutProducer { slice: r })
    }
    fn pop_front(&mut self) -> Option<&'a mut T> {
        let (first, rest) = std::mem::take(&mut self.slice).split_first_mut()?;
        self.slice = rest;
        Some(first)
    }
}

/// Shared chunks (`par_chunks`).
pub struct ChunksProducer<'a, T: Sync> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let cut = (index * self.chunk).min(self.slice.len());
        let (l, r) = self.slice.split_at(cut);
        (
            ChunksProducer {
                slice: l,
                chunk: self.chunk,
            },
            ChunksProducer {
                slice: r,
                chunk: self.chunk,
            },
        )
    }
    fn pop_front(&mut self) -> Option<&'a [T]> {
        if self.slice.is_empty() {
            return None;
        }
        let cut = self.chunk.min(self.slice.len());
        let (head, rest) = self.slice.split_at(cut);
        self.slice = rest;
        Some(head)
    }
}

/// Exclusive chunks (`par_chunks_mut`).
pub struct ChunksMutProducer<'a, T: Send> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let cut = (index * self.chunk).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(cut);
        (
            ChunksMutProducer {
                slice: l,
                chunk: self.chunk,
            },
            ChunksMutProducer {
                slice: r,
                chunk: self.chunk,
            },
        )
    }
    fn pop_front(&mut self) -> Option<&'a mut [T]> {
        if self.slice.is_empty() {
            return None;
        }
        let cut = self.chunk.min(self.slice.len());
        let (head, rest) = std::mem::take(&mut self.slice).split_at_mut(cut);
        self.slice = rest;
        Some(head)
    }
}

/// Owned items (`into_par_iter` on collections and ranges).
pub struct VecProducer<T: Send> {
    items: std::collections::VecDeque<T>,
}

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.items.len()
    }
    fn split_at(mut self, index: usize) -> (Self, Self) {
        let back = self.items.split_off(index);
        (self, VecProducer { items: back })
    }
    fn pop_front(&mut self) -> Option<T> {
        self.items.pop_front()
    }
}

// ----------------------------------------------------------------- adapters

/// Output of [`ParIter::map`].
pub struct MapProducer<P, F> {
    base: P,
    f: Arc<F>,
}

impl<P, R, F> Producer for MapProducer<P, F>
where
    P: Producer,
    R: Send,
    F: Fn(P::Item) -> R + Send + Sync,
{
    type Item = R;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            MapProducer {
                base: l,
                f: Arc::clone(&self.f),
            },
            MapProducer { base: r, f: self.f },
        )
    }
    fn pop_front(&mut self) -> Option<R> {
        self.base.pop_front().map(|x| (self.f)(x))
    }
}

/// Output of [`ParIter::zip`] (both sides pre-truncated to equal length).
pub struct ZipProducer<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for ZipProducer<A, B> {
    type Item = (A::Item, B::Item);
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (ZipProducer { a: al, b: bl }, ZipProducer { a: ar, b: br })
    }
    fn pop_front(&mut self) -> Option<(A::Item, B::Item)> {
        match (self.a.pop_front(), self.b.pop_front()) {
            (Some(a), Some(b)) => Some((a, b)),
            _ => None,
        }
    }
}

/// Output of [`ParIter::enumerate`].
pub struct EnumerateProducer<P> {
    base: P,
    offset: usize,
}

impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            EnumerateProducer {
                base: l,
                offset: self.offset,
            },
            EnumerateProducer {
                base: r,
                offset: self.offset + index,
            },
        )
    }
    fn pop_front(&mut self) -> Option<(usize, P::Item)> {
        let item = self.base.pop_front()?;
        let i = self.offset;
        self.offset += 1;
        Some((i, item))
    }
}

// ----------------------------------------------------------------- ParIter

/// A parallel iterator: adapters compose the producer, consumers execute it
/// on the pool.
pub struct ParIter<P: Producer> {
    producer: P,
}

impl<P: Producer> ParIter<P> {
    fn new(producer: P) -> Self {
        ParIter { producer }
    }

    /// Transforms every item with `f`.
    pub fn map<R, F>(self, f: F) -> ParIter<MapProducer<P, F>>
    where
        R: Send,
        F: Fn(P::Item) -> R + Send + Sync,
    {
        ParIter::new(MapProducer {
            base: self.producer,
            f: Arc::new(f),
        })
    }

    /// Pairs items with another parallel iterator (truncating to the shorter).
    pub fn zip<Q: Producer>(self, other: ParIter<Q>) -> ParIter<ZipProducer<P, Q>> {
        let n = self.producer.len().min(other.producer.len());
        let (a, _) = self.producer.split_at(n);
        let (b, _) = other.producer.split_at(n);
        ParIter::new(ZipProducer { a, b })
    }

    /// Pairs every item with its index.
    pub fn enumerate(self) -> ParIter<EnumerateProducer<P>> {
        ParIter::new(EnumerateProducer {
            base: self.producer,
            offset: 0,
        })
    }

    /// Runs `f` on every item, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Send + Sync,
    {
        run_pieces(split_pieces(self.producer), |_, piece| {
            for item in SeqIter(piece) {
                f(item);
            }
        });
    }

    /// Sums the items. Piece partials are combined in index order, so the
    /// result is identical to the 1-thread run of the same expression.
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<P::Item> + std::iter::Sum<S>,
    {
        run_pieces(split_pieces(self.producer), |_, piece| {
            SeqIter(piece).sum::<S>()
        })
        .into_iter()
        .sum()
    }

    /// Collects the items, preserving their order.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<P::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Collection types buildable from a [`ParIter`].
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds the collection, preserving item order.
    fn from_par_iter<P: Producer<Item = T>>(iter: ParIter<P>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: Producer<Item = T>>(iter: ParIter<P>) -> Self {
        let parts = run_pieces(split_pieces(iter.producer), |_, piece| {
            SeqIter(piece).collect::<Vec<T>>()
        });
        let total = parts.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for part in parts {
            out.extend(part);
        }
        out
    }
}

// ------------------------------------------------------------ entry traits

/// `into_par_iter()` on any `IntoIterator` (ranges, `Vec`, …). Items are
/// buffered once so the source can be split across workers.
pub trait IntoParallelIterator: IntoIterator + Sized
where
    Self::Item: Send,
{
    /// Converts into a parallel iterator over the owned items.
    fn into_par_iter(self) -> ParIter<VecProducer<Self::Item>> {
        ParIter::new(VecProducer {
            items: self.into_iter().collect(),
        })
    }
}

impl<T: IntoIterator> IntoParallelIterator for T where T::Item: Send {}

/// `par_iter()` / `par_chunks()` on slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over shared references.
    fn par_iter(&self) -> ParIter<SliceProducer<'_, T>>;
    /// Parallel iterator over `chunk_size`-sized shared chunks.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksProducer<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<SliceProducer<'_, T>> {
        ParIter::new(SliceProducer { slice: self })
    }
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksProducer<'_, T>> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter::new(ChunksProducer {
            slice: self,
            chunk: chunk_size,
        })
    }
}

/// `par_iter_mut()` / `par_chunks_mut()` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over exclusive references.
    fn par_iter_mut(&mut self) -> ParIter<SliceMutProducer<'_, T>>;
    /// Parallel iterator over `chunk_size`-sized exclusive chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<SliceMutProducer<'_, T>> {
        ParIter::new(SliceMutProducer { slice: self })
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter::new(ChunksMutProducer {
            slice: self,
            chunk: chunk_size,
        })
    }
}
