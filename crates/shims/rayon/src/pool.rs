//! The global worker pool behind the `par_*` iterators.
//!
//! Workers are spawned lazily on the first parallel call and parked on a
//! condvar when idle. A parallel call splits its work into pieces, publishes
//! an erased descriptor of them on a shared queue, and then *participates*:
//! the calling thread claims and runs pieces alongside the workers, and only
//! returns once every piece has finished and no worker still holds a
//! reference to the (stack-allocated) descriptor. That hand-shake is what
//! makes it sound to run borrowed, non-`'static` closures on long-lived
//! threads.
//!
//! Sizing: `RAYON_NUM_THREADS` if set (and a positive integer), otherwise
//! [`std::thread::available_parallelism`]. A pool of 1 thread runs every
//! parallel call inline on the caller, which is also the behaviour inside
//! [`force_sequential`] and on nested parallel calls issued from a worker
//! (the outer call already owns the pool's parallelism).

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

thread_local! {
    /// Set on pool worker threads: nested parallel calls run inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Set inside [`force_sequential`]: parallel calls run inline.
    static FORCE_SEQ: Cell<bool> = const { Cell::new(false) };
}

/// Shared pool state: the task queue and the worker wakeup.
struct Shared {
    queue: Mutex<VecDeque<TaskRef>>,
    work_available: Condvar,
}

struct Pool {
    shared: Arc<Shared>,
    threads: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// `RAYON_NUM_THREADS` as a positive integer, if set and valid.
fn env_threads() -> Option<usize> {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
}

fn default_threads() -> usize {
    env_threads().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

fn build_pool(threads: usize) -> Pool {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        work_available: Condvar::new(),
    });
    // The calling thread participates in every parallel call, so `threads`
    // total parallelism needs `threads - 1` workers.
    for i in 0..threads.saturating_sub(1) {
        let s = Arc::clone(&shared);
        std::thread::Builder::new()
            .name(format!("rayon-shim-{i}"))
            .spawn(move || worker_loop(s))
            .expect("spawn pool worker");
    }
    Pool { shared, threads }
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| build_pool(default_threads()))
}

/// The pool's thread count (initializing the pool if needed).
pub fn current_num_threads() -> usize {
    pool().threads
}

/// Initializes the global pool with `threads` threads if it has not been
/// created yet, and returns the actual thread count.
///
/// `RAYON_NUM_THREADS` still takes precedence, so a CI run pinned to one
/// thread stays sequential even when a test asks for more. Intended for
/// tests that want real parallelism on small machines (threads may
/// oversubscribe cores); after the pool exists this is a no-op.
pub fn ensure_threads(threads: usize) -> usize {
    POOL.get_or_init(|| build_pool(env_threads().unwrap_or(threads.max(1))))
        .threads
}

/// Runs `f` with every parallel call on this thread forced inline.
///
/// Not part of real rayon's API; the equivalence tests use it to compare
/// parallel output against the sequential execution of the *same* piece
/// structure (which is why the results must be bit-identical).
pub fn force_sequential<R>(f: impl FnOnce() -> R) -> R {
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            FORCE_SEQ.with(|c| c.set(self.0));
        }
    }
    let prev = FORCE_SEQ.with(|c| c.replace(true));
    let _reset = Reset(prev);
    f()
}

/// Whether parallel calls from this thread must run inline.
fn sequential_here() -> bool {
    FORCE_SEQ.with(|c| c.get()) || IN_WORKER.with(|c| c.get())
}

/// `rayon::join`: runs both closures, potentially in parallel, propagating
/// panics after both complete. Fork-join via a scoped thread.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if sequential_here() || pool().threads <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        match hb.join() {
            Ok(rb) => (ra, rb),
            Err(p) => resume_unwind(p),
        }
    })
}

// --------------------------------------------------------------- task plumbing

/// Type-erased handle to a [`Task`] living on some caller's stack.
///
/// `attach` is only ever called under the queue lock while the task is still
/// enqueued; the owning caller removes the task from the queue and then waits
/// for `refs == 0 && remaining == 0` before returning, so every dereference
/// of `data` happens while the task is provably alive.
#[derive(Clone, Copy)]
struct TaskRef {
    data: *const (),
    attach: unsafe fn(*const ()),
    run_piece: unsafe fn(*const ()) -> bool,
    detach: unsafe fn(*const ()),
}

// SAFETY: the raw pointer targets a Task whose liveness is guaranteed by the
// attach/detach protocol above; the Task's own fields are Sync.
unsafe impl Send for TaskRef {}

/// Mutable bookkeeping of one parallel call.
struct TaskState {
    /// Next unclaimed piece index.
    next: usize,
    /// Pieces claimed-or-unclaimed that have not finished executing.
    remaining: usize,
    /// Workers currently attached (holding a [`TaskRef`]).
    refs: usize,
    /// First panic payload from a piece, re-thrown by the caller.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Task<P, R, F> {
    state: Mutex<TaskState>,
    done: Condvar,
    pieces: Vec<Mutex<Option<P>>>,
    results: Vec<Mutex<Option<R>>>,
    run: F,
}

unsafe fn attach_raw<P, R, F>(data: *const ())
where
    F: Fn(usize, P) -> R + Sync,
{
    let task = unsafe { &*(data as *const Task<P, R, F>) };
    task.state.lock().unwrap().refs += 1;
}

unsafe fn detach_raw<P, R, F>(data: *const ())
where
    F: Fn(usize, P) -> R + Sync,
{
    let task = unsafe { &*(data as *const Task<P, R, F>) };
    let mut st = task.state.lock().unwrap();
    st.refs -= 1;
    if st.refs == 0 {
        task.done.notify_all();
    }
}

/// Claims and runs one piece; `false` when no unclaimed pieces remain.
/// Panics from the piece body are caught and recorded, never unwound into a
/// worker (a panicking task must not wedge the pool).
unsafe fn run_piece_raw<P, R, F>(data: *const ()) -> bool
where
    F: Fn(usize, P) -> R + Sync,
{
    let task = unsafe { &*(data as *const Task<P, R, F>) };
    let i = {
        let mut st = task.state.lock().unwrap();
        if st.next >= task.pieces.len() {
            return false;
        }
        st.next += 1;
        st.next - 1
    };
    let piece = task.pieces[i]
        .lock()
        .unwrap()
        .take()
        .expect("piece is claimed exactly once");
    let outcome = catch_unwind(AssertUnwindSafe(|| (task.run)(i, piece)));
    match outcome {
        Ok(r) => *task.results[i].lock().unwrap() = Some(r),
        Err(p) => {
            let mut st = task.state.lock().unwrap();
            if st.panic.is_none() {
                st.panic = Some(p);
            }
        }
    }
    let mut st = task.state.lock().unwrap();
    st.remaining -= 1;
    if st.remaining == 0 {
        task.done.notify_all();
    }
    true
}

fn remove_task(shared: &Shared, data: *const ()) {
    let mut q = shared.queue.lock().unwrap();
    if let Some(pos) = q.iter().position(|t| std::ptr::eq(t.data, data)) {
        q.remove(pos);
    }
}

fn worker_loop(shared: Arc<Shared>) {
    IN_WORKER.with(|c| c.set(true));
    loop {
        let task = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(&t) = q.front() {
                    // Attach under the queue lock: the owning caller cannot
                    // start its liveness wait until the entry is dequeued.
                    unsafe { (t.attach)(t.data) };
                    break t;
                }
                q = shared.work_available.wait(q).unwrap();
            }
        };
        while unsafe { (task.run_piece)(task.data) } {}
        // All pieces claimed: retire the queue entry (idempotent — the
        // caller and other workers race to the same removal) and release
        // our reference so the caller may return.
        remove_task(&shared, task.data);
        unsafe { (task.detach)(task.data) };
    }
}

/// Executes `run(i, piece)` for every piece, in parallel when the pool has
/// workers, and returns the results in piece order.
///
/// Piece boundaries are chosen by the caller and never depend on the pool
/// size, and each piece is executed exactly once, so any output assembled
/// per-piece is bit-identical between parallel and sequential execution.
pub(crate) fn run_pieces<P, R, F>(pieces: Vec<P>, run: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(usize, P) -> R + Sync,
{
    let n = pieces.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 || sequential_here() || pool().threads <= 1 {
        return pieces
            .into_iter()
            .enumerate()
            .map(|(i, p)| run(i, p))
            .collect();
    }
    let pool = pool();
    let task = Task {
        state: Mutex::new(TaskState {
            next: 0,
            remaining: n,
            refs: 0,
            panic: None,
        }),
        done: Condvar::new(),
        pieces: pieces.into_iter().map(|p| Mutex::new(Some(p))).collect(),
        results: (0..n).map(|_| Mutex::new(None)).collect(),
        run,
    };
    let tref = TaskRef {
        data: &task as *const Task<P, R, F> as *const (),
        attach: attach_raw::<P, R, F>,
        run_piece: run_piece_raw::<P, R, F>,
        detach: detach_raw::<P, R, F>,
    };
    {
        let mut q = pool.shared.queue.lock().unwrap();
        q.push_back(tref);
        pool.shared.work_available.notify_all();
    }
    // The caller works too instead of blocking.
    while unsafe { (tref.run_piece)(tref.data) } {}
    remove_task(&pool.shared, tref.data);
    {
        let mut st = task.state.lock().unwrap();
        while st.remaining > 0 || st.refs > 0 {
            st = task.done.wait(st).unwrap();
        }
        if let Some(p) = st.panic.take() {
            drop(st);
            resume_unwind(p);
        }
    }
    task.results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("piece completed"))
        .collect()
}
