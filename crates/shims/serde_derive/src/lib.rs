//! Offline stand-in for the real `serde_derive`.
//!
//! The build environment has no registry access, so the workspace ships a
//! minimal serde data model (see the sibling `serde` shim) and this crate
//! derives `Serialize`/`Deserialize` against it. The derive is implemented
//! directly on `proc_macro::TokenStream` (no `syn`/`quote`) and supports the
//! shapes this workspace actually uses:
//!
//! * structs with named fields,
//! * tuple structs (newtype structs serialize transparently),
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   real serde's default representation).
//!
//! Generics and serde attributes (`#[serde(...)]`) are intentionally not
//! supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the deriving type.
enum Item {
    /// Named-field struct: field names in declaration order.
    Struct { name: String, fields: Vec<String> },
    /// Tuple struct with N fields.
    TupleStruct { name: String, arity: usize },
    /// Enum: variants with their shapes.
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error tokens")
}

/// Consumes attributes (`#[...]`) and doc comments from the front of `iter`.
fn skip_attrs(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    while let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() != '#' {
            break;
        }
        iter.next(); // '#'
                     // Outer attribute: a bracketed group follows.
        if let Some(TokenTree::Group(_)) = iter.peek() {
            iter.next();
        }
    }
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn skip_vis(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

/// Parses the field names out of a named-fields brace group.
fn parse_named_fields(group: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = group.into_iter().peekable();
    loop {
        skip_attrs(&mut iter);
        skip_vis(&mut iter);
        match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                fields.push(id.to_string());
                // Expect ':' then the type; skip to the next top-level ','.
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => return Err(format!("expected ':' after field, got {other:?}")),
                }
                let mut angle_depth = 0i32;
                for tt in iter.by_ref() {
                    match tt {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                        _ => {}
                    }
                }
            }
            Some(other) => return Err(format!("unexpected token in fields: {other}")),
        }
    }
    Ok(fields)
}

/// Counts the fields of a tuple group (top-level commas + 1, empty → 0).
fn count_tuple_fields(group: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut trailing_comma = false;
    for tt in group {
        any = true;
        trailing_comma = false;
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if !any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut iter = group.into_iter().peekable();
    loop {
        skip_attrs(&mut iter);
        match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                let name = id.to_string();
                let shape = match iter.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream())?;
                        iter.next();
                        VariantShape::Struct(fields)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let arity = count_tuple_fields(g.stream());
                        iter.next();
                        VariantShape::Tuple(arity)
                    }
                    _ => VariantShape::Unit,
                };
                variants.push(Variant { name, shape });
                // Skip an optional discriminant and the trailing comma.
                for tt in iter.by_ref() {
                    if let TokenTree::Punct(p) = &tt {
                        if p.as_char() == ',' {
                            break;
                        }
                    }
                }
            }
            Some(other) => return Err(format!("unexpected token in enum body: {other}")),
        }
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    // Scan past attributes/visibility/modifiers to the item keyword.
    let kind = loop {
        skip_attrs(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub`, `pub(crate)` group handled by the next loop turn.
            }
            Some(_) => {}
            None => return Err("no struct or enum found".to_string()),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic type `{name}`"
            ));
        }
    }
    // Body: brace group (named / enum) or paren group (tuple struct).
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Ok(Item::Struct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            } else {
                Ok(Item::Enum {
                    name,
                    variants: parse_variants(g.stream())?,
                })
            }
        }
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
        {
            Ok(Item::TupleStruct {
                name,
                arity: count_tuple_fields(g.stream()),
            })
        }
        other => Err(format!("unsupported item body: {other:?}")),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match &item {
        Item::Struct { name, fields } => {
            let mut body = String::from("let mut __o = ::serde::Value::new_object();\n");
            for f in fields {
                body.push_str(&format!(
                    "__o.push_field({f:?}, ::serde::Serialize::serialize(&self.{f}));\n"
                ));
            }
            body.push_str("__o");
            impl_block(
                name,
                "Serialize",
                &format!("fn serialize(&self) -> ::serde::Value {{ {body} }}"),
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::serialize(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            impl_block(
                name,
                "Serialize",
                &format!("fn serialize(&self) -> ::serde::Value {{ {body} }}"),
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String({vn:?}.to_string()),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        let inner = if *arity == 1 {
                            items[0].clone()
                        } else {
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{ let mut __o = ::serde::Value::new_object(); \
                             __o.push_field({vn:?}, {inner}); __o }}\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds = fields.join(", ");
                        let mut inner =
                            String::from("let mut __m = ::serde::Value::new_object();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__m.push_field({f:?}, ::serde::Serialize::serialize({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{ {inner} let mut __o = \
                             ::serde::Value::new_object(); __o.push_field({vn:?}, __m); __o }}\n"
                        ));
                    }
                }
            }
            impl_block(
                name,
                "Serialize",
                &format!("fn serialize(&self) -> ::serde::Value {{ match self {{ {arms} }} }}"),
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match &item {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!("{f}: ::serde::de_field(__v, {f:?})?,\n"));
            }
            impl_block(name, "Deserialize", &format!(
                "fn deserialize(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{ \
                 ::core::result::Result::Ok({name} {{ {inits} }}) }}"
            ))
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!(
                    "::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))"
                )
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::deserialize(&__a[{i}])?"))
                    .collect();
                format!(
                    "let __a = __v.as_array().ok_or_else(|| ::serde::DeError::new(\
                     \"expected array for tuple struct\"))?;\n\
                     if __a.len() != {arity} {{ return ::core::result::Result::Err(\
                     ::serde::DeError::new(\"tuple struct arity mismatch\")); }}\n\
                     ::core::result::Result::Ok({name}({items}))",
                    items = items.join(", ")
                )
            };
            impl_block(name, "Deserialize", &format!(
                "fn deserialize(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{ {body} }}"
            ))
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "{vn:?} => return ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let body = if *arity == 1 {
                            format!(
                                "return ::core::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::deserialize(__inner)?));"
                            )
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::deserialize(&__a[{i}])?"))
                                .collect();
                            format!(
                                "let __a = __inner.as_array().ok_or_else(|| \
                                 ::serde::DeError::new(\"expected array\"))?;\n\
                                 if __a.len() != {arity} {{ return ::core::result::Result::Err(\
                                 ::serde::DeError::new(\"variant arity mismatch\")); }}\n\
                                 return ::core::result::Result::Ok({name}::{vn}({items}));",
                                items = items.join(", ")
                            )
                        };
                        tagged_arms.push_str(&format!("{vn:?} => {{ {body} }}\n"));
                    }
                    VariantShape::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!("{f}: ::serde::de_field(__inner, {f:?})?,\n"));
                        }
                        tagged_arms.push_str(&format!(
                            "{vn:?} => return ::core::result::Result::Ok(\
                             {name}::{vn} {{ {inits} }}),\n"
                        ));
                    }
                }
            }
            let body = format!(
                "if let ::serde::Value::String(__s) = __v {{\n\
                     match __s.as_str() {{ {unit_arms} _ => {{}} }}\n\
                 }}\n\
                 if let ::core::option::Option::Some((__tag, __inner)) = __v.single_entry() {{\n\
                     match __tag {{ {tagged_arms} _ => {{}} }}\n\
                 }}\n\
                 ::core::result::Result::Err(::serde::DeError::new(concat!(\
                 \"invalid value for enum \", stringify!({name}))))"
            );
            impl_block(name, "Deserialize", &format!(
                "fn deserialize(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{ {body} }}"
            ))
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}

fn impl_block(name: &str, trait_name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::{trait_name} for {name} {{ {body} }}"
    )
}
