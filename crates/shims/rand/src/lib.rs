//! Offline stand-in for `rand` 0.10.
//!
//! Provides exactly the API slice `dcd-tensor`'s `SeededRng` uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `RngExt` extension
//! trait with `random::<T>()` / `random_range(..)`. The generator is
//! xoshiro256++ seeded via splitmix64 — high-quality, tiny, and fully
//! deterministic across platforms (the real `StdRng` explicitly does not
//! promise cross-version stream stability, so swapping algorithms here is
//! within contract).

/// Core trait: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding entry points (subset of the real trait).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly from an RNG via [`RngExt::random`].
pub trait Random: Sized {
    /// Draws a uniform value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 high bits → uniform in [0, 1) at full f32 mantissa precision.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable via [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Rejection sampling from the top bits: unbiased, and the
                // expected number of draws is < 2 for any width.
                let zone = u64::MAX - (u64::MAX % width);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % width) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == end {
                    return start;
                }
                // Map onto the half-open range [start, end + 1).
                let width = (end as i128 - start as i128 + 1) as u64;
                if width == 0 {
                    // Full 64-bit span: every draw is in range.
                    return (start as i128 + rng.next_u64() as i128) as $t;
                }
                let zone = u64::MAX - (u64::MAX % width);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return (start as i128 + (v % width) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Random>::random(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// Extension methods on any RNG (the rand 0.10 spelling of `Rng`).
pub trait RngExt: RngCore {
    /// Draws a uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a uniform value from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.random::<f32>();
            assert!((0.0..1.0).contains(&x));
            let y = r.random::<f64>();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_hit_all_values() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[r.random_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..500 {
            let v = r.random_range(-3i32..=3);
            assert!((-3..=3).contains(&v));
        }
    }
}
