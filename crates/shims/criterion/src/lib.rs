//! Offline stand-in for `criterion`.
//!
//! Bench targets keep criterion's API (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `criterion_group!`/`criterion_main!`)
//! but every benchmark closure runs exactly **once** and its wall-clock time
//! is printed. That makes `cargo bench` a fast smoke run — no statistics, no
//! warm-up — which is the right trade-off in a build environment that cannot
//! fetch the real criterion, and keeps `cargo test` (which also builds and
//! runs bench targets) quick.

use std::fmt::Display;
use std::time::Instant;

/// Entry point handed to each bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// Throughput annotation (accepted and echoed, not used in statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim always runs one iteration.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Records the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark with no extra input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { elapsed_ns: 0 };
        f(&mut bencher);
        report(&self.name, &id.to_string(), bencher.elapsed_ns);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { elapsed_ns: 0 };
        f(&mut bencher, input);
        report(&self.name, &id.to_string(), bencher.elapsed_ns);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Runs and times the benchmark body.
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs `routine` once and records its wall-clock time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed_ns = start.elapsed().as_nanos();
        std::hint::black_box(out);
    }
}

/// Opaque-to-the-optimizer pass-through, like criterion's.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn report(group: &str, id: &str, elapsed_ns: u128) {
    println!(
        "{group}/{id}: {:.3} ms (1 iteration, shim)",
        elapsed_ns as f64 / 1e6
    );
}

/// Declares a group of bench functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_each_closure_once() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_function("one", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);

        let mut with_input = 0usize;
        let mut group = c.benchmark_group("g2");
        group.bench_with_input(BenchmarkId::from_parameter(64), &64usize, |b, &n| {
            b.iter(|| with_input += n)
        });
        group.finish();
        assert_eq!(with_input, 64);
    }
}
