//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! small slice of serde's surface the workspace uses: `Serialize` and
//! `Deserialize` traits over an in-memory [`Value`] tree, plus the derive
//! macros (re-exported from the sibling `serde_derive` shim). `serde_json`
//! (also shimmed) renders and parses the `Value` tree.
//!
//! Deliberate simplifications relative to real serde:
//! - serialization is eager and allocates a `Value` tree (fine at the data
//!   sizes this workspace serializes: checkpoints, reports, traces);
//! - objects preserve insertion order via `Vec<(String, Value)>`, so output
//!   is deterministic and follows field declaration order like real serde;
//! - enums use the externally-tagged representation (serde's default):
//!   unit variants as `"Name"`, data variants as `{"Name": ...}`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;

/// An in-memory JSON-like value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer number (kept exact; `i128` covers every integer type in use).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered fields.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// An empty object (the derive macros build structs with this).
    pub fn new_object() -> Value {
        Value::Object(Vec::new())
    }

    /// Appends a field to an object value. Panics on non-objects (only the
    /// derive macros call this, always on `new_object()`).
    pub fn push_field(&mut self, name: &str, value: Value) {
        match self {
            Value::Object(fields) => fields.push((name.to_string(), value)),
            _ => panic!("push_field on non-object Value"),
        }
    }

    /// Looks up a field of an object.
    pub fn get(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// For externally-tagged enums: the single `{tag: inner}` entry.
    pub fn single_entry(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Object(fields) if fields.len() == 1 => {
                Some((fields[0].0.as_str(), &fields[0].1))
            }
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Deserialization error: a message plus optional field context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Builds an error from a message.
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }

    /// Prefixes the error with the field it occurred under.
    pub fn in_field(self, field: &str) -> DeError {
        DeError {
            msg: format!("field `{field}`: {}", self.msg),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Serializes `self` into the value tree.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserializes from the value tree.
    fn deserialize(value: &Value) -> Result<Self, DeError>;
}

/// Helper used by derived impls: pulls a named field out of an object and
/// deserializes it. A missing field deserializes from `Null`, which succeeds
/// exactly for `Option` fields (→ `None`) and errors otherwise.
pub fn de_field<T: Deserialize>(value: &Value, name: &str) -> Result<T, DeError> {
    match value.get(name) {
        Some(v) => T::deserialize(v).map_err(|e| e.in_field(name)),
        None => T::deserialize(&Value::Null)
            .map_err(|_| DeError::new(format!("missing field `{name}`"))),
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<bool, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<String, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<$t, DeError> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::new("integer out of range")),
                    _ => Err(DeError::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<$t, DeError> {
                match value {
                    Value::Float(x) => Ok(*x as $t),
                    // JSON has one number type: "3" parses as Int.
                    Value::Int(i) => Ok(*i as $t),
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Option<T>, DeError> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<[T; N], DeError> {
        let items = value
            .as_array()
            .ok_or_else(|| DeError::new("expected array"))?;
        if items.len() != N {
            return Err(DeError::new(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::new("array length mismatch"))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Vec<T>, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(DeError::new("expected array")),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$i.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let items = value.as_array().ok_or_else(|| DeError::new("expected array for tuple"))?;
                let arity = [$($i),+].len();
                if items.len() != arity {
                    return Err(DeError::new("tuple arity mismatch"));
                }
                Ok(($($t::deserialize(&items[$i])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Object keys: JSON requires strings, so integer keys are rendered in
/// decimal like real `serde_json` does for integer-keyed maps.
pub trait MapKey: Sized {
    /// Renders the key.
    fn to_key(&self) -> String;
    /// Parses the key back.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<String, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! int_key_impls {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<$t, DeError> {
                key.parse().map_err(|_| DeError::new("invalid integer map key"))
            }
        }
    )*};
}

int_key_impls!(u32, u64, usize, i32, i64);

impl<K, V, S> Serialize for HashMap<K, V, S>
where
    K: MapKey,
    V: Serialize,
{
    fn serialize(&self) -> Value {
        // Sort by rendered key so output is deterministic across runs.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.serialize()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: MapKey + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
                .collect(),
            _ => Err(DeError::new("expected object for map")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        let some: Option<u32> = Some(7);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::deserialize(&some.serialize()), Ok(Some(7)));
        assert_eq!(Option::<u32>::deserialize(&none.serialize()), Ok(None));
    }

    #[test]
    fn missing_field_is_none_for_option() {
        let obj = Value::new_object();
        let got: Result<Option<u32>, _> = de_field(&obj, "absent");
        assert_eq!(got, Ok(None));
        let got: Result<u32, _> = de_field(&obj, "absent");
        assert!(got.is_err());
    }

    #[test]
    fn map_keys_sorted() {
        let mut m: HashMap<usize, u32> = HashMap::new();
        m.insert(10, 1);
        m.insert(2, 2);
        match m.serialize() {
            Value::Object(fields) => {
                let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, vec!["10", "2"]);
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
