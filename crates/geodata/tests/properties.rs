//! Property-based tests of the hydrology and dataset invariants.

use dcd_geodata::hydrology::{fill_depressions, flow_accumulation, flow_directions};
use dcd_geodata::{generate_dem, DemConfig, Grid};
use dcd_tensor::SeededRng;
use proptest::prelude::*;

fn random_dem(w: usize, h: usize, seed: u64) -> Grid {
    let cfg = DemConfig {
        width: w,
        height: h,
        octaves: 3,
        ..Default::default()
    };
    generate_dem(&cfg, &mut SeededRng::new(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fill_never_lowers_any_cell(w in 8usize..32, h in 8usize..32, seed in 0u64..10_000) {
        let dem = random_dem(w, h, seed);
        let filled = fill_depressions(&dem);
        for i in 0..dem.len() {
            prop_assert!(filled.data()[i] >= dem.data()[i]);
        }
    }

    #[test]
    fn filled_dem_has_no_interior_pits(w in 8usize..24, h in 8usize..24, seed in 0u64..10_000) {
        // After epsilon-filling, every interior cell has a strictly lower
        // neighbour (D8 can always route).
        let dem = random_dem(w, h, seed);
        let filled = fill_depressions(&dem);
        let dirs = flow_directions(&filled);
        for y in 1..h - 1 {
            for x in 1..w - 1 {
                prop_assert!(
                    dirs[filled.idx(x, y)].is_some(),
                    "interior pit at ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn accumulation_conserves_mass(w in 8usize..24, h in 8usize..24, seed in 0u64..10_000) {
        let dem = fill_depressions(&random_dem(w, h, seed));
        let dirs = flow_directions(&dem);
        let acc = flow_accumulation(&dem, &dirs);
        // Every cell's accumulation is at least 1 and at most the raster size.
        prop_assert!(acc.min() >= 1.0);
        prop_assert!(acc.max() <= (w * h) as f32);
        // Total outflow across sinks equals the raster size (each cell's
        // unit of water leaves through exactly one sink).
        let sink_total: f32 = (0..dem.len())
            .filter(|&i| dirs[i].is_none())
            .map(|i| acc.data()[i])
            .sum();
        prop_assert!((sink_total - (w * h) as f32).abs() < 0.5, "sink total {sink_total}");
    }

    #[test]
    fn accumulation_nondecreasing_downstream(
        w in 8usize..24, h in 8usize..24, seed in 0u64..10_000,
    ) {
        let dem = fill_depressions(&random_dem(w, h, seed));
        let dirs = flow_directions(&dem);
        let acc = flow_accumulation(&dem, &dirs);
        for (i, dir) in dirs.iter().enumerate() {
            if let Some(t) = *dir {
                prop_assert!(acc.data()[t] >= acc.data()[i]);
            }
        }
    }

    #[test]
    fn flow_directions_always_descend(w in 8usize..24, h in 8usize..24, seed in 0u64..10_000) {
        let dem = fill_depressions(&random_dem(w, h, seed));
        let dirs = flow_directions(&dem);
        for (i, dir) in dirs.iter().enumerate() {
            if let Some(t) = *dir {
                prop_assert!(dem.data()[t] < dem.data()[i], "uphill flow at {i}");
            }
        }
    }

    #[test]
    fn dem_generation_is_seed_deterministic(seed in 0u64..10_000) {
        let a = random_dem(16, 16, seed);
        let b = random_dem(16, 16, seed);
        prop_assert_eq!(a, b);
    }
}
