//! DEM hydrology: depression filling, D8 flow routing, flow accumulation,
//! and the "digital dam" connectivity analysis that motivates the paper.

use crate::grid::Grid;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// D8 flow direction of a cell: the index of the steepest-descent neighbour,
/// or `None` for pits/flats/outlets.
pub type D8 = Option<usize>;

/// Tiny gradient imposed on filled surfaces so they drain toward their spill
/// point instead of becoming flats D8 cannot route across.
const FILL_EPSILON: f32 = 1e-3;

/// Priority-flood depression filling with an epsilon gradient
/// (Barnes et al., 2014).
///
/// Raises every cell to at least the lowest spill elevation reachable from
/// the raster edge (plus a per-step epsilon), eliminating pits and flats so
/// D8 routing cannot get stuck. Returns the filled DEM.
pub fn fill_depressions(dem: &Grid) -> Grid {
    #[derive(PartialEq)]
    struct Entry(f32, usize);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
        }
    }

    let mut filled = dem.clone();
    let mut visited = vec![false; dem.len()];
    let mut heap: BinaryHeap<Reverse<Entry>> = BinaryHeap::new();
    // Seed with the border cells.
    for y in 0..dem.height() {
        for x in 0..dem.width() {
            if dem.on_border(x, y) {
                let i = dem.idx(x, y);
                visited[i] = true;
                heap.push(Reverse(Entry(dem.data()[i], i)));
            }
        }
    }
    while let Some(Reverse(Entry(level, i))) = heap.pop() {
        let (x, y) = dem.coords(i);
        for (nx, ny) in dem.neighbors8(x, y) {
            let ni = dem.idx(nx, ny);
            if visited[ni] {
                continue;
            }
            visited[ni] = true;
            let lifted = dem.data()[ni].max(level + FILL_EPSILON);
            filled.data_mut()[ni] = lifted;
            heap.push(Reverse(Entry(lifted, ni)));
        }
    }
    filled
}

/// D8 flow directions: each cell points at its steepest-descent neighbour
/// (diagonal distance √2 accounted for). Border cells that have no lower
/// neighbour drain off the map (`None`), as do true pits.
pub fn flow_directions(dem: &Grid) -> Vec<D8> {
    let mut dirs = vec![None; dem.len()];
    for y in 0..dem.height() {
        for x in 0..dem.width() {
            let i = dem.idx(x, y);
            let z = dem.data()[i];
            let mut best: Option<(f32, usize)> = None;
            for (nx, ny) in dem.neighbors8(x, y) {
                let ni = dem.idx(nx, ny);
                let dist = if nx != x && ny != y {
                    std::f32::consts::SQRT_2
                } else {
                    1.0
                };
                let slope = (z - dem.data()[ni]) / dist;
                if slope > 0.0 && best.map(|(s, _)| slope > s).unwrap_or(true) {
                    best = Some((slope, ni));
                }
            }
            dirs[i] = best.map(|(_, ni)| ni);
        }
    }
    dirs
}

/// Flow accumulation: number of cells draining through each cell (including
/// itself), following the D8 directions. Linear time via in-degree
/// (Kahn) traversal of the flow forest.
pub fn flow_accumulation(dem: &Grid, dirs: &[D8]) -> Grid {
    assert_eq!(dirs.len(), dem.len(), "direction/DEM size mismatch");
    let mut indegree = vec![0u32; dem.len()];
    for &d in dirs {
        if let Some(t) = d {
            indegree[t] += 1;
        }
    }
    let mut acc = vec![1.0f32; dem.len()];
    let mut queue: Vec<usize> = (0..dem.len()).filter(|&i| indegree[i] == 0).collect();
    let mut head = 0;
    while head < queue.len() {
        let i = queue[head];
        head += 1;
        if let Some(t) = dirs[i] {
            acc[t] += acc[i];
            indegree[t] -= 1;
            if indegree[t] == 0 {
                queue.push(t);
            }
        }
    }
    assert_eq!(queue.len(), dem.len(), "flow graph contains a cycle");
    Grid::from_vec(dem.width(), dem.height(), acc)
}

/// Result of the digital-dam connectivity analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Connectivity {
    /// Cells belonging to the extracted stream network.
    pub stream_cells: usize,
    /// Number of connected stream components (fragments). Fewer is better.
    pub fragments: usize,
    /// Largest flow accumulation observed (the main outlet's catchment).
    pub max_accumulation: f32,
    /// Stream mask (true on stream cells), for overlap comparisons.
    pub stream_mask: Vec<bool>,
}

impl Connectivity {
    /// Fraction of `reference`'s stream cells that this network preserves —
    /// the paper's notion of drainage lines being "segmented or misled" by
    /// digital dams, quantified. 1.0 means the reference network is intact.
    pub fn stream_overlap(&self, reference: &Connectivity) -> f32 {
        assert_eq!(
            self.stream_mask.len(),
            reference.stream_mask.len(),
            "connectivity rasters differ in size"
        );
        let ref_cells = reference.stream_mask.iter().filter(|&&b| b).count();
        if ref_cells == 0 {
            return 1.0;
        }
        let kept = self
            .stream_mask
            .iter()
            .zip(reference.stream_mask.iter())
            .filter(|&(&a, &b)| a && b)
            .count();
        kept as f32 / ref_cells as f32
    }

    /// Buffered variant of [`Connectivity::stream_overlap`]: a reference
    /// stream cell counts as preserved if *any* cell of this network lies
    /// within Chebyshev distance `tolerance` (the standard way to compare
    /// drainage lines, since filling/breaching shifts channels by a cell or
    /// two without changing the network's meaning). `width` is the raster
    /// width the masks were built from.
    pub fn stream_overlap_buffered(
        &self,
        reference: &Connectivity,
        width: usize,
        tolerance: usize,
    ) -> f32 {
        assert_eq!(self.stream_mask.len(), reference.stream_mask.len());
        assert!(
            width > 0 && self.stream_mask.len().is_multiple_of(width),
            "bad raster width"
        );
        let height = self.stream_mask.len() / width;
        // Dilate this network's mask by `tolerance`.
        let mut dilated = vec![false; self.stream_mask.len()];
        let t = tolerance as i64;
        for y in 0..height {
            for x in 0..width {
                if !self.stream_mask[y * width + x] {
                    continue;
                }
                for dy in -t..=t {
                    for dx in -t..=t {
                        let nx = x as i64 + dx;
                        let ny = y as i64 + dy;
                        if nx >= 0 && ny >= 0 && (nx as usize) < width && (ny as usize) < height {
                            dilated[ny as usize * width + nx as usize] = true;
                        }
                    }
                }
            }
        }
        let ref_cells = reference.stream_mask.iter().filter(|&&b| b).count();
        if ref_cells == 0 {
            return 1.0;
        }
        let kept = dilated
            .iter()
            .zip(reference.stream_mask.iter())
            .filter(|&(&a, &b)| a && b)
            .count();
        kept as f32 / ref_cells as f32
    }
}

/// Extracts the stream network (accumulation ≥ `threshold`) and measures its
/// connectivity.
///
/// This quantifies the paper's Fig 1: routing over a DEM whose road
/// embankments were *not* breached yields a fragmented network with small
/// catchments; breaching at drainage-crossing locations reconnects it,
/// raising `max_accumulation` and lowering `fragments`.
pub fn connectivity(dem: &Grid, threshold: f32) -> Connectivity {
    let filled = fill_depressions(dem);
    let dirs = flow_directions(&filled);
    let acc = flow_accumulation(&filled, &dirs);
    let is_stream: Vec<bool> = acc.data().iter().map(|&a| a >= threshold).collect();
    let stream_cells = is_stream.iter().filter(|&&b| b).count();

    // Count connected components of the stream mask (8-connectivity).
    let mut comp = vec![usize::MAX; acc.len()];
    let mut fragments = 0;
    for start in 0..acc.len() {
        if !is_stream[start] || comp[start] != usize::MAX {
            continue;
        }
        fragments += 1;
        let mut stack = vec![start];
        comp[start] = fragments;
        while let Some(i) = stack.pop() {
            let (x, y) = acc.coords(i);
            for (nx, ny) in acc.neighbors8(x, y) {
                let ni = acc.idx(nx, ny);
                if is_stream[ni] && comp[ni] == usize::MAX {
                    comp[ni] = fragments;
                    stack.push(ni);
                }
            }
        }
    }
    Connectivity {
        stream_cells,
        fragments,
        max_accumulation: acc.max(),
        stream_mask: is_stream,
    }
}

/// Carves the DEM at the given points (lowering each to the minimum of its
/// neighbourhood) — the "breaching" step applied once crossings are known.
pub fn breach_at(dem: &mut Grid, points: &[(usize, usize)], radius: usize) {
    for &(cx, cy) in points {
        // Find the lowest elevation in the neighbourhood…
        let mut low = f32::INFINITY;
        for dy in -(radius as i64)..=radius as i64 {
            for dx in -(radius as i64)..=radius as i64 {
                let x = cx as i64 + dx;
                let y = cy as i64 + dy;
                if x >= 0 && y >= 0 && (x as usize) < dem.width() && (y as usize) < dem.height() {
                    low = low.min(dem.get(x as usize, y as usize));
                }
            }
        }
        // …and cut the crossing cells down to it.
        for dy in -(radius as i64)..=radius as i64 {
            for dx in -(radius as i64)..=radius as i64 {
                let x = cx as i64 + dx;
                let y = cy as i64 + dy;
                if x >= 0 && y >= 0 && (x as usize) < dem.width() && (y as usize) < dem.height() {
                    dem.set(x as usize, y as usize, low);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tilted plane descending to the east.
    fn tilted(width: usize, height: usize) -> Grid {
        let mut g = Grid::new(width, height);
        for y in 0..height {
            for x in 0..width {
                g.set(x, y, 100.0 - x as f32);
            }
        }
        g
    }

    #[test]
    fn tilted_plane_flows_east() {
        let dem = tilted(8, 4);
        let dirs = flow_directions(&dem);
        // Interior cells flow to x+1 (straight east is steepest: diagonal
        // drop equals 1 but distance √2).
        let i = dem.idx(3, 2);
        assert_eq!(dirs[i], Some(dem.idx(4, 2)));
        // East border drains off-map.
        assert_eq!(dirs[dem.idx(7, 2)], None);
    }

    #[test]
    fn accumulation_grows_downstream() {
        let dem = tilted(8, 4);
        let dirs = flow_directions(&dem);
        let acc = flow_accumulation(&dem, &dirs);
        // Along one row accumulation increases monotonically eastward.
        for x in 1..8 {
            assert!(acc.get(x, 1) >= acc.get(x - 1, 1));
        }
        // The east edge collects its full row.
        assert_eq!(acc.get(7, 1), 8.0);
    }

    #[test]
    fn fill_removes_a_pit() {
        let mut dem = tilted(8, 8);
        dem.set(4, 4, 0.0); // deep pit
        let filled = fill_depressions(&dem);
        // Pit raised to its spill level; no cell below its lowest border
        // path remains.
        assert!(
            filled.get(4, 4) > 90.0,
            "pit filled to {}",
            filled.get(4, 4)
        );
        // Already-drained cells untouched.
        assert_eq!(filled.get(0, 0), dem.get(0, 0));
    }

    #[test]
    fn fill_is_idempotent() {
        let mut dem = tilted(10, 10);
        dem.set(5, 5, 0.0);
        dem.set(2, 7, 10.0);
        let once = fill_depressions(&dem);
        let twice = fill_depressions(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn fill_never_lowers_cells() {
        let mut dem = tilted(10, 10);
        dem.set(3, 3, -5.0);
        let filled = fill_depressions(&dem);
        for i in 0..dem.len() {
            assert!(filled.data()[i] >= dem.data()[i]);
        }
    }

    #[test]
    fn digital_dam_fragments_and_breaching_reconnects() {
        // A valley flowing east, blocked by a north-south embankment: the
        // paper's digital-dam scenario in miniature.
        let mut dem = Grid::new(32, 16);
        for y in 0..16 {
            for x in 0..32 {
                // Valley along y=8, descending east.
                let valley = (y as f32 - 8.0).abs() * 2.0;
                dem.set(x, y, 50.0 - x as f32 + valley);
            }
        }
        let mut dammed = dem.clone();
        for y in 0..16 {
            dammed.set(16, y, 100.0); // road embankment
        }
        let open = connectivity(&dem, 8.0);
        let blocked = connectivity(&dammed, 8.0);
        // The dam truncates the main catchment.
        assert!(
            blocked.max_accumulation < open.max_accumulation,
            "dam should shrink the outlet catchment: {} vs {}",
            blocked.max_accumulation,
            open.max_accumulation
        );
        // Breaching at the crossing restores it.
        let mut breached = dammed.clone();
        breach_at(&mut breached, &[(16, 8)], 1);
        let fixed = connectivity(&breached, 8.0);
        assert!(
            fixed.max_accumulation > blocked.max_accumulation,
            "breaching should restore connectivity: {} vs {}",
            fixed.max_accumulation,
            blocked.max_accumulation
        );
        // The stream-overlap view agrees: dams displace the network,
        // breaching restores it.
        assert!(blocked.stream_overlap(&open) < 1.0);
        assert!(fixed.stream_overlap(&open) > blocked.stream_overlap(&open));
    }

    #[test]
    fn stream_overlap_is_one_for_identical_networks() {
        let dem = tilted(12, 12);
        let a = connectivity(&dem, 6.0);
        let b = connectivity(&dem, 6.0);
        assert_eq!(a.stream_overlap(&b), 1.0);
    }

    #[test]
    fn buffered_overlap_tolerates_small_shifts() {
        // Two parallel one-cell-wide "streams" offset by one row: exact
        // overlap is 0, buffered overlap at tolerance 1 is 1.
        let base = connectivity(&tilted(12, 12), 6.0);
        let mut a = base.clone();
        let mut b = base.clone();
        a.stream_mask.iter_mut().for_each(|m| *m = false);
        b.stream_mask.iter_mut().for_each(|m| *m = false);
        for x in 0..12 {
            a.stream_mask[5 * 12 + x] = true;
            b.stream_mask[6 * 12 + x] = true;
        }
        assert_eq!(a.stream_overlap(&b), 0.0);
        assert_eq!(a.stream_overlap_buffered(&b, 12, 1), 1.0);
        assert_eq!(a.stream_overlap_buffered(&b, 12, 0), 0.0);
    }

    #[test]
    fn accumulation_conserves_total_flow() {
        // Each cell contributes exactly 1; max accumulation ≤ total cells.
        let dem = tilted(12, 12);
        let dirs = flow_directions(&dem);
        let acc = flow_accumulation(&dem, &dirs);
        assert!(acc.max() <= 144.0);
        assert!(acc.min() >= 1.0);
    }

    #[test]
    fn breach_lowers_only_neighbourhood() {
        let mut dem = tilted(10, 10);
        let before = dem.clone();
        breach_at(&mut dem, &[(5, 5)], 1);
        for y in 0..10 {
            for x in 0..10 {
                let within = (x as i64 - 5).abs() <= 1 && (y as i64 - 5).abs() <= 1;
                if within {
                    assert!(dem.get(x, y) <= before.get(x, y));
                } else {
                    assert_eq!(dem.get(x, y), before.get(x, y));
                }
            }
        }
    }
}
