//! A dense 2-D `f32` grid (row-major), the raster type shared by the DEM,
//! flow-accumulation and land-cover layers.

use serde::{Deserialize, Serialize};

/// Row-major 2-D raster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl Grid {
    /// A zero-filled grid.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "grid must be non-empty");
        Grid {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Builds from an existing buffer (`data.len() == width·height`).
    pub fn from_vec(width: usize, height: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), width * height, "grid buffer size mismatch");
        Grid {
            width,
            height,
            data,
        }
    }

    /// Grid width (x extent).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height (y extent).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Cell count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the grid has zero cells (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Value at `(x, y)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Sets the value at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = v;
    }

    /// Linear index of `(x, y)`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize) -> usize {
        y * self.width + x
    }

    /// Coordinates of linear index `i`.
    #[inline]
    pub fn coords(&self, i: usize) -> (usize, usize) {
        (i % self.width, i / self.width)
    }

    /// Raw buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Whether `(x, y)` lies on the outer boundary.
    pub fn on_border(&self, x: usize, y: usize) -> bool {
        x == 0 || y == 0 || x == self.width - 1 || y == self.height - 1
    }

    /// The 8-connected neighbours of `(x, y)` that are in bounds.
    pub fn neighbors8(&self, x: usize, y: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(8);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let nx = x as i64 + dx;
                let ny = y as i64 + dy;
                if nx >= 0 && ny >= 0 && (nx as usize) < self.width && (ny as usize) < self.height {
                    out.push((nx as usize, ny as usize));
                }
            }
        }
        out
    }

    /// Minimum value.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum value.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Number of cells for which `pred` holds.
    pub fn count(&self, pred: impl Fn(f32) -> bool) -> usize {
        self.data.iter().filter(|&&v| pred(v)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut g = Grid::new(4, 3);
        g.set(2, 1, 5.0);
        assert_eq!(g.get(2, 1), 5.0);
        assert_eq!(g.data()[4 + 2], 5.0);
    }

    #[test]
    fn idx_coords_inverse() {
        let g = Grid::new(7, 5);
        for i in 0..g.len() {
            let (x, y) = g.coords(i);
            assert_eq!(g.idx(x, y), i);
        }
    }

    #[test]
    fn neighbors_interior_has_eight() {
        let g = Grid::new(5, 5);
        assert_eq!(g.neighbors8(2, 2).len(), 8);
    }

    #[test]
    fn neighbors_corner_has_three() {
        let g = Grid::new(5, 5);
        assert_eq!(g.neighbors8(0, 0).len(), 3);
        assert_eq!(g.neighbors8(4, 4).len(), 3);
    }

    #[test]
    fn border_detection() {
        let g = Grid::new(3, 3);
        assert!(g.on_border(0, 1));
        assert!(g.on_border(2, 2));
        assert!(!g.on_border(1, 1));
    }

    #[test]
    fn min_max_count() {
        let g = Grid::from_vec(2, 2, vec![1.0, -2.0, 3.0, 0.0]);
        assert_eq!(g.min(), -2.0);
        assert_eq!(g.max(), 3.0);
        assert_eq!(g.count(|v| v > 0.0), 2);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_vec_checks_len() {
        Grid::from_vec(2, 2, vec![0.0; 3]);
    }
}
