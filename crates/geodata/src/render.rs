//! 4-band (R, G, B, NIR) orthophoto rendering from a scene.
//!
//! Land-cover spectra follow NAIP color-infrared intuition: vegetation is
//! green-ish with very high NIR; bare soil is brown with moderate NIR; water
//! absorbs NIR (streams go dark in band 4); gravel/asphalt roads are bright
//! and flat across bands. Per-pixel noise models sensor and scene variation.

use crate::scene::Scene;
use dcd_tensor::{SeededRng, Tensor};

/// Reflectance of one cover class in `[R, G, B, NIR]`, each in `[0, 1]`.
#[derive(Debug, Clone, Copy)]
struct Spectrum([f32; 4]);

const VEGETATION: Spectrum = Spectrum([0.22, 0.42, 0.18, 0.85]);
const SOIL: Spectrum = Spectrum([0.45, 0.38, 0.28, 0.50]);
const WATER: Spectrum = Spectrum([0.10, 0.16, 0.22, 0.05]);
const ROAD: Spectrum = Spectrum([0.62, 0.60, 0.58, 0.35]);

/// Renders the scene to a `[4, H, W]` tensor with values in `[0, 1]`.
///
/// `noise` is the per-band Gaussian sigma (0.03 matches visually plausible
/// NAIP texture; set 0 for deterministic tests).
pub fn render_bands(scene: &Scene, noise: f32, rng: &mut SeededRng) -> Tensor {
    let w = scene.width();
    let h = scene.height();
    // Vegetation/soil mosaic driven by the flow accumulation (wetter = more
    // vegetation), mimicking the agricultural mosaic.
    let mut out = Tensor::zeros([4, h, w]);
    for y in 0..h {
        for x in 0..w {
            let base = pixel_spectrum(scene, x, y);
            for band in 0..4 {
                let v = (base.0[band] + noise * rng.normal()).clamp(0.0, 1.0);
                out.set(&[band, y, x], v);
            }
        }
    }
    out
}

/// Cover spectrum at a cell: roads mask streams (a culvert passes *under*
/// the road, so the road surface is what the orthophoto sees), streams mask
/// vegetation/soil.
fn pixel_spectrum(scene: &Scene, x: usize, y: usize) -> Spectrum {
    if scene.roads.get(x, y) > 0.0 {
        ROAD
    } else if scene.streams.get(x, y) > 0.0 {
        WATER
    } else {
        // Wetness-weighted vegetation/soil mix.
        let acc = scene.flow_acc.get(x, y);
        let wet = (acc.ln_1p() / 6.0).clamp(0.0, 1.0);
        let mut s = [0.0f32; 4];
        for (band, v) in s.iter_mut().enumerate() {
            *v = SOIL.0[band] * (1.0 - wet) + VEGETATION.0[band] * wet;
        }
        Spectrum(s)
    }
}

/// Clips a `[4, size, size]` patch centred at `(cx, cy)` from rendered
/// bands; out-of-raster area is zero-padded (edge patches).
pub fn clip_patch(bands: &Tensor, cx: usize, cy: usize, size: usize) -> Tensor {
    let nb = bands.dims()[0];
    let mut patch = Tensor::zeros([nb, size, size]);
    clip_patch_into(bands, cx, cy, size, patch.data_mut());
    patch
}

/// [`clip_patch`] into a caller-provided buffer (e.g. one slot of a reused
/// batch tensor). Every element of `out` is written — out-of-raster area is
/// explicitly zeroed — so the buffer may hold stale data from a previous
/// patch.
pub fn clip_patch_into(bands: &Tensor, cx: usize, cy: usize, size: usize, out: &mut [f32]) {
    let dims = bands.dims();
    assert_eq!(dims.len(), 3, "expected [bands, H, W]");
    let (nb, h, w) = (dims[0], dims[1], dims[2]);
    assert_eq!(out.len(), nb * size * size, "patch buffer size mismatch");
    let half = size / 2;
    let src = bands.data();
    for b in 0..nb {
        for py in 0..size {
            let row = &mut out[(b * size + py) * size..(b * size + py + 1) * size];
            let sy = cy as i64 + py as i64 - half as i64;
            if sy < 0 || sy >= h as i64 {
                row.fill(0.0);
                continue;
            }
            let src_row = &src[(b * h + sy as usize) * w..(b * h + sy as usize + 1) * w];
            for (px, o) in row.iter_mut().enumerate() {
                let sx = cx as i64 + px as i64 - half as i64;
                *o = if sx < 0 || sx >= w as i64 {
                    0.0
                } else {
                    src_row[sx as usize]
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dem::DemConfig;
    use crate::scene::{generate_scene, SceneConfig};

    fn scene() -> Scene {
        let config = SceneConfig {
            dem: DemConfig {
                width: 128,
                height: 128,
                ..DemConfig::default()
            },
            road_spacing: 48,
            stream_threshold: 80.0,
            ..SceneConfig::default()
        };
        generate_scene(&config, &mut SeededRng::new(5))
    }

    #[test]
    fn output_shape_and_range() {
        let s = scene();
        let bands = render_bands(&s, 0.03, &mut SeededRng::new(1));
        assert_eq!(bands.dims(), &[4, 128, 128]);
        for &v in bands.data() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn clip_patch_into_overwrites_stale_buffer() {
        // Edge patch (cx=0, cy=0) hits the zero-padding path; a reused
        // buffer full of garbage must still come out identical to a fresh
        // clip.
        let s = scene();
        let bands = render_bands(&s, 0.0, &mut SeededRng::new(4));
        let fresh = clip_patch(&bands, 0, 0, 32);
        let mut buf = vec![7.0f32; 4 * 32 * 32];
        clip_patch_into(&bands, 0, 0, 32, &mut buf);
        assert_eq!(fresh.data(), &buf[..]);
    }

    #[test]
    fn water_is_dark_in_nir() {
        let s = scene();
        let bands = render_bands(&s, 0.0, &mut SeededRng::new(2));
        // Find a stream cell not under a road.
        let mut found = false;
        'outer: for y in 0..128 {
            for x in 0..128 {
                if s.streams.get(x, y) > 0.0 && s.roads.get(x, y) == 0.0 {
                    assert!(bands.at(&[3, y, x]) < 0.1, "NIR bright over water");
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "no stream cell to test");
    }

    #[test]
    fn roads_are_bright_and_flat() {
        let s = scene();
        let bands = render_bands(&s, 0.0, &mut SeededRng::new(3));
        let (x, y) = {
            let mut p = (0, 0);
            'outer: for yy in 0..128 {
                for xx in 0..128 {
                    if s.roads.get(xx, yy) > 0.0 {
                        p = (xx, yy);
                        break 'outer;
                    }
                }
            }
            p
        };
        let r = bands.at(&[0, y, x]);
        let g = bands.at(&[1, y, x]);
        assert!(r > 0.5, "road should be bright");
        assert!((r - g).abs() < 0.1, "road should be gray");
    }

    #[test]
    fn vegetation_has_high_nir() {
        let s = scene();
        let bands = render_bands(&s, 0.0, &mut SeededRng::new(4));
        // Average NIR over non-road non-stream cells is high (soil/veg mix).
        let mut sum = 0.0;
        let mut n = 0;
        for y in 0..128 {
            for x in 0..128 {
                if s.roads.get(x, y) == 0.0 && s.streams.get(x, y) == 0.0 {
                    sum += bands.at(&[3, y, x]);
                    n += 1;
                }
            }
        }
        assert!(
            sum / n as f32 > 0.45,
            "mean background NIR {}",
            sum / n as f32
        );
    }

    #[test]
    fn clip_patch_centres_correctly() {
        let s = scene();
        let bands = render_bands(&s, 0.0, &mut SeededRng::new(6));
        let patch = clip_patch(&bands, 64, 64, 32);
        assert_eq!(patch.dims(), &[4, 32, 32]);
        // Patch centre equals source pixel.
        assert_eq!(patch.at(&[0, 16, 16]), bands.at(&[0, 64, 64]));
    }

    #[test]
    fn clip_patch_zero_pads_edges() {
        let s = scene();
        let bands = render_bands(&s, 0.0, &mut SeededRng::new(7));
        let patch = clip_patch(&bands, 0, 0, 32);
        // Top-left quadrant is off-raster → zeros.
        assert_eq!(patch.at(&[0, 0, 0]), 0.0);
        assert_eq!(patch.at(&[2, 5, 5]), 0.0);
        // In-raster part copied.
        assert_eq!(patch.at(&[0, 16, 16]), bands.at(&[0, 0, 0]));
    }
}
