//! Labelled patch dataset: the stand-in for the paper's 2022 manually
//! digitized drainage-crossing clips (§3.2).

use crate::render::{clip_patch, render_bands};
use crate::scene::{generate_scene, Scene, SceneConfig};
use dcd_nn::{BBox, Sample};
use dcd_tensor::SeededRng;

/// Dataset generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct DatasetConfig {
    /// Scene (study-area) parameters.
    pub scene: SceneConfig,
    /// Patch side length, cells (paper: 100×100 at 1 m).
    pub patch_size: usize,
    /// Number of negative patches per positive patch.
    pub negatives_per_positive: f32,
    /// Maximum random offset of the crossing from the patch centre, cells
    /// (the paper centres the box on the digitized point; jitter keeps the
    /// detector from learning "always predict the centre").
    pub center_jitter: usize,
    /// Ground-truth box side length, normalized to the patch (a culvert
    /// plus its immediate disturbance).
    pub box_size: f32,
    /// Sensor noise sigma passed to the renderer.
    pub noise: f32,
    /// Train fraction of the split (paper: 0.8).
    pub train_fraction: f32,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            scene: SceneConfig::default(),
            patch_size: 100,
            negatives_per_positive: 1.0,
            center_jitter: 10,
            box_size: 0.2,
            noise: 0.03,
            train_fraction: 0.8,
        }
    }
}

/// A generated train/test split of labelled patches.
#[derive(Debug, Clone)]
pub struct PatchDataset {
    /// Training samples.
    pub train: Vec<Sample>,
    /// Held-out test samples.
    pub test: Vec<Sample>,
    /// The scene the patches were clipped from.
    pub scene: Scene,
}

impl PatchDataset {
    /// Generates a dataset from a seed. Every crossing in the scene yields
    /// one positive patch; negatives are sampled away from all crossings.
    pub fn generate(config: &DatasetConfig, seed: u64) -> Self {
        let mut rng = SeededRng::new(seed);
        let scene = generate_scene(&config.scene, &mut rng);
        let bands = render_bands(&scene, config.noise, &mut rng);
        let size = config.patch_size;
        let half = size as i64 / 2;
        let w = scene.width() as i64;
        let h = scene.height() as i64;

        let mut samples: Vec<Sample> = Vec::new();
        // Positives: a patch around each crossing, jittered. Crossings too
        // close to the raster edge are skipped (a full patch cannot be
        // clipped around them, mirroring how the study-area clips were made).
        for &(cx, cy) in &scene.crossings {
            let (cxi, cyi) = (cx as i64, cy as i64);
            if cxi < half || cxi > w - half - 1 || cyi < half || cyi > h - half - 1 {
                continue;
            }
            let j = config.center_jitter as i64;
            let jx = if j > 0 {
                rng.index(2 * j as usize + 1) as i64 - j
            } else {
                0
            };
            let jy = if j > 0 {
                rng.index(2 * j as usize + 1) as i64 - j
            } else {
                0
            };
            // Patch centre = crossing + jitter, clamped inside the raster.
            let px = (cx as i64 + jx).clamp(half, w - half - 1);
            let py = (cy as i64 + jy).clamp(half, h - half - 1);
            let image = normalize(clip_patch(&bands, px as usize, py as usize, size));
            // Crossing position inside the patch, normalized.
            let bx = (cx as i64 - (px - half)) as f32 / size as f32;
            let by = (cy as i64 - (py - half)) as f32 / size as f32;
            samples.push(Sample::positive(
                image,
                BBox::new(bx, by, config.box_size, config.box_size),
            ));
        }
        // Negatives: random centres far from every crossing. If the scene is
        // so dense with crossings that no centre clears the full half-patch
        // margin, relax the margin (halving it, down to a floor) rather than
        // emit a dataset with no negative class at all.
        let n_neg = (scene.crossings.len() as f32 * config.negatives_per_positive).round() as usize;
        let mut min_dist = (size / 2) as i64;
        let mut placed = 0;
        while placed == 0 && min_dist >= 4 {
            let mut attempts = 0;
            while placed < n_neg && attempts < n_neg * 100 {
                attempts += 1;
                let px = half + rng.index((w - size as i64).max(1) as usize) as i64;
                let py = half + rng.index((h - size as i64).max(1) as usize) as i64;
                let clear = scene
                    .crossings
                    .iter()
                    .all(|&(cx, cy)| (cx as i64 - px).abs().max((cy as i64 - py).abs()) > min_dist);
                if clear {
                    let image = normalize(clip_patch(&bands, px as usize, py as usize, size));
                    samples.push(Sample::negative(image));
                    placed += 1;
                }
            }
            min_dist /= 2;
        }

        // Shuffle then split 80/20 (paper §6.1).
        let mut order: Vec<usize> = (0..samples.len()).collect();
        rng.shuffle(&mut order);
        let n_train = ((samples.len() as f32) * config.train_fraction).round() as usize;
        let mut train = Vec::with_capacity(n_train);
        let mut test = Vec::with_capacity(samples.len() - n_train);
        for (rank, &i) in order.iter().enumerate() {
            if rank < n_train {
                train.push(samples[i].clone());
            } else {
                test.push(samples[i].clone());
            }
        }
        PatchDataset { train, test, scene }
    }

    /// Total sample count.
    pub fn len(&self) -> usize {
        self.train.len() + self.test.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Standardizes a reflectance patch for training: bands are in `[0, 1]`
/// with a grand mean near 0.5, so `(x − 0.5)·2` centres them in `[−1, 1]`.
fn normalize(patch: dcd_tensor::Tensor) -> dcd_tensor::Tensor {
    patch.map(|v| (v - 0.5) * 2.0)
}

/// A small, quick dataset configuration for tests and examples: 64×64
/// patches from a 256×256 scene.
pub fn small_config() -> DatasetConfig {
    DatasetConfig {
        scene: SceneConfig {
            dem: crate::dem::DemConfig {
                width: 256,
                height: 256,
                ..Default::default()
            },
            road_spacing: 64,
            stream_threshold: 100.0,
            ..Default::default()
        },
        patch_size: 64,
        center_jitter: 6,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_balanced_split() {
        let ds = PatchDataset::generate(&small_config(), 11);
        assert!(ds.len() >= 6, "dataset too small: {}", ds.len());
        let train_frac = ds.train.len() as f32 / ds.len() as f32;
        assert!(
            (train_frac - 0.8).abs() < 0.15,
            "train fraction {train_frac}"
        );
    }

    #[test]
    fn positives_have_boxes_near_center() {
        let ds = PatchDataset::generate(&small_config(), 12);
        let cfg = small_config();
        let max_off = cfg.center_jitter as f32 / cfg.patch_size as f32 + 0.02;
        for s in ds.train.iter().chain(ds.test.iter()) {
            if let Some(b) = s.label {
                // Edge crossings are skipped, so the only displacement is the
                // jitter itself.
                assert!((b.cx - 0.5).abs() <= max_off, "box cx {}", b.cx);
                assert!((b.cy - 0.5).abs() <= max_off, "box cy {}", b.cy);
                assert!(b.w > 0.0 && b.h > 0.0);
            }
        }
    }

    #[test]
    fn patches_have_four_bands() {
        let ds = PatchDataset::generate(&small_config(), 13);
        for s in ds.train.iter().take(3) {
            assert_eq!(s.image.dims(), &[4, 64, 64]);
        }
    }

    #[test]
    fn contains_positives_and_negatives() {
        let ds = PatchDataset::generate(&small_config(), 14);
        let pos = ds
            .train
            .iter()
            .chain(ds.test.iter())
            .filter(|s| s.is_positive())
            .count();
        let neg = ds.len() - pos;
        assert!(pos > 0, "no positives");
        assert!(neg > 0, "no negatives");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = PatchDataset::generate(&small_config(), 21);
        let b = PatchDataset::generate(&small_config(), 21);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.train[0].image.data(), b.train[0].image.data());
    }

    #[test]
    fn different_seeds_differ() {
        let a = PatchDataset::generate(&small_config(), 1);
        let b = PatchDataset::generate(&small_config(), 2);
        assert_ne!(a.train[0].image.data(), b.train[0].image.data());
    }
}
