//! Raster visualization: export scenes and detections as PPM images.
//!
//! PPM (portable pixmap) needs no image dependency and opens everywhere —
//! enough to eyeball the synthetic watershed, its stream/road structure and
//! detector output, the way the paper's Figs 1, 3 and 4 do.

use crate::grid::Grid;
use crate::scene::Scene;
use dcd_tensor::Tensor;
use std::io::{self, Write};
use std::path::Path;

/// An 8-bit RGB image buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RgbImage {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major RGB triples.
    pub pixels: Vec<[u8; 3]>,
}

impl RgbImage {
    /// A black image.
    pub fn new(width: usize, height: usize) -> Self {
        RgbImage {
            width,
            height,
            pixels: vec![[0, 0, 0]; width * height],
        }
    }

    /// Sets one pixel (ignores out-of-bounds coordinates).
    pub fn put(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        if x < self.width && y < self.height {
            self.pixels[y * self.width + x] = rgb;
        }
    }

    /// Gets one pixel.
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        self.pixels[y * self.width + x]
    }

    /// Draws a hollow square of side `2r+1` centred at `(cx, cy)`.
    pub fn draw_box(&mut self, cx: usize, cy: usize, r: usize, rgb: [u8; 3]) {
        let (cx, cy, r) = (cx as i64, cy as i64, r as i64);
        for d in -r..=r {
            for &(x, y) in &[
                (cx + d, cy - r),
                (cx + d, cy + r),
                (cx - r, cy + d),
                (cx + r, cy + d),
            ] {
                if x >= 0 && y >= 0 {
                    self.put(x as usize, y as usize, rgb);
                }
            }
        }
    }

    /// Serializes as binary PPM (P6).
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        for p in &self.pixels {
            out.extend_from_slice(p);
        }
        out
    }

    /// Writes a binary PPM file.
    pub fn save_ppm(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.to_ppm())
    }
}

/// Converts rendered 4-band imagery to true-colour RGB (bands 0..2).
pub fn bands_to_rgb(bands: &Tensor) -> RgbImage {
    let dims = bands.dims();
    assert!(dims.len() == 3 && dims[0] >= 3, "expected [>=3, H, W]");
    let (h, w) = (dims[1], dims[2]);
    let mut img = RgbImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let px = [
                (bands.at(&[0, y, x]).clamp(0.0, 1.0) * 255.0) as u8,
                (bands.at(&[1, y, x]).clamp(0.0, 1.0) * 255.0) as u8,
                (bands.at(&[2, y, x]).clamp(0.0, 1.0) * 255.0) as u8,
            ];
            img.put(x, y, px);
        }
    }
    img
}

/// Converts 4-band imagery to colour-infrared (NIR→R, R→G, G→B), the
/// standard NAIP false-colour rendition where vegetation glows red.
pub fn bands_to_cir(bands: &Tensor) -> RgbImage {
    let dims = bands.dims();
    assert!(dims.len() == 3 && dims[0] >= 4, "expected [4, H, W]");
    let (h, w) = (dims[1], dims[2]);
    let mut img = RgbImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let px = [
                (bands.at(&[3, y, x]).clamp(0.0, 1.0) * 255.0) as u8,
                (bands.at(&[0, y, x]).clamp(0.0, 1.0) * 255.0) as u8,
                (bands.at(&[1, y, x]).clamp(0.0, 1.0) * 255.0) as u8,
            ];
            img.put(x, y, px);
        }
    }
    img
}

/// Renders a grid (DEM, flow accumulation) as a grayscale heatmap with
/// optional log scaling (flow accumulation is heavy-tailed).
pub fn grid_to_gray(grid: &Grid, log_scale: bool) -> RgbImage {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    let tf = |v: f32| if log_scale { v.max(0.0).ln_1p() } else { v };
    for &v in grid.data() {
        let t = tf(v);
        lo = lo.min(t);
        hi = hi.max(t);
    }
    let span = (hi - lo).max(1e-9);
    let mut img = RgbImage::new(grid.width(), grid.height());
    for y in 0..grid.height() {
        for x in 0..grid.width() {
            let t = ((tf(grid.get(x, y)) - lo) / span * 255.0) as u8;
            img.put(x, y, [t, t, t]);
        }
    }
    img
}

/// Renders the scene's structural overlay: terrain gray, streams blue,
/// roads dark gray, crossings red boxes — the Fig 3-style map.
pub fn scene_overlay(scene: &Scene) -> RgbImage {
    let mut img = grid_to_gray(&scene.dem, false);
    for y in 0..scene.height() {
        for x in 0..scene.width() {
            if scene.roads.get(x, y) > 0.0 {
                img.put(x, y, [70, 70, 70]);
            }
            if scene.streams.get(x, y) > 0.0 {
                img.put(x, y, [40, 90, 220]);
            }
        }
    }
    for &(cx, cy) in &scene.crossings {
        img.draw_box(cx, cy, 4, [230, 40, 40]);
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dem::DemConfig;
    use crate::render::render_bands;
    use crate::scene::{generate_scene, SceneConfig};
    use dcd_tensor::SeededRng;

    fn scene() -> Scene {
        generate_scene(
            &SceneConfig {
                dem: DemConfig {
                    width: 96,
                    height: 96,
                    ..Default::default()
                },
                road_spacing: 32,
                stream_threshold: 60.0,
                ..Default::default()
            },
            &mut SeededRng::new(3),
        )
    }

    #[test]
    fn ppm_header_and_size() {
        let img = RgbImage::new(4, 3);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n4 3\n255\n"));
        assert_eq!(ppm.len(), 11 + 4 * 3 * 3);
    }

    #[test]
    fn put_get_roundtrip_and_bounds() {
        let mut img = RgbImage::new(4, 4);
        img.put(2, 1, [9, 8, 7]);
        assert_eq!(img.get(2, 1), [9, 8, 7]);
        img.put(100, 100, [1, 1, 1]); // silently ignored
    }

    #[test]
    fn rgb_and_cir_match_band_values() {
        let s = scene();
        let bands = render_bands(&s, 0.0, &mut SeededRng::new(1));
        let rgb = bands_to_rgb(&bands);
        let cir = bands_to_cir(&bands);
        assert_eq!(rgb.width, 96);
        let x = 10;
        let y = 20;
        assert_eq!(rgb.get(x, y)[0], (bands.at(&[0, y, x]) * 255.0) as u8);
        assert_eq!(cir.get(x, y)[0], (bands.at(&[3, y, x]) * 255.0) as u8);
    }

    #[test]
    fn gray_heatmap_spans_full_range() {
        let s = scene();
        let img = grid_to_gray(&s.dem, false);
        let min = img.pixels.iter().map(|p| p[0]).min().unwrap();
        let max = img.pixels.iter().map(|p| p[0]).max().unwrap();
        assert_eq!(min, 0);
        assert_eq!(max, 255);
    }

    #[test]
    fn overlay_marks_streams_and_crossings() {
        let s = scene();
        let img = scene_overlay(&s);
        // Some stream pixel is blue-dominant.
        let mut found_stream = false;
        for y in 0..96 {
            for x in 0..96 {
                // Crossing markers (drawn last) may overwrite nearby pixels;
                // only check stream cells away from every crossing.
                let clear_of_boxes = s
                    .crossings
                    .iter()
                    .all(|&(cx, cy)| cx.abs_diff(x).max(cy.abs_diff(y)) > 5);
                if s.streams.get(x, y) > 0.0 && s.roads.get(x, y) == 0.0 && clear_of_boxes {
                    let p = img.get(x, y);
                    assert!(p[2] > p[0], "stream pixel should be blue");
                    found_stream = true;
                }
            }
        }
        assert!(found_stream);
        // Crossing boxes leave red pixels near each crossing.
        if let Some(&(cx, cy)) = s.crossings.first() {
            let mut red_near = false;
            for dy in 0..9 {
                for dx in 0..9 {
                    let x = (cx + dx).saturating_sub(4);
                    let y = (cy + dy).saturating_sub(4);
                    if x < 96 && y < 96 {
                        let p = img.get(x, y);
                        if p[0] > 200 && p[1] < 100 {
                            red_near = true;
                        }
                    }
                }
            }
            assert!(red_near, "no red box around crossing ({cx},{cy})");
        }
    }

    #[test]
    fn save_ppm_writes_file() {
        let img = RgbImage::new(2, 2);
        let path = std::env::temp_dir().join("dcd_test_img.ppm");
        img.save_ppm(&path).expect("writeable temp dir");
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes, img.to_ppm());
        let _ = std::fs::remove_file(path);
    }
}
